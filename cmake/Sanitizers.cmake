# Sanitizer wiring for all targets in the project.
#
# Usage:
#   cmake -B build -S . -DRLFTNOC_SANITIZE="address;undefined"   # ASan+UBSan
#   cmake -B build -S . -DRLFTNOC_SANITIZE=thread                # TSan
#
# Accepted sanitizers: address, undefined, thread, leak. `address`/`leak`
# and `thread` are mutually exclusive (the runtimes cannot coexist).
# Commas are accepted in place of semicolons so shell quoting stays simple.
#
# Sanitized builds also force-enable the RLFTNOC_CHECK invariant layer
# (see src/common/check.h): the point of paying the sanitizer tax is to
# catch bugs, so the logical checks fail loudly too.

set(RLFTNOC_SANITIZE "" CACHE STRING
    "Sanitizers to build with (address;undefined | thread | leak); empty = none")

if(RLFTNOC_SANITIZE)
  string(REPLACE "," ";" _rlftnoc_sanitizers "${RLFTNOC_SANITIZE}")

  foreach(_san IN LISTS _rlftnoc_sanitizers)
    if(NOT _san MATCHES "^(address|undefined|thread|leak)$")
      message(FATAL_ERROR
        "RLFTNOC_SANITIZE: unknown sanitizer '${_san}' "
        "(expected address, undefined, thread or leak)")
    endif()
  endforeach()

  if(("address" IN_LIST _rlftnoc_sanitizers OR "leak" IN_LIST _rlftnoc_sanitizers)
     AND "thread" IN_LIST _rlftnoc_sanitizers)
    message(FATAL_ERROR
      "RLFTNOC_SANITIZE: 'thread' cannot be combined with 'address'/'leak'")
  endif()

  string(JOIN "," _rlftnoc_san_flags ${_rlftnoc_sanitizers})
  message(STATUS "rlftnoc: building with -fsanitize=${_rlftnoc_san_flags}")

  add_compile_options(
    -fsanitize=${_rlftnoc_san_flags}
    -fno-omit-frame-pointer
    -fno-sanitize-recover=all  # make UBSan findings fatal, not just logged
    -g)
  add_link_options(-fsanitize=${_rlftnoc_san_flags})
endif()
