// rlftnoc_run — config-file-driven simulation CLI.
//
// Usage:
//   rlftnoc_run <config-file> [--jobs N] [--sim-threads N] [--audit] [--trace]
//               [--trace-dir D] [--metrics-interval N]
//               [--kill-link NODE:P[@CYCLE]] [--kill-router NODE[@CYCLE]]
//               [key=value ...]
//   rlftnoc_run --dump-defaults
//
// Config keys (all optional; defaults reproduce the paper's setup):
//   policy        = crc | arq | dt | rl | oracle
//   workload      = <parsec name> | uniform | transpose | hotspot | ...
//   trace         = <path>           (overrides workload: replay a trace)
//   seed          = 1
//   jobs          = 1                (campaign-mode parallelism; also --jobs N)
//   sim_threads   = 1                (threads inside one run's Network::step;
//                                     0 = hardware threads; also --sim-threads N.
//                                     Results are bit-identical for any value;
//                                     total threads ~= jobs x sim_threads)
//   audit         = false            (per-cycle invariant audit; also --audit)
//   audit_interval= 1                (cycles between audit sweeps)
//   telemetry     = false            (event trace + metrics; also --trace)
//   telemetry.dir = telemetry        (output directory; also --trace-dir D)
//   metrics_interval = 1000          (cycles/sample; also --metrics-interval N)
//   telemetry.series_rows / telemetry.trace_capacity   (ring sizes)
//   hard_faults   =                  (permanent faults: "link:NODE:P[@CYCLE],
//                                     router:NODE[@CYCLE], ..."; also the
//                                     --kill-link / --kill-router flags.
//                                     Needs xy|yx|adaptive routing)
//   injection_rate= 0.06             (synthetic workloads)
//   packets       = 50000            (synthetic workloads)
//   budget_pct    = 100              (PARSEC workloads)
//   error_scale   = 1.0
//   pretrain_cycles / warmup_cycles / step_cycles
//   rl_save       = <path>           (persist learned Q-tables after the run)
//   rl_load       = <path>           (start from previously saved Q-tables)
//   noc.mesh_width / noc.mesh_height / noc.vcs_per_port / ... (see NocConfig)
//
// Campaign mode (runs a benchmark x policy grid instead of one simulation):
//   campaign      = all | <bench1,bench2,...>
//   policies      = crc,arq,dt,rl     (default: the paper's four)
//   results_out   = <path>            (write the raw results TSV)
// `jobs` (or --jobs N) sets how many (benchmark, policy) runs execute
// concurrently; each run derives its own seed, so any value of jobs yields
// bit-identical results.
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.h"
#include "ftnoc/rl_policy.h"
#include "sim/campaign.h"
#include "sim/options_io.h"
#include "sim/results_io.h"
#include "sim/simulator.h"
#include "traffic/parsec.h"
#include "traffic/trace.h"
#include "traffic/traffic.h"

using namespace rlftnoc;

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int run_campaign_mode(const Config& cfg, const SimOptions& opt) {
  std::vector<std::string> benchmarks;
  const std::string spec = cfg.get_string("campaign");
  if (spec == "all") {
    for (const ParsecProfile& p : parsec_suite()) benchmarks.push_back(p.name);
  } else {
    benchmarks = split_csv(spec);
  }
  if (benchmarks.empty()) throw ConfigError("campaign: empty benchmark list");

  std::vector<PolicyKind> policies;
  for (const std::string& p : split_csv(cfg.get_string("policies", "crc,arq,dt,rl")))
    policies.push_back(policy_from_string(p));
  if (policies.empty()) throw ConfigError("policies: empty policy list");

  const auto budget =
      static_cast<std::uint64_t>(cfg.get_int("budget_pct", 100));
  const CampaignResults res = run_campaign(opt, benchmarks, policies, budget);
  if (opt.audit)
    std::printf("invariant audit: every run completed with zero violations\n");
  if (cfg.contains("results_out"))
    write_results_file(cfg.get_string("results_out"), res);

  print_normalized_table(std::cout, res, "execution time (lower = faster)",
                         metric_exec_speedup_inverse, false);
  print_normalized_table(std::cout, res, "avg end-to-end latency",
                         metric_latency, false);
  print_normalized_table(std::cout, res, "energy efficiency",
                         metric_energy_efficiency, true);
  return 0;
}

std::unique_ptr<TrafficGenerator> make_workload(const Config& cfg,
                                                const SimOptions& opt) {
  const MeshTopology topo(opt.noc);
  if (cfg.contains("trace")) {
    return std::make_unique<TraceTraffic>(
        read_trace_file(cfg.get_string("trace")), opt.seed);
  }
  const std::string w = cfg.get_string("workload", "uniform");
  for (const ParsecProfile& p : parsec_suite()) {
    if (p.name == w) {
      ParsecProfile prof = p;
      prof.total_packets =
          prof.total_packets *
          static_cast<std::uint64_t>(cfg.get_int("budget_pct", 100)) / 100;
      return std::make_unique<ParsecTraffic>(topo, prof, opt.seed);
    }
  }
  SyntheticTraffic::Options o;
  o.injection_rate = cfg.get_double("injection_rate", 0.06);
  o.total_packets = static_cast<std::uint64_t>(cfg.get_int("packets", 50000));
  bool found = false;
  for (const TrafficPattern pat :
       {TrafficPattern::kUniform, TrafficPattern::kTranspose,
        TrafficPattern::kBitComplement, TrafficPattern::kTornado,
        TrafficPattern::kNeighbor, TrafficPattern::kBitReverse,
        TrafficPattern::kShuffle, TrafficPattern::kHotspot}) {
    if (w == traffic_pattern_name(pat)) {
      o.pattern = pat;
      found = true;
      break;
    }
  }
  if (!found)
    throw ConfigError("unknown workload '" + w +
                      "' (a PARSEC profile or synthetic pattern name)");
  return std::make_unique<SyntheticTraffic>(topo, o, opt.seed);
}

void print_result(const SimResult& r) {
  std::printf("workload            %s\n", r.workload.c_str());
  std::printf("policy              %s\n", r.policy.c_str());
  std::printf("drained             %s\n", r.drained ? "yes" : "NO");
  std::printf("execution cycles    %llu\n",
              static_cast<unsigned long long>(r.execution_cycles));
  std::printf("packets delivered   %llu / %llu injected\n",
              static_cast<unsigned long long>(r.packets_delivered),
              static_cast<unsigned long long>(r.packets_injected));
  if (r.enqueue_drops > 0)
    std::printf("enqueue drops       %llu (source NI queues overflowed)\n",
                static_cast<unsigned long long>(r.enqueue_drops));
  if (r.unreachable_drops > 0)
    std::printf("unreachable drops   %llu (dead or disconnected endpoints)\n",
                static_cast<unsigned long long>(r.unreachable_drops));
  std::printf("avg e2e latency     %.2f cycles\n", r.avg_packet_latency);
  std::printf("fault retx flits    %llu (e2e %llu, link %llu)\n",
              static_cast<unsigned long long>(r.retx_flits_e2e + r.retx_flits_hop),
              static_cast<unsigned long long>(r.retx_flits_e2e),
              static_cast<unsigned long long>(r.retx_flits_hop));
  std::printf("mode-2 duplicates   %llu\n",
              static_cast<unsigned long long>(r.dup_flits));
  std::printf("energy              %.2f uJ dynamic + %.2f uJ leakage\n",
              r.dynamic_energy_pj * 1e-6, r.leakage_energy_pj * 1e-6);
  std::printf("energy efficiency   %.3f flits/nJ\n", r.energy_efficiency);
  std::printf("dynamic power       %.3f W\n", r.avg_dynamic_power_w);
  std::printf("temperature         avg %.1f C, max %.1f C\n", r.avg_temperature_c,
              r.max_temperature_c);
  std::printf("mode residency      %.2f / %.2f / %.2f / %.2f\n", r.mode_fraction[0],
              r.mode_fraction[1], r.mode_fraction[2], r.mode_fraction[3]);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Config cfg;
    int first_override = 1;
    if (argc > 1 && std::string(argv[1]) == "--dump-defaults") {
      std::printf(
          "policy = rl\nworkload = canneal\nseed = 1\nbudget_pct = 100\n"
          "error_scale = 1.0\n# pretrain_cycles = 500000\n# warmup_cycles = 50000\n"
          "# noc.mesh_width = 8\n# noc.vcs_per_port = 4\n");
      return 0;
    }
    if (argc > 1 && std::string(argv[1]).find('=') == std::string::npos &&
        std::string(argv[1]).rfind("--", 0) != 0) {
      cfg = Config::from_file(argv[1]);
      first_override = 2;
    }
    for (int i = first_override; i < argc; ++i) {
      const std::string kv = argv[i];
      if (kv == "--jobs") {
        if (i + 1 >= argc) throw ConfigError("--jobs needs a value");
        cfg.set("jobs", argv[++i]);
        continue;
      }
      if (kv.rfind("--jobs=", 0) == 0) {
        cfg.set("jobs", kv.substr(7));
        continue;
      }
      if (kv == "--sim-threads") {
        if (i + 1 >= argc) throw ConfigError("--sim-threads needs a value");
        cfg.set("sim_threads", argv[++i]);
        continue;
      }
      if (kv.rfind("--sim-threads=", 0) == 0) {
        cfg.set("sim_threads", kv.substr(14));
        continue;
      }
      if (kv == "--audit") {
        cfg.set("audit", "true");
        continue;
      }
      // --kill-link NODE:P[@CYCLE] / --kill-router NODE[@CYCLE] append to the
      // `hard_faults` config key (same syntax, prefixed with the fault kind).
      const auto append_fault = [&cfg](const std::string& item) {
        const std::string prev = cfg.get_string("hard_faults", "");
        cfg.set("hard_faults", prev.empty() ? item : prev + "," + item);
      };
      if (kv == "--kill-link") {
        if (i + 1 >= argc) throw ConfigError("--kill-link needs NODE:P[@CYCLE]");
        append_fault(std::string("link:") + argv[++i]);
        continue;
      }
      if (kv.rfind("--kill-link=", 0) == 0) {
        append_fault("link:" + kv.substr(12));
        continue;
      }
      if (kv == "--kill-router") {
        if (i + 1 >= argc) throw ConfigError("--kill-router needs NODE[@CYCLE]");
        append_fault(std::string("router:") + argv[++i]);
        continue;
      }
      if (kv.rfind("--kill-router=", 0) == 0) {
        append_fault("router:" + kv.substr(14));
        continue;
      }
      if (kv == "--trace") {
        cfg.set("telemetry", "true");
        continue;
      }
      if (kv == "--trace-dir") {
        if (i + 1 >= argc) throw ConfigError("--trace-dir needs a value");
        cfg.set("telemetry.dir", argv[++i]);
        continue;
      }
      if (kv.rfind("--trace-dir=", 0) == 0) {
        cfg.set("telemetry.dir", kv.substr(12));
        continue;
      }
      if (kv == "--metrics-interval") {
        if (i + 1 >= argc) throw ConfigError("--metrics-interval needs a value");
        cfg.set("metrics_interval", argv[++i]);
        continue;
      }
      if (kv.rfind("--metrics-interval=", 0) == 0) {
        cfg.set("metrics_interval", kv.substr(19));
        continue;
      }
      const auto eq = kv.find('=');
      if (eq == std::string::npos) throw ConfigError("override must be key=value: " + kv);
      cfg.set(kv.substr(0, eq), kv.substr(eq + 1));
    }

    SimOptions opt = sim_options_from_config(cfg);
    if (!cfg.contains("policy")) opt.policy = PolicyKind::kRl;

    if (cfg.contains("campaign")) return run_campaign_mode(cfg, opt);

    // A pre-trained policy skips the synthetic pre-training phase.
    if (cfg.contains("rl_load")) opt.pretrain_cycles = 0;

    auto workload = make_workload(cfg, opt);
    Simulator sim(opt);
    if (cfg.contains("rl_load")) {
      auto* rl = dynamic_cast<RlPolicy*>(&sim.policy());
      if (rl == nullptr) throw ConfigError("rl_load requires policy = rl");
      rl->load_tables(cfg.get_string("rl_load"));
    }
    const SimResult r = sim.run(*workload);
    if (const NetworkAuditor* auditor = sim.auditor()) {
      std::printf("invariant audit: %llu clean sweeps, zero violations\n",
                  static_cast<unsigned long long>(auditor->clean_passes()));
    }
    if (cfg.contains("rl_save")) {
      if (auto* rl = dynamic_cast<RlPolicy*>(&sim.policy())) {
        rl->save_tables(cfg.get_string("rl_save"));
        std::fprintf(stderr, "saved Q-tables to %s\n",
                     cfg.get_string("rl_save").c_str());
      }
    }
    print_result(r);
    if (!sim.telemetry_files().empty()) {
      std::printf("telemetry manifest  %s\n",
                  sim.telemetry_manifest_path().c_str());
    }
    return r.drained ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rlftnoc_run: %s\n", e.what());
    return 2;
  }
}
