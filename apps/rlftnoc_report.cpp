// rlftnoc_report — renders a cached campaign (campaign_results.tsv) as a
// Markdown report: one table per figure of the paper, normalized to the CRC
// baseline, plus the raw per-run data.
//
//   rlftnoc_report [campaign_results.tsv] > report.md
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/results_io.h"

using namespace rlftnoc;

namespace {

void markdown_table(const CampaignResults& res, const char* title,
                    const MetricFn& metric, bool higher_is_better) {
  std::printf("\n## %s\n\n", title);
  std::printf("| benchmark |");
  for (const PolicyKind p : res.policies) std::printf(" %s |", policy_name(p));
  std::printf("\n|---|");
  for (std::size_t i = 0; i < res.policies.size(); ++i) std::printf("---|");
  std::printf("\n");

  std::vector<double> geo(res.policies.size(), 0.0);
  std::size_t counted = 0;
  for (std::size_t b = 0; b < res.benchmarks.size(); ++b) {
    const double base = metric(res.at(b, 0));
    if (base <= 0.0) continue;
    ++counted;
    std::printf("| %s |", res.benchmarks[b].c_str());
    for (std::size_t p = 0; p < res.policies.size(); ++p) {
      const double norm = metric(res.at(b, p)) / base;
      geo[p] += std::log(std::max(norm, 1e-12));
      std::printf(" %.3f |", norm);
    }
    std::printf("\n");
  }
  std::printf("| **geomean** |");
  for (std::size_t p = 0; p < res.policies.size(); ++p) {
    std::printf(" **%.3f** |",
                counted ? std::exp(geo[p] / static_cast<double>(counted)) : 0.0);
  }
  std::printf("\n");
  std::printf("\n*(normalized to %s; %s is better)*\n",
              policy_name(res.policies.front()),
              higher_is_better ? "higher" : "lower");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "campaign_results.tsv";
  CampaignResults res;
  try {
    res = read_results_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "rlftnoc_report: %s\nrun a figure bench first to produce the "
                 "campaign cache\n",
                 e.what());
    return 2;
  }

  std::printf("# rlftnoc campaign report\n");
  std::printf("\n%zu benchmarks x %zu policies (source: %s)\n",
              res.benchmarks.size(), res.policies.size(), path.c_str());

  markdown_table(res, "Fig. 6 — fault-caused retransmitted flits",
                 [](const SimResult& r) {
                   return static_cast<double>(r.retx_flits_e2e + r.retx_flits_hop);
                 },
                 false);
  markdown_table(res, "Fig. 7 — execution time", metric_exec_speedup_inverse,
                 false);
  markdown_table(res, "Fig. 8 — average end-to-end latency", metric_latency,
                 false);
  markdown_table(res, "Fig. 9 — energy efficiency", metric_energy_efficiency,
                 true);
  markdown_table(res, "Fig. 10 — dynamic power", metric_dynamic_power, false);

  std::printf("\n## Raw per-run data\n\n");
  std::printf("| benchmark | policy | exec (cyc) | latency | fault retx | dup "
              "| eff (flits/nJ) | dyn (W) | T avg/max | modes 0/1/2/3 |\n");
  std::printf("|---|---|---|---|---|---|---|---|---|---|\n");
  for (std::size_t b = 0; b < res.benchmarks.size(); ++b) {
    for (std::size_t p = 0; p < res.policies.size(); ++p) {
      const SimResult& r = res.at(b, p);
      std::printf("| %s | %s | %llu | %.1f | %llu | %llu | %.2f | %.3f | "
                  "%.0f/%.0f | %.2f/%.2f/%.2f/%.2f |\n",
                  r.workload.c_str(), r.policy.c_str(),
                  static_cast<unsigned long long>(r.execution_cycles),
                  r.avg_packet_latency,
                  static_cast<unsigned long long>(r.retx_flits_e2e + r.retx_flits_hop),
                  static_cast<unsigned long long>(r.dup_flits),
                  r.energy_efficiency, r.avg_dynamic_power_w, r.avg_temperature_c,
                  r.max_temperature_c, r.mode_fraction[0], r.mode_fraction[1],
                  r.mode_fraction[2], r.mode_fraction[3]);
    }
  }
  return 0;
}
