// rlftnoc_report — renders a cached campaign (campaign_results.tsv) as a
// Markdown report: one table per figure of the paper, normalized to the CRC
// baseline, plus the raw per-run data.
//
//   rlftnoc_report [campaign_results.tsv] [--telemetry DIR] > report.md
//
// With --telemetry, the report also renders every run's telemetry found in
// DIR (written by --trace runs; see src/telemetry): one summary table per
// *.metrics.tsv with an ASCII sparkline of each metric over time, and every
// *.heatmap.*.tsv as a preformatted grid.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/results_io.h"

using namespace rlftnoc;

namespace {

void markdown_table(const CampaignResults& res, const char* title,
                    const MetricFn& metric, bool higher_is_better) {
  std::printf("\n## %s\n\n", title);
  std::printf("| benchmark |");
  for (const PolicyKind p : res.policies) std::printf(" %s |", policy_name(p));
  std::printf("\n|---|");
  for (std::size_t i = 0; i < res.policies.size(); ++i) std::printf("---|");
  std::printf("\n");

  std::vector<double> geo(res.policies.size(), 0.0);
  std::size_t counted = 0;
  for (std::size_t b = 0; b < res.benchmarks.size(); ++b) {
    const double base = metric(res.at(b, 0));
    if (base <= 0.0) continue;
    ++counted;
    std::printf("| %s |", res.benchmarks[b].c_str());
    for (std::size_t p = 0; p < res.policies.size(); ++p) {
      const double norm = metric(res.at(b, p)) / base;
      geo[p] += std::log(std::max(norm, 1e-12));
      std::printf(" %.3f |", norm);
    }
    std::printf("\n");
  }
  std::printf("| **geomean** |");
  for (std::size_t p = 0; p < res.policies.size(); ++p) {
    std::printf(" **%.3f** |",
                counted ? std::exp(geo[p] / static_cast<double>(counted)) : 0.0);
  }
  std::printf("\n");
  std::printf("\n*(normalized to %s; %s is better)*\n",
              policy_name(res.policies.front()),
              higher_is_better ? "higher" : "lower");
}

/// One metric's per-sample aggregate (mean over routers/ports per cycle).
struct MetricSeries {
  std::vector<double> values;  ///< one aggregate per sample row, time order
  double min = 0.0, max = 0.0, last = 0.0;
};

/// Eight-level ASCII sparkline of `v` scaled to its own [min, max].
std::string sparkline(const std::vector<double>& v, std::size_t max_chars) {
  static const char levels[] = " .:-=+*#";
  if (v.empty()) return "";
  double lo = v.front(), hi = v.front();
  for (const double x : v) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  // Downsample long series by striding so the line fits a report column.
  const std::size_t stride = std::max<std::size_t>(1, v.size() / max_chars);
  std::string out;
  for (std::size_t i = 0; i < v.size(); i += stride) {
    const double norm = hi > lo ? (v[i] - lo) / (hi - lo) : 0.0;
    out += levels[static_cast<std::size_t>(norm * 7.0 + 0.5)];
  }
  return out;
}

/// Renders one <label>.metrics.tsv as a per-metric summary table.
void render_metrics_file(const std::filesystem::path& file) {
  std::ifstream in(file);
  if (!in) return;
  std::string line;
  std::getline(in, line);  // header
  // metric -> cycle -> (sum, count); std::map keeps output deterministic.
  std::map<std::string, std::map<long long, std::pair<double, long long>>> acc;
  while (std::getline(in, line)) {
    std::istringstream ss(line);
    std::string cycle_s, metric, router_s, port_s, value_s;
    if (!std::getline(ss, cycle_s, '\t') || !std::getline(ss, metric, '\t') ||
        !std::getline(ss, router_s, '\t') || !std::getline(ss, port_s, '\t') ||
        !std::getline(ss, value_s, '\t')) {
      continue;
    }
    auto& cell = acc[metric][std::stoll(cycle_s)];
    cell.first += std::stod(value_s);
    ++cell.second;
  }
  if (acc.empty()) return;

  std::printf("\n### %s\n\n", file.filename().string().c_str());
  std::printf("| metric | min | max | last | trend |\n|---|---|---|---|---|\n");
  for (const auto& [metric, by_cycle] : acc) {
    MetricSeries s;
    for (const auto& [cycle, cell] : by_cycle) {
      (void)cycle;
      s.values.push_back(cell.first / static_cast<double>(cell.second));
    }
    s.min = *std::min_element(s.values.begin(), s.values.end());
    s.max = *std::max_element(s.values.begin(), s.values.end());
    s.last = s.values.back();
    std::printf("| %s | %.4g | %.4g | %.4g | `%s` |\n", metric.c_str(), s.min,
                s.max, s.last, sparkline(s.values, 48).c_str());
  }
  std::printf(
      "\n*(per-router metrics averaged over routers; counters are "
      "per-interval deltas)*\n");
}

void render_heatmap_file(const std::filesystem::path& file) {
  std::ifstream in(file);
  if (!in) return;
  std::printf("\n### %s\n\n```\n", file.filename().string().c_str());
  std::string line;
  while (std::getline(in, line)) std::printf("%s\n", line.c_str());
  std::printf("```\n");
}

/// Renders every run's telemetry found in `dir` (sorted for determinism).
void render_telemetry_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<fs::path> metrics, heatmaps;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > 12 && name.rfind(".metrics.tsv") == name.size() - 12) {
      metrics.push_back(entry.path());
    } else if (name.find(".heatmap.") != std::string::npos &&
               name.rfind(".tsv") == name.size() - 4) {
      heatmaps.push_back(entry.path());
    }
  }
  if (ec) {
    std::fprintf(stderr, "rlftnoc_report: cannot read telemetry dir %s: %s\n",
                 dir.c_str(), ec.message().c_str());
    return;
  }
  std::sort(metrics.begin(), metrics.end());
  std::sort(heatmaps.begin(), heatmaps.end());

  std::printf("\n## Telemetry (%s)\n", dir.c_str());
  if (metrics.empty() && heatmaps.empty())
    std::printf("\nno telemetry files found\n");
  for (const auto& f : metrics) render_metrics_file(f);
  for (const auto& f : heatmaps) render_heatmap_file(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string telemetry_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--telemetry") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rlftnoc_report: --telemetry needs a directory\n");
        return 2;
      }
      telemetry_dir = argv[++i];
    } else if (arg.rfind("--telemetry=", 0) == 0) {
      telemetry_dir = arg.substr(12);
    } else {
      path = arg;
    }
  }
  if (path.empty()) path = "campaign_results.tsv";

  CampaignResults res;
  try {
    res = read_results_file(path);
  } catch (const std::exception& e) {
    // Telemetry-only reports are fine without a campaign cache.
    if (!telemetry_dir.empty()) {
      std::printf("# rlftnoc telemetry report\n");
      render_telemetry_dir(telemetry_dir);
      return 0;
    }
    std::fprintf(stderr,
                 "rlftnoc_report: %s\nrun a figure bench first to produce the "
                 "campaign cache\n",
                 e.what());
    return 2;
  }

  std::printf("# rlftnoc campaign report\n");
  std::printf("\n%zu benchmarks x %zu policies (source: %s)\n",
              res.benchmarks.size(), res.policies.size(), path.c_str());

  markdown_table(res, "Fig. 6 — fault-caused retransmitted flits",
                 [](const SimResult& r) {
                   return static_cast<double>(r.retx_flits_e2e + r.retx_flits_hop);
                 },
                 false);
  markdown_table(res, "Fig. 7 — execution time", metric_exec_speedup_inverse,
                 false);
  markdown_table(res, "Fig. 8 — average end-to-end latency", metric_latency,
                 false);
  markdown_table(res, "Fig. 9 — energy efficiency", metric_energy_efficiency,
                 true);
  markdown_table(res, "Fig. 10 — dynamic power", metric_dynamic_power, false);

  std::printf("\n## Raw per-run data\n\n");
  std::printf("| benchmark | policy | exec (cyc) | latency | fault retx | dup "
              "| eff (flits/nJ) | dyn (W) | T avg/max | modes 0/1/2/3 |\n");
  std::printf("|---|---|---|---|---|---|---|---|---|---|\n");
  for (std::size_t b = 0; b < res.benchmarks.size(); ++b) {
    for (std::size_t p = 0; p < res.policies.size(); ++p) {
      const SimResult& r = res.at(b, p);
      std::printf("| %s | %s | %llu | %.1f | %llu | %llu | %.2f | %.3f | "
                  "%.0f/%.0f | %.2f/%.2f/%.2f/%.2f |\n",
                  r.workload.c_str(), r.policy.c_str(),
                  static_cast<unsigned long long>(r.execution_cycles),
                  r.avg_packet_latency,
                  static_cast<unsigned long long>(r.retx_flits_e2e + r.retx_flits_hop),
                  static_cast<unsigned long long>(r.dup_flits),
                  r.energy_efficiency, r.avg_dynamic_power_w, r.avg_temperature_c,
                  r.max_temperature_c, r.mode_fraction[0], r.mode_fraction[1],
                  r.mode_fraction[2], r.mode_fraction[3]);
    }
  }

  if (!telemetry_dir.empty()) render_telemetry_dir(telemetry_dir);
  return 0;
}
