// E5 / Fig. 10 — "Dynamic power consumption, normalized to CRC baseline".
// Lower is better: dynamic power tracks traffic volume, so eliminating
// retransmission traffic shows up here. The paper reports RL at 0.54 of the
// CRC baseline (46% reduction) and 17% below DT.
#include <cstdio>
#include <iostream>

#include "bench_common.h"

using namespace rlftnoc;
using namespace rlftnoc::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const CampaignResults campaign = load_or_run_campaign(args);

  std::printf("== Fig. 10: dynamic power consumption ==\n");
  print_normalized_table(std::cout, campaign, "dynamic power",
                         metric_dynamic_power, /*higher_is_better=*/false);

  std::printf("\nabsolute network dynamic power (W):\n%-14s", "benchmark");
  for (const PolicyKind p : campaign.policies) std::printf("%10s", policy_name(p));
  std::printf("\n");
  for (std::size_t b = 0; b < campaign.benchmarks.size(); ++b) {
    std::printf("%-14s", campaign.benchmarks[b].c_str());
    for (std::size_t p = 0; p < campaign.policies.size(); ++p)
      std::printf("%10.3f", campaign.at(b, p).avg_dynamic_power_w);
    std::printf("\n");
  }
  std::printf("\n");

  for (std::size_t p = 1; p < campaign.policies.size(); ++p) {
    const double g = normalized_geomean(campaign, metric_dynamic_power, p);
    const double paper = campaign.policies[p] == PolicyKind::kStaticArqEcc ? 0.75
                         : campaign.policies[p] == PolicyKind::kRl         ? 0.54
                                                                           : 0.65;
    std::string label = std::string("Fig10 ") + policy_name(campaign.policies[p]) +
                        " dyn power (norm. to CRC)";
    print_paper_vs_measured(label.c_str(), paper, g);
  }
  return 0;
}
