// E9 — RL design-choice ablations on a 4x4 mesh with a fixed workload:
//  * shared Q-table (default) vs paper-literal per-router tables,
//  * aggregated 8-feature state (default) vs paper-literal per-port state,
//  * discount rate gamma (0.2 default vs the paper's 0.5 and high 0.95),
//  * frozen-greedy measurement (default) vs always-exploring epsilon = 0.1,
//  * optimistic initialization vs the paper's zero init.
#include <cstdio>
#include <functional>
#include <string>

#include "sim/simulator.h"
#include "traffic/traffic.h"

using namespace rlftnoc;

namespace {

SimResult run_variant(const std::string& label,
                      const std::function<void(SimOptions&)>& tweak) {
  SimOptions opt;
  opt.policy = PolicyKind::kRl;
  opt.seed = 9;
  opt.noc.mesh_width = 4;
  opt.noc.mesh_height = 4;
  opt.pretrain_cycles = 300000;
  opt.warmup_cycles = 20000;
  opt.thermal.ambient_c = 58.0;  // sit the 4x4 mesh in the interesting band
  tweak(opt);

  Simulator sim(opt);
  SyntheticTraffic::Options o;
  o.injection_rate = 0.08;
  o.total_packets = 40000;
  SyntheticTraffic gen(MeshTopology(opt.noc), o, opt.seed);
  const SimResult r = sim.run(gen);
  std::printf("%-28s lat=%7.1f  faultRetx=%7llu  dup=%7llu  eff=%5.2f  "
              "modes=[%.2f %.2f %.2f %.2f]\n",
              label.c_str(), r.avg_packet_latency,
              static_cast<unsigned long long>(r.retx_flits_e2e + r.retx_flits_hop),
              static_cast<unsigned long long>(r.dup_flits), r.energy_efficiency,
              r.mode_fraction[0], r.mode_fraction[1], r.mode_fraction[2],
              r.mode_fraction[3]);
  return r;
}

}  // namespace

int main() {
  std::printf("== E9: RL design ablations (4x4 mesh, uniform 0.08, hot ambient) ==\n");

  run_variant("default", [](SimOptions&) {});
  run_variant("per-router tables (paper)",
              [](SimOptions& o) { o.rl_shared_table = false; });
  run_variant("per-port state (paper)",
              [](SimOptions& o) { o.per_port_state = true; });
  run_variant("gamma=0.5 (paper)", [](SimOptions& o) { o.rl.gamma = 0.5; });
  run_variant("gamma=0.95", [](SimOptions& o) { o.rl.gamma = 0.95; });
  run_variant("explore while measured",
              [](SimOptions& o) { o.freeze_rl_on_measure = false; });
  run_variant("zero Q init (paper)", [](SimOptions& o) {
    o.rl.optimistic_init = 0.0;
  });
  run_variant("no pessimism/prior", [](SimOptions& o) {
    o.rl.confidence_penalty = 0.0;
    o.rl.action_cost_prior = 0.0;
  });
  run_variant("alpha=0.5", [](SimOptions& o) { o.rl.alpha = 0.5; });

  std::printf("\n(reference statics)\n");
  for (const PolicyKind k : {PolicyKind::kStaticCrc, PolicyKind::kStaticArqEcc,
                             PolicyKind::kOracle}) {
    SimOptions opt;
    opt.policy = k;
    opt.seed = 9;
    opt.noc.mesh_width = 4;
    opt.noc.mesh_height = 4;
    opt.pretrain_cycles = 0;
    opt.warmup_cycles = 20000;
    opt.thermal.ambient_c = 58.0;
    Simulator sim(opt);
    SyntheticTraffic::Options o;
    o.injection_rate = 0.08;
    o.total_packets = 40000;
    SyntheticTraffic gen(MeshTopology(opt.noc), o, opt.seed);
    const SimResult r = sim.run(gen);
    std::printf("%-28s lat=%7.1f  faultRetx=%7llu  dup=%7llu  eff=%5.2f\n",
                r.policy.c_str(), r.avg_packet_latency,
                static_cast<unsigned long long>(r.retx_flits_e2e + r.retx_flits_hop),
                static_cast<unsigned long long>(r.dup_flits), r.energy_efficiency);
  }
  return 0;
}
