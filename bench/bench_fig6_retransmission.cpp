// E1 / Fig. 6 — "Number of retransmission packets ... normalized to CRC
// baseline". Retransmission here means fault-caused re-sends: whole-packet
// source retransmissions (CRC path) plus NACK-triggered link-level resends
// (ARQ+ECC path). The paper reports an average 48% reduction for RL and 33%
// for ARQ+ECC over the CRC baseline.
#include <cstdio>
#include <iostream>

#include "bench_common.h"

using namespace rlftnoc;
using namespace rlftnoc::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const CampaignResults campaign = load_or_run_campaign(args);

  std::printf("== Fig. 6: retransmission traffic caused by faults ==\n");
  print_normalized_table(std::cout, campaign, "fault-caused retransmitted flits",
                         metric_fault_retransmissions,
                         /*higher_is_better=*/false);

  // Mode-2 proactive duplicates, reported separately (deliberate traffic).
  std::printf("\n%-14s", "dup flits:");
  for (const PolicyKind p : campaign.policies) std::printf("%10s", policy_name(p));
  std::printf("\n%-14s", "(total)");
  for (std::size_t p = 0; p < campaign.policies.size(); ++p) {
    std::uint64_t dups = 0;
    for (std::size_t b = 0; b < campaign.benchmarks.size(); ++b)
      dups += campaign.at(b, p).dup_flits;
    std::printf("%10llu", static_cast<unsigned long long>(dups));
  }
  std::printf("\n\n");

  for (std::size_t p = 1; p < campaign.policies.size(); ++p) {
    const double g = normalized_geomean(campaign, metric_fault_retransmissions, p);
    const double paper = campaign.policies[p] == PolicyKind::kStaticArqEcc ? 0.67
                         : campaign.policies[p] == PolicyKind::kRl         ? 0.52
                                                                           : 0.60;
    std::string label = std::string("Fig6 ") + policy_name(campaign.policies[p]) +
                        " retx (norm. to CRC)";
    print_paper_vs_measured(label.c_str(), paper, g);
  }
  return 0;
}
