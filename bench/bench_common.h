// Shared harness for the figure-reproduction benches.
//
// Figures 6-10 are different views of one campaign (8 PARSEC-like
// benchmarks x 4 policies), so the first bench to run executes the campaign
// and caches the raw results as `campaign_results.tsv` in the working
// directory; the others reuse the cache. Flags:
//   --fresh        ignore and overwrite the cache
//   --scale=N      packet-budget percentage (default 100 = full budgets)
//   --full         paper-scale pretrain/warm-up phases + 100% budgets
//   --seed=N       experiment seed (default 11)
//   --jobs=N       parallel (benchmark, policy) runs; 0 = all hardware
//                  threads, 1 = serial (default). Results are identical
//                  for any value (per-run seed derivation).
//   --cache=PATH   cache location (default ./campaign_results.tsv)
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/campaign.h"
#include "sim/results_io.h"

namespace rlftnoc::bench {

struct BenchArgs {
  bool fresh = false;
  std::uint64_t scale_pct = 100;
  bool full = false;
  std::uint64_t seed = 11;
  unsigned jobs = 1;
  std::string cache = "campaign_results.tsv";
};

BenchArgs parse_args(int argc, char** argv);

/// The four policies of the paper's evaluation, CRC first (the baseline
/// every figure normalizes to).
const std::vector<PolicyKind>& paper_policies();

/// All eight benchmark names.
std::vector<std::string> paper_benchmarks();

/// Hash of every option that determines campaign *results* (seed, scale,
/// phase lengths, benchmark and policy lists). `jobs` is excluded on
/// purpose: results are bit-identical for any job count, so a cache written
/// at --jobs=4 is valid for a serial rerun. The cache file records this
/// hash in a leading `# campaign-options-hash <hex>` comment and a reload
/// only reuses the file when the hash matches — editing options can no
/// longer silently serve stale cached results.
std::uint64_t campaign_options_hash(const BenchArgs& args);

/// Loads the cached campaign or runs it (and caches).
CampaignResults load_or_run_campaign(const BenchArgs& args);

/// Fault-caused retransmission traffic (Fig. 6's metric): end-to-end plus
/// NACK-triggered link-level re-sends. Mode-2 proactive duplicates are
/// deliberate traffic and are charged to power/energy instead.
double metric_fault_retransmissions(const SimResult& r);

/// Geometric mean of metric(policy column) / metric(first column) over all
/// benchmarks — the "average normalized bar" of a figure.
double normalized_geomean(const CampaignResults& campaign, const MetricFn& metric,
                          std::size_t policy_column);

/// Prints a "paper reports vs this build measures" summary line.
void print_paper_vs_measured(const char* what, double paper_value,
                             double measured_value);

}  // namespace rlftnoc::bench
