// Hard-fault sweep benchmark: throughput/latency degradation vs the
// fraction of failed links on an 8x8 torus with fault-adaptive routing.
//
// For each fraction in the sweep a deterministic sample of undirected links
// (node, port in {E, N} — each physical wire exactly once) is killed at
// t = 0, a pinned uniform workload runs to drain, and the JSON (schema
// rlftnoc-bench-faults-v1) records delivery, latency and unreachable-drop
// numbers per cell. The 0% cell doubles as the baseline every other cell is
// normalized against. Every faulted cell is also re-run at sim_threads=4
// and cross-checked against the serial results — the stepper's bit-identity
// contract must hold under hard faults too, so any divergence is a hard
// failure, exactly like bench_scaling.
//
// The configuration is pinned; --out=PATH is the only knob.
// tools/bench_summary.py prints the sweep table from the JSON.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"
#include "traffic/traffic.h"

namespace {

using namespace rlftnoc;

constexpr std::uint64_t kSeed = 23;
constexpr int kWidth = 8;
constexpr std::uint64_t kPackets = 4000;
constexpr double kFractions[] = {0.0, 0.02, 0.05, 0.10};

struct Cell {
  double fraction = 0.0;
  int links_killed = 0;
  double wall_seconds = 0.0;
  SimResult r;
};

/// Deterministic sample of `count` distinct undirected torus links. Each
/// wire appears once as (node, E) or (node, N) — on a torus every node owns
/// exactly its east and north wire, so the universe has 2 * W * H entries.
std::vector<HardFault> sample_links(int count, std::uint64_t seed) {
  std::vector<HardFault> all;
  for (NodeId n = 0; n < kWidth * kWidth; ++n) {
    for (const Port p : {Port::kEast, Port::kNorth}) {
      HardFault f;
      f.kind = HardFault::Kind::kLink;
      f.node = n;
      f.port = p;
      all.push_back(f);
    }
  }
  Rng rng(seed, "bench_faults");
  // Partial Fisher-Yates: the first `count` entries are the sample.
  for (int i = 0; i < count && i < static_cast<int>(all.size()); ++i) {
    const auto j = i + static_cast<int>(rng.next_below(all.size() - static_cast<std::size_t>(i)));
    std::swap(all[static_cast<std::size_t>(i)], all[static_cast<std::size_t>(j)]);
  }
  all.resize(static_cast<std::size_t>(count));
  return all;
}

SimOptions make_options(const std::vector<HardFault>& faults,
                        unsigned sim_threads) {
  SimOptions opt;
  opt.seed = kSeed;
  opt.policy = PolicyKind::kStaticArqEcc;  // no RL updates: isolates routing
  opt.sim_threads = sim_threads;
  opt.noc.mesh_width = kWidth;
  opt.noc.mesh_height = kWidth;
  opt.noc.topology = TopologyKind::kTorus;
  opt.noc.routing = RoutingAlgorithm::kAdaptive;  // fault-adaptive up*/down*
  opt.pretrain_cycles = 0;
  opt.warmup_cycles = 0;
  opt.hard_faults = faults;
  return opt;
}

SimResult run_cell(const std::vector<HardFault>& faults, unsigned sim_threads,
                   double& wall_seconds) {
  const SimOptions opt = make_options(faults, sim_threads);
  Simulator sim(opt);
  SyntheticTraffic::Options to;
  to.injection_rate = 0.05;
  to.total_packets = kPackets;
  SyntheticTraffic gen(MeshTopology(opt.noc), to, opt.seed);
  const auto t0 = std::chrono::steady_clock::now();  // rlftnoc-lint: allow(R2) wall-clock is the bench metric, never a sim input
  const SimResult r = sim.run(gen);
  const auto t1 = std::chrono::steady_clock::now();  // rlftnoc-lint: allow(R2) wall-clock is the bench metric, never a sim input
  wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

bool results_match(const SimResult& a, const SimResult& b) {
  return a.total_cycles == b.total_cycles &&
         a.packets_injected == b.packets_injected &&
         a.packets_delivered == b.packets_delivered &&
         a.flits_delivered == b.flits_delivered &&
         a.unreachable_drops == b.unreachable_drops &&
         a.retransmitted_flits == b.retransmitted_flits &&
         std::memcmp(&a.avg_packet_latency, &b.avg_packet_latency,
                     sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_faults.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--out=", 0) == 0) {
      out_path = a.substr(6);
    } else {
      std::fprintf(stderr, "unknown flag '%s' (supported: --out=PATH)\n",
                   a.c_str());
      return 2;
    }
  }

  const int total_links = 2 * kWidth * kWidth;
  std::fprintf(stderr,
               "[bench_faults] %dx%d torus, adaptive routing, %d undirected "
               "links, seed %llu\n",
               kWidth, kWidth, total_links,
               static_cast<unsigned long long>(kSeed));

  std::vector<Cell> cells;
  bool identical = true;
  double base_delivered = 0.0;
  for (const double frac : kFractions) {
    Cell c;
    c.fraction = frac;
    c.links_killed = static_cast<int>(frac * total_links + 0.5);
    const std::vector<HardFault> faults = sample_links(c.links_killed, kSeed);
    c.r = run_cell(faults, 1, c.wall_seconds);
    if (frac == 0.0) base_delivered = static_cast<double>(c.r.packets_delivered);
    if (!faults.empty()) {
      double mt_wall = 0.0;
      const SimResult mt = run_cell(faults, 4, mt_wall);
      if (!results_match(c.r, mt)) {
        identical = false;
        std::fprintf(stderr,
                     "[bench_faults] DIVERGENCE: %d dead links, "
                     "sim_threads=4 differs from serial\n",
                     c.links_killed);
      }
    }
    const double delivered_frac =
        base_delivered > 0.0
            ? static_cast<double>(c.r.packets_delivered) / base_delivered
            : 0.0;
    std::printf(
        "faults %5.1f%%  (%2d links)  delivered %5llu/%5llu  "
        "unreachable %4llu  latency %7.2f  cycles %8llu  %s\n",
        frac * 100.0, c.links_killed,
        static_cast<unsigned long long>(c.r.packets_delivered),
        static_cast<unsigned long long>(c.r.packets_injected),
        static_cast<unsigned long long>(c.r.unreachable_drops),
        c.r.avg_packet_latency,
        static_cast<unsigned long long>(c.r.total_cycles),
        c.r.drained ? "drained" : "NOT DRAINED");
    (void)delivered_frac;
    cells.push_back(c);
  }

  // Degradation sanity: every faulted cell must still move real traffic.
  bool nonzero = true;
  for (const Cell& c : cells) {
    if (c.r.packets_delivered == 0) {
      nonzero = false;
      std::fprintf(stderr,
                   "[bench_faults] FAILURE: zero throughput at %d dead links\n",
                   c.links_killed);
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"schema\": \"rlftnoc-bench-faults-v1\",\n"
      << "  \"seed\": " << kSeed << ",\n"
      << "  \"topology\": \"torus\",\n"
      << "  \"routing\": \"adaptive\",\n"
      << "  \"mesh\": " << kWidth << ",\n"
      << "  \"total_links\": " << total_links << ",\n"
      << "  \"results_identical\": " << (identical ? "true" : "false")
      << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const double delivered_frac =
        base_delivered > 0.0
            ? static_cast<double>(c.r.packets_delivered) / base_delivered
            : 0.0;
    out << "    {\"fraction\": " << c.fraction
        << ", \"links_killed\": " << c.links_killed
        << ", \"packets_injected\": " << c.r.packets_injected
        << ", \"packets_delivered\": " << c.r.packets_delivered
        << ", \"unreachable_drops\": " << c.r.unreachable_drops
        << ", \"avg_latency\": " << c.r.avg_packet_latency
        << ", \"total_cycles\": " << c.r.total_cycles
        << ", \"drained\": " << (c.r.drained ? "true" : "false")
        << ", \"delivered_vs_faultfree\": " << delivered_frac
        << ", \"wall_seconds\": " << c.wall_seconds << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "[bench_faults] wrote %s\n", out_path.c_str());
  return identical && nonzero ? 0 : 1;
}
