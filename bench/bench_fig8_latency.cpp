// E3 / Fig. 8 — "Average end-to-end latency, normalized to CRC baseline".
// The paper reports ARQ+ECC at 0.70, DT at ~0.50 and RL at 0.45 of the CRC
// baseline (55% reduction for RL; 10% better than DT).
#include <cstdio>
#include <iostream>

#include "bench_common.h"

using namespace rlftnoc;
using namespace rlftnoc::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const CampaignResults campaign = load_or_run_campaign(args);

  std::printf("== Fig. 8: average end-to-end packet latency ==\n");
  print_normalized_table(std::cout, campaign, "avg end-to-end latency",
                         metric_latency, /*higher_is_better=*/false);

  std::printf("\nabsolute latencies (cycles):\n%-14s", "benchmark");
  for (const PolicyKind p : campaign.policies) std::printf("%10s", policy_name(p));
  std::printf("\n");
  for (std::size_t b = 0; b < campaign.benchmarks.size(); ++b) {
    std::printf("%-14s", campaign.benchmarks[b].c_str());
    for (std::size_t p = 0; p < campaign.policies.size(); ++p)
      std::printf("%10.1f", campaign.at(b, p).avg_packet_latency);
    std::printf("\n");
  }
  std::printf("\n");

  for (std::size_t p = 1; p < campaign.policies.size(); ++p) {
    const double g = normalized_geomean(campaign, metric_latency, p);
    const double paper = campaign.policies[p] == PolicyKind::kStaticArqEcc ? 0.70
                         : campaign.policies[p] == PolicyKind::kRl         ? 0.45
                                                                           : 0.50;
    std::string label = std::string("Fig8 ") + policy_name(campaign.policies[p]) +
                        " latency (norm. to CRC)";
    print_paper_vs_measured(label.c_str(), paper, g);
  }
  return 0;
}
