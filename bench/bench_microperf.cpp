// Micro-performance benchmarks (google-benchmark): the hot inner kernels of
// the simulator. Useful when hacking on the router datapath — a regression
// here multiplies directly into campaign wall-time.
#include <benchmark/benchmark.h>

#include "coding/crc.h"
#include "coding/secded.h"
#include "common/rng.h"
#include "fault/injector.h"
#include "noc/network.h"
#include "noc/ni.h"
#include "rl/agent.h"
#include "traffic/traffic.h"

namespace rlftnoc {
namespace {

void BM_Crc32Flit(benchmark::State& state) {
  Rng rng(1);
  const BitVec128 payload(rng.next_u64(), rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(default_crc32().compute(payload));
  }
}
BENCHMARK(BM_Crc32Flit);

void BM_SecdedEncodeFlit(benchmark::State& state) {
  Rng rng(2);
  const BitVec128 payload(rng.next_u64(), rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_flit_ecc(default_secded(), payload));
  }
}
BENCHMARK(BM_SecdedEncodeFlit);

void BM_SecdedDecodeCorrupted(benchmark::State& state) {
  Rng rng(3);
  const BitVec128 payload(rng.next_u64(), rng.next_u64());
  const FlitEcc ecc = encode_flit_ecc(default_secded(), payload);
  BitVec128 bad = payload;
  bad.flip_bit(37);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_flit_ecc(default_secded(), bad, ecc));
  }
}
BENCHMARK(BM_SecdedDecodeCorrupted);

void BM_FaultInjection(benchmark::State& state) {
  VariusModel model;
  LinkFaultInjector inj(&model, 4, "bench");
  BitVec128 payload(1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(inj.inject(payload, nullptr, 0.01));
  }
}
BENCHMARK(BM_FaultInjection);

void BM_QLearningStep(benchmark::State& state) {
  QLearningAgent agent(QLearningParams{}, 5, "bench");
  Rng rng(6);
  DiscreteState s{0, 1, 2, 1, 0, 1, 0, 3};
  DiscreteState s2 = s;
  for (auto _ : state) {
    s[0] = static_cast<std::uint8_t>(rng.next_below(5));
    s2[1] = static_cast<std::uint8_t>(rng.next_below(5));
    const int a = agent.select_action(s);
    agent.update(s, a, 0.5, s2);
  }
}
BENCHMARK(BM_QLearningStep);

void BM_NetworkCyclePerLoad(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  NocConfig cfg;
  Network net(cfg, 1);
  SyntheticTraffic::Options o;
  o.injection_rate = rate;
  o.total_packets = 0;
  SyntheticTraffic gen(MeshTopology(cfg), o, 7);
  std::vector<Packet> batch;
  for (auto _ : state) {
    batch.clear();
    gen.tick(net.now(), batch);
    for (auto& p : batch) net.ni(p.src).enqueue_packet(std::move(p));
    net.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkCyclePerLoad)->Arg(2)->Arg(8)->Arg(15);

void BM_NetworkCycleWithFaultsAndEcc(benchmark::State& state) {
  NocConfig cfg;
  Network net(cfg, 1);
  for (NodeId r = 0; r < cfg.num_nodes(); ++r) {
    net.router(r).set_mode(OpMode::kMode1);
    for (const Port pt : kAllPorts) {
      if (pt != Port::kLocal && net.out_channel(r, pt) != nullptr)
        net.set_link_error_prob(r, pt, LinkErrorProb{0.01, 1e-12});
    }
  }
  SyntheticTraffic::Options o;
  o.injection_rate = 0.08;
  o.total_packets = 0;
  SyntheticTraffic gen(MeshTopology(cfg), o, 8);
  std::vector<Packet> batch;
  for (auto _ : state) {
    batch.clear();
    gen.tick(net.now(), batch);
    for (auto& p : batch) net.ni(p.src).enqueue_packet(std::move(p));
    net.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkCycleWithFaultsAndEcc);

}  // namespace
}  // namespace rlftnoc

BENCHMARK_MAIN();
