// E7 / Section VI-B — overhead analysis.
//
// Reproduces the three overhead claims with this build's actual data:
//  * computation: wall-clock of one RL control step (Q lookup + TD update),
//    converted to ns; the paper reports 150 ns worst-case, hidden by the
//    1K-cycle step.
//  * area: an analytic 32 nm gate/SRAM model of the additions (output flit
//    buffers, ALU, Q-table SRAM) against the paper's 2360 um^2 = 5.5% /
//    4.8% / 4.5% vs CRC / ARQ+ECC / DT routers.
//  * energy: the RL control energy amortized per transmitted flit against
//    the paper's 0.16 pJ = 1.2% of a 13.3 pJ baseline flit.
#include <chrono>
#include <cstdio>

#include "ftnoc/rl_policy.h"
#include "power/orion_lite.h"
#include "sim/simulator.h"
#include "traffic/traffic.h"

using namespace rlftnoc;

namespace {

/// 32 nm analytic area model. Numbers are standard-cell estimates:
/// a NAND2-equivalent gate ~0.60 um^2, an SRAM bit ~0.17 um^2 at 32 nm.
struct AreaModel {
  double gate_um2 = 0.60;
  double sram_bit_um2 = 0.17;

  double buffer_area(int entries, int bits_per_entry) const {
    return entries * bits_per_entry * sram_bit_um2;
  }
  double gates(int n) const { return n * gate_um2; }
};

}  // namespace

int main() {
  std::printf("== Section VI-B: overhead analysis ==\n\n");

  // ---- computation overhead -------------------------------------------
  {
    QLearningParams params;
    RlPolicy rl(64, params, 1);
    FeatureSnapshot snap;
    snap.temperature_c = 85.0;
    snap.in_link_util = {0.1, 0.1, 0.05, 0.2, 0.02};
    snap.out_link_util = {0.1, 0.1, 0.05, 0.2, 0.02};
    // Warm the table, then time steady-state decide() calls.
    for (int i = 0; i < 1000; ++i) rl.decide(i % 64, snap, 0.5);
    constexpr int kIters = 200000;
    const auto t0 = std::chrono::steady_clock::now();  // rlftnoc-lint: allow(R2) wall-clock is the bench metric, never a sim input
    for (int i = 0; i < kIters; ++i) {
      snap.temperature_c = 60.0 + (i % 40);
      rl.decide(i % 64, snap, 0.5);
    }
    const auto t1 = std::chrono::steady_clock::now();  // rlftnoc-lint: allow(R2) wall-clock is the bench metric, never a sim input
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / kIters;
    std::printf("computation: one RL control step (lookup+update+select)\n");
    std::printf("  paper: 150 ns worst-case, hidden by the 1000-cycle step\n");
    std::printf("  here : %.0f ns on this host (step budget at 2 GHz = 500 ns)\n",
                ns);
    std::printf("  hidden by time-step: %s\n\n", ns < 500.0 ? "yes" : "NO");
  }

  // ---- area overhead ----------------------------------------------------
  {
    const AreaModel area;
    const NocConfig noc;
    // Baseline CRC router: input VC buffers + crossbar + allocators + CRC,
    // times a 2.2x placed-and-routed factor (clock tree, control, wiring)
    // that raw gate counts omit; this lands at the ~0.04 mm^2 published
    // for 32 nm 5-port 128-bit routers.
    constexpr double kLayoutFactor = 2.2;
    const double input_buffers =
        area.buffer_area(5 * noc.vcs_per_port * noc.vc_depth, 128);
    const double crossbar_alloc = area.gates(28000);
    const double crc_logic = area.gates(800);
    const double crc_router =
        kLayoutFactor * (input_buffers + crossbar_alloc + crc_logic);

    // ARQ+ECC adds SECDED codecs per port + retention in VCs (reuse).
    const double ecc_codecs = kLayoutFactor * area.gates(4 * 2 * 450);
    const double arq_router = crc_router + ecc_codecs;

    // Proposed additions: per-port output flit buffers, Q-value ALU, and
    // Q-table SRAM (visited-rows working set, 4 x 32-bit Q + visit counts
    // per row). SRAM macros are dense, so no layout factor.
    const double output_buffers =
        area.buffer_area(4 * noc.retention_depth, 128 + 16);
    const double alu = area.gates(900);
    const double qtable_rows = 64.0;  // typical visited-state working set
    const double qtable_sram = area.buffer_area(static_cast<int>(qtable_rows),
                                                4 * 32 + 3 * 8);
    const double additions = output_buffers + alu + qtable_sram;

    std::printf("area: additions of the proposed router (32 nm analytic)\n");
    std::printf("  output flit buffers: %7.0f um^2\n", output_buffers);
    std::printf("  Q-value ALU:         %7.0f um^2\n", alu);
    std::printf("  Q-table SRAM:        %7.0f um^2\n", qtable_sram);
    std::printf("  total additions:     %7.0f um^2 (paper: 2360 um^2)\n",
                additions);
    std::printf("  vs CRC router:     %5.1f%% (paper: 5.5%%)\n",
                100.0 * additions / (crc_router + additions));
    std::printf("  vs ARQ+ECC router: %5.1f%% (paper: 4.8%%)\n",
                100.0 * additions / (arq_router + additions));
    std::printf("  vs DT router:      %5.1f%% (paper: 4.5%%)\n\n",
                100.0 * additions / (arq_router + kLayoutFactor * area.gates(2500) + additions));
  }

  // ---- energy overhead ----------------------------------------------------
  {
    const PowerParams power;
    // RL control energy per step, amortized over the flits a router moves
    // per step at the campaign's average utilization (~0.06 flits/cyc/port
    // x 4 ports x 1000 cycles).
    const double rl_step_pj =
        power.energy_pj[static_cast<std::size_t>(PowerEvent::kRlStep)];
    const double flits_per_step = 0.06 * 4 * 1000;
    const double per_flit_overhead = rl_step_pj / flits_per_step;
    // Baseline per-flit router energy: Section VI-B implies 13.3 pJ
    // (0.16 pJ = 1.2%). Our per-hop cost times the ~2.1 average router
    // visits per flit in the campaign.
    const double hop_pj =
        power.energy_pj[static_cast<std::size_t>(PowerEvent::kBufferWrite)] +
        power.energy_pj[static_cast<std::size_t>(PowerEvent::kBufferRead)] +
        power.energy_pj[static_cast<std::size_t>(PowerEvent::kArbitration)] +
        power.energy_pj[static_cast<std::size_t>(PowerEvent::kCrossbar)] +
        power.energy_pj[static_cast<std::size_t>(PowerEvent::kLinkTraversal)];
    const double baseline_flit_pj = hop_pj * 2.1;
    std::printf("energy: RL control logic per transmitted flit\n");
    std::printf("  paper: 0.16 pJ on a 13.3 pJ baseline flit = 1.2%%\n");
    std::printf("  here : %.2f pJ on a %.1f pJ baseline flit = %.1f%%\n",
                per_flit_overhead, baseline_flit_pj,
                100.0 * per_flit_overhead / baseline_flit_pj);
  }
  return 0;
}
