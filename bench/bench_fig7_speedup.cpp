// E2 / Fig. 7 — "Speed-up of execution time, normalized to CRC baseline".
// Execution time is the cycles from the start of the testing phase to the
// last successful delivery of the benchmark's packet budget. The paper
// reports an average 1.25x speed-up for RL over CRC.
//
// Known reproduction caveat (EXPERIMENTS.md): our traces are replayed
// open-loop, so arrival times are fixed and execution-time differences come
// only from queueing/drain tails — this compresses speed-ups relative to
// the paper's trace framework.
#include <cstdio>
#include <iostream>

#include "bench_common.h"

using namespace rlftnoc;
using namespace rlftnoc::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const CampaignResults campaign = load_or_run_campaign(args);

  std::printf("== Fig. 7: execution-time speed-up over CRC ==\n");
  std::printf("%-14s", "benchmark");
  for (const PolicyKind p : campaign.policies) std::printf("%10s", policy_name(p));
  std::printf("\n");
  for (std::size_t b = 0; b < campaign.benchmarks.size(); ++b) {
    const double base = static_cast<double>(campaign.at(b, 0).execution_cycles);
    std::printf("%-14s", campaign.benchmarks[b].c_str());
    for (std::size_t p = 0; p < campaign.policies.size(); ++p) {
      const double cyc = static_cast<double>(campaign.at(b, p).execution_cycles);
      std::printf("%10.3f", cyc > 0.0 ? base / cyc : 0.0);
    }
    std::printf("\n");
  }

  for (std::size_t p = 1; p < campaign.policies.size(); ++p) {
    // Speed-up = 1 / normalized execution time.
    const double g =
        1.0 / normalized_geomean(campaign, metric_exec_speedup_inverse, p);
    const double paper = campaign.policies[p] == PolicyKind::kRl ? 1.25 : 1.15;
    std::string label = std::string("Fig7 ") + policy_name(campaign.policies[p]) +
                        " speed-up vs CRC";
    print_paper_vs_measured(label.c_str(), paper, g);
  }
  return 0;
}
