// E10 — classic NoC load-latency curves: average latency vs offered load
// for the synthetic patterns, per operation mode, fault-free and faulty.
// A sanity check that the substrate behaves like a real mesh (flat latency
// until the knee, then divergence; mode 3's knee at ~1/3 the load).
#include <cstdio>
#include <vector>

#include "noc/network.h"
#include "noc/ni.h"
#include "traffic/traffic.h"

using namespace rlftnoc;

namespace {

double run_point(TrafficPattern pattern, double rate, OpMode mode, double p_err) {
  NocConfig cfg;
  Network net(cfg, 1);
  for (NodeId r = 0; r < cfg.num_nodes(); ++r) {
    net.router(r).set_mode(mode);
    for (const Port pt : kAllPorts) {
      if (pt != Port::kLocal && net.out_channel(r, pt) != nullptr)
        net.set_link_error_prob(r, pt, LinkErrorProb{p_err, 1e-12});
    }
  }
  SyntheticTraffic::Options o;
  o.pattern = pattern;
  o.injection_rate = rate;
  o.total_packets = 0;  // open loop; measure over a fixed window
  SyntheticTraffic gen(MeshTopology(cfg), o, 3);
  std::vector<Packet> batch;
  constexpr Cycle kWarm = 5000;
  constexpr Cycle kMeasure = 25000;
  for (Cycle t = 0; t < kWarm + kMeasure; ++t) {
    if (t == kWarm) net.metrics().reset();
    batch.clear();
    gen.tick(net.now(), batch);
    for (auto& pk : batch) net.ni(pk.src).enqueue_packet(std::move(pk));
    net.step();
  }
  return net.metrics().packet_latency.count() ? net.metrics().packet_latency.mean()
                                              : -1.0;
}

}  // namespace

int main() {
  const std::vector<double> loads = {0.02, 0.05, 0.10, 0.15, 0.20, 0.28};

  std::printf("== E10: load-latency curves (8x8 mesh, fault-free) ==\n");
  for (const TrafficPattern pat :
       {TrafficPattern::kUniform, TrafficPattern::kTranspose,
        TrafficPattern::kHotspot}) {
    std::printf("%-14s", traffic_pattern_name(pat));
    for (const double load : loads) {
      const double lat = run_point(pat, load, OpMode::kMode0, 0.0);
      if (lat < 0.0) {
        std::printf("%10s", "sat");
      } else {
        std::printf("%10.1f", lat);
      }
    }
    std::printf("   (load: 0.02..0.28 flits/node/cyc)\n");
  }

  std::printf("\nuniform traffic per mode (p_err = 0.01):\n");
  for (int m = 0; m < 4; ++m) {
    std::printf("mode%-10d", m);
    for (const double load : loads) {
      const double lat = run_point(TrafficPattern::kUniform, load,
                                   static_cast<OpMode>(m), 0.01);
      if (lat < 0.0 || lat > 2000.0) {
        std::printf("%10s", "sat");
      } else {
        std::printf("%10.1f", lat);
      }
    }
    std::printf("\n");
  }
  std::printf("\nexpected shape: flat latency until the knee; mode 3 saturates"
              " at roughly 1/3 the mode-0/1 load.\n");
  return 0;
}
