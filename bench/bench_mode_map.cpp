// Spatial mode-residency map: runs one benchmark under the RL (or DT)
// policy and prints, per router tile, the dominant operation mode and the
// steady-state temperature — the spatial intuition behind the paper's
// adaptive scheme (hot memory-controller neighbourhoods escalate, the cool
// rim stays at mode 0).
//
//   bench_mode_map [benchmark] [rl|dt|oracle]
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "traffic/parsec.h"

using namespace rlftnoc;

int main(int argc, char** argv) {
  const std::string bench = argc > 1 ? argv[1] : "canneal";
  const std::string pol = argc > 2 ? argv[2] : "rl";
  SimOptions opt;
  opt.policy = pol == "dt"       ? PolicyKind::kDecisionTree
               : pol == "oracle" ? PolicyKind::kOracle
                                 : PolicyKind::kRl;
  opt.seed = 11;

  Simulator sim(opt);
  ParsecProfile prof = parsec_profile(bench);
  ParsecTraffic gen(MeshTopology(opt.noc), prof, opt.seed);

  // Count per-router mode residency across the measurement phase by
  // sampling the controller after the run via a piggy-backed counter: we
  // re-run the control loop manually here for full access.
  const int n = opt.noc.num_nodes();
  std::vector<std::array<std::uint64_t, kNumOpModes>> residency(
      static_cast<std::size_t>(n));

  // Drive the phases by hand (same protocol as Simulator::run, but sampling
  // modes every control step of the measurement phase).
  sim.controller().begin_phase(SimPhase::kPretrain);
  {
    PretrainTraffic pre(sim.network().topology(), opt.seed);
    std::vector<Packet> batch;
    for (Cycle t = 0; t < opt.pretrain_cycles; ++t) {
      batch.clear();
      pre.tick(sim.network().now(), batch);
      for (auto& p : batch) sim.network().ni(p.src).enqueue_packet(std::move(p));
      sim.network().step();
      sim.controller().on_cycle();
    }
  }
  sim.controller().begin_phase(SimPhase::kMeasure);
  std::vector<Packet> batch;
  std::uint64_t last_steps = sim.controller().steps();
  while ((!gen.exhausted() || !sim.network().drained()) &&
         sim.network().now() < 3'000'000) {
    batch.clear();
    gen.tick(sim.network().now(), batch);
    for (auto& p : batch) sim.network().ni(p.src).enqueue_packet(std::move(p));
    sim.network().step();
    sim.controller().on_cycle();
    if (sim.controller().steps() != last_steps) {
      last_steps = sim.controller().steps();
      for (NodeId r = 0; r < n; ++r)
        ++residency[static_cast<std::size_t>(r)]
                   [static_cast<std::size_t>(sim.controller().current_mode(r))];
    }
  }

  std::printf("== spatial mode residency: %s under %s ==\n", bench.c_str(),
              policy_name(opt.policy));
  std::printf("(per tile: dominant mode and mean temperature; MCs sit one "
              "tile in from each corner)\n\n");
  const int w = opt.noc.mesh_width;
  const int h = opt.noc.mesh_height;
  for (int y = h - 1; y >= 0; --y) {
    for (int x = 0; x < w; ++x) {
      const auto r = static_cast<std::size_t>(y * w + x);
      std::size_t best = 0;
      for (std::size_t m = 1; m < kNumOpModes; ++m) {
        if (residency[r][m] > residency[r][best]) best = m;
      }
      std::printf(" m%zu/%3.0fC", best,
                  sim.controller().thermal().temperature(static_cast<NodeId>(r)));
    }
    std::printf("\n");
  }

  std::printf("\nmode residency totals:");
  std::array<std::uint64_t, kNumOpModes> total{};
  std::uint64_t all = 0;
  for (const auto& r : residency) {
    for (std::size_t m = 0; m < kNumOpModes; ++m) {
      total[m] += r[m];
      all += r[m];
    }
  }
  for (std::size_t m = 0; m < kNumOpModes; ++m)
    std::printf("  mode%zu %.1f%%", m,
                all ? 100.0 * static_cast<double>(total[m]) / static_cast<double>(all)
                    : 0.0);
  std::printf("\n");
  return 0;
}
