// E4 / Fig. 9 — "Energy efficiency (flits/energy), normalized to CRC
// baseline". Higher is better. The paper reports RL at 1.64x the CRC
// baseline (64% improvement) and ~15% above DT.
#include <cstdio>
#include <iostream>

#include "bench_common.h"

using namespace rlftnoc;
using namespace rlftnoc::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const CampaignResults campaign = load_or_run_campaign(args);

  std::printf("== Fig. 9: energy efficiency (delivered flits per energy) ==\n");
  print_normalized_table(std::cout, campaign, "energy efficiency",
                         metric_energy_efficiency, /*higher_is_better=*/true);

  std::printf("\nabsolute efficiency (flits/nJ) and energy split (uJ):\n%-14s",
              "benchmark");
  for (const PolicyKind p : campaign.policies) std::printf("%18s", policy_name(p));
  std::printf("\n");
  for (std::size_t b = 0; b < campaign.benchmarks.size(); ++b) {
    std::printf("%-14s", campaign.benchmarks[b].c_str());
    for (std::size_t p = 0; p < campaign.policies.size(); ++p) {
      const SimResult& r = campaign.at(b, p);
      std::printf("  %5.2f (%4.1f+%4.1f)", r.energy_efficiency,
                  r.dynamic_energy_pj * 1e-6, r.leakage_energy_pj * 1e-6);
    }
    std::printf("\n");
  }
  std::printf("\n");

  for (std::size_t p = 1; p < campaign.policies.size(); ++p) {
    const double g = normalized_geomean(campaign, metric_energy_efficiency, p);
    const double paper = campaign.policies[p] == PolicyKind::kStaticArqEcc ? 1.25
                         : campaign.policies[p] == PolicyKind::kRl         ? 1.64
                                                                           : 1.49;
    std::string label = std::string("Fig9 ") + policy_name(campaign.policies[p]) +
                        " efficiency (norm. to CRC)";
    print_paper_vs_measured(label.c_str(), paper, g);
  }
  return 0;
}
