// E8 — ablation of the four operation modes (the design choice behind
// Section III): every router forced into one mode, swept across link error
// probabilities, reporting latency / fault retransmissions / energy per
// flit. This regenerates the crossover table that calibrates the oracle /
// DT thresholds (ErrorLevelThresholds).
#include <cstdio>
#include <vector>

#include "noc/network.h"
#include "noc/ni.h"
#include "traffic/traffic.h"

using namespace rlftnoc;

namespace {

struct Cell {
  double latency;
  std::uint64_t fault_retx;
  std::uint64_t dups;
  double energy_per_flit_pj;
};

Cell run(OpMode mode, double p_error, double injection_rate) {
  NocConfig cfg;
  Network net(cfg, 1);
  for (NodeId r = 0; r < cfg.num_nodes(); ++r) {
    net.router(r).set_mode(mode);
    for (const Port pt : kAllPorts) {
      if (pt != Port::kLocal && net.out_channel(r, pt) != nullptr)
        net.set_link_error_prob(r, pt, LinkErrorProb{p_error, 1e-12});
    }
  }
  SyntheticTraffic::Options o;
  o.injection_rate = injection_rate;
  o.total_packets = 3000;
  SyntheticTraffic gen(MeshTopology(cfg), o, 7);
  std::vector<Packet> batch;
  // 600K-cycle guard: saturated cells (mode 0 at high p) report truncated
  // latencies, which is enough to show the collapse without a 10x runtime.
  while ((!gen.exhausted() || !net.drained()) && net.now() < 600'000) {
    batch.clear();
    gen.tick(net.now(), batch);
    for (auto& pk : batch) net.ni(pk.src).enqueue_packet(std::move(pk));
    net.step();
  }
  const NetworkMetrics& m = net.metrics();
  Cell cell;
  cell.latency = m.packet_latency.mean();
  cell.fault_retx = m.retx_flits_e2e + m.retx_flits_hop;
  cell.dups = m.dup_flits;
  cell.energy_per_flit_pj =
      m.flits_delivered
          ? net.power().total_dynamic_energy_pj() / static_cast<double>(m.flits_delivered)
          : 0.0;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const double rate = argc > 1 ? std::atof(argv[1]) : 0.06;
  std::printf("== E8: forced-mode sweep (8x8 mesh, uniform %.2f flits/node/cyc) ==\n",
              rate);
  std::printf("%-8s", "p_err");
  for (int m = 0; m < 4; ++m)
    std::printf("      mode%d lat/retx/E", m);
  std::printf("\n");
  const std::vector<double> probs = {0.001, 0.005, 0.012, 0.03,
                                     0.06,  0.12,  0.25,  0.35};
  std::vector<int> best_per_p;
  for (const double p : probs) {
    std::printf("%-8.3f", p);
    double best = 1e300;
    int best_mode = 0;
    for (int m = 0; m < 4; ++m) {
      const Cell c = run(static_cast<OpMode>(m), p, rate);
      // The controller's objective: latency x energy-per-flit.
      const double objective = c.latency * c.energy_per_flit_pj;
      if (objective < best) {
        best = objective;
        best_mode = m;
      }
      std::printf("  %7.1f/%6llu/%4.1f", c.latency,
                  static_cast<unsigned long long>(c.fault_retx),
                  c.energy_per_flit_pj);
    }
    best_per_p.push_back(best_mode);
    std::printf("   -> best: mode%d\n", best_mode);
  }

  std::printf("\noptimal mode escalates with error probability:");
  bool monotone = true;
  for (std::size_t i = 1; i < best_per_p.size(); ++i) {
    if (best_per_p[i] < best_per_p[i - 1]) monotone = false;
  }
  std::printf(" %s\n", monotone ? "yes" : "NO (see table)");
  return 0;
}
