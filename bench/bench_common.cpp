#include "bench_common.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>

#include "common/rng.h"

namespace rlftnoc::bench {

BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--fresh") {
      args.fresh = true;
    } else if (a == "--full") {
      args.full = true;
      args.scale_pct = 100;
    } else if (a.rfind("--scale=", 0) == 0) {
      args.scale_pct = std::strtoull(a.c_str() + 8, nullptr, 10);
    } else if (a.rfind("--seed=", 0) == 0) {
      args.seed = std::strtoull(a.c_str() + 7, nullptr, 10);
    } else if (a.rfind("--jobs=", 0) == 0) {
      args.jobs = static_cast<unsigned>(std::strtoul(a.c_str() + 7, nullptr, 10));
    } else if (a.rfind("--cache=", 0) == 0) {
      args.cache = a.substr(8);
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s' (supported: --fresh --full --scale=N "
                   "--seed=N --jobs=N --cache=PATH)\n",
                   a.c_str());
      std::exit(2);
    }
  }
  return args;
}

const std::vector<PolicyKind>& paper_policies() {
  static const std::vector<PolicyKind> kPolicies = {
      PolicyKind::kStaticCrc, PolicyKind::kStaticArqEcc,
      PolicyKind::kDecisionTree, PolicyKind::kRl};
  return kPolicies;
}

std::vector<std::string> paper_benchmarks() {
  std::vector<std::string> out;
  for (const ParsecProfile& p : parsec_suite()) out.push_back(p.name);
  return out;
}

std::uint64_t campaign_options_hash(const BenchArgs& args) {
  std::ostringstream os;
  os << "seed=" << args.seed << ";scale=" << args.scale_pct
     << ";full=" << (args.full ? 1 : 0) << ";benchmarks=";
  for (const std::string& b : paper_benchmarks()) os << b << ',';
  os << ";policies=";
  for (const PolicyKind p : paper_policies()) os << policy_name(p) << ',';
  return fnv1a64(os.str());
}

namespace {

std::string hash_comment(std::uint64_t hash) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "# campaign-options-hash %016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

/// The cache is reusable only if its recorded options hash matches.
bool cache_hash_matches(const std::string& path, std::uint64_t expected) {
  std::ifstream in(path);
  std::string first;
  if (!in || !std::getline(in, first)) return false;
  return first == hash_comment(expected);
}

}  // namespace

CampaignResults load_or_run_campaign(const BenchArgs& args) {
  const std::uint64_t hash = campaign_options_hash(args);
  if (!args.fresh && cache_hash_matches(args.cache, hash)) {
    try {
      CampaignResults cached = read_results_file(args.cache);
      std::fprintf(stderr, "[bench] reusing cached campaign '%s'\n",
                   args.cache.c_str());
      return cached;
    } catch (const std::exception&) {
      // Unreadable body; fall through to a fresh run.
    }
  }
  SimOptions base;
  base.seed = args.seed;
  base.jobs = args.jobs;
  if (args.full) base.use_paper_scale();
  std::fprintf(stderr,
               "[bench] running campaign: 8 benchmarks x %zu policies, "
               "budget %llu%%, jobs=%u (this is the slow part; later figure "
               "benches reuse '%s')\n",
               paper_policies().size(),
               static_cast<unsigned long long>(args.scale_pct), args.jobs,
               args.cache.c_str());
  CampaignResults res = run_campaign(base, paper_benchmarks(), paper_policies(),
                                     args.scale_pct);
  std::ofstream out(args.cache);
  if (out) {
    out << hash_comment(hash) << '\n';
    write_results(out, res);
  }
  return res;
}

double normalized_geomean(const CampaignResults& campaign, const MetricFn& metric,
                          std::size_t policy_column) {
  double log_sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t b = 0; b < campaign.benchmarks.size(); ++b) {
    const double base = metric(campaign.at(b, 0));
    const double val = metric(campaign.at(b, policy_column));
    if (base <= 0.0 || val <= 0.0) continue;
    log_sum += std::log(val / base);
    ++counted;
  }
  return counted ? std::exp(log_sum / static_cast<double>(counted)) : 0.0;
}

double metric_fault_retransmissions(const SimResult& r) {
  return static_cast<double>(r.retx_flits_e2e + r.retx_flits_hop);
}

void print_paper_vs_measured(const char* what, double paper_value,
                             double measured_value) {
  std::printf("paper-vs-measured  %-34s paper=%6.2f  measured=%6.2f\n", what,
              paper_value, measured_value);
}

}  // namespace rlftnoc::bench
