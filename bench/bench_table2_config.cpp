// E6 / Table II — simulation parameters. Prints the effective configuration
// of the default experiment next to the paper's values and fails (non-zero
// exit) if any headline parameter drifts from Table II.
#include <cstdio>
#include <string>

#include "sim/simulator.h"

using namespace rlftnoc;

namespace {

int g_failures = 0;

void row(const char* name, const std::string& paper, const std::string& ours,
         bool must_match = true) {
  const bool ok = !must_match || paper == ours;
  if (!ok) ++g_failures;
  std::printf("%-28s %-28s %-28s %s\n", name, paper.c_str(), ours.c_str(),
              ok ? "" : "<-- MISMATCH");
}

}  // namespace

int main() {
  const SimOptions opt;  // defaults = the campaign configuration

  std::printf("== Table II: simulation parameters ==\n");
  std::printf("%-28s %-28s %-28s\n", "parameter", "paper", "this build");
  std::printf("%.88s\n",
              "----------------------------------------------------------------"
              "------------------------------");

  row("# of cores", "64 out-of-order",
      std::to_string(opt.noc.num_nodes()) + " (traffic endpoints)", false);
  row("technology", "32 nm", "32 nm (ORION-lite coefficients)", false);
  row("voltage", "1.0 V", std::to_string(opt.controller.voltage).substr(0, 3) + " V");
  row("frequency", "2.0 GHz",
      std::to_string(opt.power.clock_hz / 1e9).substr(0, 3) + " GHz");
  row("topology", "8x8 2D mesh",
      std::to_string(opt.noc.mesh_width) + "x" + std::to_string(opt.noc.mesh_height) +
          " 2D mesh");
  row("routing", "X-Y", "X-Y (dimension ordered)", false);
  row("router pipeline", "4-stage", "RC/VA/SA+ST + link (see DESIGN.md)", false);
  row("VCs per port", "4", std::to_string(opt.noc.vcs_per_port));
  row("flit size", "128 bits",
      std::to_string(BitVec128::kBits) + " bits");
  row("packet size", "4 flits", std::to_string(opt.noc.flits_per_packet) + " flits");
  row("RL time-step", "1000 cycles",
      std::to_string(opt.controller.step_cycles) + " cycles");
  row("RL alpha", "0.1", std::to_string(opt.rl.alpha).substr(0, 3));
  row("RL epsilon", "0.1", std::to_string(opt.rl.epsilon).substr(0, 3));
  row("pre-training", "1M cycles",
      std::to_string(opt.pretrain_cycles) + " cycles (--full: 1M)", false);
  row("warm-up", "300K cycles",
      std::to_string(opt.warmup_cycles) + " cycles (--full: 300K)", false);
  row("temperature band", "50-100 C",
      "ambient " + std::to_string(static_cast<int>(opt.thermal.ambient_c)) +
          " C, throttle " + std::to_string(static_cast<int>(opt.thermal.max_temp_c)) +
          " C", false);

  if (g_failures != 0) {
    std::printf("\n%d headline parameter(s) drifted from Table II\n", g_failures);
    return 1;
  }
  std::printf("\nall checked parameters match Table II\n");
  return 0;
}
