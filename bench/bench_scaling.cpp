// Intra-run scaling benchmark for the phase-parallel network stepper.
//
// Runs a pinned uniform-traffic workload on a 16x16 and a 32x32 mesh for
// sim_threads in {1, 2, 4, 8} and reports simulated cycles per wall-clock
// second per cell, plus each cell's speedup over the serial run of the same
// mesh. Because the stepper's contract is bit-identical results for any
// thread count, every threaded run is also cross-checked against the serial
// one — a mismatch is a hard failure, so the perf numbers can never come
// from a run that silently diverged.
//
// The configuration is pinned (same spirit as bench_campaign): --out=PATH is
// the only knob, and the JSON (schema rlftnoc-bench-scaling-v1) records
// hardware_threads so consumers can judge whether a speedup gate is
// meaningful on the machine that produced it. tools/bench_summary.py
// --scaling applies that gate in CI.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sim/simulator.h"
#include "traffic/traffic.h"

namespace {

using namespace rlftnoc;

constexpr std::uint64_t kSeed = 17;
constexpr unsigned kThreadSweep[] = {1, 2, 4, 8};

struct MeshCase {
  int width;
  std::uint64_t packets;
};

// The 32x32 mesh steps 4x the nodes per cycle, so it gets a smaller packet
// budget to keep the full sweep in CI-smoke territory.
constexpr MeshCase kMeshes[] = {{16, 4000}, {32, 2000}};

struct Cell {
  int mesh = 0;
  unsigned sim_threads = 0;
  double wall_seconds = 0.0;
  std::uint64_t simulated_cycles = 0;
  double cycles_per_second = 0.0;
  double speedup_vs_serial = 0.0;
};

SimResult run_cell(const MeshCase& mc, unsigned sim_threads,
                   double& wall_seconds) {
  SimOptions opt;
  opt.seed = kSeed;
  opt.policy = PolicyKind::kStaticArqEcc;  // no RL updates: isolates stepping
  opt.sim_threads = sim_threads;
  opt.noc.mesh_width = mc.width;
  opt.noc.mesh_height = mc.width;
  opt.pretrain_cycles = 0;
  opt.warmup_cycles = 0;

  Simulator sim(opt);
  SyntheticTraffic::Options to;
  to.injection_rate = 0.06;
  to.total_packets = mc.packets;
  SyntheticTraffic gen(MeshTopology(opt.noc), to, opt.seed);

  const auto t0 = std::chrono::steady_clock::now();  // rlftnoc-lint: allow(R2) wall-clock is the bench metric, never a sim input
  const SimResult r = sim.run(gen);
  const auto t1 = std::chrono::steady_clock::now();  // rlftnoc-lint: allow(R2) wall-clock is the bench metric, never a sim input
  wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

/// The determinism contract, spot-checked from the bench itself: a cell
/// whose results differ from the serial run would make its timing numbers
/// meaningless, so treat any divergence as a benchmark failure.
bool results_match(const SimResult& a, const SimResult& b) {
  return a.total_cycles == b.total_cycles &&
         a.packets_delivered == b.packets_delivered &&
         a.flits_delivered == b.flits_delivered &&
         a.retransmitted_flits == b.retransmitted_flits &&
         std::memcmp(&a.avg_packet_latency, &b.avg_packet_latency,
                     sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_scaling.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--out=", 0) == 0) {
      out_path = a.substr(6);
    } else {
      std::fprintf(stderr, "unknown flag '%s' (supported: --out=PATH)\n",
                   a.c_str());
      return 2;
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::fprintf(stderr,
               "[bench_scaling] uniform traffic, seed %llu, "
               "hardware threads: %u\n",
               static_cast<unsigned long long>(kSeed), hw);

  std::vector<Cell> cells;
  bool identical = true;
  for (const MeshCase& mc : kMeshes) {
    SimResult serial;
    double serial_cps = 0.0;
    for (const unsigned t : kThreadSweep) {
      Cell c;
      c.mesh = mc.width;
      c.sim_threads = t;
      const SimResult r = run_cell(mc, t, c.wall_seconds);
      c.simulated_cycles = r.total_cycles;
      c.cycles_per_second =
          c.wall_seconds > 0.0
              ? static_cast<double>(r.total_cycles) / c.wall_seconds
              : 0.0;
      if (t == 1) {
        serial = r;
        serial_cps = c.cycles_per_second;
        c.speedup_vs_serial = 1.0;
      } else {
        c.speedup_vs_serial =
            serial_cps > 0.0 ? c.cycles_per_second / serial_cps : 0.0;
        if (!results_match(serial, r)) {
          identical = false;
          std::fprintf(stderr,
                       "[bench_scaling] DIVERGENCE: %dx%d sim_threads=%u "
                       "differs from serial\n",
                       mc.width, mc.width, t);
        }
      }
      std::printf("%2dx%-2d  sim_threads=%u  %9llu cycles  %7.3f s  "
                  "%10.0f cycles/s  speedup %.2fx\n",
                  c.mesh, c.mesh, c.sim_threads,
                  static_cast<unsigned long long>(c.simulated_cycles),
                  c.wall_seconds, c.cycles_per_second, c.speedup_vs_serial);
      cells.push_back(c);
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"schema\": \"rlftnoc-bench-scaling-v1\",\n"
      << "  \"seed\": " << kSeed << ",\n"
      << "  \"hardware_threads\": " << hw << ",\n"
      << "  \"results_identical\": " << (identical ? "true" : "false")
      << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\"mesh\": " << c.mesh
        << ", \"sim_threads\": " << c.sim_threads
        << ", \"wall_seconds\": " << c.wall_seconds
        << ", \"simulated_cycles\": " << c.simulated_cycles
        << ", \"cycles_per_second\": " << c.cycles_per_second
        << ", \"speedup_vs_serial\": " << c.speedup_vs_serial << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "[bench_scaling] wrote %s\n", out_path.c_str());
  return identical ? 0 : 1;
}
