// End-to-end campaign throughput benchmark.
//
// Runs the fixed-seed reference campaign (8 PARSEC-like benchmarks x the 4
// paper policies, 3% packet budgets, seed 11, serial) and reports simulated
// cycles per wall-clock second — the number the ROADMAP's "as fast as the
// hardware allows" goal is tracked against. Results go to stdout and to a
// small JSON file (BENCH_campaign.json by default) that CI archives and
// tools/bench_summary.py compares against the committed baseline.
//
// The configuration is pinned (not taken from bench_common flags) so every
// emitted JSON measures the same workload; --out=PATH is the only knob.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_common.h"
#include "sim/campaign.h"

namespace {

constexpr std::uint64_t kSeed = 11;
constexpr std::uint64_t kBudgetPct = 3;

}  // namespace

int main(int argc, char** argv) {
  using namespace rlftnoc;
  std::string out_path = "BENCH_campaign.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--out=", 0) == 0) {
      out_path = a.substr(6);
    } else {
      std::fprintf(stderr, "unknown flag '%s' (supported: --out=PATH)\n",
                   a.c_str());
      return 2;
    }
  }

  SimOptions base;
  base.seed = kSeed;
  base.jobs = 1;
  const std::vector<std::string> benchmarks = bench::paper_benchmarks();
  const std::vector<PolicyKind>& policies = bench::paper_policies();

  std::fprintf(stderr,
               "[bench_campaign] reference campaign: %zu benchmarks x %zu "
               "policies, budget %llu%%, seed %llu, serial\n",
               benchmarks.size(), policies.size(),
               static_cast<unsigned long long>(kBudgetPct),
               static_cast<unsigned long long>(kSeed));

  const auto t0 = std::chrono::steady_clock::now();  // rlftnoc-lint: allow(R2) wall-clock is the bench metric, never a sim input
  const CampaignResults res =
      run_campaign(base, benchmarks, policies, kBudgetPct);
  const auto t1 = std::chrono::steady_clock::now();  // rlftnoc-lint: allow(R2) wall-clock is the bench metric, never a sim input

  const double wall_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  std::uint64_t simulated_cycles = 0;
  for (const auto& row : res.results) {
    for (const SimResult& r : row) simulated_cycles += r.total_cycles;
  }
  const double cps =
      wall_seconds > 0.0 ? static_cast<double>(simulated_cycles) / wall_seconds
                         : 0.0;

  std::printf("campaign runs          : %zu\n",
              benchmarks.size() * policies.size());
  std::printf("wall seconds           : %.3f\n", wall_seconds);
  std::printf("simulated cycles       : %llu\n",
              static_cast<unsigned long long>(simulated_cycles));
  std::printf("simulated cycles / sec : %.0f\n", cps);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"schema\": \"rlftnoc-bench-campaign-v1\",\n"
      << "  \"seed\": " << kSeed << ",\n"
      << "  \"budget_pct\": " << kBudgetPct << ",\n"
      << "  \"runs\": " << benchmarks.size() * policies.size() << ",\n"
      << "  \"wall_seconds\": " << wall_seconds << ",\n"
      << "  \"simulated_cycles\": " << simulated_cycles << ",\n"
      << "  \"cycles_per_second\": " << cps << "\n"
      << "}\n";
  std::fprintf(stderr, "[bench_campaign] wrote %s\n", out_path.c_str());
  return 0;
}
