// HotSpot-lite: compact RC thermal grid (Huang et al., IEEE TVLSI 2006).
//
// The paper runs HotSpot at simulation time to convert per-router power into
// a local temperature that feeds the VARIUS timing-error model and RL state
// feature 6. We reproduce the part of HotSpot the paper exercises: a
// lumped-RC network with one node per tile, a vertical resistance to the
// ambient (package + heat sink) and lateral resistances between mesh
// neighbours, integrated with forward Euler at a fixed step.
//
// Calibration: ambient 45 C, R_amb 50 K/W -> a 0.1 W idle router settles
// near 50 C and a ~1.1 W saturated router near 100 C, matching the paper's
// observed 50-100 C operating band.
#pragma once

#include <cstdint>
#include <vector>

namespace rlftnoc {

/// Coefficients of the RC grid.
struct ThermalParams {
  double ambient_c = 48.0;     ///< ambient / heat-sink temperature (C)
  double r_ambient = 50.0;     ///< vertical resistance tile->ambient (K/W)
  double r_lateral = 45.0;     ///< resistance between adjacent tiles (K/W)
  double capacitance = 2.5e-7; ///< tile thermal capacitance (J/K)
  double dt = 5.0e-7;          ///< integration step (s); 1000 cycles @ 2 GHz
  int substeps = 4;            ///< Euler substeps per step() for stability
  /// Thermal-throttle ceiling: tiles are clamped here, modelling the DVFS
  /// emergency throttle every real chip engages before silicon damage.
  double max_temp_c = 112.0;
};

/// One-node-per-tile thermal RC model over a W x H mesh.
class ThermalGrid {
 public:
  ThermalGrid(int width, int height, ThermalParams params = {});

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  int tiles() const noexcept { return width_ * height_; }

  /// Sets the power (W) dissipated in tile `node` until the next step.
  void set_power(int node, double watts);

  /// Advances the grid by one `params.dt` interval.
  void step();

  /// Runs steps until the max per-step temperature change drops below
  /// `tol_c`, or `max_steps` elapse. Returns steps taken. Used by tests and
  /// by the warm-up phase to reach a thermal steady state quickly.
  int settle(double tol_c = 1e-4, int max_steps = 200000);

  /// Current temperature (C) of tile `node`.
  double temperature(int node) const;

  /// Hottest tile temperature.
  double max_temperature() const noexcept;

  /// Resets all tiles to ambient.
  void reset();

  const ThermalParams& params() const noexcept { return params_; }

 private:
  int index(int x, int y) const noexcept { return y * width_ + x; }

  int width_;
  int height_;
  ThermalParams params_;
  std::vector<double> temp_c_;
  std::vector<double> power_w_;
  std::vector<double> delta_;  // scratch for one substep
};

}  // namespace rlftnoc
