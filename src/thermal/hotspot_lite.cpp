#include "thermal/hotspot_lite.h"

#include "common/check.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlftnoc {

ThermalGrid::ThermalGrid(int width, int height, ThermalParams params)
    : width_(width), height_(height), params_(params) {
  if (width <= 0 || height <= 0) throw std::invalid_argument("ThermalGrid: empty grid");
  if (params_.r_ambient <= 0 || params_.r_lateral <= 0 || params_.capacitance <= 0 ||
      params_.dt <= 0 || params_.substeps <= 0)
    throw std::invalid_argument("ThermalGrid: non-positive parameter");
  temp_c_.assign(static_cast<std::size_t>(tiles()), params_.ambient_c);
  power_w_.assign(static_cast<std::size_t>(tiles()), 0.0);
  delta_.assign(static_cast<std::size_t>(tiles()), 0.0);
}

void ThermalGrid::set_power(int node, double watts) {
  const auto i = static_cast<std::size_t>(node);
  RLFTNOC_CHECK(i < power_w_.size(),
                "ThermalGrid::set_power: node %d out of range", node);
  power_w_[i] = std::max(watts, 0.0);
}

void ThermalGrid::step() {
  const double h = params_.dt / params_.substeps;
  for (int s = 0; s < params_.substeps; ++s) {
    for (int y = 0; y < height_; ++y) {
      for (int x = 0; x < width_; ++x) {
        const int i = index(x, y);
        double heat_w = power_w_[static_cast<std::size_t>(i)];
        heat_w -= (temp_c_[static_cast<std::size_t>(i)] - params_.ambient_c) / params_.r_ambient;
        const auto lateral = [&](int j) {
          heat_w -= (temp_c_[static_cast<std::size_t>(i)] - temp_c_[static_cast<std::size_t>(j)]) /
                    params_.r_lateral;
        };
        if (x > 0) lateral(index(x - 1, y));
        if (x + 1 < width_) lateral(index(x + 1, y));
        if (y > 0) lateral(index(x, y - 1));
        if (y + 1 < height_) lateral(index(x, y + 1));
        delta_[static_cast<std::size_t>(i)] = h * heat_w / params_.capacitance;
      }
    }
    for (std::size_t i = 0; i < temp_c_.size(); ++i) {
      temp_c_[i] = std::clamp(temp_c_[i] + delta_[i], params_.ambient_c,
                              params_.max_temp_c);
    }
  }
}

int ThermalGrid::settle(double tol_c, int max_steps) {
  for (int n = 1; n <= max_steps; ++n) {
    const std::vector<double> before = temp_c_;
    step();
    double max_change = 0.0;
    for (std::size_t i = 0; i < temp_c_.size(); ++i)
      max_change = std::max(max_change, std::fabs(temp_c_[i] - before[i]));
    if (max_change < tol_c) return n;
  }
  return max_steps;
}

double ThermalGrid::temperature(int node) const {
  const auto i = static_cast<std::size_t>(node);
  RLFTNOC_CHECK(i < temp_c_.size(),
                "ThermalGrid::temperature: node %d out of range", node);
  return temp_c_[i];
}

double ThermalGrid::max_temperature() const noexcept {
  return *std::max_element(temp_c_.begin(), temp_c_.end());
}

void ThermalGrid::reset() {
  std::fill(temp_c_.begin(), temp_c_.end(), params_.ambient_c);
  std::fill(power_w_.begin(), power_w_.end(), 0.0);
}

}  // namespace rlftnoc
