#include "ftnoc/controller.h"

#include <algorithm>
#include <cmath>

namespace rlftnoc {
namespace {

/// The thermal step must span exactly one control interval.
ThermalParams with_dt(ThermalParams t, double dt_s) {
  t.dt = dt_s;
  return t;
}

}  // namespace

FtController::FtController(Network* net, ControlPolicy* policy, ControllerOptions opt,
                           ThermalParams thermal, double error_scale)
    : net_(net),
      policy_(policy),
      opt_(opt),
      thermal_(net->topology().width(), net->topology().height(),
               with_dt(thermal, static_cast<double>(opt.step_cycles) /
                                    net->power().params().clock_hz)),
      error_scale_(error_scale) {
  const int n = net_->config().num_nodes();
  prev_router_.resize(static_cast<std::size_t>(n));
  prev_ni_.resize(static_cast<std::size_t>(n));
  features_.resize(static_cast<std::size_t>(n));
  smoothed_.resize(static_cast<std::size_t>(n));
  rewards_.assign(static_cast<std::size_t>(n), 0.0);
  last_latency_.assign(static_cast<std::size_t>(n), opt_.idle_latency_cycles);
  last_energy_per_flit_.assign(static_cast<std::size_t>(n), 8.0);
  control_step();  // initialize temperatures, probabilities and modes
}

void FtController::begin_phase(SimPhase phase) { policy_->begin_phase(phase); }

OpMode FtController::current_mode(NodeId r) const { return net_->router(r).mode(); }

void FtController::on_cycle() {
  if (net_->now() - last_step_cycle_ >= opt_.step_cycles) control_step();
}

void FtController::refresh_link_probabilities(NodeId r, const FeatureSnapshot& snap) {
  const VariusModel& varius = net_->varius();
  double max_p = 0.0;
  for (const Port p : kAllPorts) {
    if (p == Port::kLocal) continue;
    if (net_->out_channel(r, p) == nullptr) continue;
    LinkErrorProb prob;
    if (opt_.faults_enabled) {
      const double util = snap.out_link_util[port_index(p)];
      prob.normal = std::min(
          1.0, error_scale_ * varius.flit_error_probability(snap.temperature_c, util,
                                                            opt_.voltage, 1.0));
      prob.relaxed = std::min(
          1.0, error_scale_ * varius.flit_error_probability(snap.temperature_c, util,
                                                            opt_.voltage, 2.0));
    }
    net_->set_link_error_prob(r, p, prob);
    max_p = std::max(max_p, prob.normal);
  }
  features_[static_cast<std::size_t>(r)].true_error_prob = max_p;
}

void FtController::control_step() {
  const int n = net_->config().num_nodes();
  const Cycle window = std::max<Cycle>(net_->now() - last_step_cycle_, 1);
  const double window_d = static_cast<double>(window);
  PowerModel& power = net_->power();

  // Pass 1: per-tile accounting -> thermal input (uses last step's temps
  // for the leakage term, like HotSpot's staggered power/thermal loop).
  std::vector<double> router_watts(static_cast<std::size_t>(n), 0.0);
  for (NodeId r = 0; r < n; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    const double temp_prev = thermal_.temperature(r);
    power.integrate_leakage(r, temp_prev, window);
    const double dyn_w = power.window_dynamic_power_w(r, window);
    const double leak_w = power.leakage_watts(temp_prev);
    router_watts[ri] = dyn_w + leak_w;

    // Core heat tracks the application's own traffic; end-to-end
    // retransmissions are NoC overhead, not core work, and counting them
    // would close a destructive errors -> heat -> errors feedback loop.
    const NiCounters& ni = net_->ni(r).counters();
    const NiCounters& ni0 = prev_ni_[ri];
    const double local_traffic =
        static_cast<double>((ni.flits_sent_fresh - ni0.flits_sent_fresh) +
                            (ni.flits_ejected - ni0.flits_ejected)) /
        window_d;
    const double tile_w = opt_.core_base_w + opt_.core_per_flit_w * local_traffic +
                          opt_.router_power_scale * router_watts[ri];
    thermal_.set_power(r, tile_w);
  }
  thermal_.step();

  // Pass 2: features, rewards, link error refresh, policy decision.
  for (NodeId r = 0; r < n; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    Router& router = net_->router(r);
    const RouterCounters& rc = router.counters();
    const RouterCounters& rc0 = prev_router_[ri];

    FeatureSnapshot snap;
    const int total_vcs = static_cast<int>(kNumPorts) * net_->config().vcs_per_port;
    snap.buffer_util =
        static_cast<double>(router.occupied_input_vcs()) / total_vcs;
    for (std::size_t p = 0; p < kNumPorts; ++p) {
      const double fin = static_cast<double>(rc.flits_in[p] - rc0.flits_in[p]);
      const double fout = static_cast<double>(rc.flits_out[p] - rc0.flits_out[p]);
      snap.in_link_util[p] = fin / window_d;
      snap.out_link_util[p] = fout / window_d;
      const double nacks_rx =
          static_cast<double>(rc.nacks_received[p] - rc0.nacks_received[p]);
      const double nacks_tx =
          static_cast<double>(rc.nacks_sent[p] - rc0.nacks_sent[p]);
      snap.in_nack_rate[p] = fout > 0.0 ? nacks_rx / fout : 0.0;
      snap.out_nack_rate[p] = (fin + nacks_tx) > 0.0 ? nacks_tx / (fin + nacks_tx) : 0.0;
    }
    snap.temperature_c = thermal_.temperature(r);
    const Topology& topo = net_->topology();
    for (const Port p : kAllPorts) {
      if (p == Port::kLocal) continue;
      // Dead = the wire structurally exists but was hard-faulted away.
      snap.out_link_dead[port_index(p)] =
          topo.neighbor(r, p) != kInvalidNode && !topo.link_alive(r, p) ? 1.0
                                                                        : 0.0;
    }

    // Exponential smoothing so the discretized state is stable enough for
    // the tabular learners (temperature is already slow; smooth the rest).
    FeatureSnapshot& ema = smoothed_[ri];
    const double a = opt_.feature_ema_alpha;
    const auto blend = [a](double prev, double cur) {
      return (1.0 - a) * prev + a * cur;
    };
    if (steps_ == 0) {
      ema = snap;
    } else {
      ema.buffer_util = blend(ema.buffer_util, snap.buffer_util);
      for (std::size_t p = 0; p < kNumPorts; ++p) {
        ema.in_link_util[p] = blend(ema.in_link_util[p], snap.in_link_util[p]);
        ema.out_link_util[p] = blend(ema.out_link_util[p], snap.out_link_util[p]);
        ema.in_nack_rate[p] = blend(ema.in_nack_rate[p], snap.in_nack_rate[p]);
        ema.out_nack_rate[p] = blend(ema.out_nack_rate[p], snap.out_nack_rate[p]);
      }
      ema.temperature_c = snap.temperature_c;
      ema.out_link_dead = snap.out_link_dead;  // binary state, never smoothed
    }
    features_[ri] = ema;

    refresh_link_probabilities(r, features_[ri]);

    // Reward of Eq. (3): 1 / (E2E latency x power), with two re-scalings
    // that keep the paper's objective but make the signal learnable here
    // (both documented in DESIGN.md):
    //  * latency is credited per hop (path-length mix otherwise dominates
    //    the variance), and
    //  * power is expressed as dynamic energy per flit accepted by this
    //    router. Absolute power rewards starvation — a router that stalls
    //    its own traffic (mode 3) or burns duplicates that are discarded
    //    before acceptance (mode 2) would otherwise look "low power" or
    //    "idle"; per-accepted-flit energy charges those modes honestly.
    //    Temperature-driven leakage is omitted: the action cannot change
    //    it, so it only masks the signal (Fig. 9 still uses total energy).
    StatAccumulator& lat = net_->router_latency_window(r);
    const double latency =
        lat.count() > 0 ? lat.mean() : last_latency_[ri];
    last_latency_[ri] = latency;
    lat.reset();
    std::uint64_t inflits = 0;
    for (std::size_t p = 0; p < kNumPorts; ++p)
      inflits += rc.flits_in[p] - rc0.flits_in[p];
    const double energy_pj = power.window_dynamic_energy_pj(r);
    const double e_per_flit =
        inflits > 0 ? energy_pj / static_cast<double>(inflits)
                    : last_energy_per_flit_[ri];
    last_energy_per_flit_[ri] = e_per_flit;
    const double energy_term =
        std::pow(std::max(e_per_flit, 1.0), opt_.reward_energy_weight);
    // 25/(cycles x pJ^w) keeps returns O(1-4) so the optimistic
    // initialization stays above the best reachable return.
    rewards_[ri] = 25.0 / (std::max(latency, 1.0) * energy_term);

    const OpMode mode = policy_->decide(r, features_[ri], rewards_[ri]);
    const OpMode old_mode = router.mode();
    if (steps_ == 0 || mode != old_mode) {
      // First step records every router's initial mode so trace slices have
      // a well-defined start even for routers that never change mode.
      RLFTNOC_TRACE(net_->tracer(), TraceEventKind::kModeSwitch, net_->now(), r,
                    -1, static_cast<std::int32_t>(mode),
                    static_cast<double>(old_mode));
    }
    RLFTNOC_TRACE(net_->tracer(), TraceEventKind::kEpochReward, net_->now(), r,
                  -1, static_cast<std::int32_t>(steps_), rewards_[ri]);
    router.set_mode(mode);
    if (const auto ev = policy_->control_energy_event()) power.record(r, *ev);

    power.reset_window(r);
    prev_router_[ri] = rc;
    prev_ni_[ri] = net_->ni(r).counters();
  }

  last_step_cycle_ = net_->now();
  ++steps_;
}

}  // namespace rlftnoc
