// Decision-tree baseline (DiTomaso et al., MICRO-16).
//
// During the pre-training phase the policy gathers labeled samples — the
// observable feature vector paired with the error level derived from the
// ground-truth link error probability — while steering the network with the
// oracle mapping (supervised learning needs labeled behaviour to observe).
// At the end of pre-training a CART tree is fitted once; during warm-up and
// measurement the frozen tree predicts the error level from observable
// features and the router deploys the corresponding mode ("the training
// result of DT is no longer updated during testing phase").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dt/decision_tree.h"
#include "ftnoc/policy.h"

namespace rlftnoc {

class DtPolicy final : public ControlPolicy {
 public:
  explicit DtPolicy(ErrorLevelThresholds thresholds = {}, DtParams params = {},
                    bool per_port_state = false)
      : thresholds_(thresholds), params_(params), per_port_state_(per_port_state) {}

  const char* name() const override { return "DT"; }

  OpMode decide(NodeId /*router*/, const FeatureSnapshot& state, double /*reward*/) override {
    const OpMode truth = thresholds_.classify(state.true_error_prob);
    if (phase_ == SimPhase::kPretrain) {
      samples_.push_back(
          DtSample{state.to_vector(per_port_state_), static_cast<int>(truth)});
      return truth;  // behave like the oracle while collecting labels
    }
    if (!tree_.trained()) return OpMode::kMode1;  // defensive: untrained fallback
    const auto features = state.to_vector(per_port_state_);
    return static_cast<OpMode>(tree_.predict(features));
  }

  void begin_phase(SimPhase phase) override {
    if (phase != SimPhase::kPretrain && phase_ == SimPhase::kPretrain &&
        !samples_.empty()) {
      tree_.train(samples_, static_cast<int>(kNumOpModes), params_);
      training_accuracy_ = tree_.accuracy(samples_);
      samples_.clear();
      samples_.shrink_to_fit();
    }
    phase_ = phase;
  }

  std::optional<PowerEvent> control_energy_event() const override {
    return PowerEvent::kDtInference;
  }

  const DecisionTree& tree() const noexcept { return tree_; }
  double training_accuracy() const noexcept { return training_accuracy_; }
  std::size_t collected_samples() const noexcept { return samples_.size(); }

 private:
  ErrorLevelThresholds thresholds_;
  DtParams params_;
  bool per_port_state_ = false;
  SimPhase phase_ = SimPhase::kPretrain;
  std::vector<DtSample> samples_;
  DecisionTree tree_;
  double training_accuracy_ = 0.0;
};

}  // namespace rlftnoc
