// Per-router state features (Table I of the paper) and their discretization.
//
// Features 1-5 carry one value per port (5 directions); feature 6 is the
// local temperature. Continuous features are binned evenly: linear bins for
// utilizations and temperature (5 bins), log-space bins for the NACK rates
// (4 bins), following Section IV.B.
#pragma once

#include <array>
#include <vector>

#include "common/types.h"
#include "rl/discretizer.h"
#include "rl/qtable.h"

namespace rlftnoc {

/// Snapshot of one router's observable state over one control time-step.
struct FeatureSnapshot {
  /// Feature 1: fraction of occupied input VCs (paper: count; normalized
  /// here so the binning is topology-independent).
  double buffer_util = 0.0;
  /// Features 2-3: flits/cycle per port over the window.
  std::array<double, kNumPorts> in_link_util{};
  std::array<double, kNumPorts> out_link_util{};
  /// Features 4-5: NACKs per transmitted / received flit, per port.
  std::array<double, kNumPorts> in_nack_rate{};   ///< NACKs received (we sent flits)
  std::array<double, kNumPorts> out_nack_rate{};  ///< NACKs sent (we received flits)
  /// Feature 6: local router temperature (C).
  double temperature_c = 50.0;
  /// Feature 7 (extension over Table I): 1.0 where the structural outgoing
  /// link exists but has been hard-faulted dead (see Topology::link_alive).
  /// All-zero in fault-free runs, so the learned state space is unchanged
  /// there.
  std::array<double, kNumPorts> out_link_dead{};

  /// Ground truth, NOT part of the observable feature vector: the highest
  /// per-flit error probability across this router's outgoing links. Used
  /// by the oracle policy and as the decision-tree training label source.
  double true_error_prob = 0.0;

  /// Number of observable features in per-port form
  /// (1 + 5 + 5 + 5 + 5 + 1 + 5).
  static constexpr int kNumFeaturesPerPort = 27;
  /// Number of features in aggregated form (see below).
  static constexpr int kNumFeaturesAggregated = 9;

  /// Flattens the observable features to a continuous vector (DT input).
  ///
  /// `per_port = true` is the paper-literal Table I layout (one value per
  /// direction). The default aggregates each per-port feature to its
  /// mean and max across ports: the action is a single per-router mode, so
  /// port identity is not actionable, and the 8-dimensional state recurs
  /// often enough for the tabular learner to converge within the paper's
  /// 1K-step training budget (ablation: bench_ablation_rl).
  std::vector<double> to_vector(bool per_port = false) const {
    std::vector<double> v;
    if (per_port) {
      v.reserve(kNumFeaturesPerPort);
      v.push_back(buffer_util);
      for (const double x : in_link_util) v.push_back(x);
      for (const double x : out_link_util) v.push_back(x);
      for (const double x : in_nack_rate) v.push_back(x);
      for (const double x : out_nack_rate) v.push_back(x);
      v.push_back(temperature_c);
      for (const double x : out_link_dead) v.push_back(x);
      return v;
    }
    v.reserve(kNumFeaturesAggregated);
    v.push_back(buffer_util);
    v.push_back(mean(in_link_util));
    v.push_back(max(in_link_util));
    v.push_back(mean(out_link_util));
    v.push_back(max(out_link_util));
    v.push_back(max(in_nack_rate));
    v.push_back(max(out_nack_rate));
    v.push_back(temperature_c);
    v.push_back(mean(out_link_dead));  // fraction of dead outgoing links
    return v;
  }

  /// Table I binning: 5 linear bins for utilizations/temperature, 4 log
  /// bins for NACK rates, applied to either feature layout.
  DiscreteState discretize(bool per_port = false) const {
    static const LinearBins kBufBins(0.0, 1.0, 5);
    static const LinearBins kUtilBins(0.0, 0.3, 5);
    static const LogBins kNackBins(1e-3, 0.5, 4);
    static const LinearBins kTempBins(50.0, 100.0, 5);

    DiscreteState s;
    if (per_port) {
      s.reserve(kNumFeaturesPerPort);
      s.push_back(kBufBins.bin(buffer_util));
      for (const double x : in_link_util) s.push_back(kUtilBins.bin(x));
      for (const double x : out_link_util) s.push_back(kUtilBins.bin(x));
      for (const double x : in_nack_rate) s.push_back(kNackBins.bin(x));
      for (const double x : out_nack_rate) s.push_back(kNackBins.bin(x));
      s.push_back(kTempBins.bin(temperature_c));
      for (const double x : out_link_dead) s.push_back(x > 0.5 ? 1 : 0);
      return s;
    }
    s.reserve(kNumFeaturesAggregated);
    s.push_back(kBufBins.bin(buffer_util));
    s.push_back(kUtilBins.bin(mean(in_link_util)));
    s.push_back(kUtilBins.bin(max(in_link_util)));
    s.push_back(kUtilBins.bin(mean(out_link_util)));
    s.push_back(kUtilBins.bin(max(out_link_util)));
    s.push_back(kNackBins.bin(max(in_nack_rate)));
    s.push_back(kNackBins.bin(max(out_nack_rate)));
    s.push_back(kTempBins.bin(temperature_c));
    s.push_back(dead_count());  // 0..5 dead outgoing links, exact
    return s;
  }

 private:
  int dead_count() const {
    int n = 0;
    for (const double x : out_link_dead) n += x > 0.5 ? 1 : 0;
    return n;
  }
  static double mean(const std::array<double, kNumPorts>& a) {
    double s = 0.0;
    for (const double x : a) s += x;
    return s / static_cast<double>(kNumPorts);
  }
  static double max(const std::array<double, kNumPorts>& a) {
    double m = a[0];
    for (const double x : a) m = x > m ? x : m;
    return m;
  }
};

/// Error-level classification thresholds shared by the oracle policy and
/// the decision-tree label generator: per-flit error probability below
/// `low` -> mode 0, below `medium` -> mode 1, below `high` -> mode 2,
/// otherwise mode 3.
struct ErrorLevelThresholds {
  // Crossovers measured on this simulator (bench_ablation_modes): mode 0
  // wins below ~1.2e-2; mode 1 holds remarkably far (go-back-N at moderate
  // load) until ~2.5e-1, where pre-retransmission briefly pays; relaxed
  // timing (mode 3) is the last resort past ~3e-1. Within the nominal
  // thermal envelope (<= ~112 C, p <= ~0.1) modes 0/1 therefore dominate;
  // modes 2/3 engage under elevated error scales (fault sweeps).
  double low = 1.2e-2;
  double medium = 2.5e-1;
  double high = 3.2e-1;

  OpMode classify(double p) const noexcept {
    if (p < low) return OpMode::kMode0;
    if (p < medium) return OpMode::kMode1;
    if (p < high) return OpMode::kMode2;
    return OpMode::kMode3;
  }
};

}  // namespace rlftnoc
