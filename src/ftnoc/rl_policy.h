// The paper's contribution: per-router tabular Q-learning control.
//
// Every router owns an independent agent (Section IV.B: "Per-router RL
// agents observe NoC system states ... and receive system-level rewards").
// Each control time-step the policy (1) updates Q(s,a) for the *previous*
// state-action pair with the reward just earned and the newly observed
// state, then (2) epsilon-greedily selects the next operation mode.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/check.h"
#include "ftnoc/policy.h"
#include "rl/agent.h"

namespace rlftnoc {

class RlPolicy final : public ControlPolicy {
 public:
  /// `shared_table`: all routers act independently but read/update one
  /// common Q-table. Router roles in a mesh are symmetric, so experience
  /// transfers; the 64x larger sample count is what lets the tabular
  /// learner converge within the paper's 1M-cycle training budget. Pass
  /// false for the paper-literal independent per-router tables (ablation:
  /// bench_ablation_rl).
  RlPolicy(int num_routers, QLearningParams params, std::uint64_t seed,
           bool per_port_state = false, bool shared_table = true)
      : base_epsilon_(params.epsilon),
        per_port_state_(per_port_state),
        shared_table_(shared_table) {
    const int agent_count = shared_table ? 1 : num_routers;
    agents_.reserve(static_cast<std::size_t>(agent_count));
    for (int r = 0; r < agent_count; ++r) {
      agents_.emplace_back(params, seed, "rl-agent:" + std::to_string(r));
    }
    last_.resize(static_cast<std::size_t>(num_routers));
  }

  const char* name() const override { return "RL"; }

  OpMode decide(NodeId router, const FeatureSnapshot& state, double reward) override {
    const auto r = static_cast<std::size_t>(router);
    QLearningAgent& agent = agent_for(router);
    DiscreteState s = state.discretize(per_port_state_);
    if (!frozen_ && last_[r].valid) {
      agent.update(last_[r].state, last_[r].action, reward, s);
    }
    const int action =
        frozen_ ? agent.greedy_action(s) : agent.select_action(s);
    last_[r] = LastStep{std::move(s), action, true};
    return static_cast<OpMode>(action);
  }

  void begin_phase(SimPhase phase) override {
    // The paper keeps learning during testing (the TD rule "is applied
    // every 1K cycles") with epsilon = 0.1 throughout. Pre-training uses a
    // hotter epsilon so the short synthetic phase covers the state-action
    // space ("the learning rate can be reduced over time" — we anneal the
    // exploration instead, which the tabular update tolerates better).
    for (auto& a : agents_) {
      QLearningParams p = a.params();
      p.epsilon = phase == SimPhase::kPretrain ? pretrain_epsilon_ : base_epsilon_;
      a.set_params(p);
    }
    // Freezing stops both exploration and TD updates: continuing to learn
    // while being measured lets one congestion transient poison the table
    // mid-experiment (the paper keeps learning; that is the
    // freeze_on_measure = false ablation).
    frozen_ = freeze_on_measure_ && phase == SimPhase::kMeasure;
    if (frozen_) {
      for (auto& a : agents_) a.set_exploring(false);
    }
  }

  /// Exploration schedule knobs (ablation).
  void set_pretrain_epsilon(double e) noexcept { pretrain_epsilon_ = e; }

  std::optional<PowerEvent> control_energy_event() const override {
    return PowerEvent::kRlStep;
  }

  /// When set, exploration stops in the measurement phase (ablation knob).
  void set_freeze_on_measure(bool v) noexcept { freeze_on_measure_ = v; }

  QLearningAgent& agent(NodeId router) { return agent_for(router); }
  const QLearningAgent& agent(NodeId router) const {
    return const_cast<RlPolicy*>(this)->agent_for(router);
  }

  bool shared_table() const noexcept { return shared_table_; }

  /// Total visited states across all per-router Q-tables (overhead metric).
  std::size_t total_table_entries() const {
    std::size_t n = 0;
    for (const auto& a : agents_) n += a.table().size();
    return n;
  }

  /// Persists / restores the learned tables (see rl/qtable_io.h). Loading a
  /// file whose agent count does not match (shared vs per-router) throws.
  void save_tables(const std::string& path) const;
  void load_tables(const std::string& path);

 private:
  struct LastStep {
    DiscreteState state;
    int action = 0;
    bool valid = false;
  };

  QLearningAgent& agent_for(NodeId router) {
    const auto i = static_cast<std::size_t>(router);
    RLFTNOC_CHECK(shared_table_ || i < agents_.size(),
                  "RlPolicy: router %d has no agent", router);
    return shared_table_ ? agents_.front() : agents_[i];
  }

  std::vector<QLearningAgent> agents_;
  std::vector<LastStep> last_;
  bool freeze_on_measure_ = false;
  bool frozen_ = false;
  double base_epsilon_ = 0.1;
  double pretrain_epsilon_ = 0.25;
  bool per_port_state_ = false;
  bool shared_table_ = true;
};

}  // namespace rlftnoc
