// The per-router fault-tolerant controller of Fig. 2, plus the runtime
// model coupling (power -> HotSpot temperature -> VARIUS error probability)
// of Section V.A.
//
// Once per control time-step (default 1000 cycles, matching "the temporal
// difference rule is applied every 1K cycles") the controller:
//   1. turns each tile's window power into heat and steps the thermal grid,
//   2. refreshes every link's timing-error probability from the VARIUS
//      model at the new temperature and observed utilization,
//   3. builds each router's feature snapshot (Table I),
//   4. computes each router's reward 1 / (E2E latency x power) (Eq. (3)),
//   5. asks the policy for the next operation mode and applies it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "fault/varius.h"
#include "ftnoc/features.h"
#include "ftnoc/policy.h"
#include "noc/network.h"
#include "thermal/hotspot_lite.h"

namespace rlftnoc {

/// Knobs of the control loop and the power->heat coupling.
struct ControllerOptions {
  Cycle step_cycles = 1000;    ///< control time-step (paper: 1K cycles)
  double voltage = 1.0;        ///< Table II: 1.0 V
  bool faults_enabled = true;  ///< master switch for timing-error injection

  /// Tile heat = core_base_w + core_per_flit_w * local traffic (flits/cycle)
  ///            + router_power_scale * (router dynamic + leakage).
  /// The processing core dominates tile heat; these coefficients place idle
  /// tiles near 50 C and saturated ones near 100 C (the paper's observed
  /// band) given the default ThermalParams.
  double core_base_w = 0.06;
  double core_per_flit_w = 3.0;
  double router_power_scale = 1.0;

  /// Default per-router, per-hop latency (cycles) for the reward when no
  /// packet finished in a window.
  double idle_latency_cycles = 8.0;

  /// Exponent on the reward's energy-per-flit term: reward =
  /// K / (latency x energy^w). The error cost of a cheap unprotected link
  /// is shared by every router on the path while its energy saving is
  /// private, so a full-weight energy term (w = 1) finances free-riding —
  /// each agent defects to mode 0 and the ensemble melts down. Damping the
  /// energy term keeps the efficiency incentive while letting the shared
  /// latency signal dominate. See DESIGN.md "reward shaping".
  double reward_energy_weight = 0.35;

  /// EMA smoothing factor applied to the windowed features before
  /// discretization. Raw 1K-cycle windows are too noisy for a tabular
  /// learner — bins flap and states rarely repeat; smoothing makes the
  /// discretized state recur so Q-learning can converge.
  double feature_ema_alpha = 0.15;
};

class FtController {
 public:
  FtController(Network* net, ControlPolicy* policy, ControllerOptions opt = {},
               ThermalParams thermal = {}, double error_scale = 1.0);

  /// Call once after every Network::step(); triggers a control step every
  /// `opt.step_cycles` cycles.
  void on_cycle();

  /// Forces a control step now (also invoked once at construction so links
  /// start with valid error probabilities).
  void control_step();

  /// Notifies the policy of a phase change.
  void begin_phase(SimPhase phase);

  ThermalGrid& thermal() noexcept { return thermal_; }
  const ThermalGrid& thermal() const noexcept { return thermal_; }
  ControlPolicy& policy() noexcept { return *policy_; }
  const ControllerOptions& options() const noexcept { return opt_; }

  /// Last computed snapshot / reward / mode per router (diagnostics).
  const FeatureSnapshot& last_features(NodeId r) const {
    const auto i = static_cast<std::size_t>(r);
    RLFTNOC_CHECK(i < features_.size(),
                  "FtController::last_features: router %d out of range", r);
    return features_[i];
  }
  double last_reward(NodeId r) const {
    const auto i = static_cast<std::size_t>(r);
    RLFTNOC_CHECK(i < rewards_.size(),
                  "FtController::last_reward: router %d out of range", r);
    return rewards_[i];
  }
  OpMode current_mode(NodeId r) const;

  /// Number of control steps taken so far.
  std::uint64_t steps() const noexcept { return steps_; }

 private:
  void refresh_link_probabilities(NodeId r, const FeatureSnapshot& snap);

  Network* net_;
  ControlPolicy* policy_;
  ControllerOptions opt_;
  ThermalGrid thermal_;
  double error_scale_;  ///< global multiplier on error probabilities (sweeps)

  std::vector<RouterCounters> prev_router_;
  std::vector<NiCounters> prev_ni_;
  std::vector<FeatureSnapshot> features_;
  /// Smoothed feature state, one snapshot-shaped EMA bank per router.
  std::vector<FeatureSnapshot> smoothed_;
  std::vector<double> rewards_;
  std::vector<double> last_latency_;
  std::vector<double> last_energy_per_flit_;
  Cycle last_step_cycle_ = 0;
  std::uint64_t steps_ = 0;
};

}  // namespace rlftnoc
