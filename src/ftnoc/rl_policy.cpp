#include "ftnoc/rl_policy.h"

#include "rl/qtable_io.h"

namespace rlftnoc {

void RlPolicy::save_tables(const std::string& path) const {
  std::vector<const QTable*> tables;
  tables.reserve(agents_.size());
  for (const QLearningAgent& a : agents_) tables.push_back(&a.table());
  write_qtables_file(path, tables);
}

void RlPolicy::load_tables(const std::string& path) {
  std::vector<QTable*> tables;
  tables.reserve(agents_.size());
  for (QLearningAgent& a : agents_) tables.push_back(&a.table());
  read_qtables_file(path, tables);
}

}  // namespace rlftnoc
