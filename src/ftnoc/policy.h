// Control-policy interface for the per-router fault-tolerant controller,
// plus the trivially static policies.
//
// The controller calls `decide()` once per router per control time-step,
// passing the freshly observed state and the reward earned over the interval
// that just ended. Static policies ignore both; learning policies use them.
#pragma once

#include <optional>

#include "common/types.h"
#include "ftnoc/features.h"
#include "power/orion_lite.h"

namespace rlftnoc {

/// Simulation phase, so learning policies know when to explore / freeze.
enum class SimPhase : std::uint8_t {
  kPretrain = 0,
  kWarmup = 1,
  kMeasure = 2,
};

/// Strategy that maps router state to an operation mode each time-step.
class ControlPolicy {
 public:
  virtual ~ControlPolicy() = default;

  virtual const char* name() const = 0;

  /// Chooses the operation mode for `router` for the next time-step.
  /// `reward` is the reward earned over the interval that just ended
  /// (Eq. (3): 1 / (E2E latency x power)).
  virtual OpMode decide(NodeId router, const FeatureSnapshot& state, double reward) = 0;

  /// Phase transition notification (pretrain -> warmup -> measure).
  virtual void begin_phase(SimPhase /*phase*/) {}

  /// Per-control-step energy cost of running this policy's logic, if any.
  virtual std::optional<PowerEvent> control_energy_event() const { return std::nullopt; }
};

/// Fixed operation mode everywhere: mode 0 is the CRC baseline (ECC links
/// off, destination CRC + source retransmission only); mode 1 is the static
/// ARQ+ECC baseline of Fig. 1(c).
class StaticPolicy final : public ControlPolicy {
 public:
  explicit StaticPolicy(OpMode mode) noexcept : mode_(mode) {}

  const char* name() const override {
    return mode_ == OpMode::kMode0 ? "CRC" : "ARQ+ECC";
  }
  OpMode decide(NodeId, const FeatureSnapshot&, double) override { return mode_; }

 private:
  OpMode mode_;
};

/// Upper-bound reference: classifies the *true* per-link error probability
/// (which a real controller cannot see) into an error level. The decision
/// tree approximates this mapping from observable features.
class OraclePolicy final : public ControlPolicy {
 public:
  explicit OraclePolicy(ErrorLevelThresholds thresholds = {}) noexcept
      : thresholds_(thresholds) {}

  const char* name() const override { return "Oracle"; }
  OpMode decide(NodeId, const FeatureSnapshot& s, double) override {
    return thresholds_.classify(s.true_error_prob);
  }

 private:
  ErrorLevelThresholds thresholds_;
};

}  // namespace rlftnoc
