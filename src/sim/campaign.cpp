#include "sim/campaign.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <set>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace rlftnoc {

std::uint64_t campaign_run_seed(std::uint64_t base_seed,
                                const std::string& benchmark, PolicyKind pol) {
  return base_seed ^ fnv1a64(benchmark + "/" + policy_name(pol));
}

CampaignResults run_campaign(const SimOptions& base,
                             const std::vector<std::string>& benchmarks,
                             const std::vector<PolicyKind>& policies,
                             std::uint64_t packet_budget_scale_pct) {
  // Refuse duplicate (benchmark, policy) keys up front: the key names a
  // run's results row, derived seed and telemetry file set, so a duplicate
  // would silently overwrite one run's output with another's.
  {
    std::set<std::string> seen;
    for (const std::string& b : benchmarks) {
      for (const PolicyKind p : policies) {
        const std::string key = b + "/" + policy_name(p);
        if (!seen.insert(key).second) {
          throw std::invalid_argument(
              "run_campaign: duplicate (benchmark, policy) pair '" + key +
              "' would overwrite its twin's results");
        }
      }
    }
  }

  CampaignResults out;
  out.benchmarks = benchmarks;
  out.policies = policies;
  out.results.resize(benchmarks.size());
  for (auto& row : out.results) row.resize(policies.size());

  std::mutex progress_mu;
  auto run_one = [&](std::size_t b, std::size_t p) {
    ParsecProfile profile = parsec_profile(benchmarks[b]);
    // Scale the packet budget, but never to zero: an empty measured phase
    // would yield an all-zero row that the normalized tables silently skip.
    profile.total_packets = std::max<std::uint64_t>(
        1, profile.total_packets * packet_budget_scale_pct / 100);

    SimOptions opt = base;
    opt.policy = policies[p];
    // Every run gets its own seed so results do not depend on how the jobs
    // are scheduled across threads (and policies never share RNG streams).
    opt.seed = campaign_run_seed(base.seed, benchmarks[b], policies[p]);
    // The warm-up consumes the benchmark's own packet budget; scale it with
    // the budget so a reduced campaign still leaves the bulk of the trace
    // for the measured phase. Pre-training is pure cycle count, but a
    // reduced campaign should not pay the full-scale learning phase either.
    opt.warmup_cycles = opt.warmup_cycles * packet_budget_scale_pct / 100;
    opt.pretrain_cycles = opt.pretrain_cycles * packet_budget_scale_pct / 100;

    const MeshTopology topo(opt.noc);
    Simulator sim(opt);
    ParsecTraffic traffic(topo, profile, opt.seed);
    SimResult res = sim.run(traffic);
    {
      std::lock_guard<std::mutex> lk(progress_mu);
      std::fprintf(stderr, "[campaign] %-13s %-8s exec=%llu lat=%.1f retx=%llu\n",
                   profile.name.c_str(), policy_name(policies[p]),
                   static_cast<unsigned long long>(res.execution_cycles),
                   res.avg_packet_latency,
                   static_cast<unsigned long long>(res.retransmitted_flits));
    }
    out.results[b][p] = std::move(res);
  };

  if (base.jobs == 1) {
    for (std::size_t b = 0; b < benchmarks.size(); ++b)
      for (std::size_t p = 0; p < policies.size(); ++p) run_one(b, p);
  } else {
    ThreadPool pool(base.jobs);
    for (std::size_t b = 0; b < benchmarks.size(); ++b)
      for (std::size_t p = 0; p < policies.size(); ++p)
        pool.submit([&run_one, b, p] { run_one(b, p); });
    pool.wait_all();
  }
  return out;
}

void print_normalized_table(std::ostream& out, const CampaignResults& campaign,
                            const std::string& title, const MetricFn& metric,
                            bool higher_is_better) {
  out << "\n== " << title << " (normalized to "
      << policy_name(campaign.policies.front()) << ") ==\n";
  out << std::left << std::setw(14) << "benchmark";
  for (const PolicyKind p : campaign.policies)
    out << std::right << std::setw(10) << policy_name(p);
  out << '\n';

  std::vector<double> geo(campaign.policies.size(), 0.0);
  std::size_t counted = 0;
  for (std::size_t b = 0; b < campaign.benchmarks.size(); ++b) {
    const double base = metric(campaign.at(b, 0));
    if (base <= 0.0) continue;
    ++counted;
    out << std::left << std::setw(14) << campaign.benchmarks[b];
    for (std::size_t p = 0; p < campaign.policies.size(); ++p) {
      const double norm = metric(campaign.at(b, p)) / base;
      geo[p] += std::log(std::max(norm, 1e-12));
      out << std::right << std::setw(10) << std::fixed << std::setprecision(3)
          << norm;
    }
    out << '\n';
  }
  out << std::left << std::setw(14) << "geomean";
  for (std::size_t p = 0; p < campaign.policies.size(); ++p) {
    const double g = counted ? std::exp(geo[p] / static_cast<double>(counted)) : 0.0;
    out << std::right << std::setw(10) << std::fixed << std::setprecision(3) << g;
  }
  out << '\n';
  // Improvement summary for the last (proposed) column vs the baseline.
  if (counted > 0 && campaign.policies.size() > 1) {
    const double g_last =
        std::exp(geo.back() / static_cast<double>(counted));
    const double delta = higher_is_better ? (g_last - 1.0) * 100.0
                                          : (1.0 - g_last) * 100.0;
    out << "-- " << policy_name(campaign.policies.back())
        << (higher_is_better ? " improvement over " : " reduction vs ")
        << policy_name(campaign.policies.front()) << ": " << std::setprecision(1)
        << delta << "%\n";
  }
}

double metric_retransmissions(const SimResult& r) {
  return static_cast<double>(r.retransmitted_flits);
}
double metric_exec_speedup_inverse(const SimResult& r) {
  return static_cast<double>(r.execution_cycles);
}
double metric_latency(const SimResult& r) { return r.avg_packet_latency; }
double metric_energy_efficiency(const SimResult& r) { return r.energy_efficiency; }
double metric_dynamic_power(const SimResult& r) { return r.avg_dynamic_power_w; }

}  // namespace rlftnoc
