#include "sim/campaign.h"

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <ostream>

namespace rlftnoc {

CampaignResults run_campaign(const SimOptions& base,
                             const std::vector<std::string>& benchmarks,
                             const std::vector<PolicyKind>& policies,
                             std::uint64_t packet_budget_scale_pct) {
  CampaignResults out;
  out.benchmarks = benchmarks;
  out.policies = policies;
  out.results.resize(benchmarks.size());

  const MeshTopology topo(base.noc);
  for (std::size_t b = 0; b < benchmarks.size(); ++b) {
    ParsecProfile profile = parsec_profile(benchmarks[b]);
    profile.total_packets =
        profile.total_packets * packet_budget_scale_pct / 100;
    for (const PolicyKind pol : policies) {
      SimOptions opt = base;
      opt.policy = pol;
      // The warm-up consumes the benchmark's own packet budget; scale it
      // with the budget so a reduced campaign still leaves the bulk of the
      // trace for the measured phase.
      opt.warmup_cycles = opt.warmup_cycles * packet_budget_scale_pct / 100;
      std::fprintf(stderr, "[campaign] %-13s %-8s ...", profile.name.c_str(),
                   policy_name(pol));
      std::fflush(stderr);
      Simulator sim(opt);
      ParsecTraffic traffic(topo, profile, opt.seed);
      SimResult res = sim.run(traffic);
      std::fprintf(stderr, " exec=%llu lat=%.1f retx=%llu\n",
                   static_cast<unsigned long long>(res.execution_cycles),
                   res.avg_packet_latency,
                   static_cast<unsigned long long>(res.retransmitted_flits));
      out.results[b].push_back(std::move(res));
    }
  }
  return out;
}

void print_normalized_table(std::ostream& out, const CampaignResults& campaign,
                            const std::string& title, const MetricFn& metric,
                            bool higher_is_better) {
  out << "\n== " << title << " (normalized to "
      << policy_name(campaign.policies.front()) << ") ==\n";
  out << std::left << std::setw(14) << "benchmark";
  for (const PolicyKind p : campaign.policies)
    out << std::right << std::setw(10) << policy_name(p);
  out << '\n';

  std::vector<double> geo(campaign.policies.size(), 0.0);
  std::size_t counted = 0;
  for (std::size_t b = 0; b < campaign.benchmarks.size(); ++b) {
    const double base = metric(campaign.at(b, 0));
    if (base <= 0.0) continue;
    ++counted;
    out << std::left << std::setw(14) << campaign.benchmarks[b];
    for (std::size_t p = 0; p < campaign.policies.size(); ++p) {
      const double norm = metric(campaign.at(b, p)) / base;
      geo[p] += std::log(std::max(norm, 1e-12));
      out << std::right << std::setw(10) << std::fixed << std::setprecision(3)
          << norm;
    }
    out << '\n';
  }
  out << std::left << std::setw(14) << "geomean";
  for (std::size_t p = 0; p < campaign.policies.size(); ++p) {
    const double g = counted ? std::exp(geo[p] / static_cast<double>(counted)) : 0.0;
    out << std::right << std::setw(10) << std::fixed << std::setprecision(3) << g;
  }
  out << '\n';
  // Improvement summary for the last (proposed) column vs the baseline.
  if (counted > 0 && campaign.policies.size() > 1) {
    const double g_last =
        std::exp(geo.back() / static_cast<double>(counted));
    const double delta = higher_is_better ? (g_last - 1.0) * 100.0
                                          : (1.0 - g_last) * 100.0;
    out << "-- " << policy_name(campaign.policies.back())
        << (higher_is_better ? " improvement over " : " reduction vs ")
        << policy_name(campaign.policies.front()) << ": " << std::setprecision(1)
        << delta << "%\n";
  }
}

double metric_retransmissions(const SimResult& r) {
  return static_cast<double>(r.retransmitted_flits);
}
double metric_exec_speedup_inverse(const SimResult& r) {
  return static_cast<double>(r.execution_cycles);
}
double metric_latency(const SimResult& r) { return r.avg_packet_latency; }
double metric_energy_efficiency(const SimResult& r) { return r.energy_efficiency; }
double metric_dynamic_power(const SimResult& r) { return r.avg_dynamic_power_w; }

}  // namespace rlftnoc
