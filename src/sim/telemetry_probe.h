// Sample-time bridge between the simulation and the telemetry registry.
//
// The simulator's hot path is left untouched: routers, NIs and the network
// already maintain cumulative counters for the RL feature pipeline, so the
// probe simply reads them whenever a metrics sample is due and feeds the
// running totals into the MetricsRegistry (which turns counters into
// per-interval deltas). Sparse discrete events go through the inline
// RLFTNOC_TRACE hooks instead — see telemetry/telemetry.h.
//
// The probe also accumulates the per-router heatmap inputs (mode residency,
// NACK rate, temperature) over the measurement phase.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/export.h"
#include "telemetry/telemetry.h"

namespace rlftnoc {

class Network;
class FtController;
class ControlPolicy;

class SimTelemetryProbe {
 public:
  /// Registers every metric family and freezes the registry. `policy` may be
  /// any ControlPolicy; RL-specific gauges stay 0 for non-RL policies.
  SimTelemetryProbe(Telemetry& telemetry, Network& net, FtController& ctl,
                    ControlPolicy* policy);

  SimTelemetryProbe(const SimTelemetryProbe&) = delete;
  SimTelemetryProbe& operator=(const SimTelemetryProbe&) = delete;

  /// Reads the simulation state into the registry and takes one time-series
  /// sample stamped `now`. Also accumulates heatmap state.
  void sample(Cycle now);

  /// Restarts heatmap accumulation (called when the measure phase begins so
  /// heatmaps describe measured behaviour, not warmup).
  void begin_measure(Cycle now);

  /// Per-router grids accumulated since begin_measure(): mode0..mode3
  /// residency (fraction of samples), nack_rate (NACKs per accepted flit)
  /// and temperature_c (mean over samples).
  std::vector<HeatmapGrid> heatmaps() const;

 private:
  void register_families();

  Telemetry& telemetry_;
  Network& net_;
  FtController& ctl_;
  ControlPolicy* policy_;

  // Gauge families (per-router unless noted).
  MetricId m_mode_;
  MetricId m_temperature_;
  MetricId m_reward_;
  MetricId m_buffer_util_;
  MetricId m_inject_queue_;
  MetricId m_rl_table_entries_;  ///< global
  MetricId m_rl_epsilon_;        ///< global

  // Counter families (cumulative totals fed each sample; per-router).
  MetricId m_flits_in_;
  MetricId m_hop_retx_;
  MetricId m_preretx_dup_;
  MetricId m_nacks_sent_;
  MetricId m_ecc_corrections_;
  MetricId m_ecc_uncorrectable_;
  MetricId m_ni_reinjected_;
  MetricId m_ni_crc_flit_fail_;
  // Per-router-per-port counter family.
  MetricId m_port_flits_out_;
  // Global counter families.
  MetricId m_g_injected_;
  MetricId m_g_delivered_;
  MetricId m_g_retx_e2e_;
  MetricId m_g_retx_hop_;
  MetricId m_g_dup_flits_;
  MetricId m_g_crc_pkt_fail_;
  // Parallel stepper (thread-count-invariant by construction; see probe.cpp).
  MetricId m_g_staged_fx_;
  MetricId m_g_router_skips_;
  MetricId m_g_ni_skips_;

  // Whole-run histograms.
  HistogramId h_reward_;
  HistogramId h_temperature_;

  // Heatmap accumulation (since begin_measure).
  std::uint64_t heat_samples_ = 0;
  std::vector<std::uint64_t> mode_counts_;  ///< [router * 4 + mode]
  std::vector<double> temp_sum_;            ///< [router]
  std::vector<std::uint64_t> base_nacks_;   ///< [router] counter baseline
  std::vector<std::uint64_t> base_flits_;   ///< [router] counter baseline
};

}  // namespace rlftnoc
