#include "sim/simulator.h"

#include <algorithm>

#include "common/log.h"
#include "ftnoc/dt_policy.h"
#include "ftnoc/rl_policy.h"
#include "sim/telemetry_probe.h"
#include "telemetry/export.h"

namespace rlftnoc {

std::unique_ptr<ControlPolicy> make_policy(const SimOptions& opt) {
  switch (opt.policy) {
    case PolicyKind::kStaticCrc:
      return std::make_unique<StaticPolicy>(OpMode::kMode0);
    case PolicyKind::kStaticArqEcc:
      return std::make_unique<StaticPolicy>(OpMode::kMode1);
    case PolicyKind::kDecisionTree:
      return std::make_unique<DtPolicy>(opt.thresholds, opt.dt, opt.per_port_state);
    case PolicyKind::kRl: {
      auto rl = std::make_unique<RlPolicy>(opt.noc.num_nodes(), opt.rl, opt.seed,
                                           opt.per_port_state, opt.rl_shared_table);
      rl->set_freeze_on_measure(opt.freeze_rl_on_measure);
      return rl;
    }
    case PolicyKind::kOracle:
      return std::make_unique<OraclePolicy>(opt.thresholds);
  }
  return std::make_unique<StaticPolicy>(OpMode::kMode0);
}

Simulator::Simulator(SimOptions opt) : Simulator(std::move(opt), nullptr) {}

Simulator::Simulator(SimOptions opt, std::unique_ptr<ControlPolicy> policy)
    : opt_(std::move(opt)) {
  opt_.noc.validate();
  net_ = std::make_unique<Network>(opt_.noc, opt_.seed, opt_.varius, opt_.power);
  net_->set_sim_threads(opt_.sim_threads);
  // Telemetry must attach before the controller: its constructor already
  // runs a control step, and we want those initial mode decisions traced.
  if (opt_.telemetry.enabled) {
    telemetry_ =
        std::make_unique<Telemetry>(opt_.telemetry, opt_.noc.num_nodes());
    net_->set_tracer(&telemetry_->tracer());
  }
  policy_ = policy ? std::move(policy) : make_policy(opt_);
  controller_ = std::make_unique<FtController>(net_.get(), policy_.get(),
                                               opt_.controller, opt_.thermal,
                                               opt_.error_scale);
  if (telemetry_) {
    probe_ = std::make_unique<SimTelemetryProbe>(*telemetry_, *net_,
                                                 *controller_, policy_.get());
  }
  if (opt_.audit) {
    if (opt_.audit_interval == 0) opt_.audit_interval = 1;
    auditor_ = std::make_unique<NetworkAuditor>();
  }
  // Register hard faults last so their validation (routing policy, node
  // ranges) sees the final configuration; at_cycle 0 faults apply here,
  // before any traffic.
  net_->schedule_hard_faults(opt_.hard_faults);
}

Simulator::~Simulator() = default;

void Simulator::enqueue_batch(std::vector<Packet>& batch) {
  const bool faults = net_->has_hard_faults();
  const Topology& topo = net_->topology();
  for (Packet& p : batch) {
    const NodeId src = p.src;
    if (faults && (!topo.router_alive(src) || !topo.router_alive(p.dst) ||
                   !topo.reachable(src, p.dst))) {
      // The traffic model keeps generating for dead / disconnected
      // endpoints; such packets are dropped at the boundary and counted.
      ++unreachable_drops_;
      continue;
    }
    if (!net_->ni(src).enqueue_packet(std::move(p))) ++enqueue_drops_;
  }
  batch.clear();
}

void Simulator::advance_cycle() {
  net_->step();
  controller_->on_cycle();
  if (probe_ && telemetry_->due(net_->now())) probe_->sample(net_->now());
  // Audit between steps, when delay lines, buffers and counters are settled
  // for the cycle; a violation aborts the run pointing at the broken state.
  if (auditor_ && net_->now() % opt_.audit_interval == 0) {
    try {
      auditor_->check_or_throw(*net_);
    } catch (const AuditError&) {
      RLFTNOC_TRACE(net_->tracer(), TraceEventKind::kAuditViolation,
                    net_->now(), kInvalidNode);
      throw;  // run() exports the trace before propagating
    }
  }
}

void Simulator::run_cycles_with(TrafficGenerator* gen, Cycle cycles) {
  std::vector<Packet> batch;
  const Cycle end = net_->now() + cycles;
  while (net_->now() < end) {
    if (gen != nullptr && !gen->exhausted()) {
      gen->tick(net_->now(), batch);
      if (!batch.empty()) enqueue_batch(batch);
    }
    advance_cycle();
  }
}

SimResult Simulator::run(TrafficGenerator& workload) {
  if (!telemetry_) return run_impl(workload);
  try {
    SimResult res = run_impl(workload);
    // Force one final sample so the series covers the full run, then write
    // the trace / metrics / heatmap / manifest file set.
    if (probe_) probe_->sample(net_->now());
    export_telemetry(res.workload);
    return res;
  } catch (...) {
    // An aborted run (audit violation, livelock guard, ...) is exactly when
    // the trace matters most: export best-effort, then propagate.
    try {
      export_telemetry(workload.name());
    } catch (...) {
      // Keep the original error.
    }
    throw;
  }
}

std::string Simulator::telemetry_manifest_path() const {
  if (telemetry_files_.empty()) return "";
  return telemetry_dir_ + "/" + telemetry_files_.back();
}

void Simulator::export_telemetry(const std::string& workload_name) {
  TelemetryExportInfo info;
  info.out_dir = telemetry_->options().out_dir;
  info.workload = workload_name;
  info.policy = policy_->name();
  info.label = sanitize_run_label(workload_name + "_" + info.policy);
  info.seed = opt_.seed;
  info.mesh_width = net_->topology().width();
  info.mesh_height = net_->topology().height();
  info.measure_start = measure_start_;
  info.end_cycle = net_->now();
  const auto opt_str = [&info](const char* key, std::string v) {
    info.options.emplace_back(key, std::move(v));
  };
  opt_str("policy", policy_->name());
  opt_str("seed", std::to_string(opt_.seed));
  opt_str("noc.mesh_width", std::to_string(opt_.noc.mesh_width));
  opt_str("noc.mesh_height", std::to_string(opt_.noc.mesh_height));
  opt_str("pretrain_cycles", std::to_string(opt_.pretrain_cycles));
  opt_str("warmup_cycles", std::to_string(opt_.warmup_cycles));
  opt_str("max_measure_cycles", std::to_string(opt_.max_measure_cycles));
  opt_str("error_scale", std::to_string(opt_.error_scale));
  opt_str("ctrl.step_cycles", std::to_string(opt_.controller.step_cycles));
  opt_str("audit", opt_.audit ? "1" : "0");
  // Like `jobs`, `sim_threads` is deliberately absent: exports must stay
  // byte-identical across thread counts, and execution resources are not
  // part of the run's reproducibility contract.
  opt_str("metrics_interval",
          std::to_string(telemetry_->options().metrics_interval));
  opt_str("telemetry.series_rows",
          std::to_string(telemetry_->options().series_rows));
  opt_str("telemetry.trace_capacity",
          std::to_string(telemetry_->options().trace_capacity));
  telemetry_dir_ = info.out_dir;
  telemetry_files_ = export_run_telemetry(
      *telemetry_, info,
      probe_ ? probe_->heatmaps() : std::vector<HeatmapGrid>{});
}

SimResult Simulator::run_impl(TrafficGenerator& workload) {
  const bool learning =
      opt_.policy == PolicyKind::kDecisionTree || opt_.policy == PolicyKind::kRl;

  // Phase 1: pre-training on synthetic traffic (learning policies only).
  controller_->begin_phase(SimPhase::kPretrain);
  RLFTNOC_TRACE(net_->tracer(), TraceEventKind::kPhaseBegin, net_->now(),
                kInvalidNode, -1, static_cast<std::int32_t>(SimPhase::kPretrain));
  if (learning && opt_.pretrain_cycles > 0) {
    PretrainTraffic pretrain(net_->topology(), opt_.seed);
    run_cycles_with(&pretrain, opt_.pretrain_cycles);
    // Let pre-training traffic drain so it does not pollute the benchmark.
    Cycle guard = opt_.drain_grace_cycles;
    while (!net_->drained() && guard-- > 0) advance_cycle();
  }

  // Phase 2: warm-up with the benchmark's own traffic.
  controller_->begin_phase(SimPhase::kWarmup);
  RLFTNOC_TRACE(net_->tracer(), TraceEventKind::kPhaseBegin, net_->now(),
                kInvalidNode, -1, static_cast<std::int32_t>(SimPhase::kWarmup));
  if (opt_.warmup_cycles > 0) run_cycles_with(&workload, opt_.warmup_cycles);

  // Reset measured state; in-flight packets keep their injection stamps.
  net_->metrics().reset();
  net_->power().reset_totals();

  // Phase 3: testing — run the benchmark to completion, then drain.
  controller_->begin_phase(SimPhase::kMeasure);
  RLFTNOC_TRACE(net_->tracer(), TraceEventKind::kPhaseBegin, net_->now(),
                kInvalidNode, -1, static_cast<std::int32_t>(SimPhase::kMeasure));
  const Cycle measure_start = net_->now();
  measure_start_ = measure_start;
  if (probe_) probe_->begin_measure(measure_start);
  std::vector<Packet> batch;
  std::array<double, kNumOpModes> mode_accum{};
  std::uint64_t mode_samples = 0;
  StatAccumulator temp_accum;
  double max_temp = 0.0;

  const Cycle hard_stop = measure_start + opt_.max_measure_cycles;
  Cycle drain_deadline = hard_stop;
  const std::uint64_t steps_before = controller_->steps();
  std::uint64_t last_seen_steps = steps_before;

  while (net_->now() < hard_stop) {
    if (!workload.exhausted()) {
      workload.tick(net_->now(), batch);
      if (!batch.empty()) enqueue_batch(batch);
    }
    advance_cycle();

    if (controller_->steps() != last_seen_steps) {
      last_seen_steps = controller_->steps();
      ++mode_samples;
      for (NodeId r = 0; r < opt_.noc.num_nodes(); ++r) {
        mode_accum[static_cast<std::size_t>(controller_->current_mode(r))] += 1.0;
        const double t = controller_->thermal().temperature(r);
        temp_accum.add(t);
        max_temp = std::max(max_temp, t);
      }
    }

    if (workload.exhausted()) {
      if (drain_deadline == hard_stop) {
        drain_deadline =
            std::min(hard_stop, net_->now() + opt_.drain_grace_cycles);
      }
      if (net_->drained() || net_->now() >= drain_deadline) break;
    }
  }

  // Integrate the leakage tail of the last partial control window.
  controller_->control_step();

  const NetworkMetrics& m = net_->metrics();
  const PowerModel& pw = net_->power();

  SimResult res;
  res.workload = workload.name();
  res.policy = policy_->name();
  res.drained = net_->drained();
  const Cycle last = std::max(m.last_delivery_cycle, measure_start);
  res.execution_cycles = last - measure_start;
  res.total_cycles = net_->now();
  res.avg_packet_latency = m.packet_latency.mean();
  res.p50_latency = m.latency_hist.quantile(0.50);
  res.p95_latency = m.latency_hist.quantile(0.95);
  res.p99_latency = m.latency_hist.quantile(0.99);
  res.packets_injected = m.packets_injected;
  res.packets_delivered = m.packets_delivered;
  res.flits_delivered = m.flits_delivered;
  res.enqueue_drops = enqueue_drops_;
  res.unreachable_drops = unreachable_drops_;
  res.retransmitted_flits = m.total_retransmitted_flits();
  res.retx_flits_e2e = m.retx_flits_e2e;
  res.retx_flits_hop = m.retx_flits_hop;
  res.dup_flits = m.dup_flits;
  res.crc_packet_failures = m.crc_packet_failures;

  res.dynamic_energy_pj = pw.total_dynamic_energy_pj();
  res.leakage_energy_pj = pw.total_leakage_energy_pj();
  res.total_energy_pj = res.dynamic_energy_pj + res.leakage_energy_pj;
  res.energy_efficiency =
      res.total_energy_pj > 0.0
          ? static_cast<double>(res.flits_delivered) / (res.total_energy_pj * 1e-3)
          : 0.0;  // flits per nJ
  const double measure_seconds =
      static_cast<double>(std::max<Cycle>(res.execution_cycles, 1)) /
      pw.params().clock_hz;
  res.avg_dynamic_power_w = res.dynamic_energy_pj * 1e-12 / measure_seconds;
  res.avg_total_power_w = res.total_energy_pj * 1e-12 / measure_seconds;

  res.avg_temperature_c = temp_accum.mean();
  res.max_temperature_c = max_temp;

  if (mode_samples > 0) {
    const double denom =
        static_cast<double>(mode_samples) * opt_.noc.num_nodes();
    for (std::size_t a = 0; a < kNumOpModes; ++a) mode_accum[a] /= denom;
  }
  res.mode_fraction = mode_accum;

  if (auto* rl = dynamic_cast<RlPolicy*>(policy_.get()))
    res.rl_table_entries = rl->total_table_entries();
  if (auto* dt = dynamic_cast<DtPolicy*>(policy_.get()))
    res.dt_training_accuracy = dt->training_accuracy();

  if (enqueue_drops_ > 0)
    LOG_WARN("simulator: " << enqueue_drops_ << " packets dropped at full NI queues");
  if (unreachable_drops_ > 0)
    LOG_WARN("simulator: " << unreachable_drops_
                           << " packets dropped for dead or disconnected endpoints");
  if (!res.drained)
    LOG_WARN("simulator: " << res.workload << "/" << res.policy
                           << " did not fully drain before the cycle guard");
  return res;
}

}  // namespace rlftnoc
