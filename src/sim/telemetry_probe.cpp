#include "sim/telemetry_probe.h"

#include <algorithm>
#include <array>
#include <string>

#include "ftnoc/controller.h"
#include "ftnoc/rl_policy.h"
#include "noc/network.h"

namespace rlftnoc {
namespace {

constexpr int kNumModes = 4;

std::uint64_t sum_ports(const std::array<std::uint64_t, kNumPorts>& a) {
  std::uint64_t s = 0;
  for (const std::uint64_t v : a) s += v;
  return s;
}

}  // namespace

SimTelemetryProbe::SimTelemetryProbe(Telemetry& telemetry, Network& net,
                                     FtController& ctl, ControlPolicy* policy)
    : telemetry_(telemetry), net_(net), ctl_(ctl), policy_(policy) {
  register_families();
  const auto n = static_cast<std::size_t>(net_.config().num_nodes());
  mode_counts_.assign(n * kNumModes, 0);
  temp_sum_.assign(n, 0.0);
  base_nacks_.assign(n, 0);
  base_flits_.assign(n, 0);
}

void SimTelemetryProbe::register_families() {
  MetricsRegistry& reg = telemetry_.metrics();
  const auto gauge = [&reg](MetricScope s, const char* name) {
    return reg.add(MetricKind::kGauge, s, name);
  };
  const auto counter = [&reg](MetricScope s, const char* name) {
    return reg.add(MetricKind::kCounter, s, name);
  };
  using S = MetricScope;

  m_mode_ = gauge(S::kPerRouter, "router.mode");
  m_temperature_ = gauge(S::kPerRouter, "router.temperature_c");
  m_reward_ = gauge(S::kPerRouter, "rl.reward");
  m_buffer_util_ = gauge(S::kPerRouter, "router.buffer_util");
  m_inject_queue_ = gauge(S::kPerRouter, "ni.inject_queue_depth");
  m_rl_table_entries_ = gauge(S::kGlobal, "rl.table_entries");
  m_rl_epsilon_ = gauge(S::kGlobal, "rl.epsilon");

  m_flits_in_ = counter(S::kPerRouter, "router.flits_in");
  m_hop_retx_ = counter(S::kPerRouter, "router.hop_retx");
  m_preretx_dup_ = counter(S::kPerRouter, "router.preretx_dup");
  m_nacks_sent_ = counter(S::kPerRouter, "router.nacks_sent");
  m_ecc_corrections_ = counter(S::kPerRouter, "router.ecc_corrections");
  m_ecc_uncorrectable_ = counter(S::kPerRouter, "router.ecc_uncorrectable");
  m_ni_reinjected_ = counter(S::kPerRouter, "ni.packets_reinjected");
  m_ni_crc_flit_fail_ = counter(S::kPerRouter, "ni.crc_flit_failures");
  m_port_flits_out_ = counter(S::kPerRouterPort, "router.port.flits_out");

  m_g_injected_ = counter(S::kGlobal, "net.packets_injected");
  m_g_delivered_ = counter(S::kGlobal, "net.packets_delivered");
  m_g_retx_e2e_ = counter(S::kGlobal, "net.retx_flits_e2e");
  m_g_retx_hop_ = counter(S::kGlobal, "net.retx_flits_hop");
  m_g_dup_flits_ = counter(S::kGlobal, "net.dup_flits");
  m_g_crc_pkt_fail_ = counter(S::kGlobal, "net.crc_packet_failures");
  // Parallel-stepper counters. Only thread-count-INVARIANT quantities may
  // appear here: exports are byte-identical across sim_threads values, so
  // e.g. pooled_phase_dispatches (depends on whether a pool exists) must not
  // be exported. Skip counts and merged-effect counts are functions of the
  // simulated traffic alone.
  m_g_staged_fx_ = counter(S::kGlobal, "net.staged_effects_merged");
  m_g_router_skips_ = counter(S::kGlobal, "net.router_steps_skipped");
  m_g_ni_skips_ = counter(S::kGlobal, "net.ni_steps_skipped");

  h_reward_ = reg.add_histogram("rl.reward", 0.0, 5.0, 100);
  h_temperature_ = reg.add_histogram("router.temperature_c", 40.0, 120.0, 80);

  reg.freeze();
}

void SimTelemetryProbe::sample(Cycle now) {
  MetricsRegistry& reg = telemetry_.metrics();
  const int n = net_.config().num_nodes();
  const int total_vcs = static_cast<int>(kNumPorts) * net_.config().vcs_per_port;

  for (NodeId r = 0; r < n; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    const Router& router = net_.router(r);
    const RouterCounters& rc = router.counters();
    const NiCounters& nc = net_.ni(r).counters();
    const int mode = static_cast<int>(router.mode());
    const double temp = ctl_.thermal().temperature(r);
    const double reward = ctl_.last_reward(r);

    reg.set(m_mode_, r, static_cast<double>(mode));
    reg.set(m_temperature_, r, temp);
    reg.set(m_reward_, r, reward);
    reg.set(m_buffer_util_, r,
            static_cast<double>(router.occupied_input_vcs()) / total_vcs);
    reg.set(m_inject_queue_, r,
            static_cast<double>(net_.ni(r).inject_queue_depth()));

    reg.set(m_flits_in_, r, static_cast<double>(sum_ports(rc.flits_in)));
    reg.set(m_hop_retx_, r, static_cast<double>(rc.hop_retransmissions));
    reg.set(m_preretx_dup_, r, static_cast<double>(rc.preretx_duplicates));
    reg.set(m_nacks_sent_, r, static_cast<double>(sum_ports(rc.nacks_sent)));
    reg.set(m_ecc_corrections_, r, static_cast<double>(rc.ecc_corrections));
    reg.set(m_ecc_uncorrectable_, r, static_cast<double>(rc.ecc_uncorrectable));
    reg.set(m_ni_reinjected_, r, static_cast<double>(nc.packets_reinjected));
    reg.set(m_ni_crc_flit_fail_, r, static_cast<double>(nc.crc_flit_failures));
    for (std::size_t p = 0; p < kNumPorts; ++p) {
      reg.set(m_port_flits_out_, r, p, static_cast<double>(rc.flits_out[p]));
    }

    reg.observe(h_reward_, reward);
    reg.observe(h_temperature_, temp);

    mode_counts_[ri * kNumModes + static_cast<std::size_t>(mode)] += 1;
    temp_sum_[ri] += temp;
  }
  ++heat_samples_;

  const NetworkMetrics& m = net_.metrics();
  reg.set(m_g_injected_, static_cast<double>(m.packets_injected));
  reg.set(m_g_delivered_, static_cast<double>(m.packets_delivered));
  reg.set(m_g_retx_e2e_, static_cast<double>(m.retx_flits_e2e));
  reg.set(m_g_retx_hop_, static_cast<double>(m.retx_flits_hop));
  reg.set(m_g_dup_flits_, static_cast<double>(m.dup_flits));
  reg.set(m_g_crc_pkt_fail_, static_cast<double>(m.crc_packet_failures));
  reg.set(m_g_staged_fx_, static_cast<double>(net_.staged_effects_merged()));
  reg.set(m_g_router_skips_, static_cast<double>(net_.router_steps_skipped()));
  reg.set(m_g_ni_skips_, static_cast<double>(net_.ni_steps_skipped()));

  if (const auto* rl = dynamic_cast<const RlPolicy*>(policy_)) {
    reg.set(m_rl_table_entries_,
            static_cast<double>(rl->total_table_entries()));
    reg.set(m_rl_epsilon_, rl->agent(0).params().epsilon);
  }

  telemetry_.sample(now);
}

void SimTelemetryProbe::begin_measure(Cycle /*now*/) {
  const int n = net_.config().num_nodes();
  heat_samples_ = 0;
  std::fill(mode_counts_.begin(), mode_counts_.end(), 0);
  std::fill(temp_sum_.begin(), temp_sum_.end(), 0.0);
  for (NodeId r = 0; r < n; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    base_nacks_[ri] = sum_ports(net_.router(r).counters().nacks_sent);
    base_flits_[ri] = sum_ports(net_.router(r).counters().flits_in);
  }
}

std::vector<HeatmapGrid> SimTelemetryProbe::heatmaps() const {
  const MeshTopology& topo = net_.topology();
  const int n = net_.config().num_nodes();
  const auto nn = static_cast<std::size_t>(n);

  std::vector<HeatmapGrid> grids;
  const auto make_grid = [&](std::string name) {
    HeatmapGrid g;
    g.name = std::move(name);
    g.width = topo.width();
    g.height = topo.height();
    g.values.assign(nn, 0.0);
    return g;
  };

  for (int mode = 0; mode < kNumModes; ++mode) {
    HeatmapGrid g = make_grid("mode" + std::to_string(mode) + "_residency");
    if (heat_samples_ > 0) {
      for (std::size_t ri = 0; ri < nn; ++ri) {
        g.values[ri] =
            static_cast<double>(
                mode_counts_[ri * kNumModes + static_cast<std::size_t>(mode)]) /
            static_cast<double>(heat_samples_);
      }
    }
    grids.push_back(std::move(g));
  }

  HeatmapGrid nack = make_grid("nack_rate");
  for (NodeId r = 0; r < n; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    const std::uint64_t nacks =
        sum_ports(net_.router(r).counters().nacks_sent) - base_nacks_[ri];
    const std::uint64_t flits =
        sum_ports(net_.router(r).counters().flits_in) - base_flits_[ri];
    nack.values[ri] =
        flits > 0 ? static_cast<double>(nacks) / static_cast<double>(flits) : 0.0;
  }
  grids.push_back(std::move(nack));

  HeatmapGrid temp = make_grid("temperature_c");
  if (heat_samples_ > 0) {
    for (std::size_t ri = 0; ri < nn; ++ri) {
      temp.values[ri] = temp_sum_[ri] / static_cast<double>(heat_samples_);
    }
  }
  grids.push_back(std::move(temp));

  return grids;
}

}  // namespace rlftnoc
