// Campaign-result serialization: a flat TSV so the five figure benches can
// share one campaign run instead of re-simulating 32 (benchmark x policy)
// cells each. Human-readable on purpose — the file doubles as the raw-data
// artifact of an experiment run.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/campaign.h"

namespace rlftnoc {

/// Writes one row per (benchmark, policy) cell with all SimResult scalars.
void write_results(std::ostream& out, const CampaignResults& results);
void write_results_file(const std::string& path, const CampaignResults& results);

/// Parses results written by write_results. Throws std::runtime_error on a
/// malformed file or column mismatch (e.g. written by an older build).
CampaignResults read_results(std::istream& in);
CampaignResults read_results_file(const std::string& path);

}  // namespace rlftnoc
