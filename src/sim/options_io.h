// SimOptions <-> flat Config mapping, so experiments are fully describable
// as `key = value` text (CLI, config files, sweep scripts).
//
// Key namespaces: top-level experiment keys (policy, seed, jobs,
// error_scale, phase lengths), `noc.*` (NocConfig::from_config), `rl.*` (Q-learning
// hyper-parameters), `ctrl.*` (controller/coupling), `varius.*`,
// `thermal.*`, `power.leak_*`. Unknown keys are ignored by design — the
// caller owns workload keys etc.
#pragma once

#include "common/config.h"
#include "sim/simulator.h"

namespace rlftnoc {

/// Builds SimOptions from a flat Config; missing keys keep defaults,
/// malformed values throw ConfigError, out-of-range structural parameters
/// throw std::invalid_argument (NocConfig::validate).
SimOptions sim_options_from_config(const Config& cfg);

/// Parses a policy spelling ("crc" | "arq" | "dt" | "rl" | "oracle", or the
/// display names used in result files); throws ConfigError otherwise.
PolicyKind policy_from_string(const std::string& s);

}  // namespace rlftnoc
