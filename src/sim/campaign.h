// Experiment campaign runner: executes a benchmark suite across policies
// and renders the normalized tables behind Figs. 6-10.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "traffic/parsec.h"

namespace rlftnoc {

/// One grid of results: row = benchmark, column = policy.
struct CampaignResults {
  std::vector<std::string> benchmarks;
  std::vector<PolicyKind> policies;
  /// results[b][p] aligned with the vectors above.
  std::vector<std::vector<SimResult>> results;

  const SimResult& at(std::size_t bench, std::size_t pol) const {
    return results.at(bench).at(pol);
  }
};

/// Extracts the metric a figure plots from one run.
using MetricFn = std::function<double(const SimResult&)>;

/// Seed for one (benchmark, policy) run of a campaign: the base experiment
/// seed XOR a hash of the configuration's identity. Every run gets its own
/// deterministic stream, so campaign results are bit-identical regardless
/// of `SimOptions::jobs` or the order jobs happen to finish in.
std::uint64_t campaign_run_seed(std::uint64_t base_seed,
                                const std::string& benchmark, PolicyKind pol);

/// Runs every (benchmark, policy) pair, `base.jobs` configurations at a
/// time (1 = serial, 0 = one job per hardware thread). Each job derives its
/// seed via campaign_run_seed() and writes into its own results slot, so
/// output is independent of thread count. `packet_budget_scale_pct` scales
/// the packet budget (clamped to at least one packet) and the pretrain /
/// warm-up phase lengths together. Progress lines go to stderr, one
/// complete line per finished run.
CampaignResults run_campaign(const SimOptions& base,
                             const std::vector<std::string>& benchmarks,
                             const std::vector<PolicyKind>& policies,
                             std::uint64_t packet_budget_scale_pct = 100);

/// Prints a per-benchmark table of `metric`, normalized to the first policy
/// column (the paper normalizes everything to the CRC baseline), plus the
/// geometric-mean row. `higher_is_better` flips the improvement arithmetic
/// in the summary line.
void print_normalized_table(std::ostream& out, const CampaignResults& campaign,
                            const std::string& title, const MetricFn& metric,
                            bool higher_is_better);

/// Convenience metric extractors matching the paper's figures.
double metric_retransmissions(const SimResult& r);
double metric_exec_speedup_inverse(const SimResult& r);  ///< execution cycles
double metric_latency(const SimResult& r);
double metric_energy_efficiency(const SimResult& r);
double metric_dynamic_power(const SimResult& r);

}  // namespace rlftnoc
