// Simulation driver: wires Network + FtController + policy + traffic into
// the paper's three-phase experiment protocol (Section V.B):
//
//   1. pre-training  - 1M cycles of synthetic traffic for the learning
//                      policies (DT collects labels and trains; RL learns
//                      online),
//   2. warm-up       - 300K cycles of the benchmark's own traffic with
//                      metrics discarded,
//   3. testing       - the benchmark runs to completion ("a full
//                      application execution time"); all figures are
//                      computed over this phase.
//
// Defaults here are scaled down ~4x from the paper so the whole 8-benchmark
// x 4-policy campaign stays laptop-scale; pass `--full` to benches (or set
// SimOptions accordingly) for paper-scale runs.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "dt/decision_tree.h"
#include "fault/varius.h"
#include "ftnoc/controller.h"
#include "ftnoc/policy.h"
#include "noc/audit.h"
#include "noc/network.h"
#include "noc/noc_config.h"
#include "power/orion_lite.h"
#include "rl/agent.h"
#include "telemetry/telemetry.h"
#include "thermal/hotspot_lite.h"
#include "traffic/traffic.h"

namespace rlftnoc {

class SimTelemetryProbe;

/// Everything needed to reproduce one run.
struct SimOptions {
  NocConfig noc;
  PolicyKind policy = PolicyKind::kRl;
  std::uint64_t seed = 1;

  /// Worker threads for campaign runs (run_campaign): 1 = serial (default),
  /// 0 = one per hardware thread. Results are bit-identical for any value
  /// because every (benchmark, policy) job derives its own seed.
  unsigned jobs = 1;

  /// Threads used *inside* one run by the phase-parallel network stepper
  /// (Network::set_sim_threads): 1 = serial (default), 0 = one per hardware
  /// thread. Results are bit-identical for any value — cross-shard effects
  /// are staged and merged in canonical node order. Composes with `jobs`:
  /// a campaign spawns roughly jobs x sim_threads threads in total, so keep
  /// the product near the core count (jobs parallelism amortizes better;
  /// prefer raising sim_threads only for single-run latency).
  unsigned sim_threads = 1;

  /// Run the NetworkAuditor (noc/audit.h) after every simulated cycle and
  /// abort the run with AuditError on the first violated invariant. Costs a
  /// full sweep of the network state per audited cycle, so this is an
  /// opt-in debugging / CI mode, not a default.
  bool audit = false;
  /// Cycles between audit sweeps when `audit` is set (1 = every cycle).
  Cycle audit_interval = 1;

  /// Event tracing + time-series metrics (opt-in; see src/telemetry). When
  /// `telemetry.enabled`, run() exports the trace/metrics/heatmap/manifest
  /// file set into `telemetry.out_dir` under a "<workload>_<policy>" label.
  TelemetryOptions telemetry;

  Cycle pretrain_cycles = 500000;  ///< paper: 1,000,000
  Cycle warmup_cycles = 50000;     ///< paper: 300,000
  Cycle max_measure_cycles = 8'000'000;  ///< hard guard against livelock
  Cycle drain_grace_cycles = 400000;     ///< post-exhaustion drain budget

  ControllerOptions controller;
  VariusParams varius;
  PowerParams power;
  ThermalParams thermal;
  QLearningParams rl;
  ErrorLevelThresholds thresholds;
  DtParams dt;

  /// Global multiplier on injected error probability (fault sweeps).
  double error_scale = 1.0;

  /// Permanent faults (dead links / routers), applied at their at_cycle
  /// (0 = before traffic). Config key `hard_faults`, CLI `--kill-link` /
  /// `--kill-router`. Requires a routing policy that can route around them
  /// (xy, yx or adaptive — not westfirst).
  std::vector<HardFault> hard_faults;
  /// Freeze RL exploration during measurement. Default true: the policy
  /// acts greedily (and keeps applying the TD rule) while being measured;
  /// set false for the paper-literal always-exploring epsilon = 0.1
  /// (ablation: bench_ablation_rl).
  bool freeze_rl_on_measure = true;
  /// Paper-literal Table I per-port state layout instead of the default
  /// aggregated 8-feature layout (ablation; see FeatureSnapshot).
  bool per_port_state = false;
  /// Shared Q-table across the per-router agents (default; see RlPolicy).
  /// false = paper-literal independent per-router tables.
  bool rl_shared_table = true;

  /// Applies paper-scale phase lengths.
  void use_paper_scale() {
    pretrain_cycles = 1'000'000;
    warmup_cycles = 300'000;
  }
};

/// Metrics of one measured run (one bar of one figure).
struct SimResult {
  std::string workload;
  std::string policy;

  Cycle execution_cycles = 0;  ///< measure start -> last successful delivery
  /// Every cycle the network stepped across all phases (pretrain + warmup +
  /// measure + drain). execution_cycles only spans the measure window, so
  /// this is the honest denominator for simulated-cycles-per-second
  /// throughput tracking.
  Cycle total_cycles = 0;
  bool drained = false;        ///< everything delivered before the guard

  double avg_packet_latency = 0.0;  ///< cycles, successful packets
  double p50_latency = 0.0;         ///< median end-to-end latency (cycles)
  double p95_latency = 0.0;
  double p99_latency = 0.0;
  std::uint64_t packets_injected = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t flits_delivered = 0;
  /// Packets dropped at full source-NI queues (all phases). Non-zero means
  /// the offered load exceeded what the NoC accepted; latency averages over
  /// the surviving packets only, so compare policies with this in view.
  std::uint64_t enqueue_drops = 0;
  /// Generated packets never offered to the network because a hard fault
  /// had killed or disconnected their source or destination (all phases).
  std::uint64_t unreachable_drops = 0;

  std::uint64_t retransmitted_flits = 0;  ///< e2e + hop + duplicates
  std::uint64_t retx_flits_e2e = 0;
  std::uint64_t retx_flits_hop = 0;
  std::uint64_t dup_flits = 0;
  std::uint64_t crc_packet_failures = 0;

  double dynamic_energy_pj = 0.0;
  double leakage_energy_pj = 0.0;
  double total_energy_pj = 0.0;
  double energy_efficiency = 0.0;   ///< delivered flits per nJ
  double avg_dynamic_power_w = 0.0; ///< network total over the measure phase
  double avg_total_power_w = 0.0;

  double avg_temperature_c = 0.0;
  double max_temperature_c = 0.0;

  std::array<double, kNumOpModes> mode_fraction{};  ///< time share per mode
  std::size_t rl_table_entries = 0;   ///< RL only
  double dt_training_accuracy = 0.0;  ///< DT only
};

/// Owns one complete simulation instance.
class Simulator {
 public:
  explicit Simulator(SimOptions opt);
  /// Variant with a caller-supplied policy (e.g. a user-defined one); the
  /// `opt.policy` field is ignored for construction but used for labels.
  Simulator(SimOptions opt, std::unique_ptr<ControlPolicy> policy);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Runs pretrain (learning policies) + warm-up + measurement and returns
  /// the measured metrics.
  SimResult run(TrafficGenerator& workload);

  Network& network() noexcept { return *net_; }
  FtController& controller() noexcept { return *controller_; }
  ControlPolicy& policy() noexcept { return *policy_; }
  const SimOptions& options() const noexcept { return opt_; }

  /// The per-cycle invariant auditor; nullptr unless SimOptions::audit.
  const NetworkAuditor* auditor() const noexcept { return auditor_.get(); }

  /// Telemetry collector; nullptr unless SimOptions::telemetry.enabled.
  Telemetry* telemetry() noexcept { return telemetry_.get(); }

  /// Files written by the last run()'s telemetry export (names within the
  /// telemetry out_dir; empty when telemetry is off). Manifest is last.
  const std::vector<std::string>& telemetry_files() const noexcept {
    return telemetry_files_;
  }
  /// Path of the run-manifest JSON ("" when telemetry is off).
  std::string telemetry_manifest_path() const;

 private:
  void advance_cycle();
  void run_cycles_with(TrafficGenerator* gen, Cycle cycles);
  void enqueue_batch(std::vector<Packet>& batch);
  SimResult run_impl(TrafficGenerator& workload);
  void export_telemetry(const std::string& workload_name);

  SimOptions opt_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<Telemetry> telemetry_;
  std::unique_ptr<ControlPolicy> policy_;
  std::unique_ptr<FtController> controller_;
  std::unique_ptr<SimTelemetryProbe> probe_;
  std::unique_ptr<NetworkAuditor> auditor_;
  std::uint64_t enqueue_drops_ = 0;
  std::uint64_t unreachable_drops_ = 0;
  Cycle measure_start_ = 0;
  std::string telemetry_dir_;
  std::vector<std::string> telemetry_files_;
};

/// Builds the policy object for a PolicyKind (shared by Simulator and the
/// benches/examples that want a bare policy).
std::unique_ptr<ControlPolicy> make_policy(const SimOptions& opt);

}  // namespace rlftnoc
