#include "sim/results_io.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace rlftnoc {
namespace {

constexpr const char* kHeader =
    "benchmark\tpolicy\texec_cycles\ttotal_cycles\tdrained\tavg_latency\t"
    "packets_injected\t"
    "packets_delivered\tflits_delivered\tenqueue_drops\tunreachable_drops\t"
    "retx_total\tretx_e2e\t"
    "retx_hop\tdup_flits\tcrc_failures\tdyn_pj\tleak_pj\ttotal_pj\tefficiency\t"
    "dyn_power_w\ttotal_power_w\tavg_temp\tmax_temp\tmode0\tmode1\tmode2\t"
    "mode3\trl_entries\tdt_accuracy";

PolicyKind policy_from_name(const std::string& name) {
  for (const PolicyKind k :
       {PolicyKind::kStaticCrc, PolicyKind::kStaticArqEcc, PolicyKind::kDecisionTree,
        PolicyKind::kRl, PolicyKind::kOracle}) {
    if (name == policy_name(k)) return k;
  }
  throw std::runtime_error("results_io: unknown policy name: " + name);
}

/// Index of `name` in `names`, in declaration order. Linear scan on purpose:
/// campaigns have a handful of benchmarks/policies, and a flat vector makes
/// the first-seen ordering (which report tables must follow) structural
/// rather than an accident of the lookup container.
std::size_t first_seen_index(const std::vector<std::string>& names,
                             const std::string& name) {
  const auto it = std::find(names.begin(), names.end(), name);
  return static_cast<std::size_t>(it - names.begin());
}

}  // namespace

void write_results(std::ostream& out, const CampaignResults& results) {
  // Shortest round-trippable decimal form: read_results(write_results(x))
  // must reproduce every double bit-for-bit, or cached campaigns would
  // drift from fresh ones.
  out.precision(std::numeric_limits<double>::max_digits10);
  out << kHeader << '\n';
  for (std::size_t b = 0; b < results.benchmarks.size(); ++b) {
    for (std::size_t p = 0; p < results.policies.size(); ++p) {
      const SimResult& r = results.at(b, p);
      out << results.benchmarks[b] << '\t' << policy_name(results.policies[p])
          << '\t' << r.execution_cycles << '\t' << r.total_cycles << '\t'
          << (r.drained ? 1 : 0) << '\t'
          << r.avg_packet_latency << '\t' << r.packets_injected << '\t'
          << r.packets_delivered << '\t' << r.flits_delivered << '\t'
          << r.enqueue_drops << '\t' << r.unreachable_drops << '\t'
          << r.retransmitted_flits << '\t' << r.retx_flits_e2e << '\t'
          << r.retx_flits_hop << '\t' << r.dup_flits << '\t'
          << r.crc_packet_failures << '\t' << r.dynamic_energy_pj << '\t'
          << r.leakage_energy_pj << '\t' << r.total_energy_pj << '\t'
          << r.energy_efficiency << '\t' << r.avg_dynamic_power_w << '\t'
          << r.avg_total_power_w << '\t' << r.avg_temperature_c << '\t'
          << r.max_temperature_c << '\t' << r.mode_fraction[0] << '\t'
          << r.mode_fraction[1] << '\t' << r.mode_fraction[2] << '\t'
          << r.mode_fraction[3] << '\t' << r.rl_table_entries << '\t'
          << r.dt_training_accuracy << '\n';
    }
  }
}

void write_results_file(const std::string& path, const CampaignResults& results) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("results_io: cannot write " + path);
  write_results(out, results);
}

CampaignResults read_results(std::istream& in) {
  // Leading `#` lines are annotations (the bench cache prepends an
  // options-hash comment); skip them before the header check.
  std::string header;
  while (std::getline(in, header)) {
    if (!header.empty() && header[0] != '#') break;
  }
  if (header != kHeader)
    throw std::runtime_error("results_io: header mismatch (stale cache?)");

  CampaignResults out;
  std::vector<std::string> policy_names;  // first-seen, mirrors out.policies
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string bench;
    std::string policy;
    SimResult r;
    int drained = 0;
    if (!(std::getline(ls, bench, '\t') && std::getline(ls, policy, '\t')))
      throw std::runtime_error("results_io: malformed row");
    r.workload = bench;
    r.policy = policy;
    if (!(ls >> r.execution_cycles >> r.total_cycles >> drained >>
          r.avg_packet_latency >>
          r.packets_injected >> r.packets_delivered >> r.flits_delivered >>
          r.enqueue_drops >> r.unreachable_drops >>
          r.retransmitted_flits >> r.retx_flits_e2e >> r.retx_flits_hop >>
          r.dup_flits >> r.crc_packet_failures >> r.dynamic_energy_pj >>
          r.leakage_energy_pj >> r.total_energy_pj >> r.energy_efficiency >>
          r.avg_dynamic_power_w >> r.avg_total_power_w >> r.avg_temperature_c >>
          r.max_temperature_c >> r.mode_fraction[0] >> r.mode_fraction[1] >>
          r.mode_fraction[2] >> r.mode_fraction[3] >> r.rl_table_entries >>
          r.dt_training_accuracy))
      throw std::runtime_error("results_io: malformed row values");
    r.drained = drained != 0;

    const std::size_t bi = first_seen_index(out.benchmarks, bench);
    if (bi == out.benchmarks.size()) {
      out.benchmarks.push_back(bench);
      out.results.emplace_back();
    }
    const std::size_t pi = first_seen_index(policy_names, policy);
    if (pi == policy_names.size()) {
      policy_names.push_back(policy);
      out.policies.push_back(policy_from_name(policy));
    }
    auto& row = out.results[bi];
    if (row.size() != pi)
      throw std::runtime_error("results_io: rows out of order");
    row.push_back(std::move(r));
  }
  if (out.benchmarks.empty()) throw std::runtime_error("results_io: empty file");
  for (const auto& row : out.results) {
    if (row.size() != out.policies.size())
      throw std::runtime_error("results_io: ragged results");
  }
  return out;
}

CampaignResults read_results_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("results_io: cannot open " + path);
  return read_results(in);
}

}  // namespace rlftnoc
