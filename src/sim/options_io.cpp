#include "sim/options_io.h"

#include <stdexcept>

#include "fault/hard_faults.h"

namespace rlftnoc {

PolicyKind policy_from_string(const std::string& s) {
  if (s == "crc" || s == "CRC") return PolicyKind::kStaticCrc;
  if (s == "arq" || s == "ARQ+ECC") return PolicyKind::kStaticArqEcc;
  if (s == "dt" || s == "DT") return PolicyKind::kDecisionTree;
  if (s == "rl" || s == "RL") return PolicyKind::kRl;
  if (s == "oracle" || s == "Oracle") return PolicyKind::kOracle;
  throw ConfigError("unknown policy '" + s + "' (crc|arq|dt|rl|oracle)");
}

SimOptions sim_options_from_config(const Config& cfg) {
  SimOptions opt;
  opt.noc = NocConfig::from_config(cfg);
  if (cfg.contains("policy")) opt.policy = policy_from_string(cfg.get_string("policy"));
  opt.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
  opt.jobs = static_cast<unsigned>(
      cfg.get_int("jobs", static_cast<std::int64_t>(opt.jobs)));
  opt.sim_threads = static_cast<unsigned>(
      cfg.get_int("sim_threads", static_cast<std::int64_t>(opt.sim_threads)));
  opt.audit = cfg.get_bool("audit", opt.audit);
  opt.audit_interval = static_cast<Cycle>(
      cfg.get_int("audit_interval", static_cast<std::int64_t>(opt.audit_interval)));
  opt.error_scale = cfg.get_double("error_scale", opt.error_scale);
  if (cfg.contains("hard_faults")) {
    try {
      opt.hard_faults = parse_hard_faults(cfg.get_string("hard_faults"));
    } catch (const std::invalid_argument& e) {
      throw ConfigError(std::string("hard_faults: ") + e.what());
    }
    if (!opt.hard_faults.empty() &&
        opt.noc.routing == RoutingAlgorithm::kWestFirst) {
      throw ConfigError(
          "hard_faults requires xy, yx or adaptive routing (westfirst has no "
          "fault-adaptive fallback)");
    }
  }
  opt.pretrain_cycles = static_cast<Cycle>(
      cfg.get_int("pretrain_cycles", static_cast<std::int64_t>(opt.pretrain_cycles)));
  opt.warmup_cycles = static_cast<Cycle>(
      cfg.get_int("warmup_cycles", static_cast<std::int64_t>(opt.warmup_cycles)));
  opt.max_measure_cycles = static_cast<Cycle>(cfg.get_int(
      "max_measure_cycles", static_cast<std::int64_t>(opt.max_measure_cycles)));
  opt.freeze_rl_on_measure =
      cfg.get_bool("freeze_rl_on_measure", opt.freeze_rl_on_measure);
  opt.per_port_state = cfg.get_bool("per_port_state", opt.per_port_state);
  opt.rl_shared_table = cfg.get_bool("rl_shared_table", opt.rl_shared_table);

  // telemetry.* (see src/telemetry): `telemetry` switches the subsystem on
  // (the CLI spells it --trace; the key `trace` is taken by trace replay).
  opt.telemetry.enabled = cfg.get_bool("telemetry", opt.telemetry.enabled);
  opt.telemetry.out_dir = cfg.get_string("telemetry.dir", opt.telemetry.out_dir);
  opt.telemetry.metrics_interval = static_cast<Cycle>(cfg.get_int(
      "metrics_interval",
      static_cast<std::int64_t>(opt.telemetry.metrics_interval)));
  opt.telemetry.series_rows = static_cast<std::size_t>(cfg.get_int(
      "telemetry.series_rows",
      static_cast<std::int64_t>(opt.telemetry.series_rows)));
  opt.telemetry.trace_capacity = static_cast<std::size_t>(cfg.get_int(
      "telemetry.trace_capacity",
      static_cast<std::int64_t>(opt.telemetry.trace_capacity)));

  // rl.*
  opt.rl.alpha = cfg.get_double("rl.alpha", opt.rl.alpha);
  opt.rl.gamma = cfg.get_double("rl.gamma", opt.rl.gamma);
  opt.rl.epsilon = cfg.get_double("rl.epsilon", opt.rl.epsilon);
  opt.rl.optimistic_init = cfg.get_double("rl.optimistic_init", opt.rl.optimistic_init);
  opt.rl.confidence_penalty =
      cfg.get_double("rl.confidence_penalty", opt.rl.confidence_penalty);
  opt.rl.action_cost_prior =
      cfg.get_double("rl.action_cost_prior", opt.rl.action_cost_prior);

  // ctrl.*
  opt.controller.step_cycles = static_cast<Cycle>(cfg.get_int(
      "ctrl.step_cycles",
      static_cast<std::int64_t>(opt.controller.step_cycles)));
  if (cfg.contains("step_cycles")) {  // legacy spelling used by the CLI docs
    opt.controller.step_cycles =
        static_cast<Cycle>(cfg.get_int("step_cycles"));
  }
  opt.controller.voltage = cfg.get_double("ctrl.voltage", opt.controller.voltage);
  opt.controller.faults_enabled =
      cfg.get_bool("ctrl.faults_enabled", opt.controller.faults_enabled);
  opt.controller.core_base_w =
      cfg.get_double("ctrl.core_base_w", opt.controller.core_base_w);
  opt.controller.core_per_flit_w =
      cfg.get_double("ctrl.core_per_flit_w", opt.controller.core_per_flit_w);
  opt.controller.reward_energy_weight = cfg.get_double(
      "ctrl.reward_energy_weight", opt.controller.reward_energy_weight);
  opt.controller.feature_ema_alpha =
      cfg.get_double("ctrl.feature_ema_alpha", opt.controller.feature_ema_alpha);

  // varius.*
  opt.varius.nominal_delay =
      cfg.get_double("varius.nominal_delay", opt.varius.nominal_delay);
  opt.varius.temp_coeff = cfg.get_double("varius.temp_coeff", opt.varius.temp_coeff);
  opt.varius.util_coeff = cfg.get_double("varius.util_coeff", opt.varius.util_coeff);
  opt.varius.sigma = cfg.get_double("varius.sigma", opt.varius.sigma);
  opt.varius.droop_rate = cfg.get_double("varius.droop_rate", opt.varius.droop_rate);
  opt.varius.droop_scale =
      cfg.get_double("varius.droop_scale", opt.varius.droop_scale);
  opt.varius.droop_len_traversals = static_cast<int>(cfg.get_int(
      "varius.droop_len", opt.varius.droop_len_traversals));

  // thermal.*
  opt.thermal.ambient_c = cfg.get_double("thermal.ambient_c", opt.thermal.ambient_c);
  opt.thermal.r_ambient = cfg.get_double("thermal.r_ambient", opt.thermal.r_ambient);
  opt.thermal.r_lateral = cfg.get_double("thermal.r_lateral", opt.thermal.r_lateral);
  opt.thermal.max_temp_c = cfg.get_double("thermal.max_temp_c", opt.thermal.max_temp_c);

  // power.*
  opt.power.leak_w_at_ref = cfg.get_double("power.leak_w_at_ref", opt.power.leak_w_at_ref);
  opt.power.leak_temp_coeff =
      cfg.get_double("power.leak_temp_coeff", opt.power.leak_temp_coeff);

  // thresholds.*
  opt.thresholds.low = cfg.get_double("thresholds.low", opt.thresholds.low);
  opt.thresholds.medium = cfg.get_double("thresholds.medium", opt.thresholds.medium);
  opt.thresholds.high = cfg.get_double("thresholds.high", opt.thresholds.high);

  return opt;
}

}  // namespace rlftnoc
