// Per-output-port ARQ retention buffer with O(1) lookup by FlitId.
//
// The retention buffer holds the pristine encoded copy of every flit that is
// on the wire awaiting a link-level ACK. It is bounded (NocConfig::
// retention_depth, 8 by default) but interrogated constantly: every ACK/NACK
// arrival, every re-send and every mode-2 duplicate resolves its entry by
// FlitId. The previous std::vector scan made each of those O(depth); this
// table makes them O(1) without allocating after construction.
//
// Layout: a preallocated slot array (capacity == retention_depth) with a
// free-list, plus an open-addressed linear-probe index mapping FlitId ->
// slot. Slots are pointer-stable for the lifetime of an entry, so callers
// may hold ArqRetention* across unrelated insert/erase calls. Deletion uses
// backward-shift compaction, so probe chains never accumulate tombstones.
// rlftnoc-lint: hot-path (per-cycle step path: R4 bans node-allocating containers and .at())
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "noc/flit.h"

namespace rlftnoc {

/// Retained copy of a transmitted flit awaiting link-level ACK.
struct ArqRetention {
  Flit clean;          ///< pristine encoded flit (payload + check bits)
  int unresolved = 0;  ///< copies on the wire without a response yet
  bool resend_queued = false;
};

class RetentionTable {
 public:
  RetentionTable() = default;

  /// Sizes the table for at most `capacity` live entries. Discards contents.
  void reset(std::size_t capacity) {
    RLFTNOC_CHECK(capacity > 0, "RetentionTable: zero capacity");
    slots_.assign(capacity, Slot{});
    free_.resize(capacity);
    for (std::size_t i = 0; i < capacity; ++i)
      free_[i] = static_cast<std::uint32_t>(capacity - 1 - i);
    std::size_t nb = 2;
    while (nb < capacity * 2) nb <<= 1;
    buckets_.assign(nb, Bucket{});
    size_ = 0;
  }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Looks up the entry for `id`; nullptr if absent.
  ArqRetention* find(FlitId id) noexcept {
    const std::size_t mask = buckets_.size() - 1;
    for (std::size_t j = hash(id) & mask;; j = (j + 1) & mask) {
      const Bucket& b = buckets_[j];
      if (b.key == kEmptyKey) return nullptr;
      if (b.key == id) return &slots_[b.slot].entry;
    }
  }
  const ArqRetention* find(FlitId id) const noexcept {
    return const_cast<RetentionTable*>(this)->find(id);
  }

  /// Inserts a new entry for `id` and returns it. The caller must ensure
  /// there is room (size() < capacity()) and that `id` is not present —
  /// both are protocol invariants the auditor also checks.
  ArqRetention& insert(FlitId id, ArqRetention entry) {
    RLFTNOC_CHECK(size_ < slots_.size(), "RetentionTable: insert past capacity");
    RLFTNOC_CHECK(find(id) == nullptr, "RetentionTable: duplicate FlitId");
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    slots_[slot].entry = std::move(entry);
    const std::size_t mask = buckets_.size() - 1;
    std::size_t j = hash(id) & mask;
    while (buckets_[j].key != kEmptyKey) j = (j + 1) & mask;
    buckets_[j] = Bucket{id, slot};
    ++size_;
    return slots_[slot].entry;
  }

  /// Removes the entry for `id` if present; returns whether it existed.
  bool erase(FlitId id) noexcept {
    const std::size_t mask = buckets_.size() - 1;
    std::size_t j = hash(id) & mask;
    while (true) {
      if (buckets_[j].key == kEmptyKey) return false;
      if (buckets_[j].key == id) break;
      j = (j + 1) & mask;
    }
    free_.push_back(buckets_[j].slot);
    --size_;
    // Backward-shift deletion: pull each displaced successor into the hole
    // so lookups never need tombstones.
    std::size_t hole = j;
    for (std::size_t k = (j + 1) & mask; buckets_[k].key != kEmptyKey;
         k = (k + 1) & mask) {
      const std::size_t ideal = hash(buckets_[k].key) & mask;
      if (((k - ideal) & mask) >= ((k - hole) & mask)) {
        buckets_[hole] = buckets_[k];
        hole = k;
      }
    }
    buckets_[hole] = Bucket{};
    return true;
  }

  /// Visits every live (id, entry) pair in unspecified order (audit and
  /// drain checks only — both are order-independent).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Bucket& b : buckets_) {
      if (b.key != kEmptyKey) fn(b.key, slots_[b.slot].entry);
    }
  }

 private:
  // FlitId packs (packet_id << 8) | seq, so low bits alone collide heavily;
  // a splitmix64-style finalizer spreads them across the buckets.
  static std::size_t hash(FlitId id) noexcept {
    std::uint64_t x = id + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }

  static constexpr FlitId kEmptyKey = ~static_cast<FlitId>(0);

  struct Slot {
    ArqRetention entry;
  };
  struct Bucket {
    FlitId key = kEmptyKey;
    std::uint32_t slot = 0;
  };

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  ///< indices of unused slots (LIFO)
  std::vector<Bucket> buckets_;      ///< open-addressed index, pow2 size
  std::size_t size_ = 0;
};

}  // namespace rlftnoc
