// Fault-tolerant mesh router (Fig. 2 of the paper).
//
// Micro-architecture: input-queued wormhole router with virtual channels,
// credit-based flow control, X-Y routing and a 3-stage in-router pipeline
// (RC -> VA -> SA/ST) plus one link cycle, approximating Table II's 4-stage
// router. Stages are evaluated in reverse pipeline order each cycle so a
// flit advances at most one stage per cycle without double-buffering.
//
// On top of the plain router sits the link-layer fault-tolerance machinery
// of Section III, controlled by the router's current OpMode:
//  * mode 0  - flits leave unprotected; errors travel to the destination
//              where the NI's CRC catches them (end-to-end retransmission).
//  * mode 1+ - every outgoing flit is SECDED-encoded, a pristine copy is
//              retained in the output flit buffer until the downstream
//              decoder ACKs it, and a NACK triggers a link-level resend.
//  * mode 2  - additionally, each flit is proactively re-sent two cycles
//              after the original (flit pre-retransmission), hiding the
//              NACK round-trip when the first copy fails.
//  * mode 3  - additionally, every transmission stretches over 3 cycles
//              (control-signal cycle + stall), relaxing the timing path so
//              the VARIUS error probability collapses to ~0.
// rlftnoc-lint: hot-path (per-cycle step path: R4 bans node-allocating containers and .at())
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/ring_buffer.h"
#include "common/types.h"
#include "noc/channel.h"
#include "noc/flit.h"
#include "noc/noc_config.h"
#include "noc/retention.h"
#include "noc/step_effects.h"

namespace rlftnoc {

class Network;

/// Cumulative per-router activity counters; the control layer samples deltas
/// per time-step to build the RL state (Table I features).
struct RouterCounters {
  std::array<std::uint64_t, kNumPorts> flits_in{};   ///< accepted per input port
  std::array<std::uint64_t, kNumPorts> flits_out{};  ///< transmitted per output port
  std::array<std::uint64_t, kNumPorts> nacks_received{};  ///< NACKs back at our outputs
  std::array<std::uint64_t, kNumPorts> nacks_sent{};      ///< NACKs we issued at inputs
  std::array<std::uint64_t, kNumPorts> acks_received{};
  std::uint64_t hop_retransmissions = 0;  ///< link-level re-sends (upon NACK)
  std::uint64_t preretx_duplicates = 0;   ///< mode-2 proactive duplicates sent
  std::uint64_t dup_discards = 0;         ///< duplicates dropped at our inputs
  std::uint64_t ecc_corrections = 0;      ///< single-bit fixes by our decoders
  std::uint64_t ecc_uncorrectable = 0;    ///< double-bit detections at inputs
  std::uint64_t fault_drops = 0;          ///< flits destroyed by hard faults
};

/// One mesh router.
class Router {
 public:
  Router(NodeId id, const NocConfig* cfg, Network* net);

  NodeId id() const noexcept { return id_; }

  /// Current fault-tolerant operation mode (Section III); applies to all of
  /// this router's outgoing ECC links, per the per-router controller.
  OpMode mode() const noexcept { return mode_; }
  void set_mode(OpMode m) noexcept { mode_ = m; }

  /// Phase A: drain matured flits / credits / ACKs from incoming lanes.
  void receive(Cycle now);

  /// Phase B: run SA -> VA -> RC and place outgoing flits on the wires.
  void execute(Cycle now);

  /// Binds this router's shard-local staging buffer and trace sink (null
  /// trace = tracing off). Called by the Network whenever the shard
  /// partition or the tracer changes; receive/execute route every
  /// cross-shard mutation (ACK pushes, shared metric counters, trace
  /// events) through these instead of the global sinks.
  void set_effect_sinks(StepEffects* fx, TraceStage* trace) noexcept {
    fx_ = fx;
    trace_ = trace;
  }

  /// Number of occupied input VCs (RL state feature 1).
  int occupied_input_vcs() const noexcept;

  /// Total flits buffered across all input VCs (diagnostics).
  int buffered_flits() const noexcept;

  /// Pending ARQ work: retention entries + queued resends (drain check).
  int pending_link_work() const noexcept;

  /// True when the router holds no state that could produce work on its own:
  /// every input VC is idle with an empty FIFO and every output port has no
  /// retention entries or queued resends/duplicates. A quiescent router's
  /// receive/execute are no-ops as long as its incoming lanes are also empty
  /// (the network checks those), which is what licenses idle-skip stepping.
  bool quiescent() const noexcept;

  const RouterCounters& counters() const noexcept { return counters_; }

  // -- hard-fault teardown (serial context, called by the Network) --

  /// A worm severed mid-body at a dead input port: its upstream fragment is
  /// gone, but downstream routers still hold (or are forwarding) the head.
  /// The network chases the allocation chain and purges the remainder so no
  /// channel stays allocated to a worm that can never finish.
  struct SeveredWorm {
    PacketId packet = 0;
    Port out_port = Port::kLocal;
    VcId out_vc = kInvalidVc;
  };

  /// Continuation for one step of the severed-worm chain walk.
  struct ChainNext {
    bool walk = false;  ///< keep following the chain downstream
    Port out_port = Port::kLocal;
    VcId out_vc = kInvalidVc;
  };

  /// Tears down sender-side state for a dead output link: retention copies,
  /// queued resends/duplicates, and any input worm mid-flight toward it.
  void purge_dead_output(Cycle now, Port p, std::vector<LostFlit>& lost);

  /// Tears down receiver-side state for a dead input link: buffered flits
  /// (no credits back — the reverse lane is gone too), ARQ sync, and reports
  /// worms that were severed mid-body so the network can chase them.
  void purge_dead_input(Port p, std::vector<LostFlit>& lost,
                        std::vector<SeveredWorm>& severed);

  /// Wipes every buffer and protocol structure of a killed router.
  void purge_for_router_kill(std::vector<LostFlit>& lost);

  /// Removes the leading worm of `packet` from input VC (in, v) if present,
  /// returning buffer credits upstream. Part of the severed-worm chain walk.
  ChainNext purge_worm_of_packet(Cycle now, Port in, VcId v, PacketId packet,
                                 std::vector<LostFlit>& lost);

 private:
  /// Per-input-VC wormhole state machine.
  struct InputVc {
    RingBuffer<Flit> fifo;
    enum class State : std::uint8_t { kIdle, kRouting, kWaitVc, kActive } state =
        State::kIdle;
    Port out_port = Port::kLocal;
    VcId out_vc = kInvalidVc;
  };

  /// Downstream-buffer credit tracking for one output VC.
  struct OutputVc {
    bool allocated = false;
    int credits = 0;
  };

  struct OutputPort {
    std::vector<OutputVc> vcs;
    Cycle busy_until = 0;  ///< first cycle the channel is free again
    RetentionTable retention;  ///< in-flight clean copies, keyed by FlitId
    RingBuffer<FlitId> retx_queue;  ///< NACK-triggered resends
    struct PendingDup {
      Cycle earliest = 0;
      FlitId id = 0;
    };
    RingBuffer<PendingDup> dup_queue;  ///< mode-2 proactive duplicates
    std::uint64_t next_lsn = 0;        ///< link sequence stamp for new flits
    int sa_rr = 0;                     ///< round-robin pointer for SA
    int va_rr = 0;                     ///< rotating start for output-VC scan
  };

  /// Receiver-side ARQ bookkeeping for one input port: the link delivers a
  /// single in-order stream (go-back-N), so one expected sequence number is
  /// the whole state.
  struct InputArq {
    std::uint64_t expected_lsn = 0;
  };

  // -- receive-side helpers --
  void handle_incoming_flit(Cycle now, Port in_port, Flit flit);
  void accept_flit(Port in_port, Flit&& flit);
  void handle_ack(Port out_port, const AckMsg& ack);
  void send_link_response(Cycle now, Port in_port, FlitId id, VcId vc, bool nack);

  // -- execute-side stages --
  void stage_link_resend(Cycle now);  ///< NACK retx + mode-2 duplicates
  void stage_switch_allocation(Cycle now);
  void stage_vc_allocation();
  void stage_route_computation(Cycle now);

  /// Drops the flit at the front of (in, v) plus everything behind it up to
  /// (not including) the next head flit — i.e. one worm, or the headless
  /// remainder of one. Counts counters_.fault_drops; when `return_credits`,
  /// pushes a buffer credit upstream per dropped flit (skipped when the
  /// reverse lane is dead); records identities into `lost` when non-null.
  void drop_leading_worm(Cycle now, Port in, VcId v, InputVc& iv,
                         bool return_credits, std::vector<LostFlit>* lost);

  /// Places `flit` on the wire through `out_port`, applying the current
  /// mode's ECC encode / retention / stall / duplicate policy.
  /// `is_copy` marks link-level re-sends and duplicates (retention entry
  /// already exists). Updates port busy time.
  void transmit(Cycle now, Port out_port, Flit flit, bool is_copy);

  ArqRetention* find_retention(Port p, FlitId id);
  void erase_retention(Port p, FlitId id);
  void drop_queued_copies(Port p, FlitId id);

  bool ecc_enabled() const noexcept { return mode_ != OpMode::kMode0; }

  /// The invariant auditor cross-checks buffer occupancy, credit balance and
  /// ARQ bookkeeping against the rest of the network (see noc/audit.h).
  friend class NetworkAuditor;

  InputVc& ivc(Port p, VcId v) { return input_[port_index(p)][static_cast<std::size_t>(v)]; }

  NodeId id_;
  const NocConfig* cfg_;
  Network* net_;
  StepEffects* fx_ = nullptr;   ///< shard staging buffer (never null in step)
  TraceStage* trace_ = nullptr; ///< shard trace sink; null = tracing off
  OpMode mode_ = OpMode::kMode0;
  bool dateline_ = false;  ///< torus DOR: stamp/partition VCs by dateline class

  std::array<std::vector<InputVc>, kNumPorts> input_;
  std::array<OutputPort, kNumPorts> output_;
  std::array<InputArq, kNumPorts> input_arq_;
  RouterCounters counters_;
};

}  // namespace rlftnoc
