// Top-level NoC: routers, network interfaces, channels, fault injection and
// power hooks, advanced one cycle at a time.
//
// Update discipline: within one `step()` every router and NI first *receives*
// (popping only signals that matured on the delay-line channels), then every
// router and NI *executes* (pushing signals that mature next cycle). The
// visible state of a cycle is therefore independent of iteration order —
// which is what licenses running each phase data-parallel across contiguous
// node shards (`set_sim_threads`). All cross-shard mutations are staged in
// per-shard StepEffects buffers and merged after the phase barrier in
// canonical node order, so results are bit-identical for any thread count
// (see DESIGN.md, "Parallel stepping & deterministic merge").
// rlftnoc-lint: hot-path (per-cycle step path: R4 bans node-allocating containers and .at())
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "fault/hard_faults.h"
#include "fault/injector.h"
#include "fault/varius.h"
#include "noc/channel.h"
#include "noc/ni.h"
#include "noc/noc_config.h"
#include "noc/router.h"
#include "noc/step_effects.h"
#include "noc/topology.h"
#include "power/orion_lite.h"
#include "telemetry/telemetry.h"

namespace rlftnoc {

/// Network-wide roll-up metrics for one simulation phase.
struct NetworkMetrics {
  StatAccumulator packet_latency;  ///< end-to-end cycles, successful packets
  /// Latency distribution for tail percentiles (bucketed 0..20K cycles;
  /// beyond that the overflow bucket still keeps quantiles monotone).
  Histogram latency_hist{0.0, 20000.0, 2000};
  std::uint64_t packets_injected = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packet_e2e_retransmissions = 0;
  std::uint64_t flits_delivered = 0;
  std::uint64_t retx_flits_e2e = 0;   ///< flits re-sent source->dest (CRC path)
  std::uint64_t retx_flits_hop = 0;   ///< link-level NACK-triggered re-sends
  std::uint64_t dup_flits = 0;        ///< mode-2 proactive duplicates
  std::uint64_t crc_packet_failures = 0;
  Cycle last_delivery_cycle = 0;

  /// The paper's "retransmission traffic": every flit transmission beyond
  /// the first copy, whatever mechanism caused it.
  std::uint64_t total_retransmitted_flits() const noexcept {
    return retx_flits_e2e + retx_flits_hop + dup_flits;
  }

  void reset() { *this = NetworkMetrics{}; }
};

/// Per-link timing-error probabilities, refreshed by the control layer each
/// time-step from the thermal + VARIUS models.
struct LinkErrorProb {
  double normal = 0.0;   ///< single-cycle transfer (modes 0-2)
  double relaxed = 0.0;  ///< stretched mode-3 transfer
};

class Network {
 public:
  Network(const NocConfig& cfg, std::uint64_t seed, VariusParams varius = {},
          PowerParams power = {});

  // Non-copyable: routers/NIs hold back-pointers.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Advances the whole network by one cycle.
  void step();

  Cycle now() const noexcept { return now_; }
  const NocConfig& config() const noexcept { return cfg_; }
  const MeshTopology& topology() const noexcept { return topo_; }

  Router& router(NodeId n) {
    RLFTNOC_CHECK(valid_node(n), "router(%d): out of range", n);
    return *routers_[static_cast<std::size_t>(n)];
  }
  const Router& router(NodeId n) const {
    RLFTNOC_CHECK(valid_node(n), "router(%d): out of range", n);
    return *routers_[static_cast<std::size_t>(n)];
  }
  NetworkInterface& ni(NodeId n) {
    RLFTNOC_CHECK(valid_node(n), "ni(%d): out of range", n);
    return *nis_[static_cast<std::size_t>(n)];
  }
  const NetworkInterface& ni(NodeId n) const {
    RLFTNOC_CHECK(valid_node(n), "ni(%d): out of range", n);
    return *nis_[static_cast<std::size_t>(n)];
  }

  PowerModel& power() noexcept { return power_; }
  const PowerModel& power() const noexcept { return power_; }
  NetworkMetrics& metrics() noexcept { return metrics_; }
  const NetworkMetrics& metrics() const noexcept { return metrics_; }
  const VariusModel& varius() const noexcept { return varius_; }

  /// Outgoing inter-router channel of `node` through mesh port `p`;
  /// nullptr at a mesh edge or for the Local port.
  ChannelPair* out_channel(NodeId node, Port p);
  /// Incoming inter-router channel at `node`'s input port `p` (the
  /// neighbour's outgoing channel); nullptr at a mesh edge / Local.
  ChannelPair* in_channel(NodeId node, Port p);
  /// NI -> router injection channel of `node`.
  ChannelPair& inj_channel(NodeId node) {
    RLFTNOC_CHECK(valid_node(node), "inj_channel(%d): out of range", node);
    return *inj_[static_cast<std::size_t>(node)];
  }
  /// Router -> NI ejection channel of `node`.
  ChannelPair& ej_channel(NodeId node) {
    RLFTNOC_CHECK(valid_node(node), "ej_channel(%d): out of range", node);
    return *ej_[static_cast<std::size_t>(node)];
  }

  /// Sets the error probabilities of the link leaving `node` through `p`.
  void set_link_error_prob(NodeId node, Port p, LinkErrorProb prob);
  LinkErrorProb link_error_prob(NodeId node, Port p) const;

  /// Applies transient faults to a flit entering the wire at (`node`, `p`).
  /// No-op on Local links (NI wiring is short and assumed robust).
  /// `stage` is the caller's shard-local trace sink (routers transmitting
  /// inside a parallel phase); null falls back to the global tracer, which
  /// is only safe from serial context.
  void corrupt_on_wire(NodeId node, Port p, Flit& flit, bool relaxed,
                       TraceStage* stage = nullptr);

  /// Records a power event at `node`'s router.
  void record_power(NodeId node, PowerEvent e, std::uint64_t n = 1) {
    power_.record(node, e, n);
  }

  /// Schedules delivery of an end-to-end ACK / retransmission request back
  /// to the source NI of `packet` at cycle `at`.
  void schedule_e2e_response(Cycle at, NodeId src, PacketId id, bool ok);

  /// True when no packet, flit, credit, ACK or timer is in flight anywhere.
  bool drained() const;

  /// Registers hard faults (dead links / routers), validating nodes and
  /// ports against the structural topology. Faults with at_cycle <= now are
  /// applied immediately; later ones fire at the top of their step().
  /// Throws std::invalid_argument for out-of-range nodes, Local/edge-port
  /// links, or a westfirst configuration (its turn model cannot route
  /// around faults deadlock-free — see noc/routing.h).
  void schedule_hard_faults(const std::vector<HardFault>& faults);

  /// True when any hard fault was scheduled (applied or still pending).
  bool has_hard_faults() const noexcept { return !pending_faults_.empty(); }
  std::size_t hard_faults_applied() const noexcept { return faults_applied_; }
  /// Flits destroyed on dead wires / dead-router NI lanes (the conservation
  /// audit counts these alongside the routers' fault_drops).
  std::uint64_t wire_kill_drops() const noexcept { return wire_kill_drops_; }

  /// Transient-fault injector of the link leaving `node` through `p`;
  /// nullptr for absent or killed links. Tests inspect droop bookkeeping.
  const LinkFaultInjector* link_injector(NodeId node, Port p) const {
    if (p == Port::kLocal) return nullptr;
    return injectors_[link_index(node, p)].get();
  }

  /// Idle-skip diagnostics: how many per-node phase visits step() elided
  /// because the node was provably quiescent (see step() for the argument).
  std::uint64_t router_steps_skipped() const noexcept { return router_steps_skipped_; }
  std::uint64_t ni_steps_skipped() const noexcept { return ni_steps_skipped_; }

  /// RNG stream for payload generation (shared by make_packet callers that
  /// don't carry their own stream).
  Rng& payload_rng() noexcept { return payload_rng_; }

  /// Optional event tracer (telemetry). Null when tracing is off; every
  /// instrumentation site goes through RLFTNOC_TRACE, which null-checks (and
  /// compiles away entirely under RLFTNOC_TELEMETRY_DISABLED). Routers and
  /// NIs trace through per-shard staging sinks instead, re-bound here.
  EventTracer* tracer() const noexcept { return tracer_; }
  void set_tracer(EventTracer* t) noexcept {
    tracer_ = t;
    bind_effect_sinks();
  }

  /// Credits a delivered packet's end-to-end latency to every router on its
  /// X-Y path (the paper's per-router "E2E_Latency(i)" reward term).
  void add_path_latency(NodeId src, NodeId dst, double latency_cycles);

  /// Window accumulator of latencies credited to `node` (reset each control
  /// time-step by the fault-tolerant controller).
  StatAccumulator& router_latency_window(NodeId node) {
    RLFTNOC_CHECK(valid_node(node), "router_latency_window(%d): out of range",
                  node);
    return latency_window_[static_cast<std::size_t>(node)];
  }

  /// Configures deterministic intra-run parallelism for step(): the mesh is
  /// partitioned into min(threads, nodes) contiguous shards and each phase
  /// runs data-parallel across them, with cross-shard effects staged and
  /// merged in canonical node order — results are bit-identical for any
  /// value. `threads` <= 1 steps serially on the calling thread (still
  /// through the same staged path); 0 means one thread per hardware thread.
  /// Composes with campaign-level `jobs`: total worker threads is the
  /// product, so budget jobs x sim_threads against the machine.
  void set_sim_threads(unsigned threads);
  unsigned sim_threads() const noexcept { return sim_threads_; }
  /// Shards the mesh is currently partitioned into (1 when serial).
  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Parallel stepping diagnostics: cycles stepped through the pooled
  /// (multi-threaded) path vs inline, and total staged effects merged.
  /// Deterministic — staging happens identically on both paths.
  std::uint64_t pooled_phase_dispatches() const noexcept {
    return pooled_phase_dispatches_;
  }
  std::uint64_t staged_effects_merged() const noexcept {
    return staged_effects_merged_;
  }

 private:
  /// The invariant auditor walks every channel delay line (see noc/audit.h).
  friend class NetworkAuditor;

  struct E2eEvent {
    Cycle at;
    NodeId src;
    PacketId id;
    bool ok;
    /// Min-heap on `at`; seq breaks ties so delivery order is deterministic.
    std::uint64_t seq;
    friend bool operator>(const E2eEvent& a, const E2eEvent& b) noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  std::size_t link_index(NodeId node, Port p) const noexcept {
    return static_cast<std::size_t>(node) * kNumPorts + port_index(p);
  }

  bool valid_node(NodeId n) const noexcept {
    return n >= 0 && static_cast<std::size_t>(n) < routers_.size();
  }

  bool router_has_work(NodeId node) const;
  bool ni_has_work(NodeId node) const;

  /// Contiguous node range [lo, hi) owned by one shard.
  struct Shard {
    NodeId lo = 0;
    NodeId hi = 0;
  };

  /// (Re)partitions the mesh into `shards` contiguous node ranges and binds
  /// every router/NI to its shard's StepEffects + trace stage.
  void build_shards(std::size_t shards);
  /// Re-binds the per-node trace sinks (after set_tracer / build_shards).
  void bind_effect_sinks();

  /// Runs f(shard_index) for every shard — pooled when `pooled`, else
  /// inline in ascending shard order. The choice cannot affect results:
  /// both orders produce the same per-shard staging buffers.
  template <typename F>
  void for_each_shard(bool pooled, F&& f);

  /// Applies every shard's staged effects in canonical order (shard-major =
  /// ascending node order, matching the serial stepper). See step().
  void merge_effects(Cycle now);

  // -- hard-fault application (serial, between steps; see DESIGN.md) --
  void apply_due_hard_faults();
  void kill_link_internal(NodeId node, Port p, std::vector<LostFlit>& lost);
  void kill_router_internal(NodeId node, std::vector<LostFlit>& lost);
  /// Chases a severed worm's downstream allocation chain starting at the
  /// router that reported it, purging one input VC per hop.
  void purge_worm_chain(Cycle now, NodeId from, Router::SeveredWorm worm,
                        std::vector<LostFlit>& lost);
  /// Rebuilds routes and runs packet-level repair over the lost-flit list.
  void finish_fault_application(std::vector<LostFlit>& lost);

  NocConfig cfg_;
  MeshTopology topo_;
  Cycle now_ = 0;

  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<NetworkInterface>> nis_;
  /// out_ch_[node*5+port]: inter-router channels (null at edges / Local).
  std::vector<std::unique_ptr<ChannelPair>> out_ch_;
  std::vector<std::unique_ptr<ChannelPair>> inj_;
  std::vector<std::unique_ptr<ChannelPair>> ej_;

  VariusModel varius_;
  PowerModel power_;
  NetworkMetrics metrics_;

  std::vector<LinkErrorProb> link_prob_;
  std::vector<std::unique_ptr<LinkFaultInjector>> injectors_;

  std::priority_queue<E2eEvent, std::vector<E2eEvent>, std::greater<>> e2e_events_;
  std::uint64_t e2e_seq_ = 0;

  /// Scheduled hard faults, sorted by at_cycle from next_fault_ on;
  /// [0, next_fault_) have been applied.
  std::vector<HardFault> pending_faults_;
  std::size_t next_fault_ = 0;
  std::size_t faults_applied_ = 0;
  std::uint64_t wire_kill_drops_ = 0;

  std::vector<StatAccumulator> latency_window_;

  EventTracer* tracer_ = nullptr;

  /// Per-node skip flags, recomputed each step() (scratch, reused to avoid
  /// per-cycle allocation).
  std::vector<std::uint8_t> skip_router_;
  std::vector<std::uint8_t> skip_ni_;
  std::uint64_t router_steps_skipped_ = 0;
  std::uint64_t ni_steps_skipped_ = 0;

  // -- parallel stepping (see step() and DESIGN.md) --
  unsigned sim_threads_ = 1;
  std::vector<Shard> shards_;        ///< contiguous, ascending, cover [0, n)
  std::vector<StepEffects> fx_;      ///< one staging buffer per shard
  std::unique_ptr<PhasePool> pool_;  ///< null when sim_threads_ <= 1
  std::uint64_t pooled_phase_dispatches_ = 0;
  std::uint64_t staged_effects_merged_ = 0;

  Rng payload_rng_;
};

}  // namespace rlftnoc
