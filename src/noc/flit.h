// Flit and packet representations.
//
// Packets are segmented into flits (Table II: 4 flits of 128 bits). The
// payload is real data: the source NI fills it from a seeded RNG, computes a
// per-flit CRC-32, and the fault injector flips payload bits in flight, so
// end-to-end detection behaves exactly like the code it models.
//
// Header fields (src/dst/vc/sequence) ride as side-band metadata and are
// never corrupted; real routers protect the header with a dedicated stronger
// code, and the paper's error model targets the datapath (see DESIGN.md).
// rlftnoc-lint: hot-path (per-cycle step path: R4 bans node-allocating containers and .at())
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "common/types.h"
#include "coding/secded.h"

namespace rlftnoc {

/// Position of a flit within its packet.
enum class FlitType : std::uint8_t {
  kHead = 0,
  kBody = 1,
  kTail = 2,
  kHeadTail = 3,  ///< single-flit packet
};

/// Globally unique flit identity: packet id in the high bits, sequence in
/// the low byte. Used by the per-hop ARQ to match ACK/NACKs and duplicates.
using FlitId = std::uint64_t;

constexpr FlitId make_flit_id(PacketId pkt, std::uint32_t seq) noexcept {
  return (pkt << 8) | (seq & 0xFFu);
}

/// The unit of link-level transfer.
struct Flit {
  FlitType type = FlitType::kHead;
  PacketId packet_id = 0;
  std::uint32_t seq = 0;       ///< flit index within the packet
  std::uint32_t packet_len = 1;///< total flits in the packet
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  VcId vc = kInvalidVc;        ///< VC at the *receiving* input port

  BitVec128 payload;           ///< 128 data bits (mutable by faults)
  std::uint32_t crc = 0;       ///< flit CRC computed once at the source NI

  /// Per-hop ECC state: valid only while crossing an ECC-enabled link.
  FlitEcc ecc;
  bool ecc_valid = false;

  Cycle packet_inject_cycle = kInvalidCycle;  ///< when the packet entered the source NI queue
  bool hop_retransmission = false;            ///< this copy is a link-level re-send

  /// End-to-end injection generation. A hard fault that destroys part of a
  /// packet in flight triggers a source re-injection with a higher attempt;
  /// the destination NI uses the tag to drop stale stragglers of the old
  /// generation instead of mixing two generations into one reassembly.
  std::uint8_t attempt = 0;

  /// Dateline VC class for torus dimension-ordered routing (0 before the
  /// wrap link of the current dimension, 1 after). Stamped on head flits by
  /// the RC stage; unused (always 0) on a mesh.
  std::uint8_t vc_class = 0;

  /// Link sequence number, stamped per (router, output port) at first
  /// transmission. The link layer delivers in-order (go-back-N): a receiver
  /// NACKs any flit arriving ahead of the expected sequence and ACK-drops
  /// any duplicate behind it, so rejected flits can never be overtaken.
  std::uint64_t lsn = 0;

  FlitId id() const noexcept { return make_flit_id(packet_id, seq); }
  bool is_head() const noexcept {
    return type == FlitType::kHead || type == FlitType::kHeadTail;
  }
  bool is_tail() const noexcept {
    return type == FlitType::kTail || type == FlitType::kHeadTail;
  }
};

/// Identity of a flit destroyed by hard-fault teardown. The network collects
/// these while killing links/routers and decides once per damaged packet
/// whether to request an end-to-end retransmission or abandon the packet.
struct LostFlit {
  PacketId packet = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
};

/// A packet awaiting injection (or retained at the source for possible
/// end-to-end retransmission).
struct Packet {
  PacketId id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Cycle inject_cycle = kInvalidCycle;  ///< creation time at the source NI
  std::vector<Flit> flits;             ///< pristine flits (CRC already set)
};

}  // namespace rlftnoc
