#include "noc/network.h"

#include <algorithm>
#include <string>
#include <thread>

namespace rlftnoc {

namespace {
/// Minimum busy router+NI visits in a cycle before the pooled path pays for
/// its dispatch overhead; below it the phases run inline on the caller.
/// Purely a performance knob — both paths produce identical staging.
constexpr std::uint64_t kMinBusyVisitsForPool = 8;
/// Minimum mesh size before the flags phase itself is worth pooling.
constexpr std::size_t kMinNodesForPooledFlags = 256;
}  // namespace

Network::Network(const NocConfig& cfg, std::uint64_t seed, VariusParams varius,
                 PowerParams power)
    : cfg_(cfg),
      topo_(cfg),
      varius_(varius),
      power_(cfg.num_nodes(), power),
      payload_rng_(seed, "payload") {
  cfg_.validate();
  const int n = cfg_.num_nodes();
  latency_window_.resize(static_cast<std::size_t>(n));

  out_ch_.resize(static_cast<std::size_t>(n) * kNumPorts);
  link_prob_.resize(static_cast<std::size_t>(n) * kNumPorts);
  injectors_.resize(static_cast<std::size_t>(n) * kNumPorts);

  for (NodeId node = 0; node < n; ++node) {
    for (const Port p : kAllPorts) {
      if (p == Port::kLocal) continue;
      if (topo_.neighbor(node, p) == kInvalidNode) continue;
      const std::size_t idx = link_index(node, p);
      out_ch_[idx] = std::make_unique<ChannelPair>();
      injectors_[idx] = std::make_unique<LinkFaultInjector>(
          &varius_, seed, "link:" + std::to_string(node) + ":" + port_name(p));
    }
  }

  inj_.reserve(static_cast<std::size_t>(n));
  ej_.reserve(static_cast<std::size_t>(n));
  routers_.reserve(static_cast<std::size_t>(n));
  nis_.reserve(static_cast<std::size_t>(n));
  for (NodeId node = 0; node < n; ++node) {
    inj_.push_back(std::make_unique<ChannelPair>());
    ej_.push_back(std::make_unique<ChannelPair>());
  }
  for (NodeId node = 0; node < n; ++node) {
    routers_.push_back(std::make_unique<Router>(node, &cfg_, this));
    nis_.push_back(std::make_unique<NetworkInterface>(node, &cfg_, this));
  }
  skip_router_.assign(static_cast<std::size_t>(n), 0);
  skip_ni_.assign(static_cast<std::size_t>(n), 0);
  build_shards(1);
}

void Network::set_sim_threads(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  sim_threads_ = threads;
  const auto n = routers_.size();
  const std::size_t shards = std::min<std::size_t>(threads, n ? n : 1);
  build_shards(shards);
  if (shards > 1) {
    pool_ = std::make_unique<PhasePool>(threads - 1);
  } else {
    pool_.reset();
  }
}

void Network::build_shards(std::size_t shards) {
  const auto n = static_cast<NodeId>(routers_.size());
  if (shards == 0) shards = 1;
  shards_.clear();
  // Even split; the first (n % shards) shards take one extra node, so the
  // ranges are contiguous, ascending, and cover [0, n) exactly.
  const NodeId base = n / static_cast<NodeId>(shards);
  const NodeId extra = n % static_cast<NodeId>(shards);
  NodeId lo = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const NodeId len = base + (static_cast<NodeId>(s) < extra ? 1 : 0);
    shards_.push_back(Shard{lo, lo + len});
    lo += len;
  }
  RLFTNOC_CHECK(lo == n, "shard partition covers %d of %d nodes", lo, n);
  fx_ = std::vector<StepEffects>(shards_.size());
  bind_effect_sinks();
}

void Network::bind_effect_sinks() {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    StepEffects* fx = &fx_[s];
    for (NodeId node = shards_[s].lo; node < shards_[s].hi; ++node) {
      routers_[static_cast<std::size_t>(node)]->set_effect_sinks(
          fx, tracer_ != nullptr ? &fx->router_trace : nullptr);
      nis_[static_cast<std::size_t>(node)]->set_effect_sinks(
          fx, tracer_ != nullptr ? &fx->ni_trace : nullptr);
    }
  }
}

ChannelPair* Network::out_channel(NodeId node, Port p) {
  if (p == Port::kLocal) return nullptr;
  return out_ch_[link_index(node, p)].get();
}

ChannelPair* Network::in_channel(NodeId node, Port p) {
  if (p == Port::kLocal) return nullptr;
  const NodeId nb = topo_.neighbor(node, p);
  if (nb == kInvalidNode) return nullptr;
  return out_ch_[link_index(nb, opposite(p))].get();
}

void Network::set_link_error_prob(NodeId node, Port p, LinkErrorProb prob) {
  const std::size_t idx = link_index(node, p);
  RLFTNOC_CHECK(idx < link_prob_.size(),
                "set_link_error_prob(%d, %s): out of range", node, port_name(p));
  link_prob_[idx] = prob;
}

LinkErrorProb Network::link_error_prob(NodeId node, Port p) const {
  const std::size_t idx = link_index(node, p);
  RLFTNOC_CHECK(idx < link_prob_.size(), "link_error_prob(%d, %s): out of range",
                node, port_name(p));
  return link_prob_[idx];
}

void Network::corrupt_on_wire(NodeId node, Port p, Flit& flit, bool relaxed,
                              TraceStage* stage) {
  if (p == Port::kLocal) return;
  const std::size_t idx = link_index(node, p);
  RLFTNOC_CHECK(idx < injectors_.size(), "corrupt_on_wire(%d, %s): out of range",
                node, port_name(p));
  LinkFaultInjector* inj = injectors_[idx].get();
  if (inj == nullptr) return;
  const LinkErrorProb& prob = link_prob_[idx];
  const double pe = relaxed ? prob.relaxed : prob.normal;
  if (pe <= 0.0) return;
  const InjectionResult res =
      inj->inject(flit.payload, flit.ecc_valid ? &flit.ecc : nullptr, pe);
  if (res.error_event) {
    if (stage != nullptr) {
      RLFTNOC_TRACE(stage, TraceEventKind::kFaultInjected, now_, node,
                    static_cast<std::int8_t>(port_index(p)), res.bits_flipped);
    } else {
      RLFTNOC_TRACE(tracer_, TraceEventKind::kFaultInjected, now_, node,
                    static_cast<std::int8_t>(port_index(p)), res.bits_flipped);
    }
  }
}

void Network::add_path_latency(NodeId src, NodeId dst, double latency_cycles) {
  // Walk the deterministic X-Y path and credit every traversed router. The
  // port -> node-id step is inlined (row-major layout) so the walk is one
  // LUT load plus an add per hop.
  const NodeId w = topo_.width();
  NodeId cur = src;
  latency_window_[static_cast<std::size_t>(cur)].add(latency_cycles);
  while (cur != dst) {
    switch (topo_.xy_route(cur, dst)) {
      case Port::kEast: ++cur; break;
      case Port::kWest: --cur; break;
      case Port::kNorth: cur += w; break;
      case Port::kSouth: cur -= w; break;
      case Port::kLocal: return;  // unreachable: loop guard is cur != dst
    }
    latency_window_[static_cast<std::size_t>(cur)].add(latency_cycles);
  }
}

void Network::schedule_e2e_response(Cycle at, NodeId src, PacketId id, bool ok) {
  e2e_events_.push(E2eEvent{at, src, id, ok, e2e_seq_++});
}

bool Network::router_has_work(NodeId node) const {
  const auto i = static_cast<std::size_t>(node);
  // Internal state that can produce output on its own.
  if (!routers_[i]->quiescent()) return true;
  // Anything sitting on an incoming lane, mature or not: flits arriving on
  // mesh links or from the local NI, credits/ACKs returning on outgoing
  // links, credits returning from the ejection wire. Maturity is ignored on
  // purpose — an immature entry just keeps the node un-skipped a cycle or
  // two early, which is conservative.
  for (const Port p : kAllPorts) {
    if (p == Port::kLocal) continue;
    const NodeId nb = topo_.neighbor(node, p);
    if (nb != kInvalidNode) {
      const ChannelPair& in = *out_ch_[link_index(nb, opposite(p))];
      if (!in.flits.empty()) return true;
    }
    if (const auto& out = out_ch_[link_index(node, p)]) {
      if (!out->credits.empty() || !out->acks.empty()) return true;
    }
  }
  if (!inj_[i]->flits.empty()) return true;
  if (!ej_[i]->credits.empty()) return true;
  return false;
}

bool Network::ni_has_work(NodeId node) const {
  const auto i = static_cast<std::size_t>(node);
  if (!nis_[i]->injection_idle()) return true;
  if (!ej_[i]->flits.empty()) return true;   // ejection side would pop
  if (!inj_[i]->credits.empty()) return true;  // credit return would pop
  return false;
}

template <typename F>
void Network::for_each_shard(bool pooled, F&& f) {
  if (pooled && pool_ != nullptr && shards_.size() > 1) {
    ++pooled_phase_dispatches_;
    pool_->run(shards_.size(), f);
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) f(s);
  }
}

void Network::merge_effects(Cycle now) {
  // Canonical merge: one pass over the shards per effect kind, in shard
  // order (= ascending node order, matching the serial stepper's emission
  // order). Per kind:
  //  * trace — router streams first, then NI streams, because the serial
  //    stepper runs all routers before all NIs within a phase,
  //  * ACKs — replayed pushes with the same `now` stamp they would have had
  //    inline; they mature at now+1 either way, and each ack lane has a
  //    single producer, so per-lane order is the producer's staging order,
  //  * e2e events — `e2e_seq_` is assigned here, so the tie-break stream is
  //    the canonical order for any shard count,
  //  * latency samples / path credits — replayed through the global
  //    accumulators in delivery order (FP addition order preserved),
  //  * counters — plain sums.
  for (StepEffects& fx : fx_) {
    staged_effects_merged_ += fx.router_trace.size();
    fx.router_trace.drain_into(tracer_);
  }
  for (StepEffects& fx : fx_) {
    staged_effects_merged_ += fx.ni_trace.size();
    fx.ni_trace.drain_into(tracer_);
  }
  for (StepEffects& fx : fx_) {
    staged_effects_merged_ +=
        fx.acks.size() + fx.e2e.size() + fx.path_credits.size();
    for (const StepEffects::StagedAck& a : fx.acks) a.lane->push(now, a.msg);
    for (const StepEffects::StagedE2e& e : fx.e2e)
      e2e_events_.push(E2eEvent{e.at, e.src, e.id, e.ok, e2e_seq_++});
    for (const StepEffects::StagedPathCredit& c : fx.path_credits)
      add_path_latency(c.src, c.dst, c.latency);
    if (!fx.latency_samples.empty()) {
      for (const double v : fx.latency_samples) {
        metrics_.packet_latency.add(v);
        metrics_.latency_hist.add(v);
      }
      metrics_.last_delivery_cycle = now;
    }
    metrics_.packets_injected += fx.packets_injected;
    metrics_.packets_delivered += fx.packets_delivered;
    metrics_.flits_delivered += fx.flits_delivered;
    metrics_.retx_flits_hop += fx.retx_flits_hop;
    metrics_.dup_flits += fx.dup_flits;
    metrics_.crc_packet_failures += fx.crc_packet_failures;
    fx.clear_posts();
  }
}

void Network::step() {
  const Cycle t = now_;
  // End-to-end responses drain serially before the phases: delivery may
  // refill an NI (reinject queue), which the skip flags must observe. This
  // path keeps the direct metric/trace sinks — it never runs inside a
  // parallel phase.
  while (!e2e_events_.empty() && e2e_events_.top().at <= t) {
    const E2eEvent ev = e2e_events_.top();
    e2e_events_.pop();
    ni(ev.src).deliver_e2e_response(t, ev.id, ev.ok);
  }

  // Idle-skip: a node whose internal state is quiescent and whose incoming
  // lanes are all empty cannot change any state this cycle — receive() would
  // pop nothing and every execute() stage scans empty/idle structures, with
  // no RNG draws, counter updates or power events on those paths. Skipping
  // the visit is therefore observationally equivalent (bit-identical), not
  // an approximation. Flags are computed once up front, after the e2e drain
  // (which may refill an NI), and before any phase runs: all cross-node
  // signals travel through delay lines with latency >= 1, so nothing pushed
  // during this cycle's phases could have made a skipped node busy at t.
  //
  // The flags phase only *reads* settled network state and writes per-node
  // slots plus per-shard counters, so it parallelizes as-is (pooled only on
  // large meshes — the work per node is a handful of empty() checks).
  const std::size_t n = routers_.size();
  for_each_shard(n >= kMinNodesForPooledFlags, [&](std::size_t s) {
    StepEffects& fx = fx_[s];
    for (NodeId node = shards_[s].lo; node < shards_[s].hi; ++node) {
      const auto i = static_cast<std::size_t>(node);
      skip_router_[i] = router_has_work(node) ? 0 : 1;
      skip_ni_[i] = ni_has_work(node) ? 0 : 1;
      fx.router_skipped += skip_router_[i];
      fx.ni_skipped += skip_ni_[i];
      fx.busy_visits += (2u - skip_router_[i]) - skip_ni_[i];
    }
  });
  std::uint64_t busy = 0;
  for (StepEffects& fx : fx_) {
    router_steps_skipped_ += fx.router_skipped;
    ni_steps_skipped_ += fx.ni_skipped;
    busy += fx.busy_visits;
    fx.router_skipped = 0;
    fx.ni_skipped = 0;
    fx.busy_visits = 0;
  }

  // Phase discipline (same as the serial stepper, with barriers between
  // phases): all routers receive, all NIs receive, all routers execute, all
  // NIs execute. Within a shard task the nodes run in ascending order,
  // routers before NIs — so a shard never races its own NI/router pair on
  // their shared inj/ej lanes, and the staged-effect emission order equals
  // the serial order. Whether a phase runs pooled or inline depends only on
  // the (deterministic) busy count, never on timing.
  const bool pooled = busy >= kMinBusyVisitsForPool;

  for_each_shard(pooled, [&](std::size_t s) {
    for (NodeId node = shards_[s].lo; node < shards_[s].hi; ++node) {
      const auto i = static_cast<std::size_t>(node);
      if (!skip_router_[i]) routers_[i]->receive(t);
    }
    for (NodeId node = shards_[s].lo; node < shards_[s].hi; ++node) {
      const auto i = static_cast<std::size_t>(node);
      if (!skip_ni_[i]) nis_[i]->receive(t);
    }
  });
  merge_effects(t);

  for_each_shard(pooled, [&](std::size_t s) {
    for (NodeId node = shards_[s].lo; node < shards_[s].hi; ++node) {
      const auto i = static_cast<std::size_t>(node);
      if (!skip_router_[i]) routers_[i]->execute(t);
    }
    for (NodeId node = shards_[s].lo; node < shards_[s].hi; ++node) {
      const auto i = static_cast<std::size_t>(node);
      if (!skip_ni_[i]) nis_[i]->execute(t);
    }
  });
  merge_effects(t);

  ++now_;
}

bool Network::drained() const {
  for (const auto& n : nis_) {
    if (!n->idle()) return false;
  }
  for (const auto& r : routers_) {
    if (r->buffered_flits() != 0 || r->pending_link_work() != 0) return false;
  }
  for (const auto& ch : out_ch_) {
    if (ch && !ch->flits.empty()) return false;
  }
  for (const auto& ch : inj_) {
    if (!ch->flits.empty()) return false;
  }
  for (const auto& ch : ej_) {
    if (!ch->flits.empty()) return false;
  }
  return e2e_events_.empty();
}

}  // namespace rlftnoc
