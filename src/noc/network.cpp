#include "noc/network.h"

#include <string>

namespace rlftnoc {

Network::Network(const NocConfig& cfg, std::uint64_t seed, VariusParams varius,
                 PowerParams power)
    : cfg_(cfg),
      topo_(cfg),
      varius_(varius),
      power_(cfg.num_nodes(), power),
      payload_rng_(seed, "payload") {
  cfg_.validate();
  const int n = cfg_.num_nodes();
  latency_window_.resize(static_cast<std::size_t>(n));

  out_ch_.resize(static_cast<std::size_t>(n) * kNumPorts);
  link_prob_.resize(static_cast<std::size_t>(n) * kNumPorts);
  injectors_.resize(static_cast<std::size_t>(n) * kNumPorts);

  for (NodeId node = 0; node < n; ++node) {
    for (const Port p : kAllPorts) {
      if (p == Port::kLocal) continue;
      if (topo_.neighbor(node, p) == kInvalidNode) continue;
      const std::size_t idx = link_index(node, p);
      out_ch_[idx] = std::make_unique<ChannelPair>();
      injectors_[idx] = std::make_unique<LinkFaultInjector>(
          &varius_, seed, "link:" + std::to_string(node) + ":" + port_name(p));
    }
  }

  inj_.reserve(static_cast<std::size_t>(n));
  ej_.reserve(static_cast<std::size_t>(n));
  routers_.reserve(static_cast<std::size_t>(n));
  nis_.reserve(static_cast<std::size_t>(n));
  for (NodeId node = 0; node < n; ++node) {
    inj_.push_back(std::make_unique<ChannelPair>());
    ej_.push_back(std::make_unique<ChannelPair>());
  }
  for (NodeId node = 0; node < n; ++node) {
    routers_.push_back(std::make_unique<Router>(node, &cfg_, this));
    nis_.push_back(std::make_unique<NetworkInterface>(node, &cfg_, this));
  }
}

ChannelPair* Network::out_channel(NodeId node, Port p) {
  if (p == Port::kLocal) return nullptr;
  return out_ch_[link_index(node, p)].get();
}

ChannelPair* Network::in_channel(NodeId node, Port p) {
  if (p == Port::kLocal) return nullptr;
  const NodeId nb = topo_.neighbor(node, p);
  if (nb == kInvalidNode) return nullptr;
  return out_ch_[link_index(nb, opposite(p))].get();
}

void Network::set_link_error_prob(NodeId node, Port p, LinkErrorProb prob) {
  link_prob_.at(link_index(node, p)) = prob;
}

LinkErrorProb Network::link_error_prob(NodeId node, Port p) const {
  return link_prob_.at(link_index(node, p));
}

void Network::corrupt_on_wire(NodeId node, Port p, Flit& flit, bool relaxed) {
  if (p == Port::kLocal) return;
  const std::size_t idx = link_index(node, p);
  LinkFaultInjector* inj = injectors_[idx].get();
  if (inj == nullptr) return;
  const LinkErrorProb& prob = link_prob_[idx];
  const double pe = relaxed ? prob.relaxed : prob.normal;
  if (pe <= 0.0) return;
  const InjectionResult res =
      inj->inject(flit.payload, flit.ecc_valid ? &flit.ecc : nullptr, pe);
  if (res.error_event) {
    RLFTNOC_TRACE(tracer_, TraceEventKind::kFaultInjected, now_, node,
                  static_cast<std::int8_t>(port_index(p)), res.bits_flipped);
  }
}

void Network::add_path_latency(NodeId src, NodeId dst, double latency_cycles) {
  // Walk the deterministic X-Y path and credit every traversed router.
  NodeId cur = src;
  latency_window_[static_cast<std::size_t>(cur)].add(latency_cycles);
  while (cur != dst) {
    cur = topo_.neighbor(cur, topo_.xy_route(cur, dst));
    latency_window_[static_cast<std::size_t>(cur)].add(latency_cycles);
  }
}

void Network::schedule_e2e_response(Cycle at, NodeId src, PacketId id, bool ok) {
  e2e_events_.push(E2eEvent{at, src, id, ok, e2e_seq_++});
}

void Network::step() {
  const Cycle t = now_;
  while (!e2e_events_.empty() && e2e_events_.top().at <= t) {
    const E2eEvent ev = e2e_events_.top();
    e2e_events_.pop();
    ni(ev.src).deliver_e2e_response(t, ev.id, ev.ok);
  }
  for (auto& r : routers_) r->receive(t);
  for (auto& n : nis_) n->receive(t);
  for (auto& r : routers_) r->execute(t);
  for (auto& n : nis_) n->execute(t);
  ++now_;
}

bool Network::drained() const {
  for (const auto& n : nis_) {
    if (!n->idle()) return false;
  }
  for (const auto& r : routers_) {
    if (r->buffered_flits() != 0 || r->pending_link_work() != 0) return false;
  }
  for (const auto& ch : out_ch_) {
    if (ch && !ch->flits.empty()) return false;
  }
  for (const auto& ch : inj_) {
    if (!ch->flits.empty()) return false;
  }
  for (const auto& ch : ej_) {
    if (!ch->flits.empty()) return false;
  }
  return e2e_events_.empty();
}

}  // namespace rlftnoc
