// rlftnoc-lint: hot-path (per-cycle step path: R4 bans node-allocating containers and .at())
#include "noc/network.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace rlftnoc {

namespace {
/// Minimum busy router+NI visits in a cycle before the pooled path pays for
/// its dispatch overhead; below it the phases run inline on the caller.
/// Purely a performance knob — both paths produce identical staging.
constexpr std::uint64_t kMinBusyVisitsForPool = 8;
/// Minimum mesh size before the flags phase itself is worth pooling.
constexpr std::size_t kMinNodesForPooledFlags = 256;
}  // namespace

Network::Network(const NocConfig& cfg, std::uint64_t seed, VariusParams varius,
                 PowerParams power)
    : cfg_(cfg),
      topo_(cfg),
      varius_(varius),
      power_(cfg.num_nodes(), power),
      payload_rng_(seed, "payload") {
  cfg_.validate();
  const int n = cfg_.num_nodes();
  latency_window_.resize(static_cast<std::size_t>(n));

  out_ch_.resize(static_cast<std::size_t>(n) * kNumPorts);
  link_prob_.resize(static_cast<std::size_t>(n) * kNumPorts);
  injectors_.resize(static_cast<std::size_t>(n) * kNumPorts);

  for (NodeId node = 0; node < n; ++node) {
    for (const Port p : kAllPorts) {
      if (p == Port::kLocal) continue;
      if (topo_.neighbor(node, p) == kInvalidNode) continue;
      const std::size_t idx = link_index(node, p);
      out_ch_[idx] = std::make_unique<ChannelPair>();
      injectors_[idx] = std::make_unique<LinkFaultInjector>(
          &varius_, seed, "link:" + std::to_string(node) + ":" + port_name(p));
    }
  }

  inj_.reserve(static_cast<std::size_t>(n));
  ej_.reserve(static_cast<std::size_t>(n));
  routers_.reserve(static_cast<std::size_t>(n));
  nis_.reserve(static_cast<std::size_t>(n));
  for (NodeId node = 0; node < n; ++node) {
    inj_.push_back(std::make_unique<ChannelPair>());
    ej_.push_back(std::make_unique<ChannelPair>());
  }
  for (NodeId node = 0; node < n; ++node) {
    routers_.push_back(std::make_unique<Router>(node, &cfg_, this));
    nis_.push_back(std::make_unique<NetworkInterface>(node, &cfg_, this));
  }
  skip_router_.assign(static_cast<std::size_t>(n), 0);
  skip_ni_.assign(static_cast<std::size_t>(n), 0);
  build_shards(1);
}

void Network::set_sim_threads(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  sim_threads_ = threads;
  const auto n = routers_.size();
  const std::size_t shards = std::min<std::size_t>(threads, n ? n : 1);
  build_shards(shards);
  if (shards > 1) {
    pool_ = std::make_unique<PhasePool>(threads - 1);
  } else {
    pool_.reset();
  }
}

void Network::build_shards(std::size_t shards) {
  const auto n = static_cast<NodeId>(routers_.size());
  if (shards == 0) shards = 1;
  shards_.clear();
  // Even split; the first (n % shards) shards take one extra node, so the
  // ranges are contiguous, ascending, and cover [0, n) exactly.
  const NodeId base = n / static_cast<NodeId>(shards);
  const NodeId extra = n % static_cast<NodeId>(shards);
  NodeId lo = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const NodeId len = base + (static_cast<NodeId>(s) < extra ? 1 : 0);
    shards_.push_back(Shard{lo, lo + len});
    lo += len;
  }
  RLFTNOC_CHECK(lo == n, "shard partition covers %d of %d nodes", lo, n);
  fx_ = std::vector<StepEffects>(shards_.size());
  bind_effect_sinks();
}

void Network::bind_effect_sinks() {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    StepEffects* fx = &fx_[s];
    for (NodeId node = shards_[s].lo; node < shards_[s].hi; ++node) {
      routers_[static_cast<std::size_t>(node)]->set_effect_sinks(
          fx, tracer_ != nullptr ? &fx->router_trace : nullptr);
      nis_[static_cast<std::size_t>(node)]->set_effect_sinks(
          fx, tracer_ != nullptr ? &fx->ni_trace : nullptr);
    }
  }
}

ChannelPair* Network::out_channel(NodeId node, Port p) {
  if (p == Port::kLocal) return nullptr;
  return out_ch_[link_index(node, p)].get();
}

ChannelPair* Network::in_channel(NodeId node, Port p) {
  if (p == Port::kLocal) return nullptr;
  const NodeId nb = topo_.neighbor(node, p);
  if (nb == kInvalidNode) return nullptr;
  return out_ch_[link_index(nb, opposite(p))].get();
}

void Network::set_link_error_prob(NodeId node, Port p, LinkErrorProb prob) {
  const std::size_t idx = link_index(node, p);
  RLFTNOC_CHECK(idx < link_prob_.size(),
                "set_link_error_prob(%d, %s): out of range", node, port_name(p));
  link_prob_[idx] = prob;
}

LinkErrorProb Network::link_error_prob(NodeId node, Port p) const {
  const std::size_t idx = link_index(node, p);
  RLFTNOC_CHECK(idx < link_prob_.size(), "link_error_prob(%d, %s): out of range",
                node, port_name(p));
  return link_prob_[idx];
}

void Network::corrupt_on_wire(NodeId node, Port p, Flit& flit, bool relaxed,
                              TraceStage* stage) {
  if (p == Port::kLocal) return;
  const std::size_t idx = link_index(node, p);
  RLFTNOC_CHECK(idx < injectors_.size(), "corrupt_on_wire(%d, %s): out of range",
                node, port_name(p));
  LinkFaultInjector* inj = injectors_[idx].get();
  if (inj == nullptr) return;
  const LinkErrorProb& prob = link_prob_[idx];
  const double pe = relaxed ? prob.relaxed : prob.normal;
  if (pe <= 0.0) return;
  const InjectionResult res =
      inj->inject(flit.payload, flit.ecc_valid ? &flit.ecc : nullptr, pe);
  if (res.error_event) {
    if (stage != nullptr) {
      RLFTNOC_TRACE(stage, TraceEventKind::kFaultInjected, now_, node,
                    static_cast<std::int8_t>(port_index(p)), res.bits_flipped);
    } else {
      RLFTNOC_TRACE(tracer_, TraceEventKind::kFaultInjected, now_, node,
                    static_cast<std::int8_t>(port_index(p)), res.bits_flipped);
    }
  }
}

void Network::add_path_latency(NodeId src, NodeId dst, double latency_cycles) {
  // Walk the active routing policy's committed path and credit every
  // traversed router. Each hop is one LUT load plus an add; the hop bound
  // keeps a (transiently) inconsistent post-fault LUT from hanging the walk.
  NodeId cur = src;
  latency_window_[static_cast<std::size_t>(cur)].add(latency_cycles);
  int hops = 0;
  const int max_hops = cfg_.num_nodes();
  while (cur != dst && hops++ < max_hops) {
    const std::uint8_t r = topo_.route_raw(cur, dst);
    if (r == Topology::kUnreachable || static_cast<Port>(r) == Port::kLocal)
      return;
    cur = topo_.neighbor(cur, static_cast<Port>(r));
    if (cur == kInvalidNode) return;
    latency_window_[static_cast<std::size_t>(cur)].add(latency_cycles);
  }
}

void Network::schedule_e2e_response(Cycle at, NodeId src, PacketId id, bool ok) {
  e2e_events_.push(E2eEvent{at, src, id, ok, e2e_seq_++});
}

// --------------------------------------------------------------------------
// Hard faults (serial context — applied between steps, never inside a phase)
// --------------------------------------------------------------------------

void Network::schedule_hard_faults(const std::vector<HardFault>& faults) {
  if (faults.empty()) return;
  if (cfg_.routing == RoutingAlgorithm::kWestFirst)
    throw std::invalid_argument(
        "hard faults: westfirst routing does not support hard faults (its "
        "turn model cannot route around dead links deadlock-free); use xy, "
        "yx or adaptive");
  for (const HardFault& f : faults) {
    if (!valid_node(f.node))
      throw std::invalid_argument("hard fault: node " +
                                  std::to_string(f.node) + " out of range");
    if (f.kind == HardFault::Kind::kLink) {
      if (f.port == Port::kLocal)
        throw std::invalid_argument(
            "hard fault: the Local port cannot be killed (use router:NODE)");
      if (topo_.neighbor(f.node, f.port) == kInvalidNode)
        throw std::invalid_argument(
            "hard fault: node " + std::to_string(f.node) + " has no " +
            port_name(f.port) + " link");
    }
    pending_faults_.push_back(f);
  }
  // Keep the unapplied tail sorted by strike cycle (stable: ties fire in
  // registration order).
  std::stable_sort(
      pending_faults_.begin() + static_cast<std::ptrdiff_t>(next_fault_),
      pending_faults_.end(), [](const HardFault& a, const HardFault& b) {
        return a.at_cycle < b.at_cycle;
      });
  apply_due_hard_faults();
}

void Network::apply_due_hard_faults() {
  std::vector<LostFlit> lost;
  bool any = false;
  while (next_fault_ < pending_faults_.size() &&
         pending_faults_[next_fault_].at_cycle <= now_) {
    const HardFault f = pending_faults_[next_fault_++];
    if (f.kind == HardFault::Kind::kRouter) {
      kill_router_internal(f.node, lost);
    } else {
      kill_link_internal(f.node, f.port, lost);
    }
    ++faults_applied_;
    any = true;
  }
  if (any) finish_fault_application(lost);
}

void Network::kill_link_internal(NodeId node, Port p,
                                 std::vector<LostFlit>& lost) {
  const NodeId nb = topo_.neighbor(node, p);
  if (nb == kInvalidNode || !topo_.link_alive(node, p)) return;  // no-op
  topo_.kill_link(node, p);
  RLFTNOC_TRACE(tracer_, TraceEventKind::kLinkKilled, now_, node,
                static_cast<std::int8_t>(port_index(p)),
                static_cast<std::int32_t>(nb));

  // 1. Destroy both wire directions first, so every later teardown step that
  //    tries to push credits toward the dead link hits a null channel.
  const std::array<std::pair<NodeId, Port>, 2> dirs = {
      std::pair<NodeId, Port>{node, p}, std::pair<NodeId, Port>{nb, opposite(p)}};
  for (const auto& [up, out] : dirs) {
    const std::size_t idx = link_index(up, out);
    if (ChannelPair* ch = out_ch_[idx].get()) {
      ch->flits.for_each([&](const Flit& f) {
        lost.push_back(LostFlit{f.packet_id, f.src, f.dst});
      });
      wire_kill_drops_ += ch->flits.clear();
      ch->credits.clear();
      ch->acks.clear();
    }
    out_ch_[idx].reset();
    injectors_[idx].reset();
    link_prob_[idx] = LinkErrorProb{};
  }

  // 2. Sender-side teardown on each alive endpoint.
  for (const auto& [up, out] : dirs) {
    if (topo_.router_alive(up))
      routers_[static_cast<std::size_t>(up)]->purge_dead_output(now_, out, lost);
  }

  // 3. Receiver-side teardown, chasing worms severed mid-body downstream.
  std::vector<Router::SeveredWorm> severed;
  for (const auto& [up, out] : dirs) {
    const NodeId down = topo_.neighbor(up, out);
    if (!topo_.router_alive(down)) continue;
    severed.clear();
    routers_[static_cast<std::size_t>(down)]->purge_dead_input(opposite(out),
                                                              lost, severed);
    for (const Router::SeveredWorm& w : severed)
      purge_worm_chain(now_, down, w, lost);
  }
}

void Network::purge_worm_chain(Cycle now, NodeId from, Router::SeveredWorm worm,
                               std::vector<LostFlit>& lost) {
  NodeId cur = from;
  Port out = worm.out_port;
  VcId v = worm.out_vc;
  int steps = 0;
  const int max_steps = cfg_.num_nodes() + 1;  // paths never revisit a node
  while (steps++ < max_steps) {
    const NodeId next = topo_.neighbor(cur, out);
    if (next == kInvalidNode || !topo_.router_alive(next)) return;
    const Router::ChainNext cn =
        routers_[static_cast<std::size_t>(next)]->purge_worm_of_packet(
            now, opposite(out), v, worm.packet, lost);
    if (!cn.walk) return;
    cur = next;
    out = cn.out_port;
    v = cn.out_vc;
  }
}

void Network::kill_router_internal(NodeId node, std::vector<LostFlit>& lost) {
  if (!topo_.router_alive(node)) return;  // already dead
  // Sever every live link first (with full neighbour-side teardown), then
  // mark the router dead and wipe its own state.
  for (const Port p : kAllPorts) {
    if (p == Port::kLocal) continue;
    if (topo_.link_alive(node, p)) kill_link_internal(node, p, lost);
  }
  topo_.kill_router(node);
  RLFTNOC_TRACE(tracer_, TraceEventKind::kRouterKilled, now_, node, -1, 0);

  const auto i = static_cast<std::size_t>(node);
  routers_[i]->purge_for_router_kill(lost);

  // The NI wiring dies with the router.
  const auto collect = [&](ChannelPair& ch) {
    ch.flits.for_each([&](const Flit& f) {
      lost.push_back(LostFlit{f.packet_id, f.src, f.dst});
    });
    wire_kill_drops_ += ch.flits.clear();
    ch.credits.clear();
    ch.acks.clear();
  };
  collect(*inj_[i]);
  collect(*ej_[i]);

  std::vector<std::pair<PacketId, NodeId>> orphans;
  nis_[i]->purge_for_router_kill(orphans);
  for (const auto& [id, dst] : orphans) {
    if (valid_node(dst) && topo_.router_alive(dst))
      nis_[static_cast<std::size_t>(dst)]->abandon_assembly(id);
  }
}

void Network::finish_fault_application(std::vector<LostFlit>& lost) {
  topo_.rebuild_routes();

  // Packet-level repair: decide once per damaged packet. A source that still
  // holds the pristine copy and can reach a live destination retransmits
  // end-to-end; otherwise both endpoints give the packet up.
  std::sort(lost.begin(), lost.end(),
            [](const LostFlit& a, const LostFlit& b) { return a.packet < b.packet; });
  const LostFlit* prev = nullptr;
  for (const LostFlit& lf : lost) {
    if (prev != nullptr && prev->packet == lf.packet) continue;
    prev = &lf;
    const bool src_ok = valid_node(lf.src) && topo_.router_alive(lf.src);
    const bool dst_ok = valid_node(lf.dst) && topo_.router_alive(lf.dst);
    if (src_ok && nis_[static_cast<std::size_t>(lf.src)]->has_retained(lf.packet)) {
      if (dst_ok && topo_.reachable(lf.src, lf.dst)) {
        schedule_e2e_response(
            now_ + static_cast<Cycle>(cfg_.e2e_ack_fixed_cycles), lf.src,
            lf.packet, /*ok=*/false);
      } else {
        nis_[static_cast<std::size_t>(lf.src)]->abandon_retained(lf.packet);
        if (dst_ok) nis_[static_cast<std::size_t>(lf.dst)]->abandon_assembly(lf.packet);
      }
    } else if (dst_ok) {
      nis_[static_cast<std::size_t>(lf.dst)]->abandon_assembly(lf.packet);
    }
  }

  // Every live source gives up on packets whose destination died or became
  // unreachable, including queued ones that never left.
  std::vector<std::pair<PacketId, NodeId>> orphans;
  for (NodeId nid = 0; nid < static_cast<NodeId>(nis_.size()); ++nid) {
    if (!topo_.router_alive(nid)) continue;
    nis_[static_cast<std::size_t>(nid)]->purge_unreachable(topo_, orphans);
  }
  for (const auto& [id, dst] : orphans) {
    if (valid_node(dst) && topo_.router_alive(dst))
      nis_[static_cast<std::size_t>(dst)]->abandon_assembly(id);
  }
}

bool Network::router_has_work(NodeId node) const {
  const auto i = static_cast<std::size_t>(node);
  // Internal state that can produce output on its own.
  if (!routers_[i]->quiescent()) return true;
  // Anything sitting on an incoming lane, mature or not: flits arriving on
  // mesh links or from the local NI, credits/ACKs returning on outgoing
  // links, credits returning from the ejection wire. Maturity is ignored on
  // purpose — an immature entry just keeps the node un-skipped a cycle or
  // two early, which is conservative.
  for (const Port p : kAllPorts) {
    if (p == Port::kLocal) continue;
    const NodeId nb = topo_.neighbor(node, p);
    if (nb != kInvalidNode) {
      // Structural neighbours can lose their channel to a hard fault.
      if (const auto& in = out_ch_[link_index(nb, opposite(p))]) {
        if (!in->flits.empty()) return true;
      }
    }
    if (const auto& out = out_ch_[link_index(node, p)]) {
      if (!out->credits.empty() || !out->acks.empty()) return true;
    }
  }
  if (!inj_[i]->flits.empty()) return true;
  if (!ej_[i]->credits.empty()) return true;
  return false;
}

bool Network::ni_has_work(NodeId node) const {
  const auto i = static_cast<std::size_t>(node);
  if (!nis_[i]->injection_idle()) return true;
  if (!ej_[i]->flits.empty()) return true;   // ejection side would pop
  if (!inj_[i]->credits.empty()) return true;  // credit return would pop
  return false;
}

template <typename F>
void Network::for_each_shard(bool pooled, F&& f) {
  if (pooled && pool_ != nullptr && shards_.size() > 1) {
    ++pooled_phase_dispatches_;
    pool_->run(shards_.size(), f);
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) f(s);
  }
}

void Network::merge_effects(Cycle now) {
  // Canonical merge: one pass over the shards per effect kind, in shard
  // order (= ascending node order, matching the serial stepper's emission
  // order). Per kind:
  //  * trace — router streams first, then NI streams, because the serial
  //    stepper runs all routers before all NIs within a phase,
  //  * ACKs — replayed pushes with the same `now` stamp they would have had
  //    inline; they mature at now+1 either way, and each ack lane has a
  //    single producer, so per-lane order is the producer's staging order,
  //  * e2e events — `e2e_seq_` is assigned here, so the tie-break stream is
  //    the canonical order for any shard count,
  //  * latency samples / path credits — replayed through the global
  //    accumulators in delivery order (FP addition order preserved),
  //  * counters — plain sums.
  for (StepEffects& fx : fx_) {
    staged_effects_merged_ += fx.router_trace.size();
    fx.router_trace.drain_into(tracer_);
  }
  for (StepEffects& fx : fx_) {
    staged_effects_merged_ += fx.ni_trace.size();
    fx.ni_trace.drain_into(tracer_);
  }
  for (StepEffects& fx : fx_) {
    staged_effects_merged_ +=
        fx.acks.size() + fx.e2e.size() + fx.path_credits.size();
    for (const StepEffects::StagedAck& a : fx.acks) a.lane->push(now, a.msg);
    for (const StepEffects::StagedE2e& e : fx.e2e)
      e2e_events_.push(E2eEvent{e.at, e.src, e.id, e.ok, e2e_seq_++});
    for (const StepEffects::StagedPathCredit& c : fx.path_credits)
      add_path_latency(c.src, c.dst, c.latency);
    if (!fx.latency_samples.empty()) {
      for (const double v : fx.latency_samples) {
        metrics_.packet_latency.add(v);
        metrics_.latency_hist.add(v);
      }
      metrics_.last_delivery_cycle = now;
    }
    metrics_.packets_injected += fx.packets_injected;
    metrics_.packets_delivered += fx.packets_delivered;
    metrics_.flits_delivered += fx.flits_delivered;
    metrics_.retx_flits_hop += fx.retx_flits_hop;
    metrics_.dup_flits += fx.dup_flits;
    metrics_.crc_packet_failures += fx.crc_packet_failures;
    fx.clear_posts();
  }
}

void Network::step() {
  // Hard faults strike at the top of their cycle, in the serial window
  // before any phase runs — identical for every sim_threads value.
  if (next_fault_ < pending_faults_.size() &&
      pending_faults_[next_fault_].at_cycle <= now_) {
    apply_due_hard_faults();
  }

  const Cycle t = now_;
  // End-to-end responses drain serially before the phases: delivery may
  // refill an NI (reinject queue), which the skip flags must observe. This
  // path keeps the direct metric/trace sinks — it never runs inside a
  // parallel phase.
  while (!e2e_events_.empty() && e2e_events_.top().at <= t) {
    const E2eEvent ev = e2e_events_.top();
    e2e_events_.pop();
    ni(ev.src).deliver_e2e_response(t, ev.id, ev.ok);
  }

  // Idle-skip: a node whose internal state is quiescent and whose incoming
  // lanes are all empty cannot change any state this cycle — receive() would
  // pop nothing and every execute() stage scans empty/idle structures, with
  // no RNG draws, counter updates or power events on those paths. Skipping
  // the visit is therefore observationally equivalent (bit-identical), not
  // an approximation. Flags are computed once up front, after the e2e drain
  // (which may refill an NI), and before any phase runs: all cross-node
  // signals travel through delay lines with latency >= 1, so nothing pushed
  // during this cycle's phases could have made a skipped node busy at t.
  //
  // The flags phase only *reads* settled network state and writes per-node
  // slots plus per-shard counters, so it parallelizes as-is (pooled only on
  // large meshes — the work per node is a handful of empty() checks).
  const std::size_t n = routers_.size();
  for_each_shard(n >= kMinNodesForPooledFlags, [&](std::size_t s) {
    StepEffects& fx = fx_[s];
    for (NodeId node = shards_[s].lo; node < shards_[s].hi; ++node) {
      const auto i = static_cast<std::size_t>(node);
      skip_router_[i] = router_has_work(node) ? 0 : 1;
      skip_ni_[i] = ni_has_work(node) ? 0 : 1;
      fx.router_skipped += skip_router_[i];
      fx.ni_skipped += skip_ni_[i];
      fx.busy_visits += (2u - skip_router_[i]) - skip_ni_[i];
    }
  });
  std::uint64_t busy = 0;
  for (StepEffects& fx : fx_) {
    router_steps_skipped_ += fx.router_skipped;
    ni_steps_skipped_ += fx.ni_skipped;
    busy += fx.busy_visits;
    fx.router_skipped = 0;
    fx.ni_skipped = 0;
    fx.busy_visits = 0;
  }

  // Phase discipline (same as the serial stepper, with barriers between
  // phases): all routers receive, all NIs receive, all routers execute, all
  // NIs execute. Within a shard task the nodes run in ascending order,
  // routers before NIs — so a shard never races its own NI/router pair on
  // their shared inj/ej lanes, and the staged-effect emission order equals
  // the serial order. Whether a phase runs pooled or inline depends only on
  // the (deterministic) busy count, never on timing.
  const bool pooled = busy >= kMinBusyVisitsForPool;

  for_each_shard(pooled, [&](std::size_t s) {
    for (NodeId node = shards_[s].lo; node < shards_[s].hi; ++node) {
      const auto i = static_cast<std::size_t>(node);
      if (!skip_router_[i]) routers_[i]->receive(t);
    }
    for (NodeId node = shards_[s].lo; node < shards_[s].hi; ++node) {
      const auto i = static_cast<std::size_t>(node);
      if (!skip_ni_[i]) nis_[i]->receive(t);
    }
  });
  merge_effects(t);

  for_each_shard(pooled, [&](std::size_t s) {
    for (NodeId node = shards_[s].lo; node < shards_[s].hi; ++node) {
      const auto i = static_cast<std::size_t>(node);
      if (!skip_router_[i]) routers_[i]->execute(t);
    }
    for (NodeId node = shards_[s].lo; node < shards_[s].hi; ++node) {
      const auto i = static_cast<std::size_t>(node);
      if (!skip_ni_[i]) nis_[i]->execute(t);
    }
  });
  merge_effects(t);

  ++now_;
}

bool Network::drained() const {
  for (const auto& n : nis_) {
    if (!n->idle()) return false;
  }
  for (const auto& r : routers_) {
    if (r->buffered_flits() != 0 || r->pending_link_work() != 0) return false;
  }
  for (const auto& ch : out_ch_) {
    if (ch && !ch->flits.empty()) return false;
  }
  for (const auto& ch : inj_) {
    if (!ch->flits.empty()) return false;
  }
  for (const auto& ch : ej_) {
    if (!ch->flits.empty()) return false;
  }
  return e2e_events_.empty();
}

}  // namespace rlftnoc
