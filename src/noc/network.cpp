#include "noc/network.h"

#include <string>

namespace rlftnoc {

Network::Network(const NocConfig& cfg, std::uint64_t seed, VariusParams varius,
                 PowerParams power)
    : cfg_(cfg),
      topo_(cfg),
      varius_(varius),
      power_(cfg.num_nodes(), power),
      payload_rng_(seed, "payload") {
  cfg_.validate();
  const int n = cfg_.num_nodes();
  latency_window_.resize(static_cast<std::size_t>(n));

  out_ch_.resize(static_cast<std::size_t>(n) * kNumPorts);
  link_prob_.resize(static_cast<std::size_t>(n) * kNumPorts);
  injectors_.resize(static_cast<std::size_t>(n) * kNumPorts);

  for (NodeId node = 0; node < n; ++node) {
    for (const Port p : kAllPorts) {
      if (p == Port::kLocal) continue;
      if (topo_.neighbor(node, p) == kInvalidNode) continue;
      const std::size_t idx = link_index(node, p);
      out_ch_[idx] = std::make_unique<ChannelPair>();
      injectors_[idx] = std::make_unique<LinkFaultInjector>(
          &varius_, seed, "link:" + std::to_string(node) + ":" + port_name(p));
    }
  }

  inj_.reserve(static_cast<std::size_t>(n));
  ej_.reserve(static_cast<std::size_t>(n));
  routers_.reserve(static_cast<std::size_t>(n));
  nis_.reserve(static_cast<std::size_t>(n));
  for (NodeId node = 0; node < n; ++node) {
    inj_.push_back(std::make_unique<ChannelPair>());
    ej_.push_back(std::make_unique<ChannelPair>());
  }
  for (NodeId node = 0; node < n; ++node) {
    routers_.push_back(std::make_unique<Router>(node, &cfg_, this));
    nis_.push_back(std::make_unique<NetworkInterface>(node, &cfg_, this));
  }
  skip_router_.assign(static_cast<std::size_t>(n), 0);
  skip_ni_.assign(static_cast<std::size_t>(n), 0);
}

ChannelPair* Network::out_channel(NodeId node, Port p) {
  if (p == Port::kLocal) return nullptr;
  return out_ch_[link_index(node, p)].get();
}

ChannelPair* Network::in_channel(NodeId node, Port p) {
  if (p == Port::kLocal) return nullptr;
  const NodeId nb = topo_.neighbor(node, p);
  if (nb == kInvalidNode) return nullptr;
  return out_ch_[link_index(nb, opposite(p))].get();
}

void Network::set_link_error_prob(NodeId node, Port p, LinkErrorProb prob) {
  link_prob_.at(link_index(node, p)) = prob;
}

LinkErrorProb Network::link_error_prob(NodeId node, Port p) const {
  return link_prob_.at(link_index(node, p));
}

void Network::corrupt_on_wire(NodeId node, Port p, Flit& flit, bool relaxed) {
  if (p == Port::kLocal) return;
  const std::size_t idx = link_index(node, p);
  LinkFaultInjector* inj = injectors_[idx].get();
  if (inj == nullptr) return;
  const LinkErrorProb& prob = link_prob_[idx];
  const double pe = relaxed ? prob.relaxed : prob.normal;
  if (pe <= 0.0) return;
  const InjectionResult res =
      inj->inject(flit.payload, flit.ecc_valid ? &flit.ecc : nullptr, pe);
  if (res.error_event) {
    RLFTNOC_TRACE(tracer_, TraceEventKind::kFaultInjected, now_, node,
                  static_cast<std::int8_t>(port_index(p)), res.bits_flipped);
  }
}

void Network::add_path_latency(NodeId src, NodeId dst, double latency_cycles) {
  // Walk the deterministic X-Y path and credit every traversed router.
  NodeId cur = src;
  latency_window_[static_cast<std::size_t>(cur)].add(latency_cycles);
  while (cur != dst) {
    cur = topo_.neighbor(cur, topo_.xy_route(cur, dst));
    latency_window_[static_cast<std::size_t>(cur)].add(latency_cycles);
  }
}

void Network::schedule_e2e_response(Cycle at, NodeId src, PacketId id, bool ok) {
  e2e_events_.push(E2eEvent{at, src, id, ok, e2e_seq_++});
}

bool Network::router_has_work(NodeId node) const {
  const auto i = static_cast<std::size_t>(node);
  // Internal state that can produce output on its own.
  if (!routers_[i]->quiescent()) return true;
  // Anything sitting on an incoming lane, mature or not: flits arriving on
  // mesh links or from the local NI, credits/ACKs returning on outgoing
  // links, credits returning from the ejection wire. Maturity is ignored on
  // purpose — an immature entry just keeps the node un-skipped a cycle or
  // two early, which is conservative.
  for (const Port p : kAllPorts) {
    if (p == Port::kLocal) continue;
    const NodeId nb = topo_.neighbor(node, p);
    if (nb != kInvalidNode) {
      const ChannelPair& in = *out_ch_[link_index(nb, opposite(p))];
      if (!in.flits.empty()) return true;
    }
    if (const auto& out = out_ch_[link_index(node, p)]) {
      if (!out->credits.empty() || !out->acks.empty()) return true;
    }
  }
  if (!inj_[i]->flits.empty()) return true;
  if (!ej_[i]->credits.empty()) return true;
  return false;
}

bool Network::ni_has_work(NodeId node) const {
  const auto i = static_cast<std::size_t>(node);
  if (!nis_[i]->injection_idle()) return true;
  if (!ej_[i]->flits.empty()) return true;   // ejection side would pop
  if (!inj_[i]->credits.empty()) return true;  // credit return would pop
  return false;
}

void Network::step() {
  const Cycle t = now_;
  while (!e2e_events_.empty() && e2e_events_.top().at <= t) {
    const E2eEvent ev = e2e_events_.top();
    e2e_events_.pop();
    ni(ev.src).deliver_e2e_response(t, ev.id, ev.ok);
  }

  // Idle-skip: a node whose internal state is quiescent and whose incoming
  // lanes are all empty cannot change any state this cycle — receive() would
  // pop nothing and every execute() stage scans empty/idle structures, with
  // no RNG draws, counter updates or power events on those paths. Skipping
  // the visit is therefore observationally equivalent (bit-identical), not
  // an approximation. Flags are computed once up front, after the e2e drain
  // (which may refill an NI), and before any phase runs: all cross-node
  // signals travel through delay lines with latency >= 1, so nothing pushed
  // during this cycle's phases could have made a skipped node busy at t.
  const std::size_t n = routers_.size();
  for (std::size_t i = 0; i < n; ++i) {
    skip_router_[i] = router_has_work(static_cast<NodeId>(i)) ? 0 : 1;
    skip_ni_[i] = ni_has_work(static_cast<NodeId>(i)) ? 0 : 1;
    router_steps_skipped_ += skip_router_[i];
    ni_steps_skipped_ += skip_ni_[i];
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (!skip_router_[i]) routers_[i]->receive(t);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!skip_ni_[i]) nis_[i]->receive(t);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!skip_router_[i]) routers_[i]->execute(t);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!skip_ni_[i]) nis_[i]->execute(t);
  }
  ++now_;
}

bool Network::drained() const {
  for (const auto& n : nis_) {
    if (!n->idle()) return false;
  }
  for (const auto& r : routers_) {
    if (r->buffered_flits() != 0 || r->pending_link_work() != 0) return false;
  }
  for (const auto& ch : out_ch_) {
    if (ch && !ch->flits.empty()) return false;
  }
  for (const auto& ch : inj_) {
    if (!ch->flits.empty()) return false;
  }
  for (const auto& ch : ej_) {
    if (!ch->flits.empty()) return false;
  }
  return e2e_events_.empty();
}

}  // namespace rlftnoc
