// Structural parameters of the simulated NoC (Table II of the paper).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/config.h"
#include "common/types.h"

namespace rlftnoc {

/// Mesh / router / protocol parameters with Table II defaults.
struct NocConfig {
  int mesh_width = 8;        ///< 8x8 2D mesh
  /// Route computation algorithm (Table II: X-Y).
  RoutingAlgorithm routing = RoutingAlgorithm::kXY;
  /// Network shape: the paper's open mesh, or a torus with wrap links.
  TopologyKind topology = TopologyKind::kMesh;
  int mesh_height = 8;
  int vcs_per_port = 4;      ///< 4 VCs per port
  int vc_depth = 4;          ///< flit slots per VC buffer
  int flits_per_packet = 4;  ///< 128 bits/flit, 4 flits
  int retention_depth = 8;   ///< output flit buffer entries per port (ARQ)
  int local_vc_depth = 16;   ///< deeper buffering at the ejection port
  int ni_queue_limit = 512;  ///< source NI injection queue capacity (packets)

  /// Extra cycles an end-to-end (CRC) retransmission request / ACK spends
  /// per hop of the return path, modelling the control message latency.
  int e2e_ack_cycles_per_hop = 2;
  int e2e_ack_fixed_cycles = 4;

  int num_nodes() const noexcept { return mesh_width * mesh_height; }

  /// True when dateline VC classes are in force: torus dimension-ordered
  /// routing splits each port's VCs into two halves so the cyclic channel
  /// dependency around each ring is broken (see noc/routing.h).
  bool dateline_vcs() const noexcept {
    return topology == TopologyKind::kTorus &&
           (routing == RoutingAlgorithm::kXY ||
            routing == RoutingAlgorithm::kYX);
  }

  /// Validates invariants; throws std::invalid_argument on nonsense.
  void validate() const {
    if (mesh_width <= 0 || mesh_height <= 0)
      throw std::invalid_argument(
          "NocConfig: noc.mesh_width/noc.mesh_height must be positive (got " +
          std::to_string(mesh_width) + "x" + std::to_string(mesh_height) + ")");
    if (mesh_width < 2 || mesh_height < 2)
      throw std::invalid_argument("NocConfig: mesh must be at least 2x2");
    if (topology == TopologyKind::kTorus &&
        routing == RoutingAlgorithm::kWestFirst)
      throw std::invalid_argument(
          "NocConfig: westfirst routing is mesh-only (its turn model is not "
          "deadlock-free across torus wrap links)");
    if (topology == TopologyKind::kTorus &&
        (routing == RoutingAlgorithm::kXY || routing == RoutingAlgorithm::kYX) &&
        vcs_per_port < 2)
      throw std::invalid_argument(
          "NocConfig: torus dimension-ordered routing needs vcs_per_port >= 2 "
          "(dateline VC classes)");
    if (vcs_per_port < 1 || vcs_per_port > 16)
      throw std::invalid_argument("NocConfig: vcs_per_port out of range");
    if (vc_depth < 1) throw std::invalid_argument("NocConfig: vc_depth < 1");
    if (flits_per_packet < 1 || flits_per_packet > 32)
      throw std::invalid_argument("NocConfig: flits_per_packet out of range");
    if (retention_depth < 2)
      throw std::invalid_argument("NocConfig: retention_depth < 2 cannot cover ACK RTT");
    if (local_vc_depth < vc_depth)
      throw std::invalid_argument("NocConfig: local_vc_depth < vc_depth");
  }

  /// Reads overrides from a flat Config (keys: noc.mesh_width, ...).
  static NocConfig from_config(const Config& cfg) {
    NocConfig c;
    c.mesh_width = static_cast<int>(cfg.get_int("noc.mesh_width", c.mesh_width));
    c.mesh_height = static_cast<int>(cfg.get_int("noc.mesh_height", c.mesh_height));
    c.vcs_per_port = static_cast<int>(cfg.get_int("noc.vcs_per_port", c.vcs_per_port));
    c.vc_depth = static_cast<int>(cfg.get_int("noc.vc_depth", c.vc_depth));
    c.flits_per_packet =
        static_cast<int>(cfg.get_int("noc.flits_per_packet", c.flits_per_packet));
    c.retention_depth =
        static_cast<int>(cfg.get_int("noc.retention_depth", c.retention_depth));
    c.local_vc_depth =
        static_cast<int>(cfg.get_int("noc.local_vc_depth", c.local_vc_depth));
    c.ni_queue_limit =
        static_cast<int>(cfg.get_int("noc.ni_queue_limit", c.ni_queue_limit));
    c.e2e_ack_cycles_per_hop =
        static_cast<int>(cfg.get_int("noc.e2e_ack_cycles_per_hop", c.e2e_ack_cycles_per_hop));
    c.e2e_ack_fixed_cycles =
        static_cast<int>(cfg.get_int("noc.e2e_ack_fixed_cycles", c.e2e_ack_fixed_cycles));
    const std::string routing = cfg.get_string("noc.routing", "xy");
    if (routing == "xy") {
      c.routing = RoutingAlgorithm::kXY;
    } else if (routing == "yx") {
      c.routing = RoutingAlgorithm::kYX;
    } else if (routing == "westfirst") {
      c.routing = RoutingAlgorithm::kWestFirst;
    } else if (routing == "adaptive") {
      c.routing = RoutingAlgorithm::kAdaptive;
    } else {
      throw std::invalid_argument(
          "noc.routing must be xy|yx|westfirst|adaptive");
    }
    const std::string topology = cfg.get_string("noc.topology", "mesh");
    if (topology == "mesh") {
      c.topology = TopologyKind::kMesh;
    } else if (topology == "torus") {
      c.topology = TopologyKind::kTorus;
    } else {
      throw std::invalid_argument("noc.topology must be mesh|torus");
    }
    c.validate();
    return c;
  }
};

}  // namespace rlftnoc
