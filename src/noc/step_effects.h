// Per-shard staging buffers for the phase-parallel network stepper.
//
// Network::step partitions the mesh into contiguous node shards and runs the
// receive and execute phases data-parallel across them. Everything a node
// touches that is *not* owned by its own shard-local slice of the network —
// ACK pushes onto a neighbour's channel, global NetworkMetrics counters,
// floating-point latency accumulators, e2e response scheduling, per-path
// latency credits, and trace events — is captured here instead of applied
// in place, then merged after the phase barrier in canonical shard order
// (= ascending node order, the exact order the serial stepper used).
//
// Merge-order invariant: shards are contiguous ascending node ranges and a
// shard task processes its nodes in ascending order, so concatenating the
// per-shard buffers in shard order reproduces, per effect kind, the serial
// stepper's global emission order for *any* shard count. That makes the
// floating-point accumulation order, the `e2e_seq_` tie-break stream, the
// trace stream and every counter bit-identical between `sim_threads=1` and
// `sim_threads=N` (see DESIGN.md, "Parallel stepping & deterministic
// merge").
// rlftnoc-lint: hot-path (per-cycle step path: R4 bans node-allocating containers and .at())
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "noc/channel.h"
#include "telemetry/telemetry.h"

namespace rlftnoc {

/// Cross-shard side effects of one shard's receive or execute phase.
/// Cleared after every merge; vectors keep their capacity, so after the
/// first few cycles staging allocates nothing.
struct alignas(64) StepEffects {
  /// Link-layer ACK/NACK responses. In the serial stepper the receiver
  /// pushes these straight onto the upstream router's outgoing ack lane —
  /// a lane that upstream router pops in the *same* receive phase, which is
  /// exactly the cross-shard mutation staging exists to defer. Pushes made
  /// during a cycle mature at now+1, so applying them after the barrier
  /// (with the same cycle stamp) is observationally identical.
  struct StagedAck {
    DelayLine<AckMsg>* lane;
    AckMsg msg;
  };

  /// Deferred Network::schedule_e2e_response — the global `e2e_seq_`
  /// tie-break counter is assigned at merge time, in canonical order.
  struct StagedE2e {
    Cycle at;
    NodeId src;
    PacketId id;
    bool ok;
  };

  /// Deferred Network::add_path_latency — walks routers outside the shard.
  struct StagedPathCredit {
    NodeId src;
    NodeId dst;
    double latency;
  };

  std::vector<StagedAck> acks;
  std::vector<StagedE2e> e2e;
  std::vector<StagedPathCredit> path_credits;
  /// End-to-end latency samples in delivery order; replayed through the
  /// global StatAccumulator + Histogram so FP accumulation order matches
  /// the serial stepper exactly.
  std::vector<double> latency_samples;

  // NetworkMetrics counter deltas (names mirror the NetworkMetrics fields).
  std::uint64_t packets_injected = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t flits_delivered = 0;
  std::uint64_t retx_flits_hop = 0;
  std::uint64_t dup_flits = 0;
  std::uint64_t crc_packet_failures = 0;

  // Idle-skip accounting for the flags phase.
  std::uint64_t router_skipped = 0;
  std::uint64_t ni_skipped = 0;
  /// Router+NI visits this shard will actually perform this cycle (busy
  /// nodes); summed at the flags merge to pick inline vs pooled execution.
  std::uint64_t busy_visits = 0;

  /// Trace events staged by routers / NIs of this shard. Two streams
  /// because the serial stepper runs *all* routers before *all* NIs within
  /// a phase: the merge drains every shard's router stream first, then
  /// every shard's NI stream, reproducing the serial global trace order.
  TraceStage router_trace;
  TraceStage ni_trace;

  /// True when nothing is staged (auditor invariant between steps).
  bool empty() const noexcept {
    return acks.empty() && e2e.empty() && path_credits.empty() &&
           latency_samples.empty() && packets_injected == 0 &&
           packets_delivered == 0 && flits_delivered == 0 &&
           retx_flits_hop == 0 && dup_flits == 0 &&
           crc_packet_failures == 0 && router_trace.empty() &&
           ni_trace.empty();
  }

  /// Drops all staged state (keeps capacity). Trace stages are drained —
  /// not cleared — by the merge; this clears the rest.
  void clear_posts() noexcept {
    acks.clear();
    e2e.clear();
    path_credits.clear();
    latency_samples.clear();
    packets_injected = 0;
    packets_delivered = 0;
    flits_delivered = 0;
    retx_flits_hop = 0;
    dup_flits = 0;
    crc_packet_failures = 0;
  }
};

}  // namespace rlftnoc
