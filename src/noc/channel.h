// Delay-line channels.
//
// Every inter-router signal (flits, credits, ACK/NACKs) travels through a
// fixed-latency delay line, which is what makes the cycle-driven update
// order-independent: producers push entries stamped `deliver_at = now +
// latency`, consumers only pop entries whose stamp has matured. Pushing and
// popping within the same simulated cycle therefore never race.
// rlftnoc-lint: hot-path (per-cycle step path: R4 bans node-allocating containers and .at())
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/ring_buffer.h"
#include "common/types.h"
#include "noc/flit.h"

namespace rlftnoc {

/// FIFO with per-entry maturity stamps.
template <typename T>
class DelayLine {
 public:
  explicit DelayLine(Cycle latency = 1) noexcept : latency_(latency) {}

  Cycle latency() const noexcept { return latency_; }

  /// Enqueues `value` at time `now`; it becomes visible at `now + latency`.
  void push(Cycle now, T value) { push_delayed(now, std::move(value), 0); }

  /// Enqueues with `extra` additional cycles of delay (mode-3 relaxed-timing
  /// transfers). Callers keep the channel busy over the stretch, so stamps
  /// stay monotone and FIFO order is preserved.
  void push_delayed(Cycle now, T value, Cycle extra) {
    const Cycle at = now + latency_ + extra;
    // FIFO delivery order requires monotone maturity stamps; a violation
    // means a producer bypassed the channel-occupancy protocol.
    RLFTNOC_CHECK(entries_.empty() || entries_.back().deliver_at <= at,
                  "delay line stamp regressed: %llu after %llu",
                  static_cast<unsigned long long>(at),
                  static_cast<unsigned long long>(entries_.back().deliver_at));
    entries_.push_back(Entry{at, std::move(value)});
  }

  /// Pops the oldest entry if it has matured by `now`.
  std::optional<T> pop(Cycle now) {
    if (entries_.empty() || entries_.front().deliver_at > now) return std::nullopt;
    T out = std::move(entries_.front().value);
    entries_.pop_front();
    return out;
  }

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }

  /// Discards everything in flight (hard-fault teardown of a dead link /
  /// router). Returns the number of entries dropped so the caller can keep
  /// conservation accounting honest.
  std::size_t clear() noexcept {
    const std::size_t n = entries_.size();
    entries_.clear();
    return n;
  }

  /// Visits every queued value oldest-first (auditing / diagnostics only —
  /// the simulation itself must go through pop() to honour maturity).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    entries_.for_each([&fn](const Entry& e) { fn(e.value); });
  }

 private:
  struct Entry {
    Cycle deliver_at = 0;
    T value{};
  };
  Cycle latency_;
  RingBuffer<Entry> entries_;
};

/// Credit returned upstream when a flit vacates an input VC buffer slot.
struct Credit {
  VcId vc = kInvalidVc;
};

/// Link-level ACK/NACK for the ARQ+ECC protocol.
struct AckMsg {
  FlitId flit_id = 0;
  VcId vc = kInvalidVc;
  bool nack = false;
};

/// One direction of a physical channel between adjacent routers (or between
/// a router and its network interface): a flit lane plus the reverse credit
/// and ACK lanes.
struct ChannelPair {
  DelayLine<Flit> flits{1};
  DelayLine<Credit> credits{1};
  DelayLine<AckMsg> acks{1};
};

}  // namespace rlftnoc
