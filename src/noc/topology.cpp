#include "noc/topology.h"

#include <stdexcept>
#include <string>

#include "noc/routing.h"

namespace rlftnoc {

Topology::Topology(TopologyKind kind, int width, int height,
                   RoutingAlgorithm routing)
    : kind_(kind), width_(width), height_(height), routing_(routing) {
  if (width <= 0 || height <= 0)
    throw std::invalid_argument(
        "Topology: dimensions must be positive (got " + std::to_string(width) +
        "x" + std::to_string(height) + ")");
  if (kind == TopologyKind::kTorus && (width < 2 || height < 2))
    throw std::invalid_argument(
        "Topology: a torus needs width and height >= 2 (wrap links would "
        "self-loop)");
  build_structure();
  rebuild_routes();
}

void Topology::build_structure() {
  const auto n = static_cast<std::size_t>(num_nodes());
  nbr_.assign(n * kNumPorts, kInvalidNode);
  link_alive_.assign(n * kNumPorts, 0);
  router_alive_.assign(n, 1);
  const bool torus = kind_ == TopologyKind::kTorus;
  for (NodeId id = 0; id < num_nodes(); ++id) {
    const Coord c = coord(id);
    NodeId* row = nbr_.data() + static_cast<std::size_t>(id) * kNumPorts;
    row[port_index(Port::kNorth)] =
        c.y + 1 < height_ ? node(c.x, c.y + 1) : torus ? node(c.x, 0) : kInvalidNode;
    row[port_index(Port::kSouth)] =
        c.y > 0 ? node(c.x, c.y - 1) : torus ? node(c.x, height_ - 1) : kInvalidNode;
    row[port_index(Port::kEast)] =
        c.x + 1 < width_ ? node(c.x + 1, c.y) : torus ? node(0, c.y) : kInvalidNode;
    row[port_index(Port::kWest)] =
        c.x > 0 ? node(c.x - 1, c.y) : torus ? node(width_ - 1, c.y) : kInvalidNode;
    for (const Port p : kAllPorts) {
      if (p == Port::kLocal) continue;
      // A 1-wide/1-tall mesh degenerates to a path (or a single node): the
      // missing directions simply stay kInvalidNode / dead.
      link_alive_[static_cast<std::size_t>(id) * kNumPorts + port_index(p)] =
          row[port_index(p)] != kInvalidNode ? 1 : 0;
    }
  }
}

bool Topology::kill_link(NodeId n, Port p) {
  RLFTNOC_CHECK(valid(n));
  if (p == Port::kLocal) return false;
  const std::size_t idx =
      static_cast<std::size_t>(n) * kNumPorts + port_index(p);
  if (link_alive_[idx] == 0) return false;
  const NodeId nb = nbr_[idx];
  link_alive_[idx] = 0;
  link_alive_[static_cast<std::size_t>(nb) * kNumPorts +
              port_index(opposite(p))] = 0;
  ++dead_links_;
  return true;
}

bool Topology::kill_router(NodeId n) {
  RLFTNOC_CHECK(valid(n));
  if (router_alive_[static_cast<std::size_t>(n)] == 0) return false;
  for (const Port p : kAllPorts) {
    if (p != Port::kLocal) kill_link(n, p);
  }
  router_alive_[static_cast<std::size_t>(n)] = 0;
  ++dead_routers_;
  return true;
}

void Topology::rebuild_routes() {
  routing_policy_for(routing_).build_lut(*this, next_hop_);
}

}  // namespace rlftnoc
