#include "noc/routing.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace rlftnoc {
namespace {

constexpr int kInf = 1 << 29;

/// Dimension-ordered step along X: on a torus the shorter ring direction
/// wins (tie -> East, so even rings stay deterministic); on a mesh a plain
/// coordinate compare.
Port dor_step_x(const Topology& t, const Coord& c, const Coord& d) {
  if (t.kind() == TopologyKind::kTorus) {
    const int w = t.width();
    const int east = (d.x - c.x + w) % w;
    const int west = (c.x - d.x + w) % w;
    return east <= west ? Port::kEast : Port::kWest;
  }
  return c.x < d.x ? Port::kEast : Port::kWest;
}

Port dor_step_y(const Topology& t, const Coord& c, const Coord& d) {
  if (t.kind() == TopologyKind::kTorus) {
    const int h = t.height();
    const int north = (d.y - c.y + h) % h;
    const int south = (c.y - d.y + h) % h;
    return north <= south ? Port::kNorth : Port::kSouth;
  }
  return c.y < d.y ? Port::kNorth : Port::kSouth;
}

Port dor_port(const Topology& t, NodeId cur, NodeId dst, bool x_first) {
  const Coord c = t.coord(cur);
  const Coord d = t.coord(dst);
  if (x_first) {
    if (c.x != d.x) return dor_step_x(t, c, d);
    if (c.y != d.y) return dor_step_y(t, c, d);
  } else {
    if (c.y != d.y) return dor_step_y(t, c, d);
    if (c.x != d.x) return dor_step_x(t, c, d);
  }
  return Port::kLocal;
}

/// Fills `lut` with the structural DOR port, then invalidates every entry
/// whose (deterministic, single-path) route crosses a dead link or dead
/// router. Reachability of each node toward a fixed dst is memoized, so the
/// post-pass is O(nodes) per destination.
void build_dor_lut(const Topology& t, std::vector<std::uint8_t>& lut,
                   bool x_first) {
  const int n = t.num_nodes();
  const auto nn = static_cast<std::size_t>(n);
  lut.assign(nn * nn, Topology::kUnreachable);
  for (NodeId cur = 0; cur < n; ++cur) {
    std::uint8_t* row = lut.data() + static_cast<std::size_t>(cur) * nn;
    for (NodeId dst = 0; dst < n; ++dst)
      row[dst] = static_cast<std::uint8_t>(
          port_index(dor_port(t, cur, dst, x_first)));
  }
  if (!t.has_faults()) return;

  // 0 = unknown, 1 = route intact, 2 = route severed.
  std::vector<std::uint8_t> status(nn);
  std::vector<NodeId> path;
  for (NodeId dst = 0; dst < n; ++dst) {
    std::fill(status.begin(), status.end(), std::uint8_t{0});
    const bool dst_ok = t.router_alive(dst);
    status[static_cast<std::size_t>(dst)] = dst_ok ? 1 : 2;
    for (NodeId cur = 0; cur < n; ++cur) {
      if (status[static_cast<std::size_t>(cur)] != 0) continue;
      path.clear();
      NodeId u = cur;
      std::uint8_t verdict = 2;
      while (status[static_cast<std::size_t>(u)] == 0) {
        path.push_back(u);
        status[static_cast<std::size_t>(u)] = 2;  // breaks would-be cycles
        if (!t.router_alive(u)) break;
        const auto p = static_cast<Port>(
            lut[static_cast<std::size_t>(u) * nn + static_cast<std::size_t>(dst)]);
        if (!t.link_alive(u, p)) break;
        u = t.neighbor(u, p);
      }
      if (status[static_cast<std::size_t>(u)] == 1) verdict = 1;
      for (const NodeId v : path) status[static_cast<std::size_t>(v)] = verdict;
    }
    for (NodeId cur = 0; cur < n; ++cur) {
      if (status[static_cast<std::size_t>(cur)] != 1)
        lut[static_cast<std::size_t>(cur) * nn + static_cast<std::size_t>(dst)] =
            Topology::kUnreachable;
    }
  }
}

class XyPolicy final : public RoutingPolicy {
 public:
  const char* name() const noexcept override { return "xy"; }
  void build_lut(const Topology& t,
                 std::vector<std::uint8_t>& lut) const override {
    build_dor_lut(t, lut, /*x_first=*/true);
  }
};

class YxPolicy final : public RoutingPolicy {
 public:
  const char* name() const noexcept override { return "yx"; }
  void build_lut(const Topology& t,
                 std::vector<std::uint8_t>& lut) const override {
    build_dor_lut(t, lut, /*x_first=*/false);
  }
};

/// West-first keeps the XY LUT (used for credit walks and as the
/// deterministic fallback); its adaptive candidates are computed inline in
/// route_candidates. Mesh-only and fault-free by configuration.
class WestFirstPolicy final : public RoutingPolicy {
 public:
  const char* name() const noexcept override { return "westfirst"; }
  void build_lut(const Topology& t,
                 std::vector<std::uint8_t>& lut) const override {
    build_dor_lut(t, lut, /*x_first=*/true);
  }
};

/// Fault-adaptive up*/down* (see the deadlock-freedom argument in the
/// header). Rank = (BFS level from the component's minimum-id alive router,
/// node id); an edge toward smaller rank is "up". Routes follow the
/// committed-down rule: a node with an intact all-down path to dst takes
/// its shortest one; otherwise it climbs the up edge that minimizes the
/// remaining legal (up* then down*) distance.
class AdaptiveUpDownPolicy final : public RoutingPolicy {
 public:
  const char* name() const noexcept override { return "adaptive"; }

  void build_lut(const Topology& t,
                 std::vector<std::uint8_t>& lut) const override {
    const int n = t.num_nodes();
    const auto nn = static_cast<std::size_t>(n);
    lut.assign(nn * nn, Topology::kUnreachable);

    // Components + BFS levels from each component's minimum alive id.
    std::vector<int> level(nn, -1);
    std::vector<int> comp(nn, -1);
    std::vector<NodeId> queue;
    queue.reserve(nn);
    int ncomp = 0;
    for (NodeId r = 0; r < n; ++r) {
      if (!t.router_alive(r) || comp[static_cast<std::size_t>(r)] != -1)
        continue;
      comp[static_cast<std::size_t>(r)] = ncomp;
      level[static_cast<std::size_t>(r)] = 0;
      queue.assign(1, r);
      for (std::size_t head = 0; head < queue.size(); ++head) {
        const NodeId u = queue[head];
        for (const Port p : kAllPorts) {
          if (p == Port::kLocal || !t.link_alive(u, p)) continue;
          const NodeId v = t.neighbor(u, p);
          if (comp[static_cast<std::size_t>(v)] != -1) continue;
          comp[static_cast<std::size_t>(v)] = ncomp;
          level[static_cast<std::size_t>(v)] =
              level[static_cast<std::size_t>(u)] + 1;
          queue.push_back(v);
        }
      }
      ++ncomp;
    }

    // Edge u -> v is "down" when it moves away from the root in rank order.
    const auto is_down = [&](NodeId u, NodeId v) {
      const int lu = level[static_cast<std::size_t>(u)];
      const int lv = level[static_cast<std::size_t>(v)];
      return lv > lu || (lv == lu && v > u);
    };

    // Alive nodes in ascending rank: a topological order of the up-DAG
    // (every up edge points to an earlier entry).
    std::vector<NodeId> ranked;
    ranked.reserve(nn);
    for (NodeId u = 0; u < n; ++u)
      if (t.router_alive(u)) ranked.push_back(u);
    std::sort(ranked.begin(), ranked.end(), [&](NodeId a, NodeId b) {
      return std::make_pair(level[static_cast<std::size_t>(a)], a) <
             std::make_pair(level[static_cast<std::size_t>(b)], b);
    });

    std::vector<int> dd(nn);   // all-down distance to dst (kInf if none)
    std::vector<int> dup(nn);  // shortest legal up*-then-down* distance
    for (NodeId dst = 0; dst < n; ++dst) {
      if (!t.router_alive(dst)) continue;
      const int cdst = comp[static_cast<std::size_t>(dst)];

      // Reverse BFS over down edges: dd[u] counts the hops of u's shortest
      // all-down path to dst (unit weights, so BFS order is shortest).
      std::fill(dd.begin(), dd.end(), kInf);
      dd[static_cast<std::size_t>(dst)] = 0;
      queue.assign(1, dst);
      for (std::size_t head = 0; head < queue.size(); ++head) {
        const NodeId v = queue[head];
        for (const Port p : kAllPorts) {
          if (p == Port::kLocal || !t.link_alive(v, p)) continue;
          const NodeId u = t.neighbor(v, p);
          if (dd[static_cast<std::size_t>(u)] != kInf || !is_down(u, v))
            continue;
          dd[static_cast<std::size_t>(u)] = dd[static_cast<std::size_t>(v)] + 1;
          queue.push_back(u);
        }
      }

      // DP in rank order: dup[u] = min(dd[u], 1 + dup[up-neighbor]); every
      // up edge leads to an already-finalized entry.
      std::fill(dup.begin(), dup.end(), kInf);
      for (const NodeId u : ranked) {
        if (comp[static_cast<std::size_t>(u)] != cdst) continue;
        int best = dd[static_cast<std::size_t>(u)];
        for (const Port p : kAllPorts) {
          if (p == Port::kLocal || !t.link_alive(u, p)) continue;
          const NodeId m = t.neighbor(u, p);
          if (is_down(u, m)) continue;
          const int via = dup[static_cast<std::size_t>(m)];
          if (via < kInf && via + 1 < best) best = via + 1;
        }
        dup[static_cast<std::size_t>(u)] = best;
      }

      for (NodeId cur = 0; cur < n; ++cur) {
        if (comp[static_cast<std::size_t>(cur)] != cdst) continue;
        std::uint8_t& entry =
            lut[static_cast<std::size_t>(cur) * nn + static_cast<std::size_t>(dst)];
        if (cur == dst) {
          entry = static_cast<std::uint8_t>(port_index(Port::kLocal));
          continue;
        }
        if (dd[static_cast<std::size_t>(cur)] < kInf) {
          // Committed down: continue the shortest all-down path (first
          // matching port wins — deterministic tie-break).
          for (const Port p : kAllPorts) {
            if (p == Port::kLocal || !t.link_alive(cur, p)) continue;
            const NodeId m = t.neighbor(cur, p);
            if (is_down(cur, m) && dd[static_cast<std::size_t>(m)] ==
                                       dd[static_cast<std::size_t>(cur)] - 1) {
              entry = static_cast<std::uint8_t>(port_index(p));
              break;
            }
          }
        } else if (dup[static_cast<std::size_t>(cur)] < kInf) {
          for (const Port p : kAllPorts) {
            if (p == Port::kLocal || !t.link_alive(cur, p)) continue;
            const NodeId m = t.neighbor(cur, p);
            if (!is_down(cur, m) && dup[static_cast<std::size_t>(m)] + 1 ==
                                        dup[static_cast<std::size_t>(cur)]) {
              entry = static_cast<std::uint8_t>(port_index(p));
              break;
            }
          }
        }
      }
    }
  }
};

const XyPolicy kXyPolicy;
const YxPolicy kYxPolicy;
const WestFirstPolicy kWestFirstPolicy;
const AdaptiveUpDownPolicy kAdaptivePolicy;

}  // namespace

const RoutingPolicy& routing_policy_for(RoutingAlgorithm alg) {
  switch (alg) {
    case RoutingAlgorithm::kXY: return kXyPolicy;
    case RoutingAlgorithm::kYX: return kYxPolicy;
    case RoutingAlgorithm::kWestFirst: return kWestFirstPolicy;
    case RoutingAlgorithm::kAdaptive: return kAdaptivePolicy;
  }
  return kXyPolicy;
}

RoutingAlgorithm routing_from_name(const std::string& name) {
  if (name == "xy") return RoutingAlgorithm::kXY;
  if (name == "yx") return RoutingAlgorithm::kYX;
  if (name == "westfirst") return RoutingAlgorithm::kWestFirst;
  if (name == "adaptive") return RoutingAlgorithm::kAdaptive;
  throw std::invalid_argument("unknown routing algorithm: " + name);
}

int route_candidates(RoutingAlgorithm alg, const Topology& topo, NodeId cur,
                     NodeId dst, std::array<Port, 2>& candidates) {
  if (alg == RoutingAlgorithm::kWestFirst) {
    // Turn model: all westward movement happens first (no turn into West
    // is ever taken later), which breaks the cyclic channel dependencies.
    // Mesh-only and fault-free (enforced at configuration time), so the
    // structural coordinate compare is exact.
    const Coord c = topo.coord(cur);
    const Coord d = topo.coord(dst);
    if (c == d) {
      candidates[0] = Port::kLocal;
      return 1;
    }
    if (c.x > d.x) {
      candidates[0] = Port::kWest;
      return 1;
    }
    int n = 0;
    if (c.x < d.x) candidates[n++] = Port::kEast;
    if (c.y < d.y) candidates[n++] = Port::kNorth;
    if (c.y > d.y) candidates[n++] = Port::kSouth;
    // At most two minimal productive directions exist (E plus one of N/S,
    // or a single one); n is 1 or 2 here.
    return n;
  }
  if (alg == topo.routing()) {
    // The topology's LUT was built by this policy (and reflects any hard
    // faults), so the committed next hop is one load away.
    const std::uint8_t r = topo.route_raw(cur, dst);
    if (r == Topology::kUnreachable) return 0;
    candidates[0] = static_cast<Port>(r);
    return 1;
  }
  // Algorithm differs from the topology's configured policy (tests probing
  // several algorithms against one topology): compute dimension-ordered
  // routing structurally. Only valid fault-free — routers always query with
  // alg == topo.routing(), so the fault-adaptive path above covers them.
  if (cur == dst) {
    candidates[0] = Port::kLocal;
    return 1;
  }
  candidates[0] = dor_port(topo, cur, dst, /*x_first=*/alg != RoutingAlgorithm::kYX);
  return 1;
}

}  // namespace rlftnoc
