#include "noc/routing.h"

#include <stdexcept>

namespace rlftnoc {

RoutingAlgorithm routing_from_name(const std::string& name) {
  if (name == "xy") return RoutingAlgorithm::kXY;
  if (name == "yx") return RoutingAlgorithm::kYX;
  if (name == "westfirst") return RoutingAlgorithm::kWestFirst;
  throw std::invalid_argument("unknown routing algorithm: " + name);
}

int route_candidates(RoutingAlgorithm alg, const MeshTopology& topo, NodeId cur,
                     NodeId dst, std::array<Port, 2>& candidates) {
  const Coord c = topo.coord(cur);
  const Coord d = topo.coord(dst);
  if (c == d) {
    candidates[0] = Port::kLocal;
    return 1;
  }

  switch (alg) {
    case RoutingAlgorithm::kXY:
      candidates[0] = topo.xy_route(cur, dst);
      return 1;

    case RoutingAlgorithm::kYX:
      if (c.y < d.y) {
        candidates[0] = Port::kNorth;
      } else if (c.y > d.y) {
        candidates[0] = Port::kSouth;
      } else if (c.x < d.x) {
        candidates[0] = Port::kEast;
      } else {
        candidates[0] = Port::kWest;
      }
      return 1;

    case RoutingAlgorithm::kWestFirst: {
      // Turn model: all westward movement happens first (no turn into West
      // is ever taken later), which breaks the cyclic channel dependencies.
      if (c.x > d.x) {
        candidates[0] = Port::kWest;
        return 1;
      }
      int n = 0;
      if (c.x < d.x) candidates[n++] = Port::kEast;
      if (c.y < d.y) candidates[n++] = Port::kNorth;
      if (c.y > d.y) candidates[n++] = Port::kSouth;
      // At most two minimal productive directions exist (E plus one of N/S,
      // or a single one); n is 1 or 2 here.
      return n;
    }
  }
  candidates[0] = topo.xy_route(cur, dst);
  return 1;
}

}  // namespace rlftnoc
