// Pluggable topology provider: coordinate mapping, structural neighbours,
// per-link / per-router aliveness (hard faults) and the flat next-hop route
// LUT shared by every routing policy (see noc/routing.h).
//
// Two shapes are supported: the paper's open-edged 2D mesh (Table II) and a
// 2D torus with wrap-around links in both dimensions. Structure and health
// are kept separate: `neighbor()` answers "is there a wire" (never changes),
// while `link_alive()` / `router_alive()` answer "does it still work" after
// `kill_link()` / `kill_router()`. Routing policies rebuild the route LUT
// from the alive subgraph via `rebuild_routes()`, so steady-state route
// computation stays one table load regardless of the fault set.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "noc/noc_config.h"

namespace rlftnoc {

/// Topology + fault masks + route LUT for a W x H mesh or torus
/// (row-major, x fastest). Copyable; copies carry the fault state and route
/// table at copy time.
class Topology {
 public:
  /// Route-LUT sentinel for "no route" (dst unreachable from cur on the
  /// alive subgraph, or an endpoint router is dead).
  static constexpr std::uint8_t kUnreachable = 0xFF;

  /// Back-compat mesh constructor (XY routing). Throws std::invalid_argument
  /// on non-positive dimensions.
  Topology(int width, int height)
      : Topology(TopologyKind::kMesh, width, height, RoutingAlgorithm::kXY) {}

  /// Full constructor. Throws std::invalid_argument on non-positive
  /// dimensions, or a torus smaller than 2x2 (wrap links would self-loop).
  Topology(TopologyKind kind, int width, int height, RoutingAlgorithm routing);

  explicit Topology(const NocConfig& cfg)
      : Topology(cfg.topology, cfg.mesh_width, cfg.mesh_height, cfg.routing) {}

  TopologyKind kind() const noexcept { return kind_; }
  RoutingAlgorithm routing() const noexcept { return routing_; }
  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  int num_nodes() const noexcept { return width_ * height_; }

  Coord coord(NodeId n) const noexcept {
    return Coord{n % width_, n / width_};
  }
  NodeId node(Coord c) const noexcept { return c.y * width_ + c.x; }
  NodeId node(int x, int y) const noexcept { return y * width_ + x; }

  bool valid(NodeId n) const noexcept { return n >= 0 && n < num_nodes(); }

  /// Structural neighbour through port `p`: kInvalidNode at a mesh edge and
  /// for Local, the wrap neighbour at a torus edge. Ignores link health.
  NodeId neighbor(NodeId n, Port p) const noexcept {
    return nbr_[static_cast<std::size_t>(n) * kNumPorts + port_index(p)];
  }

  /// True when the structural link out of `n` through `p` exists and has not
  /// been killed. Always false for Local and at open mesh edges.
  bool link_alive(NodeId n, Port p) const noexcept {
    return link_alive_[static_cast<std::size_t>(n) * kNumPorts +
                       port_index(p)] != 0;
  }

  bool router_alive(NodeId n) const noexcept {
    return router_alive_[static_cast<std::size_t>(n)] != 0;
  }

  /// True when the link out of `n` through `p` is a torus wrap-around link
  /// (crosses the dateline of its dimension). Always false on a mesh.
  bool wrap_link(NodeId n, Port p) const noexcept {
    if (kind_ != TopologyKind::kTorus || p == Port::kLocal) return false;
    const Coord c = coord(n);
    switch (p) {
      case Port::kNorth: return c.y == height_ - 1;
      case Port::kSouth: return c.y == 0;
      case Port::kEast: return c.x == width_ - 1;
      case Port::kWest: return c.x == 0;
      case Port::kLocal: return false;
    }
    return false;
  }

  /// Marks the (bidirectional) link `n <-> neighbor(n, p)` dead. Returns
  /// true when the link existed and was alive. Does not rebuild the route
  /// LUT — call rebuild_routes() after a batch of kills.
  bool kill_link(NodeId n, Port p);

  /// Marks router `n` and all four of its links dead. Returns true when the
  /// router was alive. Does not rebuild the route LUT.
  bool kill_router(NodeId n);

  int num_dead_links() const noexcept { return dead_links_; }
  int num_dead_routers() const noexcept { return dead_routers_; }
  bool has_faults() const noexcept {
    return dead_links_ > 0 || dead_routers_ > 0;
  }

  /// Rebuilds the next-hop LUT for the current alive subgraph using the
  /// routing policy selected at construction (see noc/routing.h).
  void rebuild_routes();

  /// Raw route-LUT entry: port_index of the next hop, or kUnreachable. The
  /// one-load fast path for route computation and credit walks.
  std::uint8_t route_raw(NodeId cur, NodeId dst) const noexcept {
    return next_hop_[static_cast<std::size_t>(cur) *
                         static_cast<std::size_t>(num_nodes()) +
                     static_cast<std::size_t>(dst)];
  }

  /// Next-hop port from `cur` toward `dst` (kLocal when cur == dst). Both
  /// ids must be valid and dst reachable from cur — a kInvalidNode (or any
  /// out-of-range id) here is a caller bug, not a routable state, and is
  /// rejected by RLFTNOC_CHECK instead of reading out of bounds.
  Port route(NodeId cur, NodeId dst) const noexcept {
    RLFTNOC_CHECK(valid(cur) && valid(dst));
    const std::uint8_t r = route_raw(cur, dst);
    RLFTNOC_CHECK(r != kUnreachable);
    return static_cast<Port>(r);
  }

  /// Legacy name for route() from the mesh-only era; same contract.
  Port xy_route(NodeId cur, NodeId dst) const noexcept {
    return route(cur, dst);
  }

  /// True when `dst` is reachable from `cur` on the alive subgraph under
  /// the active routing policy (cur == dst counts as reachable when the
  /// router is alive).
  bool reachable(NodeId cur, NodeId dst) const noexcept {
    RLFTNOC_CHECK(valid(cur) && valid(dst));
    return route_raw(cur, dst) != kUnreachable;
  }

  /// Structural minimal hop distance: Manhattan on a mesh, per-dimension
  /// min(d, size - d) on a torus. Ignores faults (used for e2e control
  /// message latency and per-hop reward normalization, where the structural
  /// estimate is the stable choice).
  int distance(NodeId a, NodeId b) const noexcept {
    const Coord ca = coord(a);
    const Coord cb = coord(b);
    int dx = std::abs(ca.x - cb.x);
    int dy = std::abs(ca.y - cb.y);
    if (kind_ == TopologyKind::kTorus) {
      dx = dx < width_ - dx ? dx : width_ - dx;
      dy = dy < height_ - dy ? dy : height_ - dy;
    }
    return dx + dy;
  }

 private:
  void build_structure();

  TopologyKind kind_;
  int width_;
  int height_;
  RoutingAlgorithm routing_;
  int dead_links_ = 0;
  int dead_routers_ = 0;
  std::vector<NodeId> nbr_;              ///< [n * kNumPorts + p] structural
  std::vector<std::uint8_t> link_alive_; ///< [n * kNumPorts + p]
  std::vector<std::uint8_t> router_alive_;  ///< [n]
  /// [cur * num_nodes + dst] -> port_index or kUnreachable (1 byte per
  /// pair — 1 MiB for a 32x32 mesh).
  std::vector<std::uint8_t> next_hop_;
};

/// The pre-fault-era name; every mesh call site still works unchanged.
using MeshTopology = Topology;

}  // namespace rlftnoc
