// 2D-mesh topology helpers: coordinate mapping, neighbours, and the
// dimension-ordered (X-Y) routing function from Table II.
#pragma once

#include <cstdlib>
#include <vector>

#include "common/types.h"
#include "noc/noc_config.h"

namespace rlftnoc {

/// Coordinate <-> linear-id mapping for a W x H mesh (row-major, x fastest).
class MeshTopology {
 public:
  MeshTopology(int width, int height) : width_(width), height_(height) {
    build_next_hop_lut();
  }
  explicit MeshTopology(const NocConfig& cfg)
      : MeshTopology(cfg.mesh_width, cfg.mesh_height) {}

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  int num_nodes() const noexcept { return width_ * height_; }

  Coord coord(NodeId n) const noexcept {
    return Coord{n % width_, n / width_};
  }
  NodeId node(Coord c) const noexcept { return c.y * width_ + c.x; }
  NodeId node(int x, int y) const noexcept { return y * width_ + x; }

  bool valid(NodeId n) const noexcept { return n >= 0 && n < num_nodes(); }

  /// Neighbour through port `p`, or kInvalidNode at a mesh edge / for Local.
  NodeId neighbor(NodeId n, Port p) const noexcept {
    const Coord c = coord(n);
    switch (p) {
      case Port::kNorth: return c.y + 1 < height_ ? node(c.x, c.y + 1) : kInvalidNode;
      case Port::kSouth: return c.y > 0 ? node(c.x, c.y - 1) : kInvalidNode;
      case Port::kEast: return c.x + 1 < width_ ? node(c.x + 1, c.y) : kInvalidNode;
      case Port::kWest: return c.x > 0 ? node(c.x - 1, c.y) : kInvalidNode;
      case Port::kLocal: return kInvalidNode;
    }
    return kInvalidNode;
  }

  /// X-Y dimension-ordered routing: the output port a flit at `cur` headed
  /// for `dst` must take (kLocal when cur == dst). Deadlock-free on a mesh.
  /// One flat-table load: route computation, path-latency credit walks and
  /// the adaptive routing fallbacks all hit this per flit per hop, so the
  /// coordinate arithmetic is precomputed into `next_hop_` (1 byte per
  /// (cur, dst) pair — 1 MiB for a 32x32 mesh).
  Port xy_route(NodeId cur, NodeId dst) const noexcept {
    return next_hop_[static_cast<std::size_t>(cur) *
                         static_cast<std::size_t>(num_nodes()) +
                     static_cast<std::size_t>(dst)];
  }

  /// Manhattan hop distance.
  int distance(NodeId a, NodeId b) const noexcept {
    const Coord ca = coord(a);
    const Coord cb = coord(b);
    return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
  }

 private:
  void build_next_hop_lut() {
    const auto n = static_cast<std::size_t>(num_nodes());
    next_hop_.resize(n * n);
    for (NodeId cur = 0; cur < static_cast<NodeId>(n); ++cur) {
      const Coord c = coord(cur);
      Port* row = next_hop_.data() + static_cast<std::size_t>(cur) * n;
      for (NodeId dst = 0; dst < static_cast<NodeId>(n); ++dst) {
        const Coord d = coord(dst);
        row[dst] = c.x < d.x   ? Port::kEast
                   : c.x > d.x ? Port::kWest
                   : c.y < d.y ? Port::kNorth
                   : c.y > d.y ? Port::kSouth
                               : Port::kLocal;
      }
    }
  }

  int width_;
  int height_;
  std::vector<Port> next_hop_;  ///< [cur * num_nodes + dst] -> output port
};

}  // namespace rlftnoc
