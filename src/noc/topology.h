// 2D-mesh topology helpers: coordinate mapping, neighbours, and the
// dimension-ordered (X-Y) routing function from Table II.
#pragma once

#include <cstdlib>

#include "common/types.h"
#include "noc/noc_config.h"

namespace rlftnoc {

/// Coordinate <-> linear-id mapping for a W x H mesh (row-major, x fastest).
class MeshTopology {
 public:
  MeshTopology(int width, int height) noexcept : width_(width), height_(height) {}
  explicit MeshTopology(const NocConfig& cfg) noexcept
      : MeshTopology(cfg.mesh_width, cfg.mesh_height) {}

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  int num_nodes() const noexcept { return width_ * height_; }

  Coord coord(NodeId n) const noexcept {
    return Coord{n % width_, n / width_};
  }
  NodeId node(Coord c) const noexcept { return c.y * width_ + c.x; }
  NodeId node(int x, int y) const noexcept { return y * width_ + x; }

  bool valid(NodeId n) const noexcept { return n >= 0 && n < num_nodes(); }

  /// Neighbour through port `p`, or kInvalidNode at a mesh edge / for Local.
  NodeId neighbor(NodeId n, Port p) const noexcept {
    const Coord c = coord(n);
    switch (p) {
      case Port::kNorth: return c.y + 1 < height_ ? node(c.x, c.y + 1) : kInvalidNode;
      case Port::kSouth: return c.y > 0 ? node(c.x, c.y - 1) : kInvalidNode;
      case Port::kEast: return c.x + 1 < width_ ? node(c.x + 1, c.y) : kInvalidNode;
      case Port::kWest: return c.x > 0 ? node(c.x - 1, c.y) : kInvalidNode;
      case Port::kLocal: return kInvalidNode;
    }
    return kInvalidNode;
  }

  /// X-Y dimension-ordered routing: the output port a flit at `cur` headed
  /// for `dst` must take (kLocal when cur == dst). Deadlock-free on a mesh.
  Port xy_route(NodeId cur, NodeId dst) const noexcept {
    const Coord c = coord(cur);
    const Coord d = coord(dst);
    if (c.x < d.x) return Port::kEast;
    if (c.x > d.x) return Port::kWest;
    if (c.y < d.y) return Port::kNorth;
    if (c.y > d.y) return Port::kSouth;
    return Port::kLocal;
  }

  /// Manhattan hop distance.
  int distance(NodeId a, NodeId b) const noexcept {
    const Coord ca = coord(a);
    const Coord cb = coord(b);
    return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
  }

 private:
  int width_;
  int height_;
};

}  // namespace rlftnoc
