// Network interface (NI): the local-port endpoint attached to each router.
//
// Source side: queues packets from the traffic layer, CRC-encodes every flit
// (Fig. 1(b)), injects one flit per cycle subject to local-port credits, and
// retains a pristine copy of each packet until the end-to-end ACK arrives;
// an end-to-end NACK (destination CRC failure) re-injects the whole packet
// from source, which is exactly the baseline CRC retransmission scheme.
//
// Destination side: ejects flits, recomputes the CRC over the (possibly
// corrupted, possibly ECC-"corrected") payload, reassembles packets, and
// requests the source retransmission when any flit fails.
// rlftnoc-lint: hot-path (per-cycle step path: R4 bans node-allocating containers and .at())
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ring_buffer.h"
#include "common/types.h"
#include "noc/flit.h"
#include "noc/noc_config.h"
#include "noc/step_effects.h"

namespace rlftnoc {

class Network;
class Topology;

/// Creates a packet with `len` flits of RNG-filled payload and valid CRCs.
class Rng;
Packet make_packet(PacketId id, NodeId src, NodeId dst, int len, Cycle now, Rng& rng);

/// Per-NI activity counters.
struct NiCounters {
  std::uint64_t packets_enqueued = 0;
  std::uint64_t packets_injected = 0;      ///< first transmissions only
  std::uint64_t packets_reinjected = 0;    ///< end-to-end retransmissions
  std::uint64_t flits_sent = 0;
  std::uint64_t flits_sent_fresh = 0;  ///< excludes end-to-end retransmissions
  std::uint64_t flits_ejected = 0;
  std::uint64_t packets_delivered = 0;     ///< finalized with all CRCs clean
  std::uint64_t packets_crc_failed = 0;    ///< finalized with >=1 bad flit
  std::uint64_t crc_flit_failures = 0;
  std::uint64_t queue_rejects = 0;         ///< enqueue refused, queue full
  std::uint64_t stale_flit_drops = 0;      ///< old-generation stragglers dropped
  std::uint64_t packets_abandoned = 0;     ///< given up after hard faults
};

class NetworkInterface {
 public:
  NetworkInterface(NodeId id, const NocConfig* cfg, Network* net);

  NodeId id() const noexcept { return id_; }

  /// Queues a packet for injection; returns false when the queue is full.
  bool enqueue_packet(Packet pkt);

  std::size_t inject_queue_depth() const noexcept {
    return queue_.size() + reinject_.size();
  }

  /// Phase A: ejection side — drain flits and credits from the router.
  void receive(Cycle now);

  /// Phase B: injection side — push at most one flit onto the local link.
  void execute(Cycle now);

  /// Called by the Network when an end-to-end ACK (`ok`) or retransmission
  /// request (`!ok`) for a packet we sourced arrives back. Runs in the
  /// serial e2e drain (never inside a parallel phase), so it keeps the
  /// direct global metric/trace sinks.
  void deliver_e2e_response(Cycle now, PacketId id, bool ok);

  /// Binds this NI's shard-local staging buffer and trace sink (null trace
  /// = tracing off); see Router::set_effect_sinks. receive/execute stage
  /// all global-metric mutations, latency samples, path credits and e2e
  /// scheduling through these.
  void set_effect_sinks(StepEffects* fx, TraceStage* trace) noexcept {
    fx_ = fx;
    trace_ = trace;
  }

  /// True when this NI holds no in-flight state (drain detection).
  bool idle() const noexcept {
    return queue_.empty() && reinject_.empty() && !sending_ && retained_.empty() &&
           assembling_.empty();
  }

  /// True when the injection side can produce nothing this cycle: no queued
  /// or in-flight packet transmission. Reassembly/retained state does not
  /// matter here — it only reacts to arriving flits/responses, which the
  /// network's idle-skip check accounts for separately.
  bool injection_idle() const noexcept {
    return queue_.empty() && reinject_.empty() && !sending_;
  }

  const NiCounters& counters() const noexcept { return counters_; }

  // -- hard-fault teardown (serial context, called by the Network) --

  /// Drops queued / reinject / retained packets whose destination died or
  /// became unreachable. Retained packets that had flits in flight are
  /// reported as `orphans` (packet, dst) so the network can erase any
  /// partial reassembly at the destination.
  void purge_unreachable(const Topology& topo,
                         std::vector<std::pair<PacketId, NodeId>>& orphans);

  /// Wipes all NI state when this node's router is killed.
  void purge_for_router_kill(std::vector<std::pair<PacketId, NodeId>>& orphans);

  bool has_retained(PacketId id) const noexcept {
    return retained_.count(id) != 0;
  }
  /// Gives up on a retained packet (destination lost): no further end-to-end
  /// retransmissions will be attempted.
  void abandon_retained(PacketId id);
  /// Erases a partial reassembly for a packet that can never complete.
  void abandon_assembly(PacketId id) { assembling_.erase(id); }

 private:
  struct Assembly {
    NodeId src = kInvalidNode;
    std::uint32_t expected = 0;
    std::uint32_t received = 0;
    bool crc_failed = false;
    Cycle packet_inject_cycle = kInvalidCycle;
    std::uint8_t attempt = 0;  ///< injection generation being assembled
  };

  /// Local-port credit mirror of the router's Local input VCs.
  struct LocalVc {
    bool busy = false;  ///< mid-packet: reserved until our tail goes out
    int credits = 0;
  };

  void start_next_packet(Cycle now);
  void finalize_packet(Cycle now, PacketId id, const Assembly& asmbl);

  /// The invariant auditor inspects credit mirrors and reassembly state
  /// (see noc/audit.h).
  friend class NetworkAuditor;

  NodeId id_;
  const NocConfig* cfg_;
  Network* net_;
  StepEffects* fx_ = nullptr;   ///< shard staging buffer (never null in step)
  TraceStage* trace_ = nullptr; ///< shard trace sink; null = tracing off

  RingBuffer<Packet> queue_;     ///< fresh packets
  RingBuffer<Packet> reinject_;  ///< end-to-end retransmissions (priority)
  std::optional<Packet> sending_;
  bool sending_is_reinject_ = false;
  std::size_t next_flit_ = 0;
  VcId send_vc_ = kInvalidVc;

  std::unordered_map<PacketId, Packet> retained_;
  std::unordered_map<PacketId, Assembly> assembling_;
  /// Highest generation already finalized, recorded only for packets that
  /// were ever re-injected (attempt > 0), so stragglers of a finalized
  /// generation cannot re-open a ghost assembly after hard-fault repair.
  std::unordered_map<PacketId, std::uint8_t> finalized_attempt_;
  std::vector<LocalVc> local_vcs_;

  NiCounters counters_;
};

}  // namespace rlftnoc
