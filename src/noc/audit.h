// Runtime invariant auditor for the NoC core.
//
// A cycle-accurate fault-tolerance study lives or dies on conservation
// properties: the fault injector may flip payload bits, but no flit may ever
// be created or destroyed outside the accounted paths, no credit may be
// minted or leaked, and the ARQ bookkeeping must stay internally consistent.
// The NetworkAuditor cross-checks those properties over a *quiescent*
// Network — i.e. between `Network::step()` calls, when every delay line,
// buffer and counter is settled for the cycle.
//
// The audited invariant set (see DESIGN.md, "Invariant audit"):
//
//  1. Flit conservation. Flit instances are created only by source NIs
//     (`flits_sent`, covering fresh and end-to-end-retransmitted packets)
//     and by the link layer (`hop_retransmissions` + `preretx_duplicates`);
//     they are destroyed only by ejection (`flits_ejected`), by NACK
//     rejection (`nacks_sent`), or by duplicate discard (`dup_discards`).
//     Created == destroyed + alive, where alive spans every channel delay
//     line and every input VC buffer.
//  2. Credit balance. The injection and ejection channels carry no ARQ, so
//     their credit loops close exactly every cycle:
//     NI credits + credits in flight + flits on the wire + downstream
//     occupancy == buffer depth. Mesh channels additionally hold ARQ state
//     (rejected copies awaiting resend absorb slots invisibly), so the audit
//     enforces the sound bound credits + in-flight + occupancy <= depth every
//     cycle and the exact equality whenever the port is ARQ-quiescent.
//  3. VC depth bounds: no input VC FIFO ever exceeds its configured depth —
//     the credit protocol's whole purpose.
//  4. ARQ consistency: retention fits its configured depth, retained flit
//     ids are unique, every queued resend points at a retention entry that
//     knows it is queued (and vice versa), every pending duplicate points at
//     a live retention entry, and link sequence numbers never run ahead of
//     the sender's stamp counter.
//  5. Switch-allocation structure: an output VC is marked allocated iff
//     exactly one active input VC claims it.
//  6. Parallel staging: the shard partition is contiguous, ascending and
//     covers [0, num_nodes) exactly; every router and NI is bound to the
//     staging buffer (and trace stage) of the shard that owns it; and all
//     staging buffers are empty between steps — a non-empty buffer means a
//     staged effect escaped the canonical merge.
//
// Violations are reported with the offending cycle / router / port so a
// failure in a million-cycle campaign points straight at the broken state.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"

namespace rlftnoc {

class Network;

/// One violated invariant, located as precisely as the invariant allows.
struct AuditViolation {
  std::string invariant;       ///< short id, e.g. "flit-conservation"
  std::string detail;          ///< human-readable explanation with numbers
  Cycle cycle = 0;             ///< Network::now() when detected
  NodeId node = kInvalidNode;  ///< offending router / NI, when applicable
  Port port = Port::kLocal;    ///< offending port, when `has_port`
  bool has_port = false;

  /// "cycle 1234 router 5 port E: <invariant>: <detail>".
  std::string to_string() const;
};

/// Thrown by NetworkAuditor::check_or_throw on the first violation.
class AuditError : public std::runtime_error {
 public:
  explicit AuditError(AuditViolation v);
  const AuditViolation& violation() const noexcept { return violation_; }

 private:
  AuditViolation violation_;
};

/// Per-cycle conservation checker (SimOptions::audit wires it into the
/// simulation loop; tests drive it directly). Stateless across cycles apart
/// from a pass counter, so one auditor can serve many networks.
class NetworkAuditor {
 public:
  /// Runs every audit over `net`; returns all violations found (empty =
  /// clean). `net` must be quiescent (between step() calls).
  std::vector<AuditViolation> run(const Network& net);

  /// Runs every audit and throws AuditError on the first violation.
  void check_or_throw(const Network& net);

  /// Number of clean passes completed so far.
  std::uint64_t clean_passes() const noexcept { return clean_passes_; }

 private:
  void audit_flit_conservation(const Network& net,
                               std::vector<AuditViolation>& out) const;
  void audit_credit_balance(const Network& net,
                            std::vector<AuditViolation>& out) const;
  void audit_vc_bounds(const Network& net,
                       std::vector<AuditViolation>& out) const;
  void audit_arq_consistency(const Network& net,
                             std::vector<AuditViolation>& out) const;
  void audit_allocation_structure(const Network& net,
                                  std::vector<AuditViolation>& out) const;
  void audit_ni_state(const Network& net,
                      std::vector<AuditViolation>& out) const;
  void audit_parallel_staging(const Network& net,
                              std::vector<AuditViolation>& out) const;

  std::uint64_t clean_passes_ = 0;
};

}  // namespace rlftnoc
