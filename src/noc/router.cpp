// rlftnoc-lint: hot-path (per-cycle step path: R4 bans node-allocating containers and .at())
#include "noc/router.h"

#include <algorithm>

#include "common/check.h"
#include "coding/secded.h"
#include "noc/network.h"
#include "noc/routing.h"

namespace rlftnoc {

namespace {
constexpr std::array<Port, 4> kMeshPorts = {Port::kNorth, Port::kSouth, Port::kEast,
                                            Port::kWest};

// Mesh dimension a port travels along (dateline classes are per-dimension).
int port_dim(Port p) noexcept {
  return (p == Port::kNorth || p == Port::kSouth) ? 1 : 0;
}
}  // namespace

Router::Router(NodeId id, const NocConfig* cfg, Network* net)
    : id_(id), cfg_(cfg), net_(net), dateline_(cfg->dateline_vcs()) {
  for (std::size_t p = 0; p < kNumPorts; ++p) {
    input_[p].resize(static_cast<std::size_t>(cfg_->vcs_per_port));
    auto& op = output_[p];
    op.vcs.resize(static_cast<std::size_t>(cfg_->vcs_per_port));
    // Credits mirror the downstream buffer: router input VCs for mesh ports,
    // the deeper NI ejection buffer for the Local port.
    const int depth = (static_cast<Port>(p) == Port::kLocal) ? cfg_->local_vc_depth
                                                             : cfg_->vc_depth;
    for (auto& vc : op.vcs) vc.credits = depth;
    // Pre-size every hot queue to its protocol bound so the per-cycle
    // datapath never allocates: input FIFOs hold at most vc_depth flits and
    // the ARQ structures at most retention_depth entries.
    for (auto& iv : input_[p]) iv.fifo.reserve(static_cast<std::size_t>(cfg_->vc_depth));
    op.retention.reset(static_cast<std::size_t>(cfg_->retention_depth));
    op.retx_queue.reserve(static_cast<std::size_t>(cfg_->retention_depth));
    op.dup_queue.reserve(static_cast<std::size_t>(cfg_->retention_depth));
  }
}

// --------------------------------------------------------------------------
// Phase A: receive
// --------------------------------------------------------------------------

void Router::receive(Cycle now) {
  for (const Port p : kMeshPorts) {
    if (ChannelPair* ch = net_->in_channel(id_, p)) {
      while (auto f = ch->flits.pop(now)) handle_incoming_flit(now, p, std::move(*f));
    }
  }
  ChannelPair& inj = net_->inj_channel(id_);
  while (auto f = inj.flits.pop(now))
    handle_incoming_flit(now, Port::kLocal, std::move(*f));

  for (const Port p : kMeshPorts) {
    if (ChannelPair* ch = net_->out_channel(id_, p)) {
      const std::size_t pi = port_index(p);
      while (auto c = ch->credits.pop(now))
        ++output_[pi].vcs[static_cast<std::size_t>(c->vc)].credits;
      while (auto a = ch->acks.pop(now)) handle_ack(p, *a);
    }
  }
  ChannelPair& ej = net_->ej_channel(id_);
  while (auto c = ej.credits.pop(now))
    ++output_[port_index(Port::kLocal)].vcs[static_cast<std::size_t>(c->vc)].credits;
}

void Router::handle_incoming_flit(Cycle now, Port in_port, Flit flit) {
  const std::size_t pi = port_index(in_port);
  InputArq& arq = input_arq_[pi];

  if (in_port == Port::kLocal) {
    // NI injection wire: short, robust, outside the link-layer ARQ.
    accept_flit(in_port, std::move(flit));
    return;
  }

  if (!flit.ecc_valid) {
    // Unprotected link (mode 0 upstream): accept whatever arrives — the
    // destination CRC is the only safety net — but keep the sequence stream
    // in sync for later protected flits. The sender never emits unprotected
    // flits while a retransmission gap is open, so this is always in-order.
    arq.expected_lsn = flit.lsn + 1;
    accept_flit(in_port, std::move(flit));
    return;
  }

  const FlitId fid = flit.id();
  if (flit.lsn < arq.expected_lsn) {
    // Duplicate of something already accepted (mode-2 pre-retransmission
    // behind a successful original, or a stale resend): confirm and drop.
    ++counters_.dup_discards;
    send_link_response(now, in_port, fid, flit.vc, /*nack=*/false);
    return;
  }
  if (flit.lsn > arq.expected_lsn) {
    // Out of order behind a rejected flit: go-back-N — NACK so the sender
    // replays it after the gap is filled. No decode needed.
    ++counters_.nacks_sent[pi];
    RLFTNOC_TRACE(trace_, TraceEventKind::kNackSent, now, id_,
                  static_cast<std::int8_t>(pi), /*out-of-order*/ 0);
    send_link_response(now, in_port, fid, flit.vc, /*nack=*/true);
    return;
  }

  net_->record_power(id_, PowerEvent::kEccDecode);
  const FlitEccDecode dec = decode_flit_ecc(default_secded(), flit.payload, flit.ecc);
  if (dec.status == SecdedStatus::kUncorrectable) {
    // Reject: NACK upstream and wait for the resend (or the mode-2 dup).
    ++counters_.ecc_uncorrectable;
    ++counters_.nacks_sent[pi];
    RLFTNOC_TRACE(trace_, TraceEventKind::kNackSent, now, id_,
                  static_cast<std::int8_t>(pi), /*uncorrectable*/ 1);
    send_link_response(now, in_port, fid, flit.vc, /*nack=*/true);
    return;
  }

  if (dec.status == SecdedStatus::kCorrected) ++counters_.ecc_corrections;
  flit.payload = dec.payload;
  flit.ecc = dec.ecc;
  send_link_response(now, in_port, fid, flit.vc, /*nack=*/false);
  arq.expected_lsn = flit.lsn + 1;
  flit.ecc_valid = false;  // consumed at this hop; re-encoded if the next link is protected
  accept_flit(in_port, std::move(flit));
}

void Router::accept_flit(Port in_port, Flit&& flit) {
  const std::size_t pi = port_index(in_port);
  InputVc& vc = input_[pi][static_cast<std::size_t>(flit.vc)];
  // Credits guarantee buffer space; overflow here means a flow-control bug.
  RLFTNOC_CHECK(static_cast<int>(vc.fifo.size()) < cfg_->vc_depth,
                "router %d port %s vc %d: input VC overflow (depth %d)",
                id_, port_name(in_port), flit.vc, cfg_->vc_depth);
  ++counters_.flits_in[pi];
  net_->record_power(id_, PowerEvent::kBufferWrite);
  vc.fifo.push_back(std::move(flit));
}

void Router::send_link_response(Cycle /*now*/, Port in_port, FlitId id, VcId vc,
                                bool nack) {
  ChannelPair* ch = net_->in_channel(id_, in_port);
  // ECC traffic only arrives on mesh ports, which always have a back channel.
  RLFTNOC_CHECK(ch != nullptr, "router %d: link response through port %s",
                id_, port_name(in_port));
  // The upstream router pops this very ack lane in the same receive phase,
  // so the push is staged and applied after the barrier. Same-cycle pushes
  // mature at now+1 regardless, so the deferral is invisible.
  fx_->acks.push_back(StepEffects::StagedAck{&ch->acks, AckMsg{id, vc, nack}});
  net_->record_power(id_, PowerEvent::kAckFlit);
}

void Router::handle_ack(Port out_port, const AckMsg& ack) {
  const std::size_t pi = port_index(out_port);
  ArqRetention* r = find_retention(out_port, ack.flit_id);
  if (r == nullptr) return;  // response for an entry already freed

  if (!ack.nack) {
    ++counters_.acks_received[pi];
    erase_retention(out_port, ack.flit_id);
    drop_queued_copies(out_port, ack.flit_id);
    return;
  }

  ++counters_.nacks_received[pi];
  r->unresolved = std::max(0, r->unresolved - 1);
  OutputPort& op = output_[pi];
  const bool dup_scheduled = op.dup_queue.any_of(
      [&](const OutputPort::PendingDup& d) { return d.id == ack.flit_id; });
  if (r->unresolved == 0 && !dup_scheduled && !r->resend_queued) {
    op.retx_queue.push_back(ack.flit_id);
    r->resend_queued = true;
  }
}

// --------------------------------------------------------------------------
// Phase B: execute (SA -> VA -> RC evaluated in reverse pipeline order)
// --------------------------------------------------------------------------

void Router::execute(Cycle now) {
  stage_link_resend(now);
  stage_switch_allocation(now);
  stage_vc_allocation();
  stage_route_computation(now);
}

void Router::stage_link_resend(Cycle now) {
  for (const Port p : kMeshPorts) {
    if (net_->out_channel(id_, p) == nullptr) continue;
    const std::size_t pi = port_index(p);
    OutputPort& op = output_[pi];
    if (now < op.busy_until) continue;

    // Priority 1: NACK-triggered resends.
    bool sent = false;
    while (!op.retx_queue.empty()) {
      const FlitId fid = op.retx_queue.front();
      ArqRetention* r = find_retention(p, fid);
      op.retx_queue.pop_front();
      if (r == nullptr) continue;  // freed by a racing ACK
      r->resend_queued = false;
      Flit copy = r->clean;
      copy.hop_retransmission = true;
      ++counters_.hop_retransmissions;
      ++fx_->retx_flits_hop;
      RLFTNOC_TRACE(trace_, TraceEventKind::kHopRetx, now, id_,
                    static_cast<std::int8_t>(pi),
                    static_cast<std::int32_t>(copy.seq));
      net_->record_power(id_, PowerEvent::kRetransmission);
      transmit(now, p, std::move(copy), /*is_copy=*/true);
      sent = true;
      break;
    }
    if (sent) continue;

    // Priority 2: mode-2 proactive duplicates whose gap has elapsed.
    while (!op.dup_queue.empty() && op.dup_queue.front().earliest <= now) {
      const FlitId fid = op.dup_queue.front().id;
      op.dup_queue.pop_front();
      ArqRetention* r = find_retention(p, fid);
      if (r == nullptr) continue;  // original already ACKed
      Flit copy = r->clean;
      copy.hop_retransmission = true;
      ++counters_.preretx_duplicates;
      ++fx_->dup_flits;
      RLFTNOC_TRACE(trace_, TraceEventKind::kPreRetxDup, now, id_,
                    static_cast<std::int8_t>(pi),
                    static_cast<std::int32_t>(copy.seq));
      transmit(now, p, std::move(copy), /*is_copy=*/true);
      break;
    }
  }
}

void Router::stage_switch_allocation(Cycle now) {
  const int vcs = cfg_->vcs_per_port;
  const int candidates = static_cast<int>(kNumPorts) * vcs;
  std::array<bool, kNumPorts> input_used{};

  for (const Port out : kAllPorts) {
    const std::size_t pi = port_index(out);
    OutputPort& op = output_[pi];
    if (now < op.busy_until) continue;
    const bool mesh = out != Port::kLocal;
    if (mesh && net_->out_channel(id_, out) == nullptr) continue;
    // A protected link must be able to retain a copy of what it sends.
    if (mesh && ecc_enabled() &&
        static_cast<int>(op.retention.size()) >= cfg_->retention_depth)
      continue;
    // After switching to mode 0, the port first drains its ARQ window:
    // sending unprotected flits past an open retransmission gap would let
    // the stream arrive out of order.
    if (mesh && !ecc_enabled() &&
        !(op.retention.empty() && op.retx_queue.empty() && op.dup_queue.empty()))
      continue;

    for (int k = 0; k < candidates; ++k) {
      const int idx = (op.sa_rr + k) % candidates;
      const auto in_pi = static_cast<std::size_t>(idx / vcs);
      const auto v = static_cast<std::size_t>(idx % vcs);
      if (input_used[in_pi]) continue;
      InputVc& iv = input_[in_pi][v];
      if (iv.state != InputVc::State::kActive || iv.fifo.empty()) continue;
      if (iv.out_port != out) continue;
      OutputVc& ovc = op.vcs[static_cast<std::size_t>(iv.out_vc)];
      if (ovc.credits <= 0) continue;

      // Grant: read the flit, cross the switch, return the buffer credit.
      Flit flit = std::move(iv.fifo.front());
      iv.fifo.pop_front();
      net_->record_power(id_, PowerEvent::kBufferRead);
      net_->record_power(id_, PowerEvent::kArbitration);
      net_->record_power(id_, PowerEvent::kCrossbar);

      const auto in_port = static_cast<Port>(in_pi);
      if (in_port == Port::kLocal) {
        net_->inj_channel(id_).credits.push(now, Credit{static_cast<VcId>(v)});
      } else if (ChannelPair* ch = net_->in_channel(id_, in_port)) {
        ch->credits.push(now, Credit{static_cast<VcId>(v)});
      }

      --ovc.credits;
      flit.vc = iv.out_vc;
      const bool tail = flit.is_tail();
      transmit(now, out, std::move(flit), /*is_copy=*/false);
      if (tail) {
        ovc.allocated = false;
        iv.state = InputVc::State::kIdle;
        iv.out_vc = kInvalidVc;
      }
      input_used[in_pi] = true;
      op.sa_rr = (idx + 1) % candidates;
      break;
    }
  }
}

void Router::stage_vc_allocation() {
  for (std::size_t in_pi = 0; in_pi < kNumPorts; ++in_pi) {
    for (auto& iv : input_[in_pi]) {
      if (iv.state != InputVc::State::kWaitVc) continue;
      OutputPort& op = output_[port_index(iv.out_port)];
      const int vcs = cfg_->vcs_per_port;
      // Dateline VC classes (torus DOR): class 0 worms may only claim the
      // lower half of the output VCs, class 1 the upper half, so the cyclic
      // channel dependency around each ring is cut at the wrap link. Local
      // ejection is exempt — it never feeds back into the ring.
      int lo = 0;
      int n = vcs;
      if (dateline_ && iv.out_port != Port::kLocal) {
        const int half = vcs / 2;
        if (iv.fifo.empty() || !iv.fifo.front().is_head()) continue;
        lo = iv.fifo.front().vc_class == 0 ? 0 : half;
        n = iv.fifo.front().vc_class == 0 ? half : vcs - half;
      }
      for (int k = 0; k < n; ++k) {
        const int cand = lo + (op.va_rr + k) % n;
        OutputVc& ovc = op.vcs[static_cast<std::size_t>(cand)];
        if (ovc.allocated) continue;
        ovc.allocated = true;
        iv.out_vc = cand;
        iv.state = InputVc::State::kActive;
        op.va_rr = (cand + 1) % vcs;
        break;
      }
    }
  }
}

void Router::stage_route_computation(Cycle now) {
  for (std::size_t in_pi = 0; in_pi < kNumPorts; ++in_pi) {
    const auto in_port = static_cast<Port>(in_pi);
    for (VcId v = 0; v < cfg_->vcs_per_port; ++v) {
      InputVc& iv = input_[in_pi][static_cast<std::size_t>(v)];
      if (iv.state == InputVc::State::kIdle && !iv.fifo.empty() &&
          !iv.fifo.front().is_head()) {
        // Orphaned worm fragment: its head was destroyed by a hard fault
        // before this remainder arrived (never fires fault-free — an idle
        // VC's next flit is always a head). Drop up to the next head.
        drop_leading_worm(now, in_port, v, iv, /*return_credits=*/true,
                          /*lost=*/nullptr);
      }
      if (iv.state == InputVc::State::kIdle && !iv.fifo.empty() &&
          iv.fifo.front().is_head()) {
        iv.state = InputVc::State::kRouting;
      }
      if (iv.state == InputVc::State::kRouting) {
        std::array<Port, 2> candidates{};
        const int n = route_candidates(cfg_->routing, net_->topology(), id_,
                                       iv.fifo.front().dst, candidates);
        if (n == 0) {
          // Destination unreachable after hard faults: drop the worm here;
          // the source NI's end-to-end machinery (or the network's fault
          // repair sweep) handles the packet-level consequence.
          drop_leading_worm(now, in_port, v, iv, /*return_credits=*/true,
                            /*lost=*/nullptr);
          iv.state = InputVc::State::kIdle;
          continue;
        }
        iv.out_port = candidates[0];
        if (n > 1) {
          // Adaptive selection: prefer the candidate with more downstream
          // buffer credit (a standard congestion-aware tie-break).
          int best_credits = -1;
          for (int k = 0; k < n; ++k) {
            const OutputPort& op = output_[port_index(candidates[static_cast<std::size_t>(k)])];
            int credits = 0;
            for (const OutputVc& vc : op.vcs) credits += vc.credits;
            if (credits > best_credits) {
              best_credits = credits;
              iv.out_port = candidates[static_cast<std::size_t>(k)];
            }
          }
        }
        if (dateline_ && iv.out_port != Port::kLocal) {
          // Dateline stamp: reset the class when the worm turns into a new
          // dimension (or injects), raise it when crossing the wrap link.
          Flit& head = iv.fifo.front();
          std::uint8_t cls = (in_port == Port::kLocal ||
                              port_dim(in_port) != port_dim(iv.out_port))
                                 ? 0
                                 : head.vc_class;
          if (net_->topology().wrap_link(id_, iv.out_port)) cls = 1;
          head.vc_class = cls;
        }
        iv.state = InputVc::State::kWaitVc;
      }
    }
  }
}

// --------------------------------------------------------------------------
// Wire transmission with the mode-specific link-layer policy
// --------------------------------------------------------------------------

void Router::transmit(Cycle now, Port out_port, Flit flit, bool is_copy) {
  const std::size_t pi = port_index(out_port);
  OutputPort& op = output_[pi];
  const bool mesh = out_port != Port::kLocal;
  ChannelPair* ch = mesh ? net_->out_channel(id_, out_port) : &net_->ej_channel(id_);
  RLFTNOC_CHECK(ch != nullptr, "router %d: transmit through edge port %s", id_,
                port_name(out_port));

  if (mesh && !is_copy) flit.lsn = op.next_lsn++;

  const bool protect = mesh && ecc_enabled() && !is_copy;
  if (protect) {
    flit.ecc = encode_flit_ecc(default_secded(), flit.payload);
    flit.ecc_valid = true;
    net_->record_power(id_, PowerEvent::kEccEncode);
    op.retention.insert(flit.id(), ArqRetention{flit, 1, false});
    net_->record_power(id_, PowerEvent::kOutputBufferWrite);
  }
  if (is_copy) {
    ArqRetention* r = find_retention(out_port, flit.id());
    // Callers verify the retention entry exists before resending.
    RLFTNOC_CHECK(r != nullptr,
                  "router %d port %s: resent flit %llu has no retention entry",
                  id_, port_name(out_port),
                  static_cast<unsigned long long>(flit.id()));
    if (r != nullptr) ++r->unresolved;
  }

  // `wire_extra` delays delivery (pipelined codec / stall); `occupancy` is
  // how long the channel stays unavailable for the next flit.
  Cycle wire_extra = 0;
  Cycle occupancy = 1;
  bool relaxed = false;
  if (flit.ecc_valid) {
    // Pipelined SECDED encode+decode adds a cycle of latency per hop but
    // does not reduce link throughput.
    wire_extra += 1;
  }
  if (mesh && mode_ == OpMode::kMode3) {
    // One cycle of control signalling plus one stall cycle (Fig. 3(d)):
    // delivery slips by two cycles and the channel is held for three.
    wire_extra += 2;
    occupancy = 3;
    relaxed = true;
  }

  const FlitId fid = flit.id();
  if (mesh) net_->corrupt_on_wire(id_, out_port, flit, relaxed, trace_);
  ch->flits.push_delayed(now, std::move(flit), wire_extra);
  net_->record_power(id_, PowerEvent::kLinkTraversal);
  ++counters_.flits_out[pi];
  op.busy_until = now + occupancy;

  if (mesh && mode_ == OpMode::kMode2 && !is_copy) {
    // Flit pre-retransmission: schedule the proactive duplicate one idle
    // cycle after the original (Fig. 3(c)).
    op.dup_queue.push_back(OutputPort::PendingDup{now + 2, fid});
  }
}

// --------------------------------------------------------------------------
// Hard-fault teardown (serial context — called by the Network between steps)
// --------------------------------------------------------------------------

void Router::drop_leading_worm(Cycle now, Port in, VcId v, InputVc& iv,
                               bool return_credits,
                               std::vector<LostFlit>* lost) {
  bool first = true;
  while (!iv.fifo.empty()) {
    const Flit& f = iv.fifo.front();
    if (!first && f.is_head()) break;  // next worm starts here
    first = false;
    if (lost != nullptr) lost->push_back(LostFlit{f.packet_id, f.src, f.dst});
    ++counters_.fault_drops;
    if (return_credits) {
      if (in == Port::kLocal) {
        net_->inj_channel(id_).credits.push(now, Credit{v});
      } else if (ChannelPair* ch = net_->in_channel(id_, in)) {
        ch->credits.push(now, Credit{v});
      }
    }
    iv.fifo.pop_front();
  }
}

void Router::purge_dead_output(Cycle now, Port p, std::vector<LostFlit>& lost) {
  const std::size_t pi = port_index(p);
  OutputPort& op = output_[pi];

  // Retention copies are bookkeeping for flits whose transmitted instance
  // was already counted at the wire; losing the copy loses the packet's only
  // recovery path, so record the identity (but no instance drop).
  op.retention.for_each([&](FlitId, const ArqRetention& r) {
    lost.push_back(LostFlit{r.clean.packet_id, r.clean.src, r.clean.dst});
  });
  op.retention.reset(static_cast<std::size_t>(cfg_->retention_depth));
  op.retx_queue.clear();
  op.dup_queue.clear();
  op.busy_until = 0;

  // Worms mid-flight toward the dead port: drop the local fragment and free
  // the output VC. The head flits already on the dead wire are collected by
  // the network's wire sweep.
  for (std::size_t in_pi = 0; in_pi < kNumPorts; ++in_pi) {
    for (VcId v = 0; v < cfg_->vcs_per_port; ++v) {
      InputVc& iv = input_[in_pi][static_cast<std::size_t>(v)];
      const bool granted = iv.state == InputVc::State::kWaitVc ||
                           iv.state == InputVc::State::kActive;
      if (!granted || iv.out_port != p) continue;
      drop_leading_worm(now, static_cast<Port>(in_pi), v, iv,
                        /*return_credits=*/true, &lost);
      iv.state = InputVc::State::kIdle;
      iv.out_vc = kInvalidVc;
    }
  }
  // All worms bound for p are gone; restore the port's credit/allocation
  // state to its reset value (the auditor skips dead channels, but stale
  // claims must not linger).
  for (auto& vc : op.vcs) {
    vc.allocated = false;
    vc.credits = cfg_->vc_depth;
  }
}

void Router::purge_dead_input(Port p, std::vector<LostFlit>& lost,
                              std::vector<SeveredWorm>& severed) {
  const std::size_t pi = port_index(p);
  for (VcId v = 0; v < cfg_->vcs_per_port; ++v) {
    InputVc& iv = input_[pi][static_cast<std::size_t>(v)];
    if (iv.state == InputVc::State::kActive) {
      // Head already forwarded downstream: report the severed continuation
      // so the network can chase and purge it. An active VC with an empty
      // FIFO gives no packet identity — the stranded remainder is cleaned
      // up lazily by the orphan rule in RC (see DESIGN.md).
      if (!iv.fifo.empty() && !iv.fifo.front().is_head() &&
          iv.out_port != Port::kLocal) {
        severed.push_back(
            SeveredWorm{iv.fifo.front().packet_id, iv.out_port, iv.out_vc});
      }
      output_[port_index(iv.out_port)]
          .vcs[static_cast<std::size_t>(iv.out_vc)]
          .allocated = false;
    }
    // Drop everything buffered — the reverse credit lane died with the link,
    // so no credits go back.
    while (!iv.fifo.empty()) {
      const Flit& f = iv.fifo.front();
      lost.push_back(LostFlit{f.packet_id, f.src, f.dst});
      ++counters_.fault_drops;
      iv.fifo.pop_front();
    }
    iv.state = InputVc::State::kIdle;
    iv.out_vc = kInvalidVc;
  }
  input_arq_[pi] = InputArq{};
}

Router::ChainNext Router::purge_worm_of_packet(Cycle now, Port in, VcId v,
                                               PacketId packet,
                                               std::vector<LostFlit>& lost) {
  ChainNext next;
  InputVc& iv = ivc(in, v);
  const bool granted = iv.state == InputVc::State::kWaitVc ||
                       iv.state == InputVc::State::kActive;
  if (granted && !iv.fifo.empty() && iv.fifo.front().packet_id == packet) {
    next.walk = iv.state == InputVc::State::kActive &&
                iv.out_port != Port::kLocal && !iv.fifo.front().is_head();
    next.out_port = iv.out_port;
    next.out_vc = iv.out_vc;
    if (iv.state == InputVc::State::kActive) {
      output_[port_index(iv.out_port)]
          .vcs[static_cast<std::size_t>(iv.out_vc)]
          .allocated = false;
    }
    drop_leading_worm(now, in, v, iv, /*return_credits=*/true, &lost);
    iv.state = InputVc::State::kIdle;
    iv.out_vc = kInvalidVc;
    return next;
  }
  // The fragment is queued behind another worm (or never granted), so its
  // head is among the queued flits — a by-identity sweep removes exactly the
  // severed worm and the walk ends here.
  const std::size_t n = iv.fifo.remove_if([&](const Flit& f) {
    if (f.packet_id != packet) return false;
    lost.push_back(LostFlit{f.packet_id, f.src, f.dst});
    return true;
  });
  counters_.fault_drops += static_cast<std::uint64_t>(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (in == Port::kLocal) {
      net_->inj_channel(id_).credits.push(now, Credit{v});
    } else if (ChannelPair* ch = net_->in_channel(id_, in)) {
      ch->credits.push(now, Credit{v});
    }
  }
  return next;
}

void Router::purge_for_router_kill(std::vector<LostFlit>& lost) {
  for (std::size_t pi = 0; pi < kNumPorts; ++pi) {
    for (auto& iv : input_[pi]) {
      while (!iv.fifo.empty()) {
        const Flit& f = iv.fifo.front();
        lost.push_back(LostFlit{f.packet_id, f.src, f.dst});
        ++counters_.fault_drops;
        iv.fifo.pop_front();
      }
      iv.state = InputVc::State::kIdle;
      iv.out_vc = kInvalidVc;
    }
    OutputPort& op = output_[pi];
    op.retention.for_each([&](FlitId, const ArqRetention& r) {
      lost.push_back(LostFlit{r.clean.packet_id, r.clean.src, r.clean.dst});
    });
    op.retention.reset(static_cast<std::size_t>(cfg_->retention_depth));
    op.retx_queue.clear();
    op.dup_queue.clear();
    op.busy_until = 0;
    const int depth = (static_cast<Port>(pi) == Port::kLocal)
                          ? cfg_->local_vc_depth
                          : cfg_->vc_depth;
    for (auto& vc : op.vcs) {
      vc.allocated = false;
      vc.credits = depth;
    }
    input_arq_[pi] = InputArq{};
  }
}

// --------------------------------------------------------------------------
// Retention bookkeeping
// --------------------------------------------------------------------------

ArqRetention* Router::find_retention(Port p, FlitId id) {
  return output_[port_index(p)].retention.find(id);
}

void Router::erase_retention(Port p, FlitId id) {
  output_[port_index(p)].retention.erase(id);
}

void Router::drop_queued_copies(Port p, FlitId id) {
  OutputPort& op = output_[port_index(p)];
  op.retx_queue.remove_if([&](FlitId f) { return f == id; });
  op.dup_queue.remove_if(
      [&](const OutputPort::PendingDup& d) { return d.id == id; });
}

// --------------------------------------------------------------------------
// Observation
// --------------------------------------------------------------------------

int Router::occupied_input_vcs() const noexcept {
  int n = 0;
  for (const auto& port : input_) {
    for (const auto& vc : port) {
      if (!vc.fifo.empty() || vc.state != InputVc::State::kIdle) ++n;
    }
  }
  return n;
}

int Router::buffered_flits() const noexcept {
  int n = 0;
  for (const auto& port : input_) {
    for (const auto& vc : port) n += static_cast<int>(vc.fifo.size());
  }
  return n;
}

int Router::pending_link_work() const noexcept {
  int n = 0;
  for (const auto& op : output_) {
    n += static_cast<int>(op.retention.size() + op.retx_queue.size() +
                          op.dup_queue.size());
  }
  return n;
}

bool Router::quiescent() const noexcept {
  for (const auto& port : input_) {
    for (const auto& vc : port) {
      if (vc.state != InputVc::State::kIdle || !vc.fifo.empty()) return false;
    }
  }
  for (const auto& op : output_) {
    if (!op.retention.empty() || !op.retx_queue.empty() || !op.dup_queue.empty())
      return false;
  }
  return true;
}

}  // namespace rlftnoc
