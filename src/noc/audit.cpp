#include "noc/audit.h"

#include <map>
#include <sstream>

#include "noc/network.h"

namespace rlftnoc {

namespace {

/// Longest channel occupancy the router can reserve (mode-3 stretched
/// transfer holds the wire for three cycles).
constexpr Cycle kMaxChannelOccupancy = 3;

AuditViolation make_violation(std::string invariant, Cycle cycle, NodeId node,
                              std::string detail) {
  AuditViolation v;
  v.invariant = std::move(invariant);
  v.cycle = cycle;
  v.node = node;
  v.detail = std::move(detail);
  return v;
}

AuditViolation make_violation(std::string invariant, Cycle cycle, NodeId node,
                              Port port, std::string detail) {
  AuditViolation v = make_violation(std::move(invariant), cycle, node,
                                    std::move(detail));
  v.port = port;
  v.has_port = true;
  return v;
}

/// Entries of a delay line whose value carries a matching VcId.
template <typename T>
int lane_count_for_vc(const DelayLine<T>& lane, VcId vc) {
  int n = 0;
  lane.for_each([&](const T& entry) {
    if (entry.vc == vc) ++n;
  });
  return n;
}

}  // namespace

std::string AuditViolation::to_string() const {
  std::ostringstream os;
  os << "cycle " << cycle;
  if (node != kInvalidNode) os << " router " << node;
  if (has_port) os << " port " << port_name(port);
  os << ": " << invariant << ": " << detail;
  return os.str();
}

AuditError::AuditError(AuditViolation v)
    : std::runtime_error("invariant audit failed: " + v.to_string()),
      violation_(std::move(v)) {}

std::vector<AuditViolation> NetworkAuditor::run(const Network& net) {
  std::vector<AuditViolation> out;
  audit_flit_conservation(net, out);
  audit_credit_balance(net, out);
  audit_vc_bounds(net, out);
  audit_arq_consistency(net, out);
  audit_allocation_structure(net, out);
  audit_ni_state(net, out);
  audit_parallel_staging(net, out);
  if (out.empty()) ++clean_passes_;
  return out;
}

void NetworkAuditor::check_or_throw(const Network& net) {
  std::vector<AuditViolation> violations = run(net);
  if (!violations.empty()) throw AuditError(std::move(violations.front()));
}

// ---------------------------------------------------------------------------
// 1. Flit conservation: created == destroyed + alive.
// ---------------------------------------------------------------------------

void NetworkAuditor::audit_flit_conservation(
    const Network& net, std::vector<AuditViolation>& out) const {
  const int n = net.config().num_nodes();
  std::uint64_t injected = 0;       // NI flits_sent (fresh + e2e reinjections)
  std::uint64_t link_copies = 0;    // hop resends + mode-2 duplicates
  std::uint64_t delivered = 0;      // ejected at destination NIs
  std::uint64_t dropped_by_arq = 0; // NACK-rejected + duplicate-discarded
  std::uint64_t fault_drops = 0;    // destroyed by hard-fault teardown
  std::uint64_t alive = 0;          // channels + input VC buffers

  for (NodeId node = 0; node < n; ++node) {
    const NiCounters& nc = net.ni(node).counters();
    injected += nc.flits_sent;
    delivered += nc.flits_ejected;

    const Router& r = net.router(node);
    const RouterCounters& rc = r.counters();
    link_copies += rc.hop_retransmissions + rc.preretx_duplicates;
    dropped_by_arq += rc.dup_discards;
    for (std::size_t p = 0; p < kNumPorts; ++p)
      dropped_by_arq += rc.nacks_sent[p];
    fault_drops += rc.fault_drops;
    alive += static_cast<std::uint64_t>(r.buffered_flits());

    alive += net.inj_[static_cast<std::size_t>(node)]->flits.size();
    alive += net.ej_[static_cast<std::size_t>(node)]->flits.size();
  }
  for (const auto& ch : net.out_ch_) {
    if (ch) alive += ch->flits.size();
  }
  // Flits destroyed on dead wires (hard faults) are tracked network-wide.
  fault_drops += net.wire_kill_drops();

  const std::uint64_t created = injected + link_copies;
  const std::uint64_t accounted =
      delivered + dropped_by_arq + fault_drops + alive;
  if (created != accounted) {
    std::ostringstream os;
    os << "flit instances created (" << created << " = " << injected
       << " injected + " << link_copies << " link copies) != accounted ("
       << accounted << " = " << delivered << " delivered + " << dropped_by_arq
       << " ARQ-dropped + " << fault_drops << " fault-dropped + " << alive
       << " in flight)";
    out.push_back(
        make_violation("flit-conservation", net.now(), kInvalidNode, os.str()));
  }
}

// ---------------------------------------------------------------------------
// 2. Credit balance per channel.
// ---------------------------------------------------------------------------

void NetworkAuditor::audit_credit_balance(
    const Network& net, std::vector<AuditViolation>& out) const {
  const NocConfig& cfg = net.config();
  const int n = cfg.num_nodes();
  const auto vcs = static_cast<std::size_t>(cfg.vcs_per_port);

  for (NodeId node = 0; node < n; ++node) {
    const Router& r = net.router(node);
    const NetworkInterface& ni = net.ni(node);

    // Ejection loop (router Local output -> NI): no ARQ, exact every cycle.
    // The NI frees its slot the cycle a flit matures, so occupancy is the
    // flits still travelling the ejection wire.
    const ChannelPair& ej = *net.ej_[static_cast<std::size_t>(node)];
    const Router::OutputPort& lop = r.output_[port_index(Port::kLocal)];
    for (std::size_t v = 0; v < vcs; ++v) {
      const auto vc = static_cast<VcId>(v);
      const int credits = lop.vcs[v].credits;
      const int lane = lane_count_for_vc(ej.credits, vc);
      const int wire = lane_count_for_vc(ej.flits, vc);
      if (credits < 0 || credits + lane + wire != cfg.local_vc_depth) {
        std::ostringstream os;
        os << "ejection vc " << v << ": credits " << credits << " + in-flight "
           << lane << " + on-wire " << wire << " != depth "
           << cfg.local_vc_depth;
        out.push_back(make_violation("credit-balance", net.now(), node,
                                     Port::kLocal, os.str()));
      }
    }

    // Injection loop (NI -> router Local input): no ARQ, exact every cycle.
    const ChannelPair& inj = *net.inj_[static_cast<std::size_t>(node)];
    const auto& local_in = r.input_[port_index(Port::kLocal)];
    for (std::size_t v = 0; v < vcs; ++v) {
      const auto vc = static_cast<VcId>(v);
      const int credits = ni.local_vcs_[v].credits;
      const int lane = lane_count_for_vc(inj.credits, vc);
      const int wire = lane_count_for_vc(inj.flits, vc);
      const int fifo = static_cast<int>(local_in[v].fifo.size());
      if (credits < 0 || credits + lane + wire + fifo != cfg.vc_depth) {
        std::ostringstream os;
        os << "injection vc " << v << ": credits " << credits << " + in-flight "
           << lane << " + on-wire " << wire << " + buffered " << fifo
           << " != depth " << cfg.vc_depth;
        out.push_back(make_violation("credit-balance", net.now(), node,
                                     Port::kLocal, os.str()));
      }
    }

    // Mesh channels: rejected copies awaiting resend absorb slots that are
    // not visible from either end, so the every-cycle check is the sound
    // upper bound; exact equality is enforced whenever the port is
    // ARQ-quiescent (no wire traffic, no pending ACKs, no retention).
    for (const Port p : {Port::kNorth, Port::kSouth, Port::kEast, Port::kWest}) {
      const auto* ch = net.out_ch_[net.link_index(node, p)].get();
      if (ch == nullptr) continue;
      const NodeId down = net.topology().neighbor(node, p);
      const Router& dr = net.router(down);
      const auto& down_in = dr.input_[port_index(opposite(p))];
      const Router::OutputPort& op = r.output_[port_index(p)];
      const bool quiescent = ch->flits.empty() && ch->acks.empty() &&
                             op.retention.empty() && op.retx_queue.empty() &&
                             op.dup_queue.empty();
      for (std::size_t v = 0; v < vcs; ++v) {
        const auto vc = static_cast<VcId>(v);
        const int credits = op.vcs[v].credits;
        const int lane = lane_count_for_vc(ch->credits, vc);
        const int fifo = static_cast<int>(down_in[v].fifo.size());
        const int total = credits + lane + fifo;
        const bool bad_bound = credits < 0 || credits > cfg.vc_depth ||
                               total > cfg.vc_depth;
        const bool bad_exact = quiescent && total != cfg.vc_depth;
        if (bad_bound || bad_exact) {
          std::ostringstream os;
          os << "vc " << v << ": credits " << credits << " + in-flight " << lane
             << " + downstream occupancy " << fifo
             << (bad_bound ? " exceeds depth " : " != depth (quiescent) ")
             << cfg.vc_depth;
          out.push_back(
              make_violation("credit-balance", net.now(), node, p, os.str()));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 3. VC depth bounds.
// ---------------------------------------------------------------------------

void NetworkAuditor::audit_vc_bounds(const Network& net,
                                     std::vector<AuditViolation>& out) const {
  const NocConfig& cfg = net.config();
  for (NodeId node = 0; node < cfg.num_nodes(); ++node) {
    const Router& r = net.router(node);
    for (const Port p : kAllPorts) {
      const auto& port_vcs = r.input_[port_index(p)];
      for (std::size_t v = 0; v < port_vcs.size(); ++v) {
        const auto depth = static_cast<std::size_t>(cfg.vc_depth);
        if (port_vcs[v].fifo.size() > depth) {
          std::ostringstream os;
          os << "input vc " << v << " holds " << port_vcs[v].fifo.size()
             << " flits, depth " << depth;
          out.push_back(
              make_violation("vc-depth", net.now(), node, p, os.str()));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 4. ARQ retransmission bookkeeping.
// ---------------------------------------------------------------------------

void NetworkAuditor::audit_arq_consistency(
    const Network& net, std::vector<AuditViolation>& out) const {
  const NocConfig& cfg = net.config();
  for (NodeId node = 0; node < cfg.num_nodes(); ++node) {
    const Router& r = net.router(node);
    for (const Port p : {Port::kNorth, Port::kSouth, Port::kEast, Port::kWest}) {
      if (net.out_ch_[net.link_index(node, p)] == nullptr) continue;
      const Router::OutputPort& op = r.output_[port_index(p)];
      const auto fail = [&](const std::string& detail) {
        out.push_back(
            make_violation("arq-consistency", net.now(), node, p, detail));
      };

      if (static_cast<int>(op.retention.size()) > cfg.retention_depth) {
        std::ostringstream os;
        os << "retention holds " << op.retention.size() << " entries, depth "
           << cfg.retention_depth;
        fail(os.str());
      }
      if (op.busy_until > net.now() + kMaxChannelOccupancy) {
        std::ostringstream os;
        os << "busy_until " << op.busy_until << " is more than "
           << kMaxChannelOccupancy << " cycles past now " << net.now();
        fail(os.str());
      }

      // Ordered map: which inconsistency gets reported first must not
      // depend on hash traversal order (the audit aborts on the first one).
      std::map<FlitId, const ArqRetention*> retained;
      op.retention.for_each([&](FlitId key, const ArqRetention& ret) {
        if (key != ret.clean.id()) {
          std::ostringstream os;
          os << "retention index key " << key << " disagrees with stored flit "
             << ret.clean.id();
          fail(os.str());
        }
        if (!retained.emplace(key, &ret).second) {
          std::ostringstream os;
          os << "duplicate retention entry for flit " << key;
          fail(os.str());
        }
        if (ret.unresolved < 0) {
          std::ostringstream os;
          os << "retention entry for flit " << key
             << " has negative unresolved count " << ret.unresolved;
          fail(os.str());
        }
      });

      std::map<FlitId, int> queued;
      op.retx_queue.for_each([&](const FlitId id) { ++queued[id]; });
      for (const auto& [id, count] : queued) {
        const auto it = retained.find(id);
        if (count != 1 || it == retained.end() || !it->second->resend_queued) {
          std::ostringstream os;
          os << "retx queue entry for flit " << id << " (x" << count
             << ") lacks a matching retention entry with resend_queued set";
          fail(os.str());
        }
      }
      for (const auto& [id, ret] : retained) {
        if (ret->resend_queued && queued.find(id) == queued.end()) {
          std::ostringstream os;
          os << "retention entry for flit " << id
             << " claims resend_queued but is not in the retx queue";
          fail(os.str());
        }
      }
      op.dup_queue.for_each([&](const Router::OutputPort::PendingDup& dup) {
        if (retained.find(dup.id) == retained.end()) {
          std::ostringstream os;
          os << "pending duplicate of flit " << dup.id
             << " has no retention entry";
          fail(os.str());
        }
      });

      // Link sequence numbers: nothing on the wire or expected downstream
      // may run ahead of the sender's stamp counter.
      const auto* ch = net.out_ch_[net.link_index(node, p)].get();
      bool lsn_ok = true;
      ch->flits.for_each([&](const Flit& f) {
        if (f.lsn >= op.next_lsn) lsn_ok = false;
      });
      if (!lsn_ok) {
        std::ostringstream os;
        os << "flit on the wire carries lsn >= sender next_lsn "
           << op.next_lsn;
        fail(os.str());
      }
      const NodeId down = net.topology().neighbor(node, p);
      const std::uint64_t expected =
          net.router(down).input_arq_[port_index(opposite(p))].expected_lsn;
      if (expected > op.next_lsn) {
        std::ostringstream os;
        os << "receiver expects lsn " << expected
           << " beyond sender next_lsn " << op.next_lsn;
        fail(os.str());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 5. Switch-allocation structure.
// ---------------------------------------------------------------------------

void NetworkAuditor::audit_allocation_structure(
    const Network& net, std::vector<AuditViolation>& out) const {
  const NocConfig& cfg = net.config();
  const auto vcs = static_cast<std::size_t>(cfg.vcs_per_port);
  for (NodeId node = 0; node < cfg.num_nodes(); ++node) {
    const Router& r = net.router(node);
    std::array<std::vector<int>, kNumPorts> claims;
    for (auto& c : claims) c.assign(vcs, 0);
    for (std::size_t in_pi = 0; in_pi < kNumPorts; ++in_pi) {
      for (const Router::InputVc& iv : r.input_[in_pi]) {
        if (iv.state != Router::InputVc::State::kActive) continue;
        if (iv.out_vc < 0 || iv.out_vc >= cfg.vcs_per_port) {
          std::ostringstream os;
          os << "active input vc on port " << in_pi
             << " holds invalid output vc " << iv.out_vc;
          out.push_back(make_violation("sa-structure", net.now(), node,
                                       static_cast<Port>(in_pi), os.str()));
          continue;
        }
        ++claims[port_index(iv.out_port)][static_cast<std::size_t>(iv.out_vc)];
      }
    }
    for (const Port p : kAllPorts) {
      const Router::OutputPort& op = r.output_[port_index(p)];
      for (std::size_t v = 0; v < vcs; ++v) {
        const int c = claims[port_index(p)][v];
        if (c > 1 || op.vcs[v].allocated != (c == 1)) {
          std::ostringstream os;
          os << "output vc " << v << " allocated=" << op.vcs[v].allocated
             << " but claimed by " << c << " input VCs";
          out.push_back(
              make_violation("sa-structure", net.now(), node, p, os.str()));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 6. NI injection / reassembly state.
// ---------------------------------------------------------------------------

void NetworkAuditor::audit_ni_state(const Network& net,
                                    std::vector<AuditViolation>& out) const {
  const NocConfig& cfg = net.config();
  for (NodeId node = 0; node < cfg.num_nodes(); ++node) {
    const NetworkInterface& ni = net.ni(node);
    const auto fail = [&](const std::string& detail) {
      out.push_back(make_violation("ni-state", net.now(), node, Port::kLocal,
                                   detail));
    };

    int busy = 0;
    for (std::size_t v = 0; v < ni.local_vcs_.size(); ++v) {
      const NetworkInterface::LocalVc& vc = ni.local_vcs_[v];
      if (vc.credits < 0 || vc.credits > cfg.vc_depth) {
        std::ostringstream os;
        os << "local vc " << v << " credits " << vc.credits
           << " outside [0, " << cfg.vc_depth << "]";
        fail(os.str());
      }
      if (vc.busy) ++busy;
      const bool should_be_busy =
          ni.sending_.has_value() && ni.send_vc_ == static_cast<VcId>(v);
      if (vc.busy != should_be_busy) {
        std::ostringstream os;
        os << "local vc " << v << " busy=" << vc.busy
           << " inconsistent with sending state";
        fail(os.str());
      }
    }
    if (busy > 1) {
      std::ostringstream os;
      os << busy << " local VCs busy; the NI sends one packet at a time";
      fail(os.str());
    }
    if (ni.sending_ && ni.next_flit_ >= ni.sending_->flits.size()) {
      std::ostringstream os;
      os << "sending flit index " << ni.next_flit_ << " past packet length "
         << ni.sending_->flits.size();
      fail(os.str());
    }
    for (const auto& [pkt, a] : ni.assembling_) {
      if (a.expected == 0 || a.received == 0 || a.received >= a.expected) {
        std::ostringstream os;
        os << "packet " << pkt << " reassembly has received " << a.received
           << " of " << a.expected << " flits (complete packets must be"
           << " finalized immediately)";
        fail(os.str());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 6. Parallel staging: shard partition + sink binding + drained buffers.
// ---------------------------------------------------------------------------
void NetworkAuditor::audit_parallel_staging(
    const Network& net, std::vector<AuditViolation>& out) const {
  const auto fail = [&](NodeId node, const std::string& detail) {
    out.push_back(make_violation("parallel-staging", net.now(), node, detail));
  };

  const NodeId n = net.config().num_nodes();
  if (net.shards_.empty()) {
    fail(kInvalidNode, "shard partition is empty");
    return;
  }
  if (net.fx_.size() != net.shards_.size()) {
    std::ostringstream os;
    os << net.fx_.size() << " staging buffers for " << net.shards_.size()
       << " shards";
    fail(kInvalidNode, os.str());
    return;
  }

  NodeId expect_lo = 0;
  for (std::size_t s = 0; s < net.shards_.size(); ++s) {
    const auto& shard = net.shards_[s];
    if (shard.lo != expect_lo || shard.hi <= shard.lo) {
      std::ostringstream os;
      os << "shard " << s << " spans [" << shard.lo << ", " << shard.hi
         << ") but must start at " << expect_lo << " and be non-empty";
      fail(kInvalidNode, os.str());
      return;
    }
    expect_lo = shard.hi;
  }
  if (expect_lo != n) {
    std::ostringstream os;
    os << "shard partition covers [0, " << expect_lo << ") of [0, " << n << ")";
    fail(kInvalidNode, os.str());
    return;
  }

  const bool tracing = net.tracer_ != nullptr;
  for (std::size_t s = 0; s < net.shards_.size(); ++s) {
    const StepEffects& fx = net.fx_[s];
    if (!fx.empty()) {
      std::ostringstream os;
      os << "shard " << s << " staging buffer not drained between steps";
      fail(kInvalidNode, os.str());
    }
    for (NodeId node = net.shards_[s].lo; node < net.shards_[s].hi; ++node) {
      const Router& router = net.router(node);
      const NetworkInterface& ni = net.ni(node);
      if (router.fx_ != &fx || ni.fx_ != &fx) {
        std::ostringstream os;
        os << "effect sink not bound to owning shard " << s;
        fail(node, os.str());
      }
      const TraceStage* want_rt = tracing ? &fx.router_trace : nullptr;
      const TraceStage* want_nt = tracing ? &fx.ni_trace : nullptr;
      if (router.trace_ != want_rt || ni.trace_ != want_nt) {
        std::ostringstream os;
        os << "trace stage binding inconsistent with tracer state (shard "
           << s << ")";
        fail(node, os.str());
      }
    }
  }
}

}  // namespace rlftnoc
