// Routing algorithms for the 2D mesh.
//
// The paper evaluates X-Y routing (Table II); this module generalizes the
// route computation stage so the substrate can also run Y-X and the
// west-first partially adaptive turn model (Glass & Ni) — all deadlock-free
// on a mesh with wormhole flow control, which the ARQ link layer requires.
//
// Deterministic algorithms yield one candidate; west-first may yield up to
// two minimal candidates and the router breaks the tie by downstream credit
// availability (congestion-aware selection).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/types.h"
#include "noc/topology.h"

namespace rlftnoc {

/// Parses a routing name ("xy" | "yx" | "westfirst"); throws
/// std::invalid_argument otherwise.
RoutingAlgorithm routing_from_name(const std::string& name);

/// Minimal route candidates at `cur` toward `dst` under `alg`, in
/// preference order. Returns the number of candidates written (1 or 2);
/// candidates[0] == kLocal means cur == dst.
int route_candidates(RoutingAlgorithm alg, const MeshTopology& topo, NodeId cur,
                     NodeId dst, std::array<Port, 2>& candidates);

}  // namespace rlftnoc
