// Routing policies for the mesh / torus topology provider.
//
// The paper evaluates X-Y routing (Table II); this module generalizes route
// computation behind a RoutingPolicy interface so the substrate can also run
// Y-X, the west-first partially adaptive turn model (Glass & Ni), and a
// fault-adaptive up*/down* policy. A policy's job is to (re)build the
// Topology's flat next-hop LUT for the current alive subgraph — virtual
// dispatch happens only at (re)build time, never per flit; steady-state route
// computation stays one table load (route_candidates below).
//
// Deadlock freedom:
//  * xy / yx on a mesh: dimension order forbids the second-dimension ->
//    first-dimension turns, so the channel dependence graph is acyclic.
//  * xy / yx on a torus: dimension order breaks inter-dimension cycles; the
//    intra-ring cycles introduced by the wrap links are broken by dateline
//    VC classes (Flit::vc_class, assigned in the router's RC stage: class 1
//    after crossing a wrap link, class 0 before). Each class maps to a
//    disjoint half of the VC range, so no cyclic wait can close.
//  * westfirst: mesh-only turn model (rejected on a torus and with hard
//    faults — its proof assumes all minimal westward paths exist).
//  * adaptive (up*/down*): per connected component, a BFS from the
//    minimum-id alive router assigns every node a rank (level, id); an edge
//    toward smaller rank is "up", toward larger rank is "down". Every route
//    is an up* then down* path and the LUT never creates a down->up turn
//    (a node whose all-down path to dst exists always continues down).
//    Up edges point strictly down-rank and down edges strictly up-rank, so
//    any cycle in the channel dependence graph would need a down->up turn —
//    which never occurs. Deadlock-free on ANY connected alive subgraph with
//    any VC usage; minimal on the fault-free mesh (the committed-down rule
//    can pick a longer-but-legal down path when faults skew the DAG; see
//    DESIGN.md).
//
// Deterministic algorithms yield one candidate; west-first may yield up to
// two minimal candidates and the router breaks the tie by downstream credit
// availability (congestion-aware selection).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "noc/topology.h"

namespace rlftnoc {

/// Builds the per-(cur, dst) next-hop LUT for a topology's alive subgraph.
/// Stateless; one shared instance per algorithm (routing_policy_for).
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;
  virtual const char* name() const noexcept = 0;
  /// Fills `lut` ([cur * num_nodes + dst] -> port_index or
  /// Topology::kUnreachable) for the current fault state of `topo`.
  virtual void build_lut(const Topology& topo,
                         std::vector<std::uint8_t>& lut) const = 0;
};

/// The shared policy instance implementing `alg`.
const RoutingPolicy& routing_policy_for(RoutingAlgorithm alg);

/// Parses a routing name ("xy" | "yx" | "westfirst" | "adaptive"); throws
/// std::invalid_argument otherwise.
RoutingAlgorithm routing_from_name(const std::string& name);

/// Minimal route candidates at `cur` toward `dst` under `alg`, in
/// preference order. Returns the number of candidates written (0, 1 or 2);
/// 0 means dst is unreachable from cur on the alive subgraph (hard faults);
/// candidates[0] == kLocal means cur == dst.
int route_candidates(RoutingAlgorithm alg, const Topology& topo, NodeId cur,
                     NodeId dst, std::array<Port, 2>& candidates);

}  // namespace rlftnoc
