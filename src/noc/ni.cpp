// rlftnoc-lint: hot-path (per-cycle step path: R4 bans node-allocating containers and .at())
#include "noc/ni.h"

#include <algorithm>

#include "common/check.h"
#include "coding/crc.h"
#include "common/rng.h"
#include "noc/network.h"
#include "noc/topology.h"

namespace rlftnoc {

Packet make_packet(PacketId id, NodeId src, NodeId dst, int len, Cycle now, Rng& rng) {
  Packet pkt;
  pkt.id = id;
  pkt.src = src;
  pkt.dst = dst;
  pkt.inject_cycle = now;
  pkt.flits.reserve(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i) {
    Flit f;
    f.packet_id = id;
    f.seq = static_cast<std::uint32_t>(i);
    f.packet_len = static_cast<std::uint32_t>(len);
    f.src = src;
    f.dst = dst;
    f.packet_inject_cycle = now;
    if (len == 1) {
      f.type = FlitType::kHeadTail;
    } else if (i == 0) {
      f.type = FlitType::kHead;
    } else if (i == len - 1) {
      f.type = FlitType::kTail;
    } else {
      f.type = FlitType::kBody;
    }
    f.payload = BitVec128(rng.next_u64(), rng.next_u64());
    f.crc = default_crc32().compute(f.payload);
    pkt.flits.push_back(std::move(f));
  }
  return pkt;
}

NetworkInterface::NetworkInterface(NodeId id, const NocConfig* cfg, Network* net)
    : id_(id), cfg_(cfg), net_(net) {
  local_vcs_.resize(static_cast<std::size_t>(cfg_->vcs_per_port));
  // Credits mirror the router's Local input VC buffers.
  for (auto& vc : local_vcs_) vc.credits = cfg_->vc_depth;
}

bool NetworkInterface::enqueue_packet(Packet pkt) {
  if (static_cast<int>(queue_.size()) >= cfg_->ni_queue_limit) {
    ++counters_.queue_rejects;
    return false;
  }
  ++counters_.packets_enqueued;
  queue_.push_back(std::move(pkt));
  return true;
}

void NetworkInterface::receive(Cycle now) {
  ChannelPair& ej = net_->ej_channel(id_);
  while (auto f = ej.flits.pop(now)) {
    RLFTNOC_CHECK(f->vc >= 0 && f->vc < cfg_->vcs_per_port,
                  "NI %d: ejected flit carries invalid vc %d", id_, f->vc);
    ++counters_.flits_ejected;
    net_->record_power(id_, PowerEvent::kCrcDecode);
    ej.credits.push(now, Credit{f->vc});

    // Generation filtering (hard-fault recovery): a straggler of an already
    // finalized generation, or of an older generation than the one being
    // assembled, must not corrupt the current reassembly. Fault-free runs
    // never take these branches (attempt stays 0 until a re-injection).
    if (const auto fin = finalized_attempt_.find(f->packet_id);
        fin != finalized_attempt_.end() && f->attempt <= fin->second) {
      ++counters_.stale_flit_drops;
      continue;
    }

    Assembly& a = assembling_[f->packet_id];
    if (a.expected != 0 && f->attempt < a.attempt) {
      // Old-generation straggler arriving behind the newer re-injection; its
      // ejection was already counted above, so dropping it is conservation-
      // neutral.
      ++counters_.stale_flit_drops;
      continue;
    }
    if (a.expected == 0 || f->attempt > a.attempt) {
      // Fresh assembly, or a newer generation overtaking a partial old one.
      a = Assembly{};
      a.src = f->src;
      a.expected = f->packet_len;
      a.packet_inject_cycle = f->packet_inject_cycle;
      a.attempt = f->attempt;
    }

    const bool crc_ok = default_crc32().compute(f->payload) == f->crc;
    if (!crc_ok) ++counters_.crc_flit_failures;
    ++a.received;
    a.crc_failed = a.crc_failed || !crc_ok;
    if (a.received >= a.expected) {
      finalize_packet(now, f->packet_id, a);
      assembling_.erase(f->packet_id);
    }
  }
}

void NetworkInterface::finalize_packet(Cycle now, PacketId id, const Assembly& a) {
  // Remember the finalized generation for re-injected packets so stragglers
  // of this generation cannot re-open a ghost assembly later. Bounded by the
  // number of packets that ever needed an end-to-end retransmission.
  if (a.attempt > 0) finalized_attempt_[id] = a.attempt;
  // Runs inside the parallel receive phase: every global-sink mutation —
  // NetworkMetrics counters, the FP latency accumulators, path-latency
  // credits to routers outside this shard, and the e2e response (whose
  // global tie-break seq must be assigned in canonical order) — is staged
  // into the shard buffer and merged after the phase barrier.
  const int hops = net_->topology().distance(id_, a.src);
  const Cycle response_at =
      now + static_cast<Cycle>(cfg_->e2e_ack_fixed_cycles +
                               cfg_->e2e_ack_cycles_per_hop * hops);
  // The control message (ACK or retransmission request) hops back across the
  // network; charge its link energy here in one lump.
  net_->record_power(id_, PowerEvent::kAckFlit, static_cast<std::uint64_t>(hops + 1));

  if (!a.crc_failed) {
    ++counters_.packets_delivered;
    ++fx_->packets_delivered;
    fx_->flits_delivered += a.expected;
    fx_->latency_samples.push_back(
        static_cast<double>(now - a.packet_inject_cycle));
    // Credit the path with the *per-hop* latency: dividing by path length
    // removes the path-length mix from the reward's variance while keeping
    // the congestion / retransmission signal intact.
    fx_->path_credits.push_back(StepEffects::StagedPathCredit{
        a.src, id_,
        static_cast<double>(now - a.packet_inject_cycle) / (hops + 1)});
    fx_->e2e.push_back(
        StepEffects::StagedE2e{response_at, a.src, id, /*ok=*/true});
  } else {
    ++counters_.packets_crc_failed;
    ++fx_->crc_packet_failures;
    RLFTNOC_TRACE(trace_, TraceEventKind::kCrcPacketFail, now, id_, -1,
                  static_cast<std::int32_t>(a.expected));
    fx_->e2e.push_back(
        StepEffects::StagedE2e{response_at, a.src, id, /*ok=*/false});
  }
}

void NetworkInterface::deliver_e2e_response(Cycle now, PacketId id, bool ok) {
  const auto it = retained_.find(id);
  if (it == retained_.end()) return;  // already resolved (shouldn't happen)
  if (ok) {
    retained_.erase(it);
    return;
  }
  // Destination CRC failed: retransmit the whole packet from source.
  ++counters_.packets_reinjected;
  NetworkMetrics& m = net_->metrics();
  ++m.packet_e2e_retransmissions;
  m.retx_flits_e2e += it->second.flits.size();
  RLFTNOC_TRACE(net_->tracer(), TraceEventKind::kE2eRetx, now, id_, -1,
                static_cast<std::int32_t>(it->second.flits.size()));
  net_->record_power(id_, PowerEvent::kRetransmission);
  // Bump the injection generation on the retained master copy so the next
  // transmission (and any after it) is distinguishable from stragglers of
  // the failed one. Sideband only: fault-free results are unchanged.
  for (Flit& f : it->second.flits) ++f.attempt;
  reinject_.push_back(it->second);  // pristine copy, original inject_cycle kept
}

// --------------------------------------------------------------------------
// Hard-fault teardown (serial context — called by the Network between steps)
// --------------------------------------------------------------------------

void NetworkInterface::purge_unreachable(
    const Topology& topo, std::vector<std::pair<PacketId, NodeId>>& orphans) {
  const auto lost_dst = [&](NodeId dst) {
    return !topo.router_alive(dst) || !topo.reachable(id_, dst);
  };
  queue_.remove_if([&](const Packet& p) {
    if (!lost_dst(p.dst)) return false;
    ++counters_.packets_abandoned;
    return true;
  });
  // Reinject copies share identity with their retained master, which is
  // counted below — dropping the copy is not a second abandonment.
  reinject_.remove_if([&](const Packet& p) { return lost_dst(p.dst); });
  // Orphans feed the network's reassembly/e2e repair sweep, so their order
  // must not depend on hash-map traversal: snapshot the doomed ids, sort,
  // then erase in ascending PacketId order.
  std::vector<PacketId> doomed;
  // rlftnoc-lint: allow(R1) key snapshot is sorted below; order cannot escape
  for (const auto& [id, pkt] : retained_) {
    if (lost_dst(pkt.dst)) doomed.push_back(id);
  }
  std::sort(doomed.begin(), doomed.end());
  for (const PacketId id : doomed) {
    const auto it = retained_.find(id);
    orphans.emplace_back(id, it->second.dst);
    ++counters_.packets_abandoned;
    retained_.erase(it);
  }
  // An in-progress `sending_` worm is deliberately left alone: its flits are
  // already interleaved with the router pipeline, and the RC unreachable
  // rule drops the complete worm at the first hop. With the retained entry
  // gone there is no path back to a retransmission.
}

void NetworkInterface::purge_for_router_kill(
    std::vector<std::pair<PacketId, NodeId>>& orphans) {
  counters_.packets_abandoned +=
      static_cast<std::uint64_t>(queue_.size() + retained_.size());
  // Same discipline as purge_unreachable: orphans leave this function in
  // sorted PacketId order, never in hash order.
  const std::size_t first_orphan = orphans.size();
  // rlftnoc-lint: allow(R1) snapshot sorted below; order cannot escape
  for (const auto& [id, pkt] : retained_) orphans.emplace_back(id, pkt.dst);
  std::sort(orphans.begin() + static_cast<std::ptrdiff_t>(first_orphan),
            orphans.end());
  queue_.clear();
  reinject_.clear();
  retained_.clear();
  assembling_.clear();
  finalized_attempt_.clear();
  sending_.reset();
  sending_is_reinject_ = false;
  next_flit_ = 0;
  send_vc_ = kInvalidVc;
  for (auto& vc : local_vcs_) {
    vc.busy = false;
    vc.credits = cfg_->vc_depth;
  }
}

void NetworkInterface::abandon_retained(PacketId id) {
  if (retained_.erase(id) > 0) ++counters_.packets_abandoned;
  reinject_.remove_if([&](const Packet& p) { return p.id == id; });
}

void NetworkInterface::start_next_packet(Cycle /*now*/) {
  RLFTNOC_CHECK(!sending_, "NI %d: start_next_packet while mid-packet", id_);
  Packet pkt;
  bool fresh = false;
  if (!reinject_.empty()) {
    pkt = std::move(reinject_.front());
    reinject_.pop_front();
  } else if (!queue_.empty()) {
    pkt = std::move(queue_.front());
    queue_.pop_front();
    fresh = true;
  } else {
    return;
  }

  // Pick any local VC with credit headroom; we send one packet at a time so
  // at most one VC is ever busy.
  VcId best = kInvalidVc;
  int best_credits = 0;
  for (VcId v = 0; v < static_cast<VcId>(local_vcs_.size()); ++v) {
    const LocalVc& vc = local_vcs_[static_cast<std::size_t>(v)];
    if (!vc.busy && vc.credits > best_credits) {
      best = v;
      best_credits = vc.credits;
    }
  }
  if (best == kInvalidVc) {
    // All VCs exhausted; retry next cycle.
    if (fresh) {
      queue_.push_front(std::move(pkt));
    } else {
      reinject_.push_front(std::move(pkt));
    }
    return;
  }

  if (fresh) {
    ++counters_.packets_injected;
    ++fx_->packets_injected;  // staged: runs inside the parallel execute phase
    retained_[pkt.id] = pkt;  // keep the pristine copy until the e2e ACK
  }
  send_vc_ = best;
  local_vcs_[static_cast<std::size_t>(best)].busy = true;
  next_flit_ = 0;
  sending_is_reinject_ = !fresh;
  sending_ = std::move(pkt);
}

void NetworkInterface::execute(Cycle now) {
  ChannelPair& inj = net_->inj_channel(id_);
  while (auto c = inj.credits.pop(now))
    ++local_vcs_[static_cast<std::size_t>(c->vc)].credits;

  if (!sending_) start_next_packet(now);
  if (!sending_) return;

  LocalVc& vc = local_vcs_[static_cast<std::size_t>(send_vc_)];
  if (vc.credits <= 0) return;

  Flit flit = sending_->flits[next_flit_];
  flit.vc = send_vc_;
  --vc.credits;
  net_->record_power(id_, PowerEvent::kCrcEncode);
  inj.flits.push(now, std::move(flit));
  ++counters_.flits_sent;
  if (!sending_is_reinject_) ++counters_.flits_sent_fresh;

  if (++next_flit_ >= sending_->flits.size()) {
    sending_.reset();
    vc.busy = false;
    send_vc_ = kInvalidVc;
  }
}

}  // namespace rlftnoc
