#include "traffic/traffic.h"

#include <array>
#include <bit>

#include "common/check.h"
#include "noc/ni.h"

namespace rlftnoc {

const char* traffic_pattern_name(TrafficPattern p) noexcept {
  switch (p) {
    case TrafficPattern::kUniform: return "uniform";
    case TrafficPattern::kTranspose: return "transpose";
    case TrafficPattern::kBitComplement: return "bitcomplement";
    case TrafficPattern::kTornado: return "tornado";
    case TrafficPattern::kNeighbor: return "neighbor";
    case TrafficPattern::kBitReverse: return "bitreverse";
    case TrafficPattern::kShuffle: return "shuffle";
    case TrafficPattern::kHotspot: return "hotspot";
  }
  return "?";
}

NodeId pattern_destination(TrafficPattern p, NodeId src, const MeshTopology& topo) {
  const int n = topo.num_nodes();
  const Coord c = topo.coord(src);
  switch (p) {
    case TrafficPattern::kTranspose:
      // Meaningful on square meshes; clamp on rectangles.
      return topo.node(c.y % topo.width(), c.x % topo.height());
    case TrafficPattern::kBitComplement: {
      const int bits = std::bit_width(static_cast<unsigned>(n - 1));
      return (~src) & ((1 << bits) - 1) & (n - 1);
    }
    case TrafficPattern::kTornado:
      return topo.node((c.x + topo.width() / 2 - 1 + topo.width()) % topo.width(), c.y);
    case TrafficPattern::kNeighbor:
      return topo.node((c.x + 1) % topo.width(), c.y);
    case TrafficPattern::kBitReverse: {
      const int bits = std::bit_width(static_cast<unsigned>(n - 1));
      int rev = 0;
      for (int i = 0; i < bits; ++i) {
        if (src & (1 << i)) rev |= 1 << (bits - 1 - i);
      }
      return rev % n;
    }
    case TrafficPattern::kShuffle: {
      const int bits = std::bit_width(static_cast<unsigned>(n - 1));
      const int hi = (src >> (bits - 1)) & 1;
      return ((src << 1) | hi) & ((1 << bits) - 1) & (n - 1);
    }
    case TrafficPattern::kUniform:
    case TrafficPattern::kHotspot:
      return kInvalidNode;  // handled by the generator's RNG
  }
  return kInvalidNode;
}

SyntheticTraffic::SyntheticTraffic(const MeshTopology& topo, Options opt,
                                   std::uint64_t seed)
    : topo_(topo), opt_(opt), rng_(seed, "synthetic"),
      name_(traffic_pattern_name(opt.pattern)) {
  if (opt_.pattern == TrafficPattern::kHotspot && opt_.hotspots.empty()) {
    // Default hot nodes: the four central tiles.
    const int cx = topo_.width() / 2;
    const int cy = topo_.height() / 2;
    opt_.hotspots = {topo_.node(cx, cy), topo_.node(cx - 1, cy),
                     topo_.node(cx, cy - 1), topo_.node(cx - 1, cy - 1)};
  }
}

NodeId SyntheticTraffic::pick_destination(NodeId src) {
  switch (opt_.pattern) {
    case TrafficPattern::kUniform: {
      NodeId dst = src;
      while (dst == src)
        dst = static_cast<NodeId>(rng_.next_below(static_cast<std::uint64_t>(topo_.num_nodes())));
      return dst;
    }
    case TrafficPattern::kHotspot: {
      if (rng_.bernoulli(opt_.hotspot_fraction)) {
        const NodeId dst = opt_.hotspots[rng_.next_below(opt_.hotspots.size())];
        if (dst != src) return dst;
      }
      NodeId dst = src;
      while (dst == src)
        dst = static_cast<NodeId>(rng_.next_below(static_cast<std::uint64_t>(topo_.num_nodes())));
      return dst;
    }
    default: {
      const NodeId dst = pattern_destination(opt_.pattern, src, topo_);
      return dst == src ? kInvalidNode : dst;
    }
  }
}

void SyntheticTraffic::tick(Cycle now, std::vector<Packet>& out) {
  if (exhausted()) return;
  const double p = opt_.injection_rate / opt_.packet_len;
  for (NodeId src = 0; src < topo_.num_nodes(); ++src) {
    if (exhausted()) break;
    if (!rng_.bernoulli(p)) continue;
    const NodeId dst = pick_destination(src);
    if (dst == kInvalidNode || dst == src) continue;
    out.push_back(make_packet(next_id_++, src, dst, opt_.packet_len, now, rng_));
    ++generated_;
  }
}

PretrainTraffic::PretrainTraffic(const MeshTopology& topo, std::uint64_t seed,
                                 std::vector<double> rate_levels, Cycle level_period,
                                 int packet_len)
    : topo_(topo),
      rng_(seed, "pretrain"),
      levels_(std::move(rate_levels)),
      period_(level_period),
      packet_len_(packet_len) {
  RLFTNOC_CHECK(!levels_.empty(), "PretrainTraffic: empty rate-level schedule");
}

void PretrainTraffic::tick(Cycle now, std::vector<Packet>& out) {
  const std::size_t level = static_cast<std::size_t>(now / period_) % levels_.size();
  const double p = levels_[level] / packet_len_;
  // Alternate uniform and hotspot halves within each level period so the
  // agents see both flat and spatially concentrated thermal regimes.
  const bool hotspot_half = (now / (period_ / 2)) % 2 == 1;
  const int w = topo_.width();
  const int h = topo_.height();
  const std::array<NodeId, 4> hot = {
      topo_.node(std::min(1, w - 1), std::min(1, h - 1)),
      topo_.node(std::max(w - 2, 0), std::min(1, h - 1)),
      topo_.node(std::min(1, w - 1), std::max(h - 2, 0)),
      topo_.node(std::max(w - 2, 0), std::max(h - 2, 0))};
  for (NodeId src = 0; src < topo_.num_nodes(); ++src) {
    if (!rng_.bernoulli(p)) continue;
    NodeId dst = src;
    if (hotspot_half && rng_.bernoulli(0.45)) {
      dst = hot[rng_.next_below(hot.size())];
      if (dst == src) continue;
    } else {
      while (dst == src)
        dst = static_cast<NodeId>(
            rng_.next_below(static_cast<std::uint64_t>(topo_.num_nodes())));
    }
    out.push_back(make_packet(next_id_++, src, dst, packet_len_, now, rng_));
  }
}

}  // namespace rlftnoc
