#include "traffic/trace.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "noc/ni.h"

namespace rlftnoc {

std::vector<TraceRecord> read_trace(std::istream& in) {
  std::vector<TraceRecord> out;
  std::string line;
  std::size_t line_no = 0;
  Cycle prev = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    TraceRecord rec;
    if (!(ls >> rec.cycle)) continue;  // blank / comment-only line
    if (!(ls >> rec.src >> rec.dst >> rec.len))
      throw std::runtime_error("trace line " + std::to_string(line_no) +
                               ": expected 'cycle src dst len'");
    if (rec.cycle < prev)
      throw std::runtime_error("trace line " + std::to_string(line_no) +
                               ": cycles not sorted");
    if (rec.len < 1)
      throw std::runtime_error("trace line " + std::to_string(line_no) +
                               ": non-positive packet length");
    prev = rec.cycle;
    out.push_back(rec);
  }
  return out;
}

std::vector<TraceRecord> read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(in);
}

void write_trace(std::ostream& out, const std::vector<TraceRecord>& records) {
  out << "# rlftnoc packet trace: cycle src dst len\n";
  for (const TraceRecord& r : records) {
    out << r.cycle << ' ' << r.src << ' ' << r.dst << ' ' << r.len << '\n';
  }
}

void write_trace_file(const std::string& path, const std::vector<TraceRecord>& records) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace file for write: " + path);
  write_trace(out, records);
}

std::vector<TraceRecord> capture_trace(TrafficGenerator& gen, Cycle cycles) {
  std::vector<TraceRecord> out;
  std::vector<Packet> batch;
  for (Cycle t = 0; t < cycles && !gen.exhausted(); ++t) {
    batch.clear();
    gen.tick(t, batch);
    for (const Packet& p : batch) {
      out.push_back(TraceRecord{t, p.src, p.dst, static_cast<int>(p.flits.size())});
    }
  }
  return out;
}

TraceTraffic::TraceTraffic(std::vector<TraceRecord> records, std::uint64_t seed,
                           std::string name)
    : records_(std::move(records)), rng_(seed, "trace"), name_(std::move(name)) {}

void TraceTraffic::tick(Cycle now, std::vector<Packet>& out) {
  while (next_ < records_.size() && records_[next_].cycle <= now) {
    const TraceRecord& r = records_[next_++];
    out.push_back(make_packet(next_id_++, r.src, r.dst, r.len, now, rng_));
  }
}

}  // namespace rlftnoc
