// Packet-trace file support.
//
// Format: one packet per line, `cycle src dst len`, sorted by cycle, with
// '#' comments. This lets users replay captured traces (the workflow the
// paper uses with gem5-captured PARSEC traces) and lets tests round-trip
// generated traffic.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "traffic/traffic.h"

namespace rlftnoc {

/// One trace record.
struct TraceRecord {
  Cycle cycle = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  int len = 1;
};

/// Parses a trace from a stream; throws std::runtime_error on malformed
/// lines or unsorted cycles.
std::vector<TraceRecord> read_trace(std::istream& in);
std::vector<TraceRecord> read_trace_file(const std::string& path);

/// Writes records (assumed sorted) as trace text.
void write_trace(std::ostream& out, const std::vector<TraceRecord>& records);
void write_trace_file(const std::string& path, const std::vector<TraceRecord>& records);

/// Captures everything a generator produces over `cycles` into records
/// (utility for exporting synthetic workloads as traces).
std::vector<TraceRecord> capture_trace(TrafficGenerator& gen, Cycle cycles);

/// Replays a sorted record list as a TrafficGenerator.
class TraceTraffic final : public TrafficGenerator {
 public:
  TraceTraffic(std::vector<TraceRecord> records, std::uint64_t seed,
               std::string name = "trace");

  void tick(Cycle now, std::vector<Packet>& out) override;
  bool exhausted() const override { return next_ >= records_.size(); }
  const std::string& name() const override { return name_; }

  std::size_t total_records() const noexcept { return records_.size(); }

 private:
  std::vector<TraceRecord> records_;
  std::size_t next_ = 0;
  Rng rng_;
  std::string name_;
  PacketId next_id_ = 1;
};

}  // namespace rlftnoc
