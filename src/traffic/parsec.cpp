#include "traffic/parsec.h"

#include <stdexcept>
#include <vector>

#include "noc/ni.h"

namespace rlftnoc {

const std::vector<ParsecProfile>& parsec_suite() {
  // Rates/burstiness/locality follow the qualitative ordering reported in
  // PARSEC NoC traffic studies: blackscholes/swaptions are light and smooth,
  // canneal/x264 are heavy with bursty, poorly localized access patterns.
  static const std::vector<ParsecProfile> kSuite = {
      {.name = "blackscholes", .injection_rate = 0.020, .burst_on_rate_scale = 2.0,
       .p_enter_burst = 0.001, .p_exit_burst = 0.020, .locality = 0.60,
       .locality_radius = 2, .short_packet_fraction = 0.60, .data_packet_len = 4,
       .total_packets = 120000},
      {.name = "bodytrack", .injection_rate = 0.040, .burst_on_rate_scale = 2.5,
       .p_enter_burst = 0.002, .p_exit_burst = 0.015, .locality = 0.50,
       .locality_radius = 2, .short_packet_fraction = 0.55, .data_packet_len = 4,
       .total_packets = 180000},
      {.name = "canneal", .injection_rate = 0.070, .burst_on_rate_scale = 3.0,
       .p_enter_burst = 0.004, .p_exit_burst = 0.010, .locality = 0.20,
       .locality_radius = 2, .short_packet_fraction = 0.40, .data_packet_len = 4,
       .total_packets = 300000},
      {.name = "dedup", .injection_rate = 0.055, .burst_on_rate_scale = 3.5,
       .p_enter_burst = 0.003, .p_exit_burst = 0.012, .locality = 0.35,
       .locality_radius = 2, .short_packet_fraction = 0.45, .data_packet_len = 4,
       .total_packets = 220000},
      {.name = "ferret", .injection_rate = 0.055, .burst_on_rate_scale = 2.5,
       .p_enter_burst = 0.002, .p_exit_burst = 0.012, .locality = 0.40,
       .locality_radius = 2, .short_packet_fraction = 0.50, .data_packet_len = 4,
       .total_packets = 210000},
      {.name = "fluidanimate", .injection_rate = 0.045, .burst_on_rate_scale = 2.0,
       .p_enter_burst = 0.002, .p_exit_burst = 0.015, .locality = 0.65,
       .locality_radius = 1, .short_packet_fraction = 0.55, .data_packet_len = 4,
       .total_packets = 180000},
      {.name = "swaptions", .injection_rate = 0.025, .burst_on_rate_scale = 2.0,
       .p_enter_burst = 0.001, .p_exit_burst = 0.020, .locality = 0.55,
       .locality_radius = 2, .short_packet_fraction = 0.60, .data_packet_len = 4,
       .total_packets = 110000},
      {.name = "x264", .injection_rate = 0.062, .burst_on_rate_scale = 4.0,
       .p_enter_burst = 0.005, .p_exit_burst = 0.010, .locality = 0.30,
       .locality_radius = 2, .short_packet_fraction = 0.35, .data_packet_len = 4,
       .total_packets = 250000},
  };
  return kSuite;
}

const ParsecProfile& parsec_profile(const std::string& name) {
  for (const ParsecProfile& p : parsec_suite()) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("unknown PARSEC profile: " + name);
}

std::vector<NodeId> default_mc_nodes(const MeshTopology& topo) {
  // One controller per quadrant, one tile in from the corner (a common
  // CMP floorplan); degenerates gracefully on small meshes.
  const int x0 = std::min(1, topo.width() - 1);
  const int y0 = std::min(1, topo.height() - 1);
  const int x1 = std::max(topo.width() - 2, 0);
  const int y1 = std::max(topo.height() - 2, 0);
  return {topo.node(x0, y0), topo.node(x1, y0), topo.node(x0, y1),
          topo.node(x1, y1)};
}

ParsecTraffic::ParsecTraffic(const MeshTopology& topo, ParsecProfile profile,
                             std::uint64_t seed)
    : topo_(topo),
      profile_(std::move(profile)),
      rng_(seed, "parsec:" + profile_.name),
      bursting_(static_cast<std::size_t>(topo.num_nodes()), false),
      mc_nodes_(default_mc_nodes(topo)) {}

NodeId ParsecTraffic::pick_destination(NodeId src) {
  if (rng_.bernoulli(profile_.mc_fraction)) {
    // Memory access: send to the nearest memory controller (address-
    // interleaved in reality; nearest keeps it simple and still spatial).
    NodeId best = mc_nodes_.front();
    for (const NodeId mc : mc_nodes_) {
      if (topo_.distance(src, mc) < topo_.distance(src, best)) best = mc;
    }
    if (best != src) return best;
  }
  if (rng_.bernoulli(profile_.locality)) {
    // Nearby destination: uniform over the Manhattan ball around src.
    std::vector<NodeId> nearby;
    const Coord c = topo_.coord(src);
    for (int dy = -profile_.locality_radius; dy <= profile_.locality_radius; ++dy) {
      for (int dx = -profile_.locality_radius; dx <= profile_.locality_radius; ++dx) {
        if (std::abs(dx) + std::abs(dy) > profile_.locality_radius) continue;
        const int x = c.x + dx;
        const int y = c.y + dy;
        if (x < 0 || x >= topo_.width() || y < 0 || y >= topo_.height()) continue;
        const NodeId cand = topo_.node(x, y);
        if (cand != src) nearby.push_back(cand);
      }
    }
    if (!nearby.empty()) return nearby[rng_.next_below(nearby.size())];
  }
  NodeId dst = src;
  while (dst == src)
    dst = static_cast<NodeId>(rng_.next_below(static_cast<std::uint64_t>(topo_.num_nodes())));
  return dst;
}

void ParsecTraffic::tick(Cycle now, std::vector<Packet>& out) {
  if (exhausted()) return;
  // Mean-preserving ON/OFF modulation: the baseline rate is chosen so the
  // long-run average matches `injection_rate`.
  const double p_on = profile_.p_enter_burst /
                      (profile_.p_enter_burst + profile_.p_exit_burst);
  const double mean_scale = 1.0 + p_on * (profile_.burst_on_rate_scale - 1.0);
  const double base_rate = profile_.injection_rate / mean_scale;
  const double avg_len = profile_.short_packet_fraction * 1.0 +
                         (1.0 - profile_.short_packet_fraction) * profile_.data_packet_len;

  for (NodeId src = 0; src < topo_.num_nodes(); ++src) {
    if (exhausted()) break;
    auto idx = static_cast<std::size_t>(src);
    if (bursting_[idx]) {
      if (rng_.bernoulli(profile_.p_exit_burst)) bursting_[idx] = false;
    } else {
      if (rng_.bernoulli(profile_.p_enter_burst)) bursting_[idx] = true;
    }
    const double rate =
        base_rate * (bursting_[idx] ? profile_.burst_on_rate_scale : 1.0);
    if (!rng_.bernoulli(rate / avg_len)) continue;

    const NodeId dst = pick_destination(src);
    const int len = rng_.bernoulli(profile_.short_packet_fraction)
                        ? 1
                        : profile_.data_packet_len;
    out.push_back(make_packet(next_id_++, src, dst, len, now, rng_));
    ++generated_;
  }
}

}  // namespace rlftnoc
