// Traffic generation interfaces and the classic synthetic patterns.
//
// A TrafficGenerator is polled once per cycle and emits the packets created
// that cycle; the simulation driver enqueues them at the source NIs. All
// generators are deterministic given their seed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "noc/flit.h"
#include "noc/topology.h"

namespace rlftnoc {

/// Pull-based packet source.
class TrafficGenerator {
 public:
  virtual ~TrafficGenerator() = default;

  /// Appends the packets created at cycle `now` to `out`.
  virtual void tick(Cycle now, std::vector<Packet>& out) = 0;

  /// True once the generator will never produce another packet.
  virtual bool exhausted() const = 0;

  /// Human-readable label for reports.
  virtual const std::string& name() const = 0;
};

/// Destination-selection patterns from the NoC literature.
enum class TrafficPattern : std::uint8_t {
  kUniform = 0,      ///< uniform random over all other nodes
  kTranspose,        ///< (x,y) -> (y,x)
  kBitComplement,    ///< id -> ~id (within node-count bits)
  kTornado,          ///< (x,y) -> (x + W/2 - 1 mod W, y)
  kNeighbor,         ///< (x,y) -> (x+1 mod W, y)
  kBitReverse,       ///< id -> bit-reversed id
  kShuffle,          ///< id -> rotate-left-1 id
  kHotspot,          ///< uniform, but a fraction targets a few hot nodes
};

const char* traffic_pattern_name(TrafficPattern p) noexcept;

/// Resolves the destination for `src` under a pattern (hotspot handled by
/// the generator itself since it needs randomness).
NodeId pattern_destination(TrafficPattern p, NodeId src, const MeshTopology& topo);

/// Open-loop Bernoulli injection of a synthetic pattern.
///
/// `injection_rate` is in flits/node/cycle (the usual NoC convention);
/// each node independently creates a packet with probability
/// rate / packet_len each cycle until the packet budget is spent.
class SyntheticTraffic final : public TrafficGenerator {
 public:
  struct Options {
    TrafficPattern pattern = TrafficPattern::kUniform;
    double injection_rate = 0.05;  ///< flits/node/cycle
    int packet_len = 4;
    std::uint64_t total_packets = 50000;  ///< budget; 0 = unlimited
    double hotspot_fraction = 0.2;        ///< for kHotspot
    std::vector<NodeId> hotspots;         ///< defaults to the mesh center
  };

  SyntheticTraffic(const MeshTopology& topo, Options opt, std::uint64_t seed);

  void tick(Cycle now, std::vector<Packet>& out) override;
  bool exhausted() const override {
    return opt_.total_packets != 0 && generated_ >= opt_.total_packets;
  }
  const std::string& name() const override { return name_; }

  std::uint64_t generated() const noexcept { return generated_; }

 private:
  NodeId pick_destination(NodeId src);

  MeshTopology topo_;
  Options opt_;
  Rng rng_;
  std::string name_;
  std::uint64_t generated_ = 0;
  PacketId next_id_ = 1;
};

/// Pre-training traffic for the learning policies: uniform random traffic
/// whose injection rate cycles through several levels so agents visit low-,
/// medium- and high-pressure regions of the state space (the paper
/// pre-trains for 1M cycles "using synthetic traffic").
class PretrainTraffic final : public TrafficGenerator {
 public:
  PretrainTraffic(const MeshTopology& topo, std::uint64_t seed,
                  std::vector<double> rate_levels = {0.02, 0.04, 0.07, 0.10},
                  Cycle level_period = 20000, int packet_len = 4);

  void tick(Cycle now, std::vector<Packet>& out) override;
  bool exhausted() const override { return false; }  // runs as long as asked
  const std::string& name() const override { return name_; }

 private:
  MeshTopology topo_;
  Rng rng_;
  std::vector<double> levels_;
  Cycle period_;
  int packet_len_;
  std::string name_ = "pretrain";
  PacketId next_id_ = 0x100000000ULL;  ///< distinct id space from test traffic
};

}  // namespace rlftnoc
