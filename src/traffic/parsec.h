// PARSEC-like application traffic.
//
// Substitution note (see DESIGN.md §3): we do not ship the proprietary
// gem5-captured PARSEC traces the paper replays. Instead each benchmark is a
// named stochastic traffic model whose knobs — mean injection rate, ON/OFF
// burstiness, spatial locality, control/data packet mix and total packet
// budget — are set from published PARSEC NoC traffic characterizations. The
// fault-tolerance machinery under test only observes the packet arrival
// process, so matching these first-order statistics preserves the relative
// behaviour of the policies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "traffic/traffic.h"

namespace rlftnoc {

/// Stochastic profile of one benchmark.
struct ParsecProfile {
  std::string name;
  double injection_rate = 0.05;  ///< mean flits/node/cycle
  double burst_on_rate_scale = 3.0;  ///< rate multiplier while a node bursts
  double p_enter_burst = 0.002;      ///< per-cycle OFF -> ON probability
  double p_exit_burst = 0.01;        ///< per-cycle ON -> OFF probability
  double locality = 0.4;             ///< fraction of packets to nearby nodes
  int locality_radius = 2;           ///< "nearby" = Manhattan distance <= r
  double short_packet_fraction = 0.5;///< 1-flit control packets (coherence)
  int data_packet_len = 4;           ///< Table II: 4-flit data packets
  std::uint64_t total_packets = 60000;  ///< defines full execution
  /// Fraction of non-local packets addressed to a memory-controller node.
  /// Real PARSEC NoC traffic concentrates on the MC / directory tiles; the
  /// resulting hot neighbourhoods are what drive the paper's 50-100 C
  /// temperature (and therefore error-level) heterogeneity.
  double mc_fraction = 0.45;
};

/// Default memory-controller placement: one per mesh quadrant.
std::vector<NodeId> default_mc_nodes(const MeshTopology& topo);

/// The eight benchmark profiles used in the evaluation (Figs. 6-10).
const std::vector<ParsecProfile>& parsec_suite();

/// Looks up a profile by name; throws std::invalid_argument if unknown.
const ParsecProfile& parsec_profile(const std::string& name);

/// Markov-modulated packet source implementing a ParsecProfile.
class ParsecTraffic final : public TrafficGenerator {
 public:
  ParsecTraffic(const MeshTopology& topo, ParsecProfile profile, std::uint64_t seed);

  void tick(Cycle now, std::vector<Packet>& out) override;
  bool exhausted() const override { return generated_ >= profile_.total_packets; }
  const std::string& name() const override { return profile_.name; }

  const ParsecProfile& profile() const noexcept { return profile_; }
  std::uint64_t generated() const noexcept { return generated_; }

 private:
  NodeId pick_destination(NodeId src);

  MeshTopology topo_;
  ParsecProfile profile_;
  Rng rng_;
  std::vector<bool> bursting_;  ///< per-node ON/OFF state
  std::vector<NodeId> mc_nodes_;
  std::uint64_t generated_ = 0;
  PacketId next_id_ = 1;
};

}  // namespace rlftnoc
