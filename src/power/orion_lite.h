// ORION-lite: event-based NoC power model (Kahng et al., DATE 2009 style).
//
// Dynamic energy is accumulated per router from discrete micro-architectural
// events (buffer accesses, crossbar/arbiter activity, link traversals, codec
// operations, ACK flits, retransmissions). Leakage is integrated over time
// with an exponential temperature dependence. Per-event energies are
// calibrated for 32 nm / 1.0 V / 2 GHz so a flit's full per-hop cost
// (write + read + arbitration + crossbar + link) comes to ~6.4 pJ and the
// paper's quoted 13.3 pJ baseline per-flit router energy (from the 0.16 pJ =
// 1.2 % RL-overhead arithmetic of Section VI-B) is met for a 2-hop average
// payload journey.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace rlftnoc {

/// Micro-architectural events that cost dynamic energy.
enum class PowerEvent : std::uint8_t {
  kBufferWrite = 0,   ///< flit written into an input VC buffer
  kBufferRead,        ///< flit read out of an input VC buffer
  kArbitration,       ///< one RC/VA/SA arbitration for a flit
  kCrossbar,          ///< crossbar traversal
  kLinkTraversal,     ///< flit crosses an inter-router link
  kCrcEncode,         ///< CRC computation at the source NI
  kCrcDecode,         ///< CRC check at the destination NI
  kEccEncode,         ///< SECDED encode at an enabled ECC link
  kEccDecode,         ///< SECDED decode at an enabled ECC link
  kAckFlit,           ///< ACK/NACK control flit exchanged between routers
  kRetransmission,    ///< a flit (or packet flit) re-sent due to a fault
  kOutputBufferWrite, ///< retention copy written to the output flit buffer
  kRlStep,            ///< Q-table lookup + update for one control interval
  kDtInference,       ///< decision-tree inference for one control interval
  kCount
};

inline constexpr std::size_t kNumPowerEvents = static_cast<std::size_t>(PowerEvent::kCount);

const char* power_event_name(PowerEvent e) noexcept;

/// Per-event energies (pJ) and leakage coefficients.
struct PowerParams {
  std::array<double, kNumPowerEvents> energy_pj = {
      1.15,  // kBufferWrite
      0.95,  // kBufferRead
      0.55,  // kArbitration
      1.90,  // kCrossbar
      1.80,  // kLinkTraversal
      0.36,  // kCrcEncode
      0.36,  // kCrcDecode
      0.52,  // kEccEncode
      0.74,  // kEccDecode
      0.42,  // kAckFlit
      0.80,  // kRetransmission (control overhead beyond the re-traversal costs)
      0.60,  // kOutputBufferWrite
      36.0,  // kRlStep (Q-table SRAM read+write + ALU, per control step)
      20.0,  // kDtInference
  };

  /// Leakage: P_leak(T) = leak_w_at_ref * exp(leak_temp_coeff * (T - ref)).
  double leak_w_at_ref = 0.045;   ///< per-router leakage at ref temp (W)
  double leak_ref_temp_c = 50.0;
  double leak_temp_coeff = 0.023; ///< ~2x per 30 C, typical for 32 nm

  double clock_hz = 2.0e9;        ///< Table II: 2.0 GHz
};

/// Per-router energy bookkeeping.
///
/// Two accounting horizons coexist:
///  * *totals* over the whole measurement phase (drive Figs. 9-10), and
///  * a *window* that the control layer resets each RL time-step to compute
///    the instantaneous power used in the reward and fed to HotSpot.
class PowerModel {
 public:
  PowerModel(int num_routers, PowerParams params = {});

  const PowerParams& params() const noexcept { return params_; }
  int num_routers() const noexcept { return static_cast<int>(window_counts_.size()); }

  /// Records `n` occurrences of `e` at `router`.
  void record(int router, PowerEvent e, std::uint64_t n = 1);

  /// Integrates leakage for `router` over `cycles` at temperature `temp_c`.
  void integrate_leakage(int router, double temp_c, std::uint64_t cycles);

  /// Leakage power (W) at the given temperature.
  double leakage_watts(double temp_c) const noexcept;

  /// --- window accounting (per control interval) ---
  /// Dynamic energy (pJ) recorded at `router` since its last window reset.
  double window_dynamic_energy_pj(int router) const;
  /// Average dynamic power (W) over a window of `cycles` cycles.
  double window_dynamic_power_w(int router, std::uint64_t cycles) const;
  /// Resets the window counters of `router`.
  void reset_window(int router);

  /// --- totals over the measurement phase ---
  double total_dynamic_energy_pj(int router) const;
  double total_dynamic_energy_pj() const;
  double total_leakage_energy_pj(int router) const;
  double total_leakage_energy_pj() const;
  double total_energy_pj() const { return total_dynamic_energy_pj() + total_leakage_energy_pj(); }

  /// Event count over the measurement phase (all routers).
  std::uint64_t total_event_count(PowerEvent e) const;

  /// Clears totals and windows (start of the measurement phase).
  void reset_totals();

 private:
  PowerParams params_;
  using EventCounts = std::array<std::uint64_t, kNumPowerEvents>;
  std::vector<EventCounts> window_counts_;
  std::vector<EventCounts> total_counts_;
  std::vector<double> leak_energy_pj_;

  double counts_to_pj(const EventCounts& c) const noexcept;
};

}  // namespace rlftnoc
