#include "power/orion_lite.h"

#include "common/check.h"

#include <cmath>
#include <stdexcept>

namespace rlftnoc {

const char* power_event_name(PowerEvent e) noexcept {
  switch (e) {
    case PowerEvent::kBufferWrite: return "buffer_write";
    case PowerEvent::kBufferRead: return "buffer_read";
    case PowerEvent::kArbitration: return "arbitration";
    case PowerEvent::kCrossbar: return "crossbar";
    case PowerEvent::kLinkTraversal: return "link_traversal";
    case PowerEvent::kCrcEncode: return "crc_encode";
    case PowerEvent::kCrcDecode: return "crc_decode";
    case PowerEvent::kEccEncode: return "ecc_encode";
    case PowerEvent::kEccDecode: return "ecc_decode";
    case PowerEvent::kAckFlit: return "ack_flit";
    case PowerEvent::kRetransmission: return "retransmission";
    case PowerEvent::kOutputBufferWrite: return "output_buffer_write";
    case PowerEvent::kRlStep: return "rl_step";
    case PowerEvent::kDtInference: return "dt_inference";
    case PowerEvent::kCount: break;
  }
  return "?";
}

PowerModel::PowerModel(int num_routers, PowerParams params) : params_(params) {
  if (num_routers <= 0) throw std::invalid_argument("PowerModel: no routers");
  window_counts_.assign(static_cast<std::size_t>(num_routers), EventCounts{});
  total_counts_.assign(static_cast<std::size_t>(num_routers), EventCounts{});
  leak_energy_pj_.assign(static_cast<std::size_t>(num_routers), 0.0);
}

void PowerModel::record(int router, PowerEvent e, std::uint64_t n) {
  const auto r = static_cast<std::size_t>(router);
  const auto i = static_cast<std::size_t>(e);
  RLFTNOC_CHECK(r < window_counts_.size() && i < kNumPowerEvents,
                "PowerModel::record: router %d event %zu out of range", router, i);
  window_counts_[r][i] += n;
  total_counts_[r][i] += n;
}

double PowerModel::leakage_watts(double temp_c) const noexcept {
  // Clamp the exponent so a runaway thermal input cannot overflow.
  const double t = std::min(temp_c, 150.0);
  return params_.leak_w_at_ref *
         std::exp(params_.leak_temp_coeff * (t - params_.leak_ref_temp_c));
}

void PowerModel::integrate_leakage(int router, double temp_c, std::uint64_t cycles) {
  const double seconds = static_cast<double>(cycles) / params_.clock_hz;
  const auto r = static_cast<std::size_t>(router);
  RLFTNOC_CHECK(r < leak_energy_pj_.size(),
                "PowerModel::integrate_leakage: router %d out of range", router);
  leak_energy_pj_[r] += leakage_watts(temp_c) * seconds * 1e12;
}

double PowerModel::counts_to_pj(const EventCounts& c) const noexcept {
  double pj = 0.0;
  for (std::size_t i = 0; i < kNumPowerEvents; ++i)
    pj += static_cast<double>(c[i]) * params_.energy_pj[i];
  return pj;
}

double PowerModel::window_dynamic_energy_pj(int router) const {
  const auto r = static_cast<std::size_t>(router);
  RLFTNOC_CHECK(r < window_counts_.size(), "PowerModel: router %d out of range", router);
  return counts_to_pj(window_counts_[r]);
}

double PowerModel::window_dynamic_power_w(int router, std::uint64_t cycles) const {
  if (cycles == 0) return 0.0;
  const double seconds = static_cast<double>(cycles) / params_.clock_hz;
  return window_dynamic_energy_pj(router) * 1e-12 / seconds;
}

void PowerModel::reset_window(int router) {
  const auto r = static_cast<std::size_t>(router);
  RLFTNOC_CHECK(r < window_counts_.size(),
                "PowerModel::reset_window: router %d out of range", router);
  window_counts_[r] = EventCounts{};
}

double PowerModel::total_dynamic_energy_pj(int router) const {
  const auto r = static_cast<std::size_t>(router);
  RLFTNOC_CHECK(r < total_counts_.size(), "PowerModel: router %d out of range", router);
  return counts_to_pj(total_counts_[r]);
}

double PowerModel::total_dynamic_energy_pj() const {
  double pj = 0.0;
  for (const auto& c : total_counts_) pj += counts_to_pj(c);
  return pj;
}

double PowerModel::total_leakage_energy_pj(int router) const {
  const auto r = static_cast<std::size_t>(router);
  RLFTNOC_CHECK(r < leak_energy_pj_.size(),
                "PowerModel: router %d out of range", router);
  return leak_energy_pj_[r];
}

double PowerModel::total_leakage_energy_pj() const {
  double pj = 0.0;
  for (const double e : leak_energy_pj_) pj += e;
  return pj;
}

std::uint64_t PowerModel::total_event_count(PowerEvent e) const {
  std::uint64_t n = 0;
  for (const auto& c : total_counts_) n += c[static_cast<std::size_t>(e)];
  return n;
}

void PowerModel::reset_totals() {
  for (auto& c : window_counts_) c = EventCounts{};
  for (auto& c : total_counts_) c = EventCounts{};
  for (auto& e : leak_energy_pj_) e = 0.0;
}

}  // namespace rlftnoc
