// VARIUS-style timing-error model (Sarangi et al., IEEE TSM 2008), compact
// analytic re-implementation.
//
// The paper feeds runtime NoC attributes (voltage, frequency, link
// utilization) into HotSpot to get a router temperature, and VARIUS maps that
// temperature to a per-link timing-error probability. We reproduce that map:
// the critical-path delay grows with temperature (carrier mobility
// degradation) and activity, shrinks with voltage headroom, and process
// variation spreads it as a Gaussian; a timing error occurs when the sampled
// path delay exceeds the clock period. Operation mode 3 stretches the
// effective period (the 2-cycle relaxed-timing transfer of Section III),
// which collapses the error probability to ~0 exactly as the paper claims.
#pragma once

#include <cstdint>

namespace rlftnoc {

/// Tunable coefficients of the timing-error model.
///
/// Defaults are calibrated so that across the paper's operating envelope
/// (temperature 50-100 C, link utilization up to 0.3 flits/cycle, 1.0 V,
/// 2 GHz) the per-flit error probability spans ~1e-3 (cool, idle) to ~0.1
/// (hot, busy) — the four regimes that motivate the four operation modes,
/// while keeping the CRC baseline able to finish (its per-packet end-to-end
/// failure probability tops out well below 1).
struct VariusParams {
  double nominal_delay = 0.86;  ///< mean path delay at ref temp, fraction of Tclk
  double ref_temp_c = 50.0;     ///< temperature at which nominal_delay holds
  double temp_coeff = 0.0016;   ///< fractional delay increase per deg C
  double util_coeff = 0.05;     ///< fractional delay increase at util = 1.0
  double sigma = 0.045;         ///< process-variation std-dev, fraction of Tclk
  double vnom = 1.0;            ///< nominal supply voltage (V)
  double volt_exponent = 1.3;   ///< delay ~ (vnom/V)^volt_exponent
  /// Multi-bit severity: given an error event, extra bits flip with a
  /// geometric tail whose parameter grows with the error probability.
  double multibit_base = 0.15;
  double multibit_slope = 2.0;
  double multibit_cap = 0.60;

  /// Temporal correlation (supply-voltage droop): with probability
  /// `droop_rate` per traversal a link enters a droop lasting
  /// `droop_len_traversals` flits during which the error probability is
  /// multiplied by `droop_scale`. Droops are what make consecutive flits of
  /// one packet fail together — the regime the paper's mode 3 targets.
  /// Set droop_rate = 0 for the uncorrelated model.
  double droop_rate = 2e-4;
  int droop_len_traversals = 24;
  double droop_scale = 12.0;
};

/// Stateless delay/error-probability model.
class VariusModel {
 public:
  explicit VariusModel(VariusParams params = {}) noexcept : p_(params) {}

  const VariusParams& params() const noexcept { return p_; }

  /// Mean critical-path delay as a fraction of the clock period.
  ///
  /// `temp_c` in Celsius; `link_util` in flits/cycle (0..1); `voltage` in V.
  double mean_path_delay(double temp_c, double link_util, double voltage) const noexcept;

  /// Probability that a flit transmission suffers a timing error.
  ///
  /// `period_factor` scales the available timing window: 1.0 for a normal
  /// single-cycle transfer, 2.0 for the mode-3 relaxed transfer.
  double flit_error_probability(double temp_c, double link_util, double voltage,
                                double period_factor = 1.0) const noexcept;

  /// Geometric parameter for the number of *extra* bits flipped in an error
  /// event (beyond the first). Higher error pressure -> wider flip bursts,
  /// which is what defeats SECDED at high error levels.
  double multibit_param(double p_flit) const noexcept;

  /// Standard normal CDF (exposed for tests).
  static double normal_cdf(double z) noexcept;

 private:
  VariusParams p_;
};

}  // namespace rlftnoc
