#include "fault/injector.h"

#include <algorithm>

namespace rlftnoc {

InjectionResult LinkFaultInjector::inject(BitVec128& payload, FlitEcc* ecc,
                                          double p_flit) {
  InjectionResult out;

  // Temporal correlation: voltage droops multiply the error probability for
  // a burst of consecutive traversals.
  // A burst scales exactly droop_len_traversals consecutive traversals,
  // counting the one that starts it; droop_traversals_ + droop_left_ always
  // equals total_droops_ * droop_len_traversals (asserted by the tests), so
  // the counters stay reconcilable however bursts interleave with error
  // events.
  const VariusParams& vp = model_->params();
  if (droop_left_ > 0) {
    --droop_left_;
    ++droop_traversals_;
    p_flit = std::min(1.0, p_flit * vp.droop_scale);
  } else if (vp.droop_rate > 0.0 && vp.droop_len_traversals > 0 &&
             rng_.bernoulli(vp.droop_rate)) {
    droop_left_ = vp.droop_len_traversals - 1;
    ++total_droops_;
    ++droop_traversals_;
    p_flit = std::min(1.0, p_flit * vp.droop_scale);
  }

  if (!rng_.bernoulli(p_flit)) return out;

  out.error_event = true;
  ++total_events_;

  const int payload_bits = static_cast<int>(BitVec128::kBits);
  const int check_bits = ecc != nullptr ? 2 * Secded7264::kCheckBits : 0;
  const int codeword_bits = payload_bits + check_bits;

  // 1 mandatory flip + geometric burst; cap the burst so a single event can
  // never rewrite the whole flit.
  const double q = model_->multibit_param(p_flit);
  int flips = 1;
  while (flips < 8 && rng_.bernoulli(q)) ++flips;

  for (int i = 0; i < flips; ++i) {
    const int pos = static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(codeword_bits)));
    if (pos < payload_bits) {
      payload.flip_bit(static_cast<std::size_t>(pos));
      ++out.payload_flips;
    } else {
      const int cpos = pos - payload_bits;
      if (cpos < Secded7264::kCheckBits) {
        ecc->check0 = static_cast<std::uint8_t>(ecc->check0 ^ (1u << cpos));
      } else {
        ecc->check1 =
            static_cast<std::uint8_t>(ecc->check1 ^ (1u << (cpos - Secded7264::kCheckBits)));
      }
      ++out.check_flips;
    }
  }
  out.bits_flipped = out.payload_flips + out.check_flips;
  total_flips_ += static_cast<std::uint64_t>(out.bits_flipped);
  return out;
}

}  // namespace rlftnoc
