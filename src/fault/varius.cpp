#include "fault/varius.h"

#include <algorithm>
#include <cmath>

namespace rlftnoc {

double VariusModel::normal_cdf(double z) noexcept {
  return 0.5 * std::erfc(-z / 1.4142135623730951);
}

double VariusModel::mean_path_delay(double temp_c, double link_util,
                                    double voltage) const noexcept {
  const double temp_term = 1.0 + p_.temp_coeff * (temp_c - p_.ref_temp_c);
  const double util_term = 1.0 + p_.util_coeff * std::clamp(link_util, 0.0, 1.0);
  const double v = std::max(voltage, 0.5);
  const double volt_term = std::pow(p_.vnom / v, p_.volt_exponent);
  return p_.nominal_delay * temp_term * util_term * volt_term;
}

double VariusModel::flit_error_probability(double temp_c, double link_util,
                                           double voltage,
                                           double period_factor) const noexcept {
  const double mu = mean_path_delay(temp_c, link_util, voltage);
  const double period = std::max(period_factor, 0.1);
  // Error iff sampled delay > available period; delay ~ N(mu, sigma).
  const double z = (mu - period) / p_.sigma;
  const double p = normal_cdf(z);
  // Clamp away exact 0/1 so downstream log-space discretization stays finite.
  return std::clamp(p, 1e-12, 1.0 - 1e-12);
}

double VariusModel::multibit_param(double p_flit) const noexcept {
  return std::min(p_.multibit_cap, p_.multibit_base + p_.multibit_slope * p_flit);
}

}  // namespace rlftnoc
