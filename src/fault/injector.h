// Per-link transient-fault injector.
//
// Given the per-flit timing-error probability computed by the VARIUS model,
// the injector decides whether a traversal suffers an error event and, if
// so, flips real bits in the flit payload (and, when the link's ECC is
// enabled, possibly in the check bits — errors do not respect field
// boundaries). The first flipped bit is uniform over the codeword; further
// bits follow a geometric burst whose parameter comes from the model, so at
// high error pressure multi-bit patterns that defeat SECDED become common.
#pragma once

#include <cstdint>

#include "common/bitvec.h"
#include "common/rng.h"
#include "coding/secded.h"
#include "fault/varius.h"

namespace rlftnoc {

/// What the injector did to one flit traversal.
struct InjectionResult {
  bool error_event = false;  ///< a timing error occurred on this traversal
  int bits_flipped = 0;      ///< total flips (payload + check bits)
  int payload_flips = 0;     ///< flips landing in the 128 data bits
  int check_flips = 0;       ///< flips landing in the 16 ECC check bits
};

/// Fault injector for one physical link direction.
///
/// Owns its RNG stream (derived from the experiment seed and the link name)
/// so adding or removing other random consumers never changes its draws.
class LinkFaultInjector {
 public:
  LinkFaultInjector(const VariusModel* model, std::uint64_t seed,
                    std::string_view link_tag)
      : model_(model), rng_(seed, link_tag) {}

  /// Possibly corrupts `payload` (+ `ecc` when non-null, i.e. the link is
  /// ECC-protected and check bits travel on the wire too).
  ///
  /// `p_flit` is the per-traversal error probability for the current
  /// conditions; the caller computes it from the model so it can apply the
  /// mode-3 period stretch.
  InjectionResult inject(BitVec128& payload, FlitEcc* ecc, double p_flit);

  /// Cumulative counters for diagnostics.
  std::uint64_t total_events() const noexcept { return total_events_; }
  std::uint64_t total_flips() const noexcept { return total_flips_; }
  std::uint64_t total_droops() const noexcept { return total_droops_; }
  /// Traversals that saw the droop-scaled error probability. Every burst
  /// covers exactly droop_len_traversals of them, which is the bookkeeping
  /// invariant below.
  std::uint64_t droop_traversals() const noexcept { return droop_traversals_; }

  /// True while the link is inside a voltage-droop burst.
  bool in_droop() const noexcept { return droop_left_ > 0; }
  int droop_left() const noexcept { return droop_left_; }

  /// Droop bookkeeping invariant: completed bursts plus the in-progress
  /// remainder account for every scaled traversal. Holds for any
  /// droop_len_traversals >= 1 (with <= 0 droops never start).
  bool droop_accounting_consistent() const noexcept {
    const auto len =
        static_cast<std::uint64_t>(model_->params().droop_len_traversals);
    return droop_traversals_ + static_cast<std::uint64_t>(droop_left_) ==
           total_droops_ * len;
  }

 private:
  const VariusModel* model_;
  Rng rng_;
  std::uint64_t total_events_ = 0;
  std::uint64_t total_flips_ = 0;
  std::uint64_t total_droops_ = 0;
  std::uint64_t droop_traversals_ = 0;
  int droop_left_ = 0;
};

}  // namespace rlftnoc
