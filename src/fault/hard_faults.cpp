#include "fault/hard_faults.h"

#include <cctype>
#include <stdexcept>

namespace rlftnoc {
namespace {

[[noreturn]] void bad_spec(const std::string& item, const char* why) {
  throw std::invalid_argument("hard_faults: bad item '" + item + "': " + why +
                              " (expected link:NODE:P[@CYCLE] or "
                              "router:NODE[@CYCLE])");
}

/// Splits "...@CYCLE" off `body`; returns the cycle (0 when absent).
Cycle take_cycle(std::string& body, const std::string& item) {
  const auto at = body.find('@');
  if (at == std::string::npos) return 0;
  const std::string cyc = body.substr(at + 1);
  body.erase(at);
  if (cyc.empty()) bad_spec(item, "empty cycle after '@'");
  for (const char c : cyc) {
    if (!std::isdigit(static_cast<unsigned char>(c)))
      bad_spec(item, "cycle must be a non-negative integer");
  }
  return static_cast<Cycle>(std::stoull(cyc));
}

NodeId parse_node(const std::string& s, const std::string& item) {
  if (s.empty()) bad_spec(item, "missing node id");
  for (const char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)))
      bad_spec(item, "node id must be a non-negative integer");
  }
  const unsigned long long v = std::stoull(s);
  if (v > 0x7FFFFFFFull) bad_spec(item, "node id out of range");
  return static_cast<NodeId>(v);
}

Port parse_port(const std::string& s, const std::string& item) {
  if (s.size() != 1) bad_spec(item, "port must be one of N|S|E|W");
  switch (std::toupper(static_cast<unsigned char>(s[0]))) {
    case 'N': return Port::kNorth;
    case 'S': return Port::kSouth;
    case 'E': return Port::kEast;
    case 'W': return Port::kWest;
    default: break;
  }
  bad_spec(item, "port must be one of N|S|E|W");
}

}  // namespace

std::vector<HardFault> parse_hard_faults(const std::string& spec) {
  std::vector<HardFault> out;
  std::string item;
  const auto flush = [&out, &item]() {
    if (item.empty()) return;
    std::string body = item;
    HardFault f;
    f.at_cycle = take_cycle(body, item);
    const auto colon = body.find(':');
    if (colon == std::string::npos) bad_spec(item, "missing ':' after kind");
    const std::string kind = body.substr(0, colon);
    std::string rest = body.substr(colon + 1);
    if (kind == "link") {
      f.kind = HardFault::Kind::kLink;
      const auto colon2 = rest.find(':');
      if (colon2 == std::string::npos)
        bad_spec(item, "link needs NODE:P");
      f.node = parse_node(rest.substr(0, colon2), item);
      f.port = parse_port(rest.substr(colon2 + 1), item);
    } else if (kind == "router") {
      f.kind = HardFault::Kind::kRouter;
      if (rest.find(':') != std::string::npos)
        bad_spec(item, "router takes only NODE");
      f.node = parse_node(rest, item);
    } else {
      bad_spec(item, "kind must be 'link' or 'router'");
    }
    out.push_back(f);
    item.clear();
  };
  for (const char c : spec) {
    if (c == ',' || std::isspace(static_cast<unsigned char>(c))) {
      flush();
    } else {
      item.push_back(c);
    }
  }
  flush();
  return out;
}

std::string hard_fault_to_string(const HardFault& f) {
  std::string s = f.kind == HardFault::Kind::kLink
                      ? "link:" + std::to_string(f.node) + ":" +
                            port_name(f.port)
                      : "router:" + std::to_string(f.node);
  if (f.at_cycle != 0) s += "@" + std::to_string(f.at_cycle);
  return s;
}

}  // namespace rlftnoc
