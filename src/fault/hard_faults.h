// Hard (permanent) fault descriptions: dead links and dead routers.
//
// These are the non-transient counterpart to LinkFaultInjector's bit-flip
// wire faults: a killed link stops carrying flits, credits and ACKs forever,
// and a killed router additionally drops everything it holds and stops
// injecting/ejecting. Faults are described declaratively (config key
// `hard_faults`, CLI `--kill-link` / `--kill-router`) and applied by
// Network::schedule_hard_faults — either before traffic starts (at_cycle 0)
// or mid-run at a given cycle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace rlftnoc {

/// One permanent fault event.
struct HardFault {
  enum class Kind : std::uint8_t {
    kLink = 0,    ///< the bidirectional link `node <-> neighbor(node, port)`
    kRouter = 1,  ///< router `node`, including all four of its links
  };

  Kind kind = Kind::kLink;
  NodeId node = kInvalidNode;
  Port port = Port::kLocal;  ///< kLink only
  Cycle at_cycle = 0;        ///< 0 = before the first simulated cycle

  friend bool operator==(const HardFault&, const HardFault&) = default;
};

/// Parses a hard-fault list of the form
///
///   "link:NODE:P[@CYCLE], router:NODE[@CYCLE], ..."
///
/// where NODE is a node id, P one of N|S|E|W (case-insensitive), and CYCLE
/// the cycle the fault strikes (omitted = 0, i.e. from the start). Items
/// are separated by commas and/or whitespace; the empty string yields an
/// empty list. Throws std::invalid_argument on malformed specs.
std::vector<HardFault> parse_hard_faults(const std::string& spec);

/// Renders one fault in the parse_hard_faults format (diagnostics, tests).
std::string hard_fault_to_string(const HardFault& f);

}  // namespace rlftnoc
