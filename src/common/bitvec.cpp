#include "common/bitvec.h"

#include <bit>
#include <cstdio>

namespace rlftnoc {

int BitVec128::popcount() const noexcept {
  return std::popcount(words_[0]) + std::popcount(words_[1]);
}

int BitVec128::hamming_distance(const BitVec128& other) const noexcept {
  return std::popcount(words_[0] ^ other.words_[0]) +
         std::popcount(words_[1] ^ other.words_[1]);
}

std::string BitVec128::to_hex() const {
  char buf[2 + 32 + 1];
  std::snprintf(buf, sizeof buf, "0x%016llx%016llx",
                static_cast<unsigned long long>(words_[1]),
                static_cast<unsigned long long>(words_[0]));
  return buf;
}

}  // namespace rlftnoc
