// Fixed-capacity bit vector used as flit payload.
//
// Flits carry 128 data bits (Table II). Fault injection flips real bits in
// this container and the CRC / SECDED codecs in src/coding run over its
// words, so error detection and (mis)correction emerge from the actual codes
// rather than from protocol-level coin flips.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>

namespace rlftnoc {

/// A fixed 128-bit payload with bit-level access and word-level views.
class BitVec128 {
 public:
  static constexpr std::size_t kBits = 128;
  static constexpr std::size_t kWords = 2;

  constexpr BitVec128() = default;

  /// Constructs from two 64-bit words (word 0 holds bits [0, 64)).
  constexpr BitVec128(std::uint64_t w0, std::uint64_t w1) : words_{w0, w1} {}

  /// Reads bit `i` (0-based, i < 128).
  constexpr bool bit(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Sets bit `i` to `v`.
  constexpr void set_bit(std::size_t i, bool v) noexcept {
    const std::uint64_t mask = 1ULL << (i & 63);
    if (v) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  /// Flips bit `i` (models a transient fault on the wire).
  constexpr void flip_bit(std::size_t i) noexcept { words_[i >> 6] ^= 1ULL << (i & 63); }

  /// Word accessors (word 0 = bits [0,64), word 1 = bits [64,128)).
  constexpr std::uint64_t word(std::size_t w) const noexcept { return words_[w]; }
  constexpr void set_word(std::size_t w, std::uint64_t v) noexcept { words_[w] = v; }

  /// Number of set bits.
  int popcount() const noexcept;

  /// Hamming distance to another payload.
  int hamming_distance(const BitVec128& other) const noexcept;

  /// XORs another payload into this one.
  constexpr BitVec128& operator^=(const BitVec128& o) noexcept {
    words_[0] ^= o.words_[0];
    words_[1] ^= o.words_[1];
    return *this;
  }

  friend constexpr bool operator==(const BitVec128&, const BitVec128&) = default;

  /// Hex string "0x<w1><w0>" for logs.
  std::string to_hex() const;

 private:
  std::array<std::uint64_t, kWords> words_ = {0, 0};
};

}  // namespace rlftnoc
