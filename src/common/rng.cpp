#include "common/rng.h"

#include <cmath>
#include <limits>

namespace rlftnoc {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed, std::string_view tag) noexcept {
  reseed(seed ^ fnv1a64(tag));
}

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double rate) noexcept {
  if (rate <= 0.0) return 0.0;
  double u = next_double();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

double Rng::normal(double mean, double stddev) noexcept {
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(6.283185307179586 * u2);
}

std::uint64_t Rng::geometric(double p) noexcept {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return std::numeric_limits<std::uint64_t>::max();
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return static_cast<std::uint64_t>(std::log(u) / std::log(1.0 - p));
}

}  // namespace rlftnoc
