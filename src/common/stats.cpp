#include "common/stats.h"

#include <cmath>

namespace rlftnoc {

double StatAccumulator::stddev() const noexcept { return std::sqrt(variance()); }

void StatAccumulator::merge(const StatAccumulator& o) noexcept {
  if (o.count_ == 0) return;
  if (count_ == 0) {
    *this = o;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(o.count_);
  const double delta = o.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += o.m2_ + delta * delta * na * nb / n;
  count_ += o.count_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    // A degenerate range (hi <= lo) would make width_ zero or negative and
    // send every in-range sample to a garbage bucket index; widen it to a
    // unit span instead so the histogram stays well-formed.
    : lo_(lo),
      width_(((hi > lo ? hi : lo + 1.0) - lo) /
             static_cast<double>(buckets ? buckets : 1)),
      counts_(buckets ? buckets : 1, 0) {}

void Histogram::add(double x) noexcept {
  ++total_;
  max_seen_ = std::max(max_seen_, x);
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  // Only report lo_ when underflow mass actually covers the target;
  // otherwise q = 0 must fall through to the first non-empty bucket's edge
  // rather than claiming the histogram floor.
  if (underflow_ > 0 && cum >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      // Interpolation can overshoot the data (q = 1 of a one-sample bucket
      // would land on the bucket's upper edge); never report a value above
      // the largest sample actually observed.
      return std::min(bucket_lo(i) + frac * width_, max_seen_);
    }
    cum = next;
  }
  return std::min(lo_ + width_ * static_cast<double>(counts_.size()), max_seen_);
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

std::uint64_t CounterSet::get(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

}  // namespace rlftnoc
