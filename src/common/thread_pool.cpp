#include "common/thread_pool.h"

#include <stdexcept>
#include <utility>

namespace rlftnoc {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  // std::jthread joins on destruction; workers exit once the queue drains.
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_all() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lk.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

// --------------------------------------------------------------------------
// PhasePool
// --------------------------------------------------------------------------

namespace {
// Spinning only ever helps when another core can make progress meanwhile.
bool spin_waits_useful() { return std::thread::hardware_concurrency() > 1; }
constexpr int kSpinIterations = 2048;
}  // namespace

PhasePool::PhasePool(unsigned helpers) {
  workers_.reserve(helpers);
  for (unsigned i = 0; i < helpers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

PhasePool::~PhasePool() {
  stop_.store(true, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  // std::jthread joins on destruction.
}

void PhasePool::run_impl(std::size_t tasks, TaskFn fn, void* ctx) {
  if (tasks == 0) return;
  if (workers_.empty() || tasks == 1) {
    for (std::size_t i = 0; i < tasks; ++i) fn(ctx, i);
    rethrow_any_error();
    return;
  }

  // Publish the phase: descriptor first, then the dispenser (release), then
  // the epoch (release + wake). A straggler that claims a task through the
  // dispenser alone still acquires the descriptor through next_.
  fn_.store(fn, std::memory_order_relaxed);
  ctx_.store(ctx, std::memory_order_relaxed);
  tasks_.store(tasks, std::memory_order_relaxed);
  done_.store(0, std::memory_order_relaxed);
  next_.store(0, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();

  drain_tasks();  // the caller is an executor too

  const auto want = static_cast<std::uint32_t>(tasks);
  const bool spin = spin_waits_useful();
  for (;;) {
    std::uint32_t d = done_.load(std::memory_order_acquire);
    if (d == want) break;
    if (spin) {
      for (int s = 0; s < kSpinIterations; ++s) {
        d = done_.load(std::memory_order_acquire);
        if (d == want) break;
      }
      if (d == want) break;
    }
    done_.wait(d, std::memory_order_acquire);
  }

  rethrow_any_error();
}

void PhasePool::rethrow_any_error() {
  if (!has_error_.load(std::memory_order_acquire)) return;
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lk(error_mu_);
    err = std::exchange(first_error_, nullptr);
    has_error_.store(false, std::memory_order_release);
  }
  if (err) std::rethrow_exception(err);
}

void PhasePool::drain_tasks() {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_acq_rel);
    const std::size_t n = tasks_.load(std::memory_order_acquire);
    if (i >= n) return;
    TaskFn fn = fn_.load(std::memory_order_acquire);
    void* ctx = ctx_.load(std::memory_order_acquire);
    try {
      fn(ctx, i);
    } catch (...) {
      std::lock_guard<std::mutex> lk(error_mu_);
      if (!first_error_) first_error_ = std::current_exception();
      has_error_.store(true, std::memory_order_release);
    }
    // The finishing increment wakes the caller; intermediate ones stay
    // syscall-free.
    if (done_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        static_cast<std::uint32_t>(n))
      done_.notify_all();
  }
}

void PhasePool::worker_loop() {
  std::uint32_t seen = epoch_.load(std::memory_order_acquire);
  for (;;) {
    // The stop check must sit between loading `seen` and waiting on it. A
    // worker that loads the destructor's final epoch bump — possible even on
    // its very first load, when the thread is scheduled late — would
    // otherwise park on an epoch nobody will ever advance or notify again.
    // The acquire load that returned the final value synchronizes with the
    // destructor's release increment, so stop_ is guaranteed visible here;
    // and if the bump lands after this check instead, epoch_ no longer
    // equals `seen`, so the wait below returns immediately.
    if (stop_.load(std::memory_order_acquire)) return;
    epoch_.wait(seen, std::memory_order_acquire);
    if (stop_.load(std::memory_order_acquire)) return;
    seen = epoch_.load(std::memory_order_acquire);
    drain_tasks();
  }
}

}  // namespace rlftnoc
