#include "common/thread_pool.h"

#include <stdexcept>
#include <utility>

namespace rlftnoc {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  // std::jthread joins on destruction; workers exit once the queue drains.
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_all() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lk.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace rlftnoc
