// Fixed/growable circular buffer — the zero-allocation replacement for the
// hot-path std::deques (delay-line channels, input-VC FIFOs, ARQ resend
// queues, NI packet queues).
//
// std::deque allocates a heap node roughly every few entries, which put an
// allocator round-trip on the per-cycle datapath of every router. RingBuffer
// keeps one flat power-of-two array: pushes and pops are an index mask and a
// move, and the only allocation ever performed is a capacity doubling (which
// stops once the buffer has seen its high-water mark, so a warmed-up
// simulation allocates nothing per cycle).
//
// Requirements on T: default-constructible and move-assignable (the backing
// store is value-initialized up front and entries are moved in and out).
// Move-only types work. Popped slots are not destroyed until overwritten or
// the buffer dies; callers that care about eager resource release should
// std::move() out of front() before pop_front() — every hot-path user here
// does.
// rlftnoc-lint: hot-path (per-cycle step path: R4 bans node-allocating containers and .at())
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.h"

namespace rlftnoc {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;
  /// Preallocates room for at least `min_capacity` entries.
  explicit RingBuffer(std::size_t min_capacity) { reserve(min_capacity); }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return buf_.size(); }

  /// Grows the backing store (never shrinks); rounds up to a power of two.
  void reserve(std::size_t min_capacity) {
    if (min_capacity > buf_.size()) grow_to(round_up_pow2(min_capacity));
  }

  void push_back(T value) {
    if (size_ == buf_.size()) grow_to(next_capacity());
    buf_[wrap(head_ + size_)] = std::move(value);
    ++size_;
  }

  /// O(1) prepend (the NI re-queues the packet it just dequeued when every
  /// local VC is credit-starved).
  void push_front(T value) {
    if (size_ == buf_.size()) grow_to(next_capacity());
    head_ = wrap(head_ + buf_.size() - 1);
    buf_[head_] = std::move(value);
    ++size_;
  }

  T& front() noexcept {
    RLFTNOC_CHECK(size_ > 0, "RingBuffer: front() on empty buffer");
    return buf_[head_];
  }
  const T& front() const noexcept {
    RLFTNOC_CHECK(size_ > 0, "RingBuffer: front() on empty buffer");
    return buf_[head_];
  }
  T& back() noexcept {
    RLFTNOC_CHECK(size_ > 0, "RingBuffer: back() on empty buffer");
    return buf_[wrap(head_ + size_ - 1)];
  }
  const T& back() const noexcept {
    RLFTNOC_CHECK(size_ > 0, "RingBuffer: back() on empty buffer");
    return buf_[wrap(head_ + size_ - 1)];
  }

  /// i-th entry counted from the front (0 = oldest).
  T& operator[](std::size_t i) noexcept {
    RLFTNOC_CHECK(i < size_, "RingBuffer: index %zu past size %zu", i, size_);
    return buf_[wrap(head_ + i)];
  }
  const T& operator[](std::size_t i) const noexcept {
    RLFTNOC_CHECK(i < size_, "RingBuffer: index %zu past size %zu", i, size_);
    return buf_[wrap(head_ + i)];
  }

  void pop_front() noexcept {
    RLFTNOC_CHECK(size_ > 0, "RingBuffer: pop_front() on empty buffer");
    head_ = wrap(head_ + 1);
    --size_;
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

  /// Visits every entry oldest-first.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) fn(buf_[wrap(head_ + i)]);
  }

  /// True if any entry satisfies `pred`.
  template <typename Pred>
  bool any_of(Pred&& pred) const {
    for (std::size_t i = 0; i < size_; ++i) {
      if (pred(buf_[wrap(head_ + i)])) return true;
    }
    return false;
  }

  /// Removes every entry satisfying `pred`, keeping the relative order of
  /// survivors (stable, like std::erase_if on a deque). Returns the count.
  template <typename Pred>
  std::size_t remove_if(Pred&& pred) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      T& v = buf_[wrap(head_ + i)];
      if (pred(std::as_const(v))) continue;
      if (kept != i) buf_[wrap(head_ + kept)] = std::move(v);
      ++kept;
    }
    const std::size_t removed = size_ - kept;
    size_ = kept;
    return removed;
  }

 private:
  static constexpr std::size_t kInitialCapacity = 8;

  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t cap = kInitialCapacity;
    while (cap < n) cap <<= 1;
    return cap;
  }

  std::size_t next_capacity() const noexcept {
    return buf_.empty() ? kInitialCapacity : buf_.size() * 2;
  }

  // Valid only while buf_ is non-empty (capacity is a power of two); every
  // caller either checked size_ > 0 or grew the buffer first.
  std::size_t wrap(std::size_t i) const noexcept { return i & (buf_.size() - 1); }

  void grow_to(std::size_t cap) {
    std::vector<T> grown(cap);
    for (std::size_t i = 0; i < size_; ++i)
      grown[i] = std::move(buf_[wrap(head_ + i)]);
    buf_ = std::move(grown);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace rlftnoc
