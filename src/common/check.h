// Always-on invariant checks for the NoC hot path.
//
// `assert` vanishes under NDEBUG — which is exactly the configuration
// (RelWithDebInfo / Release) that long fault campaigns run in, so the credit
// and ARQ invariants it guarded were unchecked precisely when they mattered.
// RLFTNOC_CHECK keeps the condition:
//
//   * Debug / sanitizer builds (RLFTNOC_CHECK_ENABLED=1, set by CMake):
//     the condition is evaluated every time; on failure a printf-formatted
//     diagnostic with file:line and the failed expression goes to stderr and
//     the process aborts (so ASan/TSan/UBSan report before anything is torn
//     down, and death tests can match the message).
//   * Release builds: the condition compiles down to an optimizer hint
//     (`__builtin_unreachable` on the false branch), costing nothing while
//     still documenting — and exploiting — the invariant.
//
// Conditions must therefore be side-effect free.
//
// Usage:
//   RLFTNOC_CHECK(vc.credits >= 0);
//   RLFTNOC_CHECK(size < depth, "router %d port %s: VC overflow (%d slots)",
//                 id, port_name(p), depth);
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#ifndef RLFTNOC_CHECK_ENABLED
#define RLFTNOC_CHECK_ENABLED 0
#endif

namespace rlftnoc::detail {

[[noreturn]] inline void check_failed_v(const char* file, int line,
                                        const char* expr, const char* fmt,
                                        std::va_list args) {
  std::fprintf(stderr, "RLFTNOC_CHECK failed at %s:%d: %s", file, line, expr);
  if (fmt != nullptr) {
    std::fprintf(stderr, " — ");
    std::vfprintf(stderr, fmt, args);
  }
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr) {
  std::va_list dummy{};
  check_failed_v(file, line, expr, nullptr, dummy);
}

[[noreturn]] __attribute__((format(printf, 4, 5))) inline void check_failed(
    const char* file, int line, const char* expr, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  check_failed_v(file, line, expr, fmt, args);
  // va_end unreachable: check_failed_v aborts.
}

}  // namespace rlftnoc::detail

#if RLFTNOC_CHECK_ENABLED
#define RLFTNOC_CHECK(cond, ...)                                    \
  (static_cast<bool>(cond)                                          \
       ? static_cast<void>(0)                                       \
       : ::rlftnoc::detail::check_failed(__FILE__, __LINE__,        \
                                         #cond __VA_OPT__(, ) __VA_ARGS__))
#else
#define RLFTNOC_CHECK(cond, ...)              \
  do {                                        \
    if (!static_cast<bool>(cond)) __builtin_unreachable(); \
  } while (0)
#endif
