// Deterministic random number generation.
//
// Every stochastic component of the simulator (traffic injection, fault
// injection, RL exploration) owns its own `Rng` stream derived from the
// experiment seed plus a component tag, so results are bit-reproducible and
// adding a consumer never perturbs the draws seen by another.
#pragma once

#include <cstdint>
#include <string_view>

namespace rlftnoc {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
///
/// Small, fast, and statistically strong enough for simulation workloads;
/// std::mt19937_64 would also do but is 20x the state for no benefit here.
class Rng {
 public:
  /// Seeds the stream from a 64-bit seed (expanded with splitmix64).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  /// Derives an independent stream from `seed` and a component `tag`.
  Rng(std::uint64_t seed, std::string_view tag) noexcept;

  /// Re-seeds in place.
  void reseed(std::uint64_t seed) noexcept;

  /// Next raw 64-bit draw.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// True with probability `p` (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Exponentially distributed value with the given rate (mean = 1/rate).
  double exponential(double rate) noexcept;

  /// Standard normal via Box-Muller (no cached spare; simplicity wins here).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Geometric number of failures before first success, success prob `p`.
  std::uint64_t geometric(double p) noexcept;

 private:
  std::uint64_t s_[4] = {};
};

/// FNV-1a 64-bit hash of a string, used to derive per-component RNG streams.
std::uint64_t fnv1a64(std::string_view s) noexcept;

}  // namespace rlftnoc
