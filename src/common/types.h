// Fundamental vocabulary types shared by every rlftnoc module.
//
// The simulator is cycle driven; `Cycle` counts router clock ticks at the
// nominal 2.0 GHz operating point from Table II of the paper. Identifiers are
// strong-ish typedefs (distinct names, common underlying integer types) so
// call sites document what they pass around.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <limits>
#include <string>

namespace rlftnoc {

/// Simulation time in router clock cycles.
using Cycle = std::uint64_t;

/// Sentinel for "no cycle recorded yet".
inline constexpr Cycle kInvalidCycle = std::numeric_limits<Cycle>::max();

/// Linear index of a network node (router / network interface pair).
using NodeId = std::int32_t;

/// Sentinel node id.
inline constexpr NodeId kInvalidNode = -1;

/// Monotonically increasing packet identifier, unique per simulation.
using PacketId = std::uint64_t;

/// Virtual-channel index within one input port.
using VcId = std::int32_t;

inline constexpr VcId kInvalidVc = -1;

/// The five router ports of a 2D-mesh router (Fig. 1 of the paper).
enum class Port : std::uint8_t {
  kNorth = 0,
  kSouth = 1,
  kEast = 2,
  kWest = 3,
  kLocal = 4,
};

/// Number of ports on a mesh router.
inline constexpr std::size_t kNumPorts = 5;

/// All ports, for range-for iteration.
inline constexpr std::array<Port, kNumPorts> kAllPorts = {
    Port::kNorth, Port::kSouth, Port::kEast, Port::kWest, Port::kLocal};

/// Index of a port for array subscripting.
constexpr std::size_t port_index(Port p) noexcept {
  return static_cast<std::size_t>(p);
}

/// The port a flit leaving through `p` arrives on at the neighbour router.
constexpr Port opposite(Port p) noexcept {
  switch (p) {
    case Port::kNorth: return Port::kSouth;
    case Port::kSouth: return Port::kNorth;
    case Port::kEast: return Port::kWest;
    case Port::kWest: return Port::kEast;
    case Port::kLocal: return Port::kLocal;
  }
  return Port::kLocal;
}

/// Human-readable port name (for logs and stats).
inline const char* port_name(Port p) noexcept {
  switch (p) {
    case Port::kNorth: return "N";
    case Port::kSouth: return "S";
    case Port::kEast: return "E";
    case Port::kWest: return "W";
    case Port::kLocal: return "L";
  }
  return "?";
}

/// Integer coordinates of a node in the 2D mesh.
struct Coord {
  std::int32_t x = 0;
  std::int32_t y = 0;

  friend constexpr bool operator==(const Coord&, const Coord&) = default;
};

/// The four fault-tolerant operation modes of Section III.
///
/// Mode 0: ECC links disabled (minimum error level).
/// Mode 1: downstream ECC link enabled (low error level).
/// Mode 2: ECC links enabled + flit pre-retransmission (medium error level).
/// Mode 3: ECC links enabled + 2-cycle relaxed-timing stall (high error level).
enum class OpMode : std::uint8_t {
  kMode0 = 0,
  kMode1 = 1,
  kMode2 = 2,
  kMode3 = 3,
};

/// Number of fault-tolerant operation modes (the RL action-space size).
inline constexpr std::size_t kNumOpModes = 4;

inline const char* op_mode_name(OpMode m) noexcept {
  switch (m) {
    case OpMode::kMode0: return "mode0-ecc-off";
    case OpMode::kMode1: return "mode1-ecc-on";
    case OpMode::kMode2: return "mode2-preretx";
    case OpMode::kMode3: return "mode3-relaxed";
  }
  return "?";
}

/// Routing algorithm (see noc/routing.h for the implementations).
enum class RoutingAlgorithm : std::uint8_t {
  kXY = 0,        ///< dimension-ordered, X first (Table II default)
  kYX = 1,        ///< dimension-ordered, Y first
  kWestFirst = 2, ///< turn model: westward hops first, then adaptive E/N/S
  kAdaptive = 3,  ///< fault-adaptive up*/down* (deadlock-free on any
                  ///< connected alive subgraph; see noc/routing.h)
};

inline const char* routing_name(RoutingAlgorithm a) noexcept {
  switch (a) {
    case RoutingAlgorithm::kXY: return "xy";
    case RoutingAlgorithm::kYX: return "yx";
    case RoutingAlgorithm::kWestFirst: return "westfirst";
    case RoutingAlgorithm::kAdaptive: return "adaptive";
  }
  return "?";
}

/// Network topology shape (see noc/topology.h).
enum class TopologyKind : std::uint8_t {
  kMesh = 0,   ///< 2D mesh, open edges (the paper's Table II substrate)
  kTorus = 1,  ///< 2D torus: mesh plus wrap-around links in both dimensions
};

inline const char* topology_kind_name(TopologyKind k) noexcept {
  switch (k) {
    case TopologyKind::kMesh: return "mesh";
    case TopologyKind::kTorus: return "torus";
  }
  return "?";
}

/// Which fault-tolerance policy governs the network.
enum class PolicyKind : std::uint8_t {
  kStaticCrc = 0,   ///< end-to-end CRC only, source retransmission (baseline)
  kStaticArqEcc = 1,///< per-hop ARQ+ECC always on
  kDecisionTree = 2,///< DT-predicted error level selects the mode (MICRO-16)
  kRl = 3,          ///< per-router tabular Q-learning (this paper)
  kOracle = 4,      ///< reference: classify the true error probability
};

inline const char* policy_name(PolicyKind k) noexcept {
  switch (k) {
    case PolicyKind::kStaticCrc: return "CRC";
    case PolicyKind::kStaticArqEcc: return "ARQ+ECC";
    case PolicyKind::kDecisionTree: return "DT";
    case PolicyKind::kRl: return "RL";
    case PolicyKind::kOracle: return "Oracle";
  }
  return "?";
}

}  // namespace rlftnoc
