#include "common/log.h"

#include <cstdio>

namespace rlftnoc {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
  }
  return "?????";
}

}  // namespace

LogLevel log_level() noexcept { return g_level; }
void set_log_level(LogLevel level) noexcept { g_level = level; }

void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace rlftnoc
