// Statistics primitives used by the metric-collection layer.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstddef>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace rlftnoc {

/// Streaming accumulator: count / sum / mean / variance / min / max in O(1)
/// memory using Welford's algorithm.
class StatAccumulator {
 public:
  void add(double x) noexcept {
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void reset() noexcept { *this = StatAccumulator{}; }

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two samples.
  double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
  }
  double stddev() const noexcept;
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const StatAccumulator& o) noexcept;

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exponential moving average with configurable smoothing factor.
///
/// Used for the runtime NoC attributes (link utilization, NACK rate) that
/// feed the RL state: the paper samples them per time-step window, and an
/// EMA keeps them smooth without storing history.
class Ema {
 public:
  explicit Ema(double alpha = 0.25) noexcept : alpha_(alpha) {}

  void add(double x) noexcept {
    value_ = primed_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    primed_ = true;
  }

  double value() const noexcept { return primed_ ? value_ : 0.0; }
  bool primed() const noexcept { return primed_; }
  void reset() noexcept { primed_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

/// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  /// A degenerate range (hi <= lo) is widened to [lo, lo + 1).
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;

  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const noexcept { return counts_[i]; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t total() const noexcept { return total_; }

  /// Value below which `q` (in [0,1]) of the mass lies, linear within
  /// bucket. q = 0 is the lower edge of the first non-empty bucket (lo_
  /// only when underflow samples exist). Results never exceed the largest
  /// sample seen, so q = 1 of a single-sample distribution is that sample
  /// rather than its bucket's upper edge.
  double quantile(double q) const noexcept;

  /// Lower edge of bucket `i`.
  double bucket_lo(std::size_t i) const noexcept;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
  /// Largest sample observed; caps quantile results from above.
  double max_seen_ = -std::numeric_limits<double>::infinity();
};

/// Named counters, cheap to bump and easy to dump in one table.
class CounterSet {
 public:
  void bump(const std::string& name, std::uint64_t by = 1) { counters_[name] += by; }
  std::uint64_t get(const std::string& name) const;
  const std::map<std::string, std::uint64_t>& all() const noexcept { return counters_; }
  void reset() { counters_.clear(); }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace rlftnoc
