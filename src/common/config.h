// Minimal typed key=value configuration store.
//
// Experiments are described as flat `key = value` text (BookSim style):
// comments start with '#' or '//', values are bool / int / double / string.
// Typed getters throw ConfigError on missing keys or unparsable values so a
// typo in an experiment file fails loudly instead of silently defaulting.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace rlftnoc {

/// Thrown on missing keys or malformed values.
class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Flat string->string map with typed accessors and defaults.
class Config {
 public:
  Config() = default;

  /// Parses `key = value` lines from text. Later keys override earlier ones.
  static Config from_string(std::string_view text);

  /// Parses a file; throws ConfigError when the file cannot be read.
  static Config from_file(const std::string& path);

  /// Sets / overrides one entry.
  void set(std::string key, std::string value);

  bool contains(const std::string& key) const noexcept;

  /// Typed getters that throw when the key is absent.
  std::string get_string(const std::string& key) const;
  std::int64_t get_int(const std::string& key) const;
  double get_double(const std::string& key) const;
  bool get_bool(const std::string& key) const;

  /// Typed getters with a default for absent keys (malformed still throws).
  std::string get_string(const std::string& key, std::string def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// All keys in sorted order (for dumping the effective config).
  std::vector<std::string> keys() const;

  /// Renders the whole config back to `key = value` lines.
  std::string to_string() const;

  /// Merges `other` into this config; other's entries win.
  void merge(const Config& other);

 private:
  const std::string& raw(const std::string& key) const;

  std::map<std::string, std::string> entries_;
};

}  // namespace rlftnoc
