// Fixed-size thread pool for embarrassingly parallel simulation jobs.
//
// Design goals, in order:
//   1. determinism support — the pool itself never reorders results; callers
//      give each job its own output slot, so completion order is irrelevant,
//   2. simplicity — one shared FIFO queue, no work stealing, no futures;
//      `submit` + `wait_all` is the whole surface,
//   3. failure visibility — the first exception thrown by any job is
//      captured and rethrown from `wait_all` on the submitting thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rlftnoc {

/// Pool of `std::jthread` workers draining one shared FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means one per hardware thread (at least 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains the queue (discarding tasks not yet started is NOT done — all
  /// submitted tasks run), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. Safe to call from any thread, including from inside a
  /// running job. Throws std::runtime_error after the pool started shutdown.
  void submit(std::function<void()> task);

  /// Blocks until every submitted job has finished. If any job threw, the
  /// first captured exception is rethrown here (subsequent jobs still ran
  /// to completion; their exceptions beyond the first are dropped).
  void wait_all();

  /// Number of worker threads.
  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_work_;  ///< workers sleep here
  std::condition_variable cv_idle_;  ///< wait_all sleeps here
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< tasks popped but not yet finished
  std::exception_ptr first_error_;
  bool stopping_ = false;
  std::vector<std::jthread> workers_;  ///< last member: joins before the rest die
};

}  // namespace rlftnoc
