// Fixed-size thread pool for embarrassingly parallel simulation jobs.
//
// Design goals, in order:
//   1. determinism support — the pool itself never reorders results; callers
//      give each job its own output slot, so completion order is irrelevant,
//   2. simplicity — one shared FIFO queue, no work stealing, no futures;
//      `submit` + `wait_all` is the whole surface,
//   3. failure visibility — the first exception thrown by any job is
//      captured and rethrown from `wait_all` on the submitting thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace rlftnoc {

/// Pool of `std::jthread` workers draining one shared FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means one per hardware thread (at least 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains the queue (discarding tasks not yet started is NOT done — all
  /// submitted tasks run), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. Safe to call from any thread, including from inside a
  /// running job. Throws std::runtime_error after the pool started shutdown.
  void submit(std::function<void()> task);

  /// Blocks until every submitted job has finished. If any job threw, the
  /// first captured exception is rethrown here (subsequent jobs still ran
  /// to completion; their exceptions beyond the first are dropped).
  void wait_all();

  /// Number of worker threads.
  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_work_;  ///< workers sleep here
  std::condition_variable cv_idle_;  ///< wait_all sleeps here
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< tasks popped but not yet finished
  std::exception_ptr first_error_;
  bool stopping_ = false;
  std::vector<std::jthread> workers_;  ///< last member: joins before the rest die
};

/// Low-latency fork/join executor for the phase-parallel network stepper.
///
/// ThreadPool's mutex/condvar FIFO costs a few microseconds per dispatch —
/// fine for multi-second campaign jobs, far too slow for three phase barriers
/// every simulated cycle. PhasePool instead keeps persistent workers parked
/// on a C++20 atomic wait and publishes each phase by bumping an epoch
/// counter; tasks are claimed with a fetch_add dispenser and the caller
/// participates, so a phase with T tasks over W+1 threads costs one
/// release-store plus W futex wakes (none when a worker is still spinning).
///
/// Contract: run() may only be called from one thread at a time (the
/// simulation loop); the callable must tolerate concurrent invocations for
/// distinct indices. run() returns after every index in [0, tasks) has
/// completed; the first exception thrown by any task is rethrown.
class PhasePool {
 public:
  /// Spawns `helpers` worker threads (the caller is the +1th executor).
  /// 0 helpers is valid: run() then executes everything inline.
  explicit PhasePool(unsigned helpers);
  ~PhasePool();

  PhasePool(const PhasePool&) = delete;
  PhasePool& operator=(const PhasePool&) = delete;

  /// Runs f(i) for every i in [0, tasks); blocks until all complete.
  template <typename F>
  void run(std::size_t tasks, F&& f) {
    using Fn = std::remove_reference_t<F>;
    run_impl(
        tasks,
        [](void* ctx, std::size_t i) { (*static_cast<Fn*>(ctx))(i); },
        const_cast<std::remove_const_t<Fn>*>(std::addressof(f)));
  }

  /// Worker threads (not counting the caller).
  unsigned helpers() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  using TaskFn = void (*)(void* ctx, std::size_t index);

  void run_impl(std::size_t tasks, TaskFn fn, void* ctx);
  /// Claims and runs tasks until the dispenser is exhausted.
  void drain_tasks();
  void worker_loop();
  /// Rethrows (and clears) the first captured task exception, if any.
  void rethrow_any_error();

  // Phase descriptor: written by run_impl before the epoch is published;
  // workers read it only after observing the new epoch (or after an
  // acquire-load of next_, for stragglers conscripted mid-phase). Atomics
  // because a straggler from phase N may legally claim a task of phase N+1.
  std::atomic<TaskFn> fn_{nullptr};
  std::atomic<void*> ctx_{nullptr};
  std::atomic<std::size_t> tasks_{0};
  std::atomic<std::size_t> next_{0};  ///< task dispenser
  // The two atomics threads block on are 32-bit so std::atomic::wait takes
  // libstdc++'s direct-futex path: the futex syscall operates on the atomic
  // itself, with the kernel's atomic value-recheck closing the wait/notify
  // race. 64-bit atomics would go through the proxied waiter pool (a hashed
  // shared version counter), adding an indirection we don't need. done_ is
  // bounded by tasks-per-phase; epoch_ wraps harmlessly because a parked
  // worker re-reads it fresh after every wake.
  std::atomic<std::uint32_t> done_{0};   ///< tasks completed this phase
  std::atomic<std::uint32_t> epoch_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> has_error_{false};  ///< lock-free "is first_error_ set"
  std::mutex error_mu_;
  std::exception_ptr first_error_;
  std::vector<std::jthread> workers_;  ///< last member: joins first
};

}  // namespace rlftnoc
