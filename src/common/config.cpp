#include "common/config.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

namespace rlftnoc {
namespace {

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace

Config Config::from_string(std::string_view text) {
  Config cfg;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;

    // Strip comments.
    if (const auto hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    if (const auto slashes = line.find("//"); slashes != std::string_view::npos)
      line = line.substr(0, slashes);
    line = trim(line);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string_view::npos)
      throw ConfigError("config line missing '=': '" + std::string(line) + "'");
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) throw ConfigError("config line has empty key");
    cfg.set(std::string(key), std::string(value));
  }
  return cfg;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open config file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_string(buf.str());
}

void Config::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool Config::contains(const std::string& key) const noexcept {
  return entries_.count(key) != 0;
}

const std::string& Config::raw(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) throw ConfigError("missing config key: " + key);
  return it->second;
}

std::string Config::get_string(const std::string& key) const { return raw(key); }

std::int64_t Config::get_int(const std::string& key) const {
  const std::string& v = raw(key);
  std::int64_t out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size())
    throw ConfigError("config key '" + key + "' is not an integer: '" + v + "'");
  return out;
}

double Config::get_double(const std::string& key) const {
  const std::string& v = raw(key);
  try {
    std::size_t consumed = 0;
    const double out = std::stod(v, &consumed);
    if (consumed != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw ConfigError("config key '" + key + "' is not a number: '" + v + "'");
  }
}

bool Config::get_bool(const std::string& key) const {
  const std::string v = lower(raw(key));
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw ConfigError("config key '" + key + "' is not a bool: '" + v + "'");
}

std::string Config::get_string(const std::string& key, std::string def) const {
  return contains(key) ? get_string(key) : std::move(def);
}
std::int64_t Config::get_int(const std::string& key, std::int64_t def) const {
  return contains(key) ? get_int(key) : def;
}
double Config::get_double(const std::string& key, double def) const {
  return contains(key) ? get_double(key) : def;
}
bool Config::get_bool(const std::string& key, bool def) const {
  return contains(key) ? get_bool(key) : def;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [k, v] : entries_) out.push_back(k);
  return out;
}

std::string Config::to_string() const {
  std::ostringstream out;
  for (const auto& [k, v] : entries_) out << k << " = " << v << '\n';
  return out.str();
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.entries_) entries_[k] = v;
}

}  // namespace rlftnoc
