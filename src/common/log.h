// Tiny leveled logger.
//
// The simulator is quiet by default; tests and debugging sessions raise the
// level. Logging goes through a single global sink so output interleaves
// sanely, and the macros avoid formatting cost when the level is filtered.
#pragma once

#include <sstream>
#include <string>

namespace rlftnoc {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

/// Global log threshold; messages above it are dropped.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Emits one line to stderr with a level prefix. Thread-safe: the line is
/// formatted first and written with a single fprintf, so concurrent
/// campaign jobs (SimOptions::jobs > 1) never interleave mid-line.
void log_line(LogLevel level, const std::string& msg);

}  // namespace rlftnoc

#define RLFTNOC_LOG(level, expr)                                  \
  do {                                                            \
    if (static_cast<int>(level) <=                                \
        static_cast<int>(::rlftnoc::log_level())) {               \
      std::ostringstream rlftnoc_log_os;                          \
      rlftnoc_log_os << expr;                                     \
      ::rlftnoc::log_line(level, rlftnoc_log_os.str());           \
    }                                                             \
  } while (0)

#define LOG_ERROR(expr) RLFTNOC_LOG(::rlftnoc::LogLevel::kError, expr)
#define LOG_WARN(expr) RLFTNOC_LOG(::rlftnoc::LogLevel::kWarn, expr)
#define LOG_INFO(expr) RLFTNOC_LOG(::rlftnoc::LogLevel::kInfo, expr)
#define LOG_DEBUG(expr) RLFTNOC_LOG(::rlftnoc::LogLevel::kDebug, expr)
#define LOG_TRACE(expr) RLFTNOC_LOG(::rlftnoc::LogLevel::kTrace, expr)
