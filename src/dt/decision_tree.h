// CART decision-tree classifier.
//
// This is the supervised baseline of DiTomaso et al. (MICRO-16) that the
// paper compares against: a tree trained offline on labeled examples
// (router features -> observed error level) and frozen during the testing
// phase. We implement standard CART with Gini-impurity splits on axis-
// aligned thresholds, depth and leaf-size regularization, and majority-vote
// leaves.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

namespace rlftnoc {

/// One labeled training example.
struct DtSample {
  std::vector<double> features;
  int label = 0;
};

/// Training hyper-parameters.
struct DtParams {
  int max_depth = 8;
  int min_samples_leaf = 8;
  double min_impurity_decrease = 1e-4;
};

/// Axis-aligned binary decision tree for small integer labels.
class DecisionTree {
 public:
  /// Fits the tree to `samples`. `num_classes` bounds the label range
  /// [0, num_classes). Throws std::invalid_argument on empty / ragged input.
  void train(const std::vector<DtSample>& samples, int num_classes,
             DtParams params = {});

  /// Predicted class for a feature vector (majority class of the leaf).
  /// An untrained tree predicts 0.
  int predict(std::span<const double> features) const;

  /// Per-class leaf distribution for a feature vector (empty if untrained).
  std::vector<double> predict_proba(std::span<const double> features) const;

  bool trained() const noexcept { return !nodes_.empty(); }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  int depth() const noexcept;

  /// Fraction of `samples` classified correctly.
  double accuracy(const std::vector<DtSample>& samples) const;

 private:
  struct Node {
    int feature = -1;        ///< split feature; -1 for leaves
    double threshold = 0.0;  ///< go left when x[feature] <= threshold
    int left = -1;
    int right = -1;
    int majority = 0;
    std::vector<double> class_frac;  ///< normalized class histogram
  };

  int build(std::vector<int>& indices, int begin, int end,
            const std::vector<DtSample>& samples, int depth, const DtParams& params);
  int leaf_for(std::span<const double> features) const;

  std::vector<Node> nodes_;
  int num_classes_ = 0;
  int num_features_ = 0;
};

}  // namespace rlftnoc
