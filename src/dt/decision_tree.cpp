#include "dt/decision_tree.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace rlftnoc {
namespace {

/// Gini impurity of a class histogram with `total` samples.
double gini(const std::vector<int>& hist, int total) noexcept {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  // rlftnoc-lint: ordered (hist is a vector; index order is fixed)
  for (const int c : hist) {
    const double p = static_cast<double>(c) / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

void DecisionTree::train(const std::vector<DtSample>& samples, int num_classes,
                         DtParams params) {
  if (samples.empty()) throw std::invalid_argument("DecisionTree: no samples");
  if (num_classes < 2) throw std::invalid_argument("DecisionTree: need >= 2 classes");
  num_classes_ = num_classes;
  num_features_ = static_cast<int>(samples.front().features.size());
  for (const DtSample& s : samples) {
    if (static_cast<int>(s.features.size()) != num_features_)
      throw std::invalid_argument("DecisionTree: ragged feature vectors");
    if (s.label < 0 || s.label >= num_classes)
      throw std::invalid_argument("DecisionTree: label out of range");
  }

  nodes_.clear();
  std::vector<int> indices(samples.size());
  std::iota(indices.begin(), indices.end(), 0);
  build(indices, 0, static_cast<int>(indices.size()), samples, 0, params);
}

int DecisionTree::build(std::vector<int>& indices, int begin, int end,
                        const std::vector<DtSample>& samples, int depth,
                        const DtParams& params) {
  const int n = end - begin;
  std::vector<int> hist(static_cast<std::size_t>(num_classes_), 0);
  for (int i = begin; i < end; ++i)
    ++hist[static_cast<std::size_t>(samples[static_cast<std::size_t>(indices[static_cast<std::size_t>(i)])].label)];

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_.back();
    const auto it = std::max_element(hist.begin(), hist.end());
    node.majority = static_cast<int>(it - hist.begin());
    node.class_frac.resize(static_cast<std::size_t>(num_classes_));
    for (int c = 0; c < num_classes_; ++c)
      node.class_frac[static_cast<std::size_t>(c)] =
          static_cast<double>(hist[static_cast<std::size_t>(c)]) / n;
  }

  const double parent_impurity = gini(hist, n);
  const bool pure = parent_impurity <= 0.0;
  if (pure || depth >= params.max_depth || n < 2 * params.min_samples_leaf)
    return node_id;

  // Exhaustive best-split search: for each feature, sort the slice by that
  // feature and sweep candidate thresholds between distinct values.
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_score = parent_impurity - params.min_impurity_decrease;

  std::vector<int> slice(indices.begin() + begin, indices.begin() + end);
  for (int f = 0; f < num_features_; ++f) {
    std::sort(slice.begin(), slice.end(), [&](int a, int b) {
      return samples[static_cast<std::size_t>(a)].features[static_cast<std::size_t>(f)] <
             samples[static_cast<std::size_t>(b)].features[static_cast<std::size_t>(f)];
    });
    std::vector<int> left_hist(static_cast<std::size_t>(num_classes_), 0);
    std::vector<int> right_hist = hist;
    for (int i = 0; i + 1 < n; ++i) {
      const DtSample& cur = samples[static_cast<std::size_t>(slice[static_cast<std::size_t>(i)])];
      ++left_hist[static_cast<std::size_t>(cur.label)];
      --right_hist[static_cast<std::size_t>(cur.label)];
      const double x0 = cur.features[static_cast<std::size_t>(f)];
      const double x1 =
          samples[static_cast<std::size_t>(slice[static_cast<std::size_t>(i + 1)])]
              .features[static_cast<std::size_t>(f)];
      if (x1 <= x0) continue;  // no boundary between equal values
      const int nl = i + 1;
      const int nr = n - nl;
      if (nl < params.min_samples_leaf || nr < params.min_samples_leaf) continue;
      const double weighted = (nl * gini(left_hist, nl) + nr * gini(right_hist, nr)) / n;
      if (weighted < best_score) {
        best_score = weighted;
        best_feature = f;
        best_threshold = 0.5 * (x0 + x1);
      }
    }
  }

  if (best_feature < 0) return node_id;

  // Partition the index range around the chosen threshold.
  const auto mid_it = std::partition(
      indices.begin() + begin, indices.begin() + end, [&](int idx) {
        return samples[static_cast<std::size_t>(idx)]
                   .features[static_cast<std::size_t>(best_feature)] <= best_threshold;
      });
  const int mid = static_cast<int>(mid_it - indices.begin());
  if (mid == begin || mid == end) return node_id;  // degenerate split

  const int left = build(indices, begin, mid, samples, depth + 1, params);
  const int right = build(indices, mid, end, samples, depth + 1, params);
  nodes_[static_cast<std::size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<std::size_t>(node_id)].threshold = best_threshold;
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

int DecisionTree::leaf_for(std::span<const double> features) const {
  int cur = 0;
  while (nodes_[static_cast<std::size_t>(cur)].feature >= 0) {
    const Node& node = nodes_[static_cast<std::size_t>(cur)];
    cur = features[static_cast<std::size_t>(node.feature)] <= node.threshold ? node.left
                                                                             : node.right;
  }
  return cur;
}

int DecisionTree::predict(std::span<const double> features) const {
  if (nodes_.empty()) return 0;
  return nodes_[static_cast<std::size_t>(leaf_for(features))].majority;
}

std::vector<double> DecisionTree::predict_proba(std::span<const double> features) const {
  if (nodes_.empty()) return {};
  return nodes_[static_cast<std::size_t>(leaf_for(features))].class_frac;
}

int DecisionTree::depth() const noexcept {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the explicit node array.
  std::vector<std::pair<int, int>> stack{{0, 1}};
  int max_depth = 0;
  while (!stack.empty()) {
    const auto [id, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& node = nodes_[static_cast<std::size_t>(id)];
    if (node.feature >= 0) {
      stack.push_back({node.left, d + 1});
      stack.push_back({node.right, d + 1});
    }
  }
  return max_depth;
}

double DecisionTree::accuracy(const std::vector<DtSample>& samples) const {
  if (samples.empty()) return 0.0;
  int correct = 0;
  for (const DtSample& s : samples) {
    if (predict(s.features) == s.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

}  // namespace rlftnoc
