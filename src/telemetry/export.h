// Telemetry exporters: Chrome trace-event JSON (chrome://tracing / Perfetto
// loadable), long-format time-series TSV, per-router heatmap grids, and a
// run-manifest JSON that ties options + git sha + seed to the output files.
//
// File layout for one run labelled `<label>` under `out_dir`:
//   <label>.trace.json            Chrome trace-event JSON
//   <label>.metrics.tsv           cycle \t metric \t router \t port \t value
//   <label>.hist.tsv              metric \t bucket_lo \t bucket_hi \t count
//   <label>.heatmap.<name>.tsv    H rows x W columns grid (row y=0 first)
//   <label>.manifest.json         everything needed to interpret the above
//
// All writers are deterministic: iteration order is registration/ring order
// and floating-point formatting is locale-independent, so a campaign
// produces byte-identical files regardless of `--jobs`.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/telemetry.h"

namespace rlftnoc {

/// One per-router scalar rendered as a W x H grid (row-major, y*width + x).
struct HeatmapGrid {
  std::string name;  ///< file-name fragment, e.g. "mode2_residency"
  int width = 0;
  int height = 0;
  std::vector<double> values;
};

/// Context shared by every exporter of one run.
struct TelemetryExportInfo {
  std::string out_dir;
  std::string label;  ///< sanitized "<workload>_<policy>" file prefix
  std::string workload;
  std::string policy;
  std::uint64_t seed = 0;
  int mesh_width = 0;
  int mesh_height = 0;
  Cycle measure_start = 0;
  Cycle end_cycle = 0;
  /// Flat key=value option dump recorded in the manifest.
  std::vector<std::pair<std::string, std::string>> options;
};

/// Replaces every character outside [A-Za-z0-9._-] with '_'.
std::string sanitize_run_label(const std::string& raw);

/// Build-time git revision ("unknown" outside a git checkout).
const char* telemetry_git_sha() noexcept;

// -- stream-level writers (unit-testable without touching the filesystem) --
void write_chrome_trace(std::ostream& out, const EventTracer& tracer,
                        const TelemetryExportInfo& info);
void write_metrics_tsv(std::ostream& out, const MetricsRegistry& reg);
void write_histograms_tsv(std::ostream& out, const MetricsRegistry& reg);
void write_heatmap_tsv(std::ostream& out, const HeatmapGrid& grid);
void write_manifest_json(std::ostream& out, const TelemetryExportInfo& info,
                         const Telemetry& telemetry,
                         const std::vector<std::string>& files);

/// Writes the full file set for one run into `info.out_dir` (created on
/// demand) and returns the file names written (manifest last). Throws
/// std::runtime_error when a file cannot be created.
std::vector<std::string> export_run_telemetry(
    const Telemetry& telemetry, const TelemetryExportInfo& info,
    const std::vector<HeatmapGrid>& heatmaps);

}  // namespace rlftnoc
