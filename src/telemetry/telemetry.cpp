#include "telemetry/telemetry.h"

namespace rlftnoc {

const char* trace_event_name(TraceEventKind k) noexcept {
  switch (k) {
    case TraceEventKind::kModeSwitch: return "mode_switch";
    case TraceEventKind::kHopRetx: return "hop_retx";
    case TraceEventKind::kPreRetxDup: return "preretx_dup";
    case TraceEventKind::kE2eRetx: return "e2e_retx";
    case TraceEventKind::kFaultInjected: return "fault_injected";
    case TraceEventKind::kNackSent: return "nack_sent";
    case TraceEventKind::kCrcPacketFail: return "crc_packet_fail";
    case TraceEventKind::kAuditViolation: return "audit_violation";
    case TraceEventKind::kEpochReward: return "epoch_reward";
    case TraceEventKind::kPhaseBegin: return "phase_begin";
    case TraceEventKind::kLinkKilled: return "link_killed";
    case TraceEventKind::kRouterKilled: return "router_killed";
  }
  return "?";
}

MetricId MetricsRegistry::add(MetricKind kind, MetricScope scope,
                              std::string name) {
  RLFTNOC_CHECK(!frozen_, "metric '%s' registered after freeze()", name.c_str());
  Family f;
  f.name = std::move(name);
  f.kind = kind;
  f.scope = scope;
  f.base = width_;
  f.slots = scope_slots(scope);
  width_ += f.slots;
  families_.push_back(std::move(f));
  return MetricId{static_cast<std::uint32_t>(families_.size() - 1)};
}

HistogramId MetricsRegistry::add_histogram(std::string name, double lo,
                                           double hi, std::size_t buckets) {
  RLFTNOC_CHECK(!frozen_, "histogram '%s' registered after freeze()",
                name.c_str());
  hist_names_.push_back(std::move(name));
  hists_.emplace_back(lo, hi, buckets);
  return HistogramId{static_cast<std::uint32_t>(hists_.size() - 1)};
}

void MetricsRegistry::freeze() {
  if (frozen_) return;
  frozen_ = true;
  cur_.assign(width_, 0.0);
  prev_.assign(width_, 0.0);
  row_.assign(width_, 0.0);
  ring_ = std::make_unique<TimeSeriesRing>(series_rows_, width_);
}

void MetricsRegistry::sample(Cycle now) {
  RLFTNOC_CHECK(frozen_, "metrics registry sampled before freeze()");
  for (const Family& f : families_) {
    if (f.kind == MetricKind::kCounter) {
      for (std::size_t s = f.base; s < f.base + f.slots; ++s) {
        // A cumulative value moving backwards means the source counter was
        // reset (e.g. NetworkMetrics::reset() at the measure-phase start);
        // the new cumulative value IS the delta since that reset.
        row_[s] = cur_[s] >= prev_[s] ? cur_[s] - prev_[s] : cur_[s];
        prev_[s] = cur_[s];
      }
    } else {
      for (std::size_t s = f.base; s < f.base + f.slots; ++s) row_[s] = cur_[s];
    }
  }
  ring_->push_row(now, row_.data());
}

void MetricsRegistry::slot_labels(std::size_t slot, std::size_t& family,
                                  int& router, int& port) const {
  for (std::size_t fi = 0; fi < families_.size(); ++fi) {
    const Family& f = families_[fi];
    if (slot < f.base || slot >= f.base + f.slots) continue;
    family = fi;
    const std::size_t off = slot - f.base;
    switch (f.scope) {
      case MetricScope::kGlobal:
        router = -1;
        port = -1;
        return;
      case MetricScope::kPerRouter:
        router = static_cast<int>(off);
        port = -1;
        return;
      case MetricScope::kPerRouterPort:
        router = static_cast<int>(off / kNumPorts);
        port = static_cast<int>(off % kNumPorts);
        return;
    }
  }
  RLFTNOC_CHECK(false, "slot %zu outside every metric family", slot);
  family = 0;
  router = -1;
  port = -1;
}

}  // namespace rlftnoc
