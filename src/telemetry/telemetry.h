// Telemetry subsystem: low-overhead event tracing and time-series metrics.
//
// Three pieces, all allocation-free on the hot path once configured:
//
//  * MetricsRegistry — named counter/gauge families with global, per-router
//    or per-router-per-port label scopes, plus whole-run histograms. Values
//    live in one flat slot array; a periodic `sample()` snapshots every slot
//    (counters as per-interval deltas, gauges as-is) into a preallocated
//    TimeSeriesRing. Registration happens once at setup; `freeze()` sizes
//    the buffers and further registration is rejected.
//
//  * EventTracer — a fixed-capacity ring of POD structured events (mode
//    transitions, retransmissions, fault injections, audit violations,
//    epoch rewards, phase changes). When the ring is full the oldest events
//    are overwritten and the drop is counted — never silently.
//
//  * Telemetry — the facade owning both, plus the sampling cadence.
//
// Exporters (Chrome trace-event JSON, metrics TSV, per-router heatmap
// grids, run-manifest JSON) live in telemetry/export.h.
//
// Compile-time no-op: configuring with -DRLFTNOC_TELEMETRY=OFF defines
// RLFTNOC_TELEMETRY_DISABLED, which turns the RLFTNOC_TRACE() hook macro
// into `(void)0` so instrumented hot paths carry zero code. At runtime,
// simulation objects hold a nullable EventTracer*; a null pointer makes
// every hook a single predictable branch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/stats.h"
#include "common/types.h"

namespace rlftnoc {

/// Knobs for one run's telemetry (all sizes fixed up front — no growth).
struct TelemetryOptions {
  bool enabled = false;
  /// Cycles between metric samples (one TimeSeriesRing row per sample).
  Cycle metrics_interval = 1000;
  /// Ring rows kept; older samples are overwritten (and counted as dropped).
  std::size_t series_rows = 2048;
  /// Event ring capacity; older events are overwritten (counted as dropped).
  std::size_t trace_capacity = 262144;
  /// Directory the exporters write into (created on demand).
  std::string out_dir = "telemetry";
};

// --------------------------------------------------------------------------
// TimeSeriesRing
// --------------------------------------------------------------------------

/// Fixed-capacity ring of (cycle, values[width]) sample rows. All storage is
/// allocated at construction; push_row never allocates.
class TimeSeriesRing {
 public:
  TimeSeriesRing(std::size_t rows, std::size_t width)
      : rows_(rows ? rows : 1),
        width_(width),
        stamps_(rows_, 0),
        data_(rows_ * width_, 0.0) {}

  /// Records one sample row; `values` must point at `width()` doubles.
  void push_row(Cycle stamp, const double* values) noexcept {
    const std::size_t slot = (head_ + count_) % rows_;
    stamps_[slot] = stamp;
    double* dst = data_.data() + slot * width_;
    for (std::size_t i = 0; i < width_; ++i) dst[i] = values[i];
    if (count_ < rows_) {
      ++count_;
    } else {
      head_ = (head_ + 1) % rows_;
      ++dropped_;
    }
  }

  std::size_t capacity() const noexcept { return rows_; }
  std::size_t width() const noexcept { return width_; }
  /// Rows currently held (<= capacity).
  std::size_t size() const noexcept { return count_; }
  /// Rows overwritten because the ring was full.
  std::uint64_t dropped_rows() const noexcept { return dropped_; }

  /// Stamp / values of held row `i`, oldest-first (i in [0, size())).
  Cycle stamp(std::size_t i) const noexcept {
    return stamps_[(head_ + i) % rows_];
  }
  const double* row(std::size_t i) const noexcept {
    return data_.data() + ((head_ + i) % rows_) * width_;
  }

 private:
  std::size_t rows_;
  std::size_t width_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<Cycle> stamps_;
  std::vector<double> data_;
};

// --------------------------------------------------------------------------
// MetricsRegistry
// --------------------------------------------------------------------------

/// Counters accumulate and are sampled as per-interval deltas; gauges are
/// sampled as their instantaneous value.
enum class MetricKind : std::uint8_t { kCounter, kGauge };

/// Label scope of one metric family: 1, num_routers, or num_routers x
/// kNumPorts value slots.
enum class MetricScope : std::uint8_t { kGlobal, kPerRouter, kPerRouterPort };

/// Handle returned by registration; indexes the family table.
struct MetricId {
  std::uint32_t family = 0;
};

/// Handle for a registered whole-run histogram.
struct HistogramId {
  std::uint32_t index = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry(int num_routers, std::size_t series_rows)
      : num_routers_(num_routers), series_rows_(series_rows) {}

  /// Registers a metric family. Only valid before freeze().
  MetricId add(MetricKind kind, MetricScope scope, std::string name);
  /// Registers a whole-run histogram (aggregate, not a time series).
  HistogramId add_histogram(std::string name, double lo, double hi,
                            std::size_t buckets);

  /// Allocates the slot arrays and the sample ring; registration closes.
  void freeze();
  bool frozen() const noexcept { return frozen_; }

  // -- hot path (after freeze) --
  /// Sets a slot's current value (gauges) or cumulative value (counters —
  /// feed the running total; sample() turns it into per-interval deltas).
  void set(MetricId id, double v) noexcept { cur_[slot(id, 0, 0)] = v; }
  void set(MetricId id, NodeId router, double v) noexcept {
    cur_[slot(id, router, 0)] = v;
  }
  void set(MetricId id, NodeId router, std::size_t port, double v) noexcept {
    cur_[slot(id, router, port)] = v;
  }
  /// Adds to a slot (counters maintained inside the registry).
  void bump(MetricId id, NodeId router, double v = 1.0) noexcept {
    cur_[slot(id, router, 0)] += v;
  }
  void observe(HistogramId id, double v) noexcept {
    hists_[id.index].add(v);
  }

  /// Snapshots every slot into the ring: counter slots as (cur - prev),
  /// gauge slots verbatim. A counter moving backwards is treated as a
  /// source-counter reset (delta = new cumulative value). One row per call.
  void sample(Cycle now);

  // -- introspection / export --
  struct Family {
    std::string name;
    MetricKind kind;
    MetricScope scope;
    std::size_t base = 0;   ///< first slot index
    std::size_t slots = 0;  ///< slot count (scope-dependent)
  };

  int num_routers() const noexcept { return num_routers_; }
  std::size_t slot_count() const noexcept { return width_; }
  const std::vector<Family>& families() const noexcept { return families_; }
  const TimeSeriesRing& series() const {
    RLFTNOC_CHECK(ring_ != nullptr, "metrics registry sampled before freeze()");
    return *ring_;
  }
  bool has_series() const noexcept { return ring_ != nullptr; }

  /// Resolves slot index -> (family index, router, port); router/port are
  /// -1 where the scope has no such label.
  void slot_labels(std::size_t slot, std::size_t& family, int& router,
                   int& port) const;

  std::size_t histogram_count() const noexcept { return hists_.size(); }
  const std::string& histogram_name(HistogramId id) const {
    return hist_names_[id.index];
  }
  const Histogram& histogram(HistogramId id) const { return hists_[id.index]; }

 private:
  std::size_t scope_slots(MetricScope s) const noexcept {
    switch (s) {
      case MetricScope::kGlobal: return 1;
      case MetricScope::kPerRouter:
        return static_cast<std::size_t>(num_routers_);
      case MetricScope::kPerRouterPort:
        return static_cast<std::size_t>(num_routers_) * kNumPorts;
    }
    return 1;
  }

  std::size_t slot(MetricId id, NodeId router, std::size_t port) const noexcept {
    const Family& f = families_[id.family];
    std::size_t off = 0;
    if (f.scope == MetricScope::kPerRouter) {
      off = static_cast<std::size_t>(router);
    } else if (f.scope == MetricScope::kPerRouterPort) {
      off = static_cast<std::size_t>(router) * kNumPorts + port;
    }
    return f.base + off;
  }

  int num_routers_;
  std::size_t series_rows_;
  bool frozen_ = false;
  std::size_t width_ = 0;
  std::vector<Family> families_;
  std::vector<double> cur_;
  std::vector<double> prev_;
  std::vector<double> row_;  ///< scratch sample row (reused, zero-alloc)
  std::unique_ptr<TimeSeriesRing> ring_;
  std::vector<std::string> hist_names_;
  std::vector<Histogram> hists_;
};

// --------------------------------------------------------------------------
// EventTracer
// --------------------------------------------------------------------------

/// Structured trace event kinds (the Chrome-trace exporter maps these onto
/// slices, instants and counter tracks).
enum class TraceEventKind : std::uint8_t {
  kModeSwitch = 0,   ///< arg = new mode, value = previous mode
  kHopRetx,          ///< link-level NACK-triggered resend; arg = flit seq
  kPreRetxDup,       ///< mode-2 proactive duplicate; arg = flit seq
  kE2eRetx,          ///< end-to-end packet retransmission; arg = flit count
  kFaultInjected,    ///< wire fault; arg = bits flipped
  kNackSent,         ///< ARQ NACK issued; arg = 0 out-of-order, 1 uncorrectable
  kCrcPacketFail,    ///< destination CRC rejected a packet; arg = flit count
  kAuditViolation,   ///< invariant auditor fired (run is about to abort)
  kEpochReward,      ///< control-step reward; value = reward
  kPhaseBegin,       ///< arg = SimPhase
  kLinkKilled,       ///< hard fault severed a link; arg = neighbour node
  kRouterKilled,     ///< hard fault killed a router
};

inline constexpr std::size_t kNumTraceEventKinds = 12;

const char* trace_event_name(TraceEventKind k) noexcept;

/// One trace record. POD, fixed size, so the ring never allocates.
struct TraceEvent {
  Cycle cycle = 0;
  double value = 0.0;
  std::int32_t arg = 0;
  NodeId node = kInvalidNode;
  TraceEventKind kind = TraceEventKind::kModeSwitch;
  std::int8_t port = -1;  ///< port_index(), or -1 when not port-scoped
};

class EventTracer {
 public:
  explicit EventTracer(std::size_t capacity)
      : ring_(capacity ? capacity : 1) {}

  void record(TraceEventKind kind, Cycle cycle, NodeId node,
              std::int8_t port = -1, std::int32_t arg = 0,
              double value = 0.0) noexcept {
    const std::size_t slot = (head_ + count_) % ring_.size();
    ring_[slot] = TraceEvent{cycle, value, arg, node, kind, port};
    if (count_ < ring_.size()) {
      ++count_;
    } else {
      head_ = (head_ + 1) % ring_.size();
      ++dropped_;
    }
  }

  std::size_t capacity() const noexcept { return ring_.size(); }
  std::size_t size() const noexcept { return count_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Held event `i`, oldest-first (i in [0, size())).
  const TraceEvent& at(std::size_t i) const noexcept {
    return ring_[(head_ + i) % ring_.size()];
  }

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Growable per-shard staging buffer for trace events produced inside a
/// parallel stepping phase (see Network::step). Each shard records into its
/// own TraceStage with the same record() signature the RLFTNOC_TRACE macro
/// expects; after the phase barrier the stages are drained into the global
/// EventTracer in canonical shard order. Because drain_into replays every
/// staged event (the stage never drops), the tracer's ring content *and*
/// its dropped count end up exactly as if the events had been recorded
/// directly in that order — i.e. bit-identical to the serial stepper.
class TraceStage {
 public:
  void record(TraceEventKind kind, Cycle cycle, NodeId node,
              std::int8_t port = -1, std::int32_t arg = 0,
              double value = 0.0) {
    events_.push_back(TraceEvent{cycle, value, arg, node, kind, port});
  }

  /// Replays all staged events into `sink` (null discards them) and clears.
  void drain_into(EventTracer* sink) {
    if (sink != nullptr) {
      for (const TraceEvent& e : events_)
        sink->record(e.kind, e.cycle, e.node, e.port, e.arg, e.value);
    }
    events_.clear();
  }

  bool empty() const noexcept { return events_.empty(); }
  std::size_t size() const noexcept { return events_.size(); }

 private:
  std::vector<TraceEvent> events_;
};

// --------------------------------------------------------------------------
// Telemetry facade
// --------------------------------------------------------------------------

class Telemetry {
 public:
  Telemetry(TelemetryOptions opt, int num_routers)
      : opt_(std::move(opt)),
        metrics_(num_routers, opt_.series_rows),
        tracer_(opt_.trace_capacity) {
    if (opt_.metrics_interval == 0) opt_.metrics_interval = 1;
  }

  const TelemetryOptions& options() const noexcept { return opt_; }
  MetricsRegistry& metrics() noexcept { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }
  EventTracer& tracer() noexcept { return tracer_; }
  const EventTracer& tracer() const noexcept { return tracer_; }

  /// True when a metrics sample is due at `now` (fixed-interval cadence).
  bool due(Cycle now) const noexcept { return now >= next_sample_; }

  /// Samples the registry; duplicate stamps (forced end-of-run samples)
  /// collapse into one row so exports stay clean.
  void sample(Cycle now) {
    if (has_sampled_ && now == last_stamp_) return;
    metrics_.sample(now);
    last_stamp_ = now;
    has_sampled_ = true;
    next_sample_ = now + opt_.metrics_interval;
  }

 private:
  TelemetryOptions opt_;
  MetricsRegistry metrics_;
  EventTracer tracer_;
  Cycle next_sample_ = 0;
  Cycle last_stamp_ = 0;
  bool has_sampled_ = false;
};

// --------------------------------------------------------------------------
// Hot-path hook macro
// --------------------------------------------------------------------------

/// Records a trace event through a nullable sink pointer expression — an
/// EventTracer* (direct recording) or a TraceStage* (staged recording inside
/// a parallel stepping phase; see Network::step).
/// Compiles to nothing when telemetry is configured out of the build (the
/// no-op template keeps the arguments "used" so -Wunused stays clean; its
/// trivial arguments fold away entirely under optimization).
#if defined(RLFTNOC_TELEMETRY_DISABLED)
namespace telemetry_detail {
template <typename... Ts>
inline void trace_noop(Ts&&...) noexcept {}
}  // namespace telemetry_detail
#define RLFTNOC_TRACE(sink_expr, ...) \
  ::rlftnoc::telemetry_detail::trace_noop(__VA_ARGS__)
#else
#define RLFTNOC_TRACE(sink_expr, ...)           \
  do {                                          \
    if (auto* rlftnoc_tr_ = (sink_expr))        \
      rlftnoc_tr_->record(__VA_ARGS__);         \
  } while (0)
#endif

}  // namespace rlftnoc
