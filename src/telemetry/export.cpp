#include "telemetry/export.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace rlftnoc {
namespace {

#ifndef RLFTNOC_GIT_SHA
#define RLFTNOC_GIT_SHA "unknown"
#endif

/// Locale-independent shortest-ish double rendering (deterministic across
/// jobs/threads; snprintf with %g never consults the global locale for the
/// "C" classic formats we use).
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* phase_label(int phase) noexcept {
  switch (phase) {
    case 0: return "pretrain";
    case 1: return "warmup";
    case 2: return "measure";
  }
  return "phase?";
}

/// Emits one trace event line; `first` tracks the JSON array comma state.
class JsonEventSink {
 public:
  explicit JsonEventSink(std::ostream& out) : out_(out) {}

  void meta_name(const char* what, int pid, int tid, const std::string& name) {
    sep();
    out_ << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
         << json_escape(name) << "\"}}";
  }

  void begin(Cycle ts, int tid, const char* name) {
    sep();
    out_ << "{\"name\":\"" << name << "\",\"ph\":\"B\",\"ts\":" << ts
         << ",\"pid\":0,\"tid\":" << tid << ",\"cat\":\"mode\"}";
  }

  void end(Cycle ts, int tid) {
    sep();
    out_ << "{\"ph\":\"E\",\"ts\":" << ts << ",\"pid\":0,\"tid\":" << tid
         << ",\"cat\":\"mode\"}";
  }

  void instant(Cycle ts, int tid, const char* name, const char* scope,
               int port, std::int32_t arg) {
    sep();
    out_ << "{\"name\":\"" << name << "\",\"ph\":\"i\",\"s\":\"" << scope
         << "\",\"ts\":" << ts << ",\"pid\":0,\"tid\":" << tid
         << ",\"cat\":\"event\",\"args\":{\"port\":" << port
         << ",\"arg\":" << arg << "}}";
  }

  void counter(Cycle ts, const std::string& name, double value) {
    sep();
    out_ << "{\"name\":\"" << json_escape(name)
         << "\",\"ph\":\"C\",\"ts\":" << ts
         << ",\"pid\":0,\"tid\":0,\"cat\":\"counter\",\"args\":{\"value\":"
         << fmt_double(value) << "}}";
  }

 private:
  void sep() {
    if (!first_) out_ << ",\n";
    first_ = false;
  }
  std::ostream& out_;
  bool first_ = true;
};

}  // namespace

std::string sanitize_run_label(const std::string& raw) {
  std::string out = raw;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  if (out.empty()) out = "run";
  return out;
}

const char* telemetry_git_sha() noexcept { return RLFTNOC_GIT_SHA; }

void write_chrome_trace(std::ostream& out, const EventTracer& tracer,
                        const TelemetryExportInfo& info) {
  const int num_nodes = info.mesh_width * info.mesh_height;
  const int sim_tid = num_nodes;  // global events (phases, audit context)

  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
      << "\"generator\":\"rlftnoc\",\"git_sha\":\""
      << json_escape(telemetry_git_sha()) << "\",\"workload\":\""
      << json_escape(info.workload) << "\",\"policy\":\""
      << json_escape(info.policy) << "\",\"seed\":" << info.seed
      << ",\"dropped_events\":" << tracer.dropped()
      << ",\"time_unit\":\"1 trace us = 1 cycle\"},\n\"traceEvents\":[\n";

  JsonEventSink sink(out);
  sink.meta_name("process_name", 0, 0, "rlftnoc " + info.workload + "/" +
                                           info.policy);
  for (int r = 0; r < num_nodes; ++r) {
    const int x = r % info.mesh_width;
    const int y = r / info.mesh_width;
    sink.meta_name("thread_name", 0, r,
                   "router " + std::to_string(r) + " (" + std::to_string(x) +
                       "," + std::to_string(y) + ")");
  }
  sink.meta_name("thread_name", 0, sim_tid, "sim");

  // Mode residency renders as B/E slices per router thread: each
  // kModeSwitch closes the previous slice and opens the next one.
  std::vector<int> open_mode(static_cast<std::size_t>(num_nodes), -1);
  Cycle last_ts = 0;
  for (std::size_t i = 0; i < tracer.size(); ++i) {
    const TraceEvent& e = tracer.at(i);
    last_ts = std::max(last_ts, e.cycle);
    const int tid = (e.node == kInvalidNode || e.node >= num_nodes)
                        ? sim_tid
                        : static_cast<int>(e.node);
    switch (e.kind) {
      case TraceEventKind::kModeSwitch: {
        if (tid == sim_tid) break;  // malformed node; keep the JSON valid
        auto& open = open_mode[static_cast<std::size_t>(tid)];
        if (open >= 0) sink.end(e.cycle, tid);
        const int mode = e.arg & 3;
        sink.begin(e.cycle, tid, op_mode_name(static_cast<OpMode>(mode)));
        open = mode;
        break;
      }
      case TraceEventKind::kEpochReward:
        sink.counter(e.cycle, "reward/r" + std::to_string(tid), e.value);
        break;
      case TraceEventKind::kPhaseBegin:
        sink.instant(e.cycle, sim_tid, phase_label(e.arg), "g", -1, e.arg);
        break;
      default:
        sink.instant(e.cycle, tid, trace_event_name(e.kind), "t", e.port,
                     e.arg);
        break;
    }
  }
  const Cycle close_ts = std::max(info.end_cycle, last_ts);
  for (int r = 0; r < num_nodes; ++r) {
    if (open_mode[static_cast<std::size_t>(r)] >= 0) sink.end(close_ts, r);
  }
  out << "\n]}\n";
}

void write_metrics_tsv(std::ostream& out, const MetricsRegistry& reg) {
  out << "cycle\tmetric\trouter\tport\tvalue\n";
  if (!reg.has_series()) return;
  const TimeSeriesRing& ring = reg.series();
  const auto& families = reg.families();
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const Cycle stamp = ring.stamp(i);
    const double* row = ring.row(i);
    for (const MetricsRegistry::Family& f : families) {
      for (std::size_t off = 0; off < f.slots; ++off) {
        int router = -1;
        int port = -1;
        if (f.scope == MetricScope::kPerRouter) {
          router = static_cast<int>(off);
        } else if (f.scope == MetricScope::kPerRouterPort) {
          router = static_cast<int>(off / kNumPorts);
          port = static_cast<int>(off % kNumPorts);
        }
        out << stamp << '\t' << f.name << '\t' << router << '\t' << port
            << '\t' << fmt_double(row[f.base + off]) << '\n';
      }
    }
  }
}

void write_histograms_tsv(std::ostream& out, const MetricsRegistry& reg) {
  out << "metric\tbucket_lo\tbucket_hi\tcount\n";
  for (std::size_t h = 0; h < reg.histogram_count(); ++h) {
    const HistogramId id{static_cast<std::uint32_t>(h)};
    const std::string& name = reg.histogram_name(id);
    const Histogram& hist = reg.histogram(id);
    if (hist.underflow() > 0) {
      out << name << "\t-inf\t" << fmt_double(hist.bucket_lo(0)) << '\t'
          << hist.underflow() << '\n';
    }
    for (std::size_t b = 0; b < hist.bucket_count(); ++b) {
      if (hist.bucket(b) == 0) continue;  // sparse: empty buckets are implied
      out << name << '\t' << fmt_double(hist.bucket_lo(b)) << '\t'
          << fmt_double(hist.bucket_lo(b + 1)) << '\t' << hist.bucket(b)
          << '\n';
    }
    if (hist.overflow() > 0) {
      out << name << '\t' << fmt_double(hist.bucket_lo(hist.bucket_count()))
          << "\t+inf\t" << hist.overflow() << '\n';
    }
  }
}

void write_heatmap_tsv(std::ostream& out, const HeatmapGrid& grid) {
  out << "# " << grid.name << ": " << grid.width << " cols (x) x "
      << grid.height << " rows (y), row y=0 first\n";
  for (int y = 0; y < grid.height; ++y) {
    for (int x = 0; x < grid.width; ++x) {
      if (x > 0) out << '\t';
      out << fmt_double(
          grid.values[static_cast<std::size_t>(y) * grid.width + x]);
    }
    out << '\n';
  }
}

void write_manifest_json(std::ostream& out, const TelemetryExportInfo& info,
                         const Telemetry& telemetry,
                         const std::vector<std::string>& files) {
  const MetricsRegistry& reg = telemetry.metrics();
  out << "{\n"
      << "  \"schema\": \"rlftnoc-telemetry-manifest-v1\",\n"
      << "  \"generator\": \"rlftnoc\",\n"
      << "  \"git_sha\": \"" << json_escape(telemetry_git_sha()) << "\",\n"
      << "  \"workload\": \"" << json_escape(info.workload) << "\",\n"
      << "  \"policy\": \"" << json_escape(info.policy) << "\",\n"
      << "  \"seed\": " << info.seed << ",\n"
      << "  \"mesh\": {\"width\": " << info.mesh_width
      << ", \"height\": " << info.mesh_height << "},\n"
      << "  \"measure\": {\"start_cycle\": " << info.measure_start
      << ", \"end_cycle\": " << info.end_cycle << "},\n"
      << "  \"metrics_interval\": " << telemetry.options().metrics_interval
      << ",\n"
      << "  \"dropped\": {\"trace_events\": " << telemetry.tracer().dropped()
      << ", \"series_rows\": "
      << (reg.has_series() ? reg.series().dropped_rows() : 0) << "},\n";
  out << "  \"options\": {";
  for (std::size_t i = 0; i < info.options.size(); ++i) {
    if (i > 0) out << ", ";
    out << '"' << json_escape(info.options[i].first) << "\": \""
        << json_escape(info.options[i].second) << '"';
  }
  out << "},\n  \"files\": [";
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (i > 0) out << ", ";
    out << '"' << json_escape(files[i]) << '"';
  }
  out << "]\n}\n";
}

std::vector<std::string> export_run_telemetry(
    const Telemetry& telemetry, const TelemetryExportInfo& info,
    const std::vector<HeatmapGrid>& heatmaps) {
  namespace fs = std::filesystem;
  fs::create_directories(info.out_dir);

  auto open = [&](const std::string& name) {
    std::ofstream out(fs::path(info.out_dir) / name,
                      std::ios::out | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("telemetry: cannot write " + info.out_dir +
                               "/" + name);
    }
    return out;
  };

  std::vector<std::string> files;
  {
    const std::string name = info.label + ".trace.json";
    auto out = open(name);
    write_chrome_trace(out, telemetry.tracer(), info);
    files.push_back(name);
  }
  {
    const std::string name = info.label + ".metrics.tsv";
    auto out = open(name);
    write_metrics_tsv(out, telemetry.metrics());
    files.push_back(name);
  }
  {
    const std::string name = info.label + ".hist.tsv";
    auto out = open(name);
    write_histograms_tsv(out, telemetry.metrics());
    files.push_back(name);
  }
  for (const HeatmapGrid& grid : heatmaps) {
    const std::string name = info.label + ".heatmap." + grid.name + ".tsv";
    auto out = open(name);
    write_heatmap_tsv(out, grid);
    files.push_back(name);
  }
  {
    const std::string name = info.label + ".manifest.json";
    auto out = open(name);
    write_manifest_json(out, info, telemetry, files);
    files.push_back(name);
  }
  return files;
}

}  // namespace rlftnoc
