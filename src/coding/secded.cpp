#include "coding/secded.h"

#include <bit>

namespace rlftnoc {
namespace {

constexpr bool is_power_of_two(unsigned x) noexcept { return x != 0 && (x & (x - 1)) == 0; }

constexpr int parity64(std::uint64_t x) noexcept { return std::popcount(x) & 1; }

}  // namespace

Secded7264::Secded7264() noexcept {
  pos_to_data_.fill(0xFF);
  // Data bits occupy the non-power-of-two codeword positions 3,5,6,7,9,...
  // Positions 1..71 give exactly 64 non-power-of-two slots for 64 data bits.
  int d = 0;
  for (unsigned pos = 1; pos < 72 && d < 64; ++pos) {
    if (is_power_of_two(pos)) continue;
    data_pos_[d] = static_cast<std::uint8_t>(pos);
    pos_to_data_[pos] = static_cast<std::uint8_t>(d);
    ++d;
  }
  // Check bit i (at codeword position 2^i) covers every position whose index
  // has bit i set; project that coverage onto the data-bit masks.
  for (int i = 0; i < 7; ++i) {
    std::uint64_t mask = 0;
    for (int bit = 0; bit < 64; ++bit) {
      if (data_pos_[bit] & (1u << i)) mask |= 1ULL << bit;
    }
    parity_mask_[i] = mask;
  }
  // Per-byte check tables: every check bit (including the overall-parity
  // bit) is XOR-linear in the data bits, so the check of a word decomposes
  // into the XOR of the checks of its zero-extended bytes.
  for (int byte = 0; byte < 8; ++byte) {
    for (unsigned v = 0; v < 256; ++v) {
      const std::uint64_t data = static_cast<std::uint64_t>(v) << (8 * byte);
      std::uint8_t check = 0;
      for (int i = 0; i < 7; ++i) {
        if (parity64(data & parity_mask_[i]))
          check |= static_cast<std::uint8_t>(1u << i);
      }
      const int overall =
          parity64(data) ^ (std::popcount(static_cast<unsigned>(check)) & 1);
      if (overall) check |= 0x80u;
      byte_check_[static_cast<std::size_t>(byte)][v] = check;
    }
  }
}

SecdedWord Secded7264::encode(std::uint64_t data) const noexcept {
  return SecdedWord{data, check_of(data)};
}

SecdedDecode Secded7264::decode(std::uint64_t data, std::uint8_t check) const noexcept {
  // One table-driven recompute gives everything at once. The low 7 bits of
  // `diff` are the classic Hamming syndrome. For the overall parity:
  // parity(check_of(data)) == parity(data) by construction of bit 7, so
  // parity(diff) == parity(data) ^ parity(check) — exactly the receiver's
  // overall-parity test, with no second popcount pass over the data.
  const auto diff = static_cast<std::uint8_t>(check_of(data) ^ check);
  const auto syndrome = static_cast<std::uint8_t>(diff & 0x7Fu);
  const int overall = std::popcount(static_cast<unsigned>(diff)) & 1;

  SecdedDecode out;
  out.syndrome = syndrome;
  out.data = data;
  out.check = check;

  if (syndrome == 0 && overall == 0) {
    out.status = SecdedStatus::kClean;
    return out;
  }
  if (overall == 0) {
    // Nonzero syndrome with even overall parity: an even number (>= 2) of
    // bits flipped. Detected, not correctable.
    out.status = SecdedStatus::kUncorrectable;
    return out;
  }
  // Odd overall parity: odd number of flips; assume one and correct it.
  out.status = SecdedStatus::kCorrected;
  if (syndrome == 0) {
    // The overall parity bit itself flipped.
    out.check = check ^ 0x80u;
    return out;
  }
  if (syndrome >= 72) {
    // Syndrome points outside the codeword: an odd (>= 3) multi-bit pattern
    // whose alias is invalid. Real decoders flag this; so do we.
    out.status = SecdedStatus::kUncorrectable;
    return out;
  }
  if (is_power_of_two(syndrome)) {
    // A Hamming check bit flipped.
    const int i = std::countr_zero(static_cast<unsigned>(syndrome));
    out.check = check ^ static_cast<std::uint8_t>(1u << i);
    return out;
  }
  const std::uint8_t data_bit = pos_to_data_[syndrome];
  out.data = data ^ (1ULL << data_bit);
  return out;
}

FlitEcc encode_flit_ecc(const Secded7264& codec, const BitVec128& payload) noexcept {
  return FlitEcc{codec.encode(payload.word(0)).check, codec.encode(payload.word(1)).check};
}

FlitEccDecode decode_flit_ecc(const Secded7264& codec, const BitVec128& payload,
                              FlitEcc ecc) noexcept {
  const SecdedDecode d0 = codec.decode(payload.word(0), ecc.check0);
  const SecdedDecode d1 = codec.decode(payload.word(1), ecc.check1);

  FlitEccDecode out;
  out.payload = BitVec128(d0.data, d1.data);
  out.ecc = FlitEcc{d0.check, d1.check};
  out.word0_corrected = d0.status == SecdedStatus::kCorrected;
  out.word1_corrected = d1.status == SecdedStatus::kCorrected;
  if (d0.status == SecdedStatus::kUncorrectable || d1.status == SecdedStatus::kUncorrectable) {
    out.status = SecdedStatus::kUncorrectable;
  } else if (out.word0_corrected || out.word1_corrected) {
    out.status = SecdedStatus::kCorrected;
  } else {
    out.status = SecdedStatus::kClean;
  }
  return out;
}

const Secded7264& default_secded() noexcept {
  static const Secded7264 instance;
  return instance;
}

}  // namespace rlftnoc
