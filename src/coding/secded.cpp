#include "coding/secded.h"

#include <bit>

namespace rlftnoc {
namespace {

constexpr bool is_power_of_two(unsigned x) noexcept { return x != 0 && (x & (x - 1)) == 0; }

constexpr int parity64(std::uint64_t x) noexcept { return std::popcount(x) & 1; }

}  // namespace

Secded7264::Secded7264() noexcept {
  pos_to_data_.fill(0xFF);
  // Data bits occupy the non-power-of-two codeword positions 3,5,6,7,9,...
  // Positions 1..71 give exactly 64 non-power-of-two slots for 64 data bits.
  int d = 0;
  for (unsigned pos = 1; pos < 72 && d < 64; ++pos) {
    if (is_power_of_two(pos)) continue;
    data_pos_[d] = static_cast<std::uint8_t>(pos);
    pos_to_data_[pos] = static_cast<std::uint8_t>(d);
    ++d;
  }
  // Check bit i (at codeword position 2^i) covers every position whose index
  // has bit i set; project that coverage onto the data-bit masks.
  for (int i = 0; i < 7; ++i) {
    std::uint64_t mask = 0;
    for (int bit = 0; bit < 64; ++bit) {
      if (data_pos_[bit] & (1u << i)) mask |= 1ULL << bit;
    }
    parity_mask_[i] = mask;
  }
}

SecdedWord Secded7264::encode(std::uint64_t data) const noexcept {
  std::uint8_t check = 0;
  for (int i = 0; i < 7; ++i) {
    if (parity64(data & parity_mask_[i])) check |= static_cast<std::uint8_t>(1u << i);
  }
  // Overall parity (check bit 7) makes the full 72-bit codeword even-parity.
  const int overall = parity64(data) ^ (std::popcount(static_cast<unsigned>(check)) & 1);
  if (overall) check |= 0x80u;
  return SecdedWord{data, check};
}

SecdedDecode Secded7264::decode(std::uint64_t data, std::uint8_t check) const noexcept {
  std::uint8_t syndrome = 0;
  for (int i = 0; i < 7; ++i) {
    const int computed = parity64(data & parity_mask_[i]);
    const int received = (check >> i) & 1;
    if (computed != received) syndrome |= static_cast<std::uint8_t>(1u << i);
  }
  const int overall =
      parity64(data) ^ (std::popcount(static_cast<unsigned>(check)) & 1);

  SecdedDecode out;
  out.syndrome = syndrome;
  out.data = data;
  out.check = check;

  if (syndrome == 0 && overall == 0) {
    out.status = SecdedStatus::kClean;
    return out;
  }
  if (overall == 0) {
    // Nonzero syndrome with even overall parity: an even number (>= 2) of
    // bits flipped. Detected, not correctable.
    out.status = SecdedStatus::kUncorrectable;
    return out;
  }
  // Odd overall parity: odd number of flips; assume one and correct it.
  out.status = SecdedStatus::kCorrected;
  if (syndrome == 0) {
    // The overall parity bit itself flipped.
    out.check = check ^ 0x80u;
    return out;
  }
  if (syndrome >= 72) {
    // Syndrome points outside the codeword: an odd (>= 3) multi-bit pattern
    // whose alias is invalid. Real decoders flag this; so do we.
    out.status = SecdedStatus::kUncorrectable;
    return out;
  }
  if (is_power_of_two(syndrome)) {
    // A Hamming check bit flipped.
    const int i = std::countr_zero(static_cast<unsigned>(syndrome));
    out.check = check ^ static_cast<std::uint8_t>(1u << i);
    return out;
  }
  const std::uint8_t data_bit = pos_to_data_[syndrome];
  out.data = data ^ (1ULL << data_bit);
  return out;
}

FlitEcc encode_flit_ecc(const Secded7264& codec, const BitVec128& payload) noexcept {
  return FlitEcc{codec.encode(payload.word(0)).check, codec.encode(payload.word(1)).check};
}

FlitEccDecode decode_flit_ecc(const Secded7264& codec, const BitVec128& payload,
                              FlitEcc ecc) noexcept {
  const SecdedDecode d0 = codec.decode(payload.word(0), ecc.check0);
  const SecdedDecode d1 = codec.decode(payload.word(1), ecc.check1);

  FlitEccDecode out;
  out.payload = BitVec128(d0.data, d1.data);
  out.ecc = FlitEcc{d0.check, d1.check};
  out.word0_corrected = d0.status == SecdedStatus::kCorrected;
  out.word1_corrected = d1.status == SecdedStatus::kCorrected;
  if (d0.status == SecdedStatus::kUncorrectable || d1.status == SecdedStatus::kUncorrectable) {
    out.status = SecdedStatus::kUncorrectable;
  } else if (out.word0_corrected || out.word1_corrected) {
    out.status = SecdedStatus::kCorrected;
  } else {
    out.status = SecdedStatus::kClean;
  }
  return out;
}

const Secded7264& default_secded() noexcept {
  static const Secded7264 instance;
  return instance;
}

}  // namespace rlftnoc
