// Hamming(72,64) extended code: Single-Error-Correct, Double-Error-Detect.
//
// This is the ECC used by the per-hop ARQ+ECC links of Fig. 1(c): each
// 64-bit payload word is protected by 8 check bits (7 Hamming parity bits at
// codeword positions 1,2,4,...,64 plus one overall parity bit). Per flit
// (128 data bits) the link layer protects the two words independently, so a
// flit carries 16 ECC check bits — matching the SECDED granularity typical
// of NoC link ECC.
//
// Decoding emits one of three outcomes:
//   kClean          - syndrome 0, overall parity even: no error.
//   kCorrected      - odd parity: single-bit error located and flipped back
//                     (also covers an error in a check bit).
//   kUncorrectable  - even parity but nonzero syndrome: even number (>=2) of
//                     bit errors detected; the receiver must NACK.
// Triple-bit errors alias to kCorrected with a *wrong* correction with the
// code's true probability — the simulator lets that happen and the CRC layer
// or protocol-level effects catch (or miss!) it, as in real hardware.
#pragma once

#include <array>
#include <cstdint>

#include "common/bitvec.h"

namespace rlftnoc {

/// Result status of a SECDED decode.
enum class SecdedStatus : std::uint8_t {
  kClean = 0,
  kCorrected = 1,
  kUncorrectable = 2,
};

/// One protected 64-bit word: data plus its 8 check bits.
struct SecdedWord {
  std::uint64_t data = 0;
  std::uint8_t check = 0;

  friend constexpr bool operator==(const SecdedWord&, const SecdedWord&) = default;
};

/// Decode outcome for one word.
struct SecdedDecode {
  SecdedStatus status = SecdedStatus::kClean;
  std::uint64_t data = 0;     ///< corrected data (valid unless kUncorrectable)
  std::uint8_t check = 0;     ///< corrected check bits
  std::uint8_t syndrome = 0;  ///< raw 7-bit Hamming syndrome (diagnostics)
};

/// Hamming(72,64) SECDED encoder/decoder.
///
/// Stateless; all methods are const and cheap (a handful of popcounts), so a
/// single instance is shared across all links.
class Secded7264 {
 public:
  Secded7264() noexcept;

  /// Computes the 8 check bits for `data`.
  SecdedWord encode(std::uint64_t data) const noexcept;

  /// Decodes a (possibly corrupted) word+check pair.
  SecdedDecode decode(std::uint64_t data, std::uint8_t check) const noexcept;

  /// Number of check bits per protected word.
  static constexpr int kCheckBits = 8;
  /// Data bits per protected word.
  static constexpr int kDataBits = 64;

 private:
  /// The full 8-bit check (7 Hamming bits + overall-parity bit) of `data`.
  /// Every check bit is a GF(2)-linear function of the data bits, so the
  /// check of a word is the XOR of per-byte contributions: one table lookup
  /// per byte instead of seven mask+popcount rounds plus parity fixup.
  std::uint8_t check_of(std::uint64_t data) const noexcept {
    return static_cast<std::uint8_t>(
        byte_check_[0][data & 0xFFu] ^ byte_check_[1][(data >> 8) & 0xFFu] ^
        byte_check_[2][(data >> 16) & 0xFFu] ^
        byte_check_[3][(data >> 24) & 0xFFu] ^
        byte_check_[4][(data >> 32) & 0xFFu] ^
        byte_check_[5][(data >> 40) & 0xFFu] ^
        byte_check_[6][(data >> 48) & 0xFFu] ^
        byte_check_[7][(data >> 56) & 0xFFu]);
  }

  /// parity_mask_[i] selects the data bits covered by Hamming check bit i
  /// (i in [0,7), check bit at codeword position 2^i).
  std::array<std::uint64_t, 7> parity_mask_ = {};
  /// Codeword position (1..71) of data bit d, d in [0,64).
  std::array<std::uint8_t, 64> data_pos_ = {};
  /// Inverse map: codeword position -> data bit index, or 0xFF for check bits.
  std::array<std::uint8_t, 72> pos_to_data_ = {};
  /// byte_check_[b][v]: full 8-bit check of the word uint64(v) << 8b.
  std::array<std::array<std::uint8_t, 256>, 8> byte_check_ = {};
};

/// ECC protection for a whole 128-bit flit payload: two independent
/// Hamming(72,64) codewords.
struct FlitEcc {
  std::uint8_t check0 = 0;  ///< check bits of payload word 0
  std::uint8_t check1 = 0;  ///< check bits of payload word 1

  friend constexpr bool operator==(const FlitEcc&, const FlitEcc&) = default;
};

/// Outcome of decoding both halves of a flit.
struct FlitEccDecode {
  /// Worst status across the two words (kUncorrectable dominates).
  SecdedStatus status = SecdedStatus::kClean;
  BitVec128 payload;  ///< corrected payload (valid unless kUncorrectable)
  FlitEcc ecc;        ///< corrected check bits
  bool word0_corrected = false;
  bool word1_corrected = false;
};

/// Encodes a flit payload into its 16 check bits.
FlitEcc encode_flit_ecc(const Secded7264& codec, const BitVec128& payload) noexcept;

/// Decodes / corrects a flit payload against its check bits.
FlitEccDecode decode_flit_ecc(const Secded7264& codec, const BitVec128& payload,
                              FlitEcc ecc) noexcept;

/// Process-wide shared codec instance.
const Secded7264& default_secded() noexcept;

}  // namespace rlftnoc
