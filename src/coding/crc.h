// Cyclic Redundancy Check used by the end-to-end (source -> destination)
// error detection path of Fig. 1(b).
//
// This is a real table-driven CRC, not a behavioural stand-in: the network
// interface encodes every packet's payload words, fault injection flips
// payload bits in flight, and the destination NI recomputes and compares.
// Detection escapes (multi-bit patterns that alias) therefore occur with the
// code's true probability.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <span>

#include "common/bitvec.h"

namespace rlftnoc {

/// Reflected table-driven CRC-32 (IEEE 802.3 polynomial by default),
/// using slicing-by-8: the hot path consumes a whole 64-bit payload word
/// per iteration (8 parallel table lookups) instead of one byte at a time.
class Crc32 {
 public:
  /// Constructs the lookup tables for the given *reflected* polynomial.
  explicit constexpr Crc32(std::uint32_t reflected_poly = 0xEDB88320u) noexcept
      : table_{} {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? (c >> 1) ^ reflected_poly : c >> 1;
      table_[0][i] = c;
    }
    // table_[k][i] is the CRC contribution of byte i when it sits k bytes
    // ahead of the end of the slice: one more byte of zero-extension per
    // level, folded through the base table.
    for (std::size_t k = 1; k < 8; ++k) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        const std::uint32_t prev = table_[k - 1][i];
        table_[k][i] = (prev >> 8) ^ table_[0][prev & 0xFFu];
      }
    }
  }

  /// CRC over a span of bytes (init 0xFFFFFFFF, final XOR 0xFFFFFFFF).
  constexpr std::uint32_t compute(std::span<const std::uint8_t> bytes) const noexcept {
    std::uint32_t crc = 0xFFFFFFFFu;
    for (const std::uint8_t b : bytes)
      crc = (crc >> 8) ^ table_[0][(crc ^ b) & 0xFFu];
    return crc ^ 0xFFFFFFFFu;
  }

  /// CRC over one 64-bit word (little-endian byte order).
  constexpr std::uint32_t compute(std::uint64_t word) const noexcept {
    std::uint32_t crc = 0xFFFFFFFFu;
    crc = feed_word(crc, word);
    return crc ^ 0xFFFFFFFFu;
  }

  /// CRC over a 128-bit payload (word 0 first).
  constexpr std::uint32_t compute(const BitVec128& v) const noexcept {
    std::uint32_t crc = 0xFFFFFFFFu;
    crc = feed_word(crc, v.word(0));
    crc = feed_word(crc, v.word(1));
    return crc ^ 0xFFFFFFFFu;
  }

  /// Incremental interface: running CRC over multiple payloads, e.g. all the
  /// flits of a packet. Start with `initial()`, feed, then `finalize()`.
  static constexpr std::uint32_t initial() noexcept { return 0xFFFFFFFFu; }
  constexpr std::uint32_t feed(std::uint32_t crc, const BitVec128& v) const noexcept {
    crc = feed_word(crc, v.word(0));
    return feed_word(crc, v.word(1));
  }
  static constexpr std::uint32_t finalize(std::uint32_t crc) noexcept {
    return crc ^ 0xFFFFFFFFu;
  }

 private:
  /// Slicing-by-8: one 64-bit word per call. Equivalent to eight rounds of
  /// the byte-at-a-time recurrence — XORing the running CRC into the low
  /// bytes of the word and then looking every byte up at its distance from
  /// the slice end folds all eight shift-and-lookup steps into one XOR tree.
  constexpr std::uint32_t feed_word(std::uint32_t crc, std::uint64_t w) const noexcept {
    const std::uint64_t x = w ^ crc;
    return table_[7][x & 0xFFu] ^ table_[6][(x >> 8) & 0xFFu] ^
           table_[5][(x >> 16) & 0xFFu] ^ table_[4][(x >> 24) & 0xFFu] ^
           table_[3][(x >> 32) & 0xFFu] ^ table_[2][(x >> 40) & 0xFFu] ^
           table_[1][(x >> 48) & 0xFFu] ^ table_[0][(x >> 56) & 0xFFu];
  }

  std::array<std::array<std::uint32_t, 256>, 8> table_;
};

/// Process-wide default CRC-32 instance (IEEE polynomial).
const Crc32& default_crc32() noexcept;

}  // namespace rlftnoc
