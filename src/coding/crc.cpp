#include "coding/crc.h"

namespace rlftnoc {

const Crc32& default_crc32() noexcept {
  static const Crc32 instance;
  return instance;
}

}  // namespace rlftnoc
