// Tabular Q-learning agent (Watkins), Section IV of the paper.
//
// One agent per router. Each control time-step it selects an operation mode
// epsilon-greedily from its Q-table and, when the next state and reward are
// observed, applies the temporal-difference rule of Eq. (2):
//
//     Q(s,a) <- (1-alpha) Q(s,a) + alpha [ r + gamma * max_a' Q(s',a') ]
//
// Defaults follow Section IV.C: alpha = 0.1, epsilon = 0.1, Q init 0.
// The paper's OCR reads "gamma is set to 5"; a discount must lie in [0,1],
// so we take it as 0.5 (configurable).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string_view>

#include "common/rng.h"
#include "rl/qtable.h"

namespace rlftnoc {

/// Q-learning hyper-parameters.
struct QLearningParams {
  double alpha = 0.1;    ///< learning rate
  /// Discount rate. The mode-control task is nearly a contextual bandit
  /// (the action barely steers the successor state), and bootstrapping
  /// through max Q(s') lets actions that *mask* state features (mode 2
  /// suppresses the NACK bins) inherit the value of cool idle states; a
  /// small gamma keeps that aliasing bias negligible. The paper's value
  /// (OCR reads "5", presumably 0.5) is exercised in bench_ablation_rl.
  double gamma = 0.2;
  double epsilon = 0.1;  ///< exploration probability
  /// Initial Q-value for unvisited rows. Set above the best reachable
  /// return so every action gets tried once per state (see QTable); 0
  /// reproduces the paper's literal initialization.
  double optimistic_init = 5.0;
  /// Pessimism coefficient of the greedy rule (see QTable::argmax); 0
  /// reproduces the plain argmax.
  double confidence_penalty = 0.4;
  /// Hardware-cost tie-breaker of the greedy rule (see QTable::argmax).
  double action_cost_prior = 0.05;
};

class QLearningAgent {
 public:
  QLearningAgent(QLearningParams params, std::uint64_t seed, std::string_view tag)
      : params_(params), rng_(seed, tag), table_(params.optimistic_init) {}

  /// Epsilon-greedy action selection for state `s`.
  int select_action(const DiscreteState& s) {
    if (exploring_ && rng_.bernoulli(params_.epsilon))
      return static_cast<int>(rng_.next_below(kNumOpModes));
    return table_.argmax(s, params_.confidence_penalty, params_.action_cost_prior);
  }

  /// Greedy (evaluation) action.
  int greedy_action(const DiscreteState& s) const {
    return table_.argmax(s, params_.confidence_penalty, params_.action_cost_prior);
  }

  /// Temporal-difference update for transition (s, a) -> (s2) with reward r.
  ///
  /// The effective learning rate is max(alpha, 1/n) for the n-th visit of
  /// (s, a): early visits take large corrective steps (washing out the
  /// optimistic initialization quickly), then the rate settles at the
  /// paper's constant alpha.
  void update(const DiscreteState& s, int a, double r, const DiscreteState& s2) {
    QTable::Row& row = table_.row(s);
    const auto ai = static_cast<std::size_t>(a);
    const std::uint32_t n = ++row.visits[ai];
    const double rate = std::max(params_.alpha, 1.0 / static_cast<double>(n));
    const double target = r + params_.gamma * table_.max_q(s2);
    row.q[ai] = (1.0 - rate) * row.q[ai] + rate * target;
  }

  /// Enables/disables exploration (testing phase may freeze the policy).
  void set_exploring(bool on) noexcept { exploring_ = on; }
  bool exploring() const noexcept { return exploring_; }

  const QLearningParams& params() const noexcept { return params_; }
  void set_params(const QLearningParams& p) noexcept { params_ = p; }

  const QTable& table() const noexcept { return table_; }
  QTable& table() noexcept { return table_; }

 private:
  QLearningParams params_;
  Rng rng_;
  QTable table_;
  bool exploring_ = true;
};

}  // namespace rlftnoc
