// Feature discretization for the tabular Q-learning state space.
//
// Table I's continuous features are binned "evenly in 5 bins or less ... in
// linear space (e.g. link utilization) or log-space (e.g. NACK rate)".
// LinearBins and LogBins implement those two schemes; the control layer
// composes them into the per-router state vector.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace rlftnoc {

/// Evenly spaced bins over [lo, hi]; values outside clamp to the end bins.
class LinearBins {
 public:
  constexpr LinearBins(double lo, double hi, int bins) noexcept
      : lo_(lo), hi_(hi), bins_(bins) {}

  int bins() const noexcept { return bins_; }

  std::uint8_t bin(double x) const noexcept {
    if (x <= lo_) return 0;
    if (x >= hi_) return static_cast<std::uint8_t>(bins_ - 1);
    const double frac = (x - lo_) / (hi_ - lo_);
    const int b = static_cast<int>(frac * bins_);
    return static_cast<std::uint8_t>(std::min(b, bins_ - 1));
  }

 private:
  double lo_;
  double hi_;
  int bins_;
};

/// Bins evenly spaced in log10 over [lo, hi]; zero / sub-lo values map to
/// bin 0. Suited to rate-like features spanning decades (NACK rate).
class LogBins {
 public:
  LogBins(double lo, double hi, int bins) noexcept
      : log_lo_(std::log10(lo)), log_hi_(std::log10(hi)), bins_(bins) {}

  int bins() const noexcept { return bins_; }

  std::uint8_t bin(double x) const noexcept {
    if (x <= 0.0) return 0;
    const double lx = std::log10(x);
    if (lx <= log_lo_) return 0;
    if (lx >= log_hi_) return static_cast<std::uint8_t>(bins_ - 1);
    const double frac = (lx - log_lo_) / (log_hi_ - log_lo_);
    const int b = static_cast<int>(frac * bins_);
    return static_cast<std::uint8_t>(std::min(b, bins_ - 1));
  }

 private:
  double log_lo_;
  double log_hi_;
  int bins_;
};

}  // namespace rlftnoc
