#include "rl/qtable_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rlftnoc {
namespace {

constexpr const char* kMagic = "# rlftnoc qtable v1";

}  // namespace

void write_qtables(std::ostream& out, const std::vector<const QTable*>& tables) {
  out << kMagic << '\n';
  out << "agents " << tables.size() << '\n';
  for (std::size_t i = 0; i < tables.size(); ++i) {
    const QTable& t = *tables[i];
    // Sorted-by-state order: saved bytes depend only on table contents,
    // never on the hash map's insertion history (see QTable::sorted_items).
    const auto items = t.sorted_items();
    const std::size_t features = items.empty() ? 0 : items.front().first->size();
    out << "agent " << i << " rows " << t.size() << " features " << features
        << " init " << t.init_value() << '\n';
    for (const auto& [state, row] : items) {
      for (const std::uint8_t b : *state) out << static_cast<int>(b) << ' ';
      out << '|';
      for (const double q : row->q) out << ' ' << q;
      out << " |";
      for (const std::uint32_t n : row->visits) out << ' ' << n;
      out << '\n';
    }
  }
}

void write_qtables_file(const std::string& path,
                        const std::vector<const QTable*>& tables) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("qtable_io: cannot write " + path);
  write_qtables(out, tables);
}

void read_qtables(std::istream& in, const std::vector<QTable*>& tables) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic)
    throw std::runtime_error("qtable_io: bad magic");
  std::size_t agents = 0;
  {
    std::string word;
    if (!(in >> word >> agents) || word != "agents")
      throw std::runtime_error("qtable_io: missing agent count");
  }
  if (agents != tables.size())
    throw std::runtime_error("qtable_io: agent count mismatch (file " +
                             std::to_string(agents) + ", policy " +
                             std::to_string(tables.size()) + ")");

  for (std::size_t i = 0; i < agents; ++i) {
    std::string word;
    std::size_t idx = 0;
    std::size_t rows = 0;
    std::size_t features = 0;
    double init = 0.0;
    if (!(in >> word >> idx) || word != "agent" || idx != i)
      throw std::runtime_error("qtable_io: bad agent header");
    if (!(in >> word >> rows) || word != "rows")
      throw std::runtime_error("qtable_io: bad rows field");
    if (!(in >> word >> features) || word != "features")
      throw std::runtime_error("qtable_io: bad features field");
    if (!(in >> word >> init) || word != "init")
      throw std::runtime_error("qtable_io: bad init field");

    QTable fresh(init);
    for (std::size_t r = 0; r < rows; ++r) {
      DiscreteState state(features);
      for (std::size_t f = 0; f < features; ++f) {
        int bin = 0;
        if (!(in >> bin)) throw std::runtime_error("qtable_io: truncated state");
        state[f] = static_cast<std::uint8_t>(bin);
      }
      char bar = 0;
      if (!(in >> bar) || bar != '|')
        throw std::runtime_error("qtable_io: missing q separator");
      QTable::Row& row = fresh.row(state);
      for (double& q : row.q) {
        if (!(in >> q)) throw std::runtime_error("qtable_io: truncated q row");
      }
      if (!(in >> bar) || bar != '|')
        throw std::runtime_error("qtable_io: missing visit separator");
      for (std::uint32_t& n : row.visits) {
        if (!(in >> n)) throw std::runtime_error("qtable_io: truncated visits");
      }
    }
    *tables[i] = std::move(fresh);
  }
}

void read_qtables_file(const std::string& path, const std::vector<QTable*>& tables) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("qtable_io: cannot open " + path);
  read_qtables(in, tables);
}

}  // namespace rlftnoc
