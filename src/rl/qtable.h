// Tabular action-value storage: the per-router State-Action Mapping Table of
// Fig. 5. Only visited states occupy memory (hash map keyed by the packed
// discretized state vector), which is how a 26-dimensional discretized space
// stays tractable.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"

namespace rlftnoc {

/// A discretized state: one bin index per feature.
using DiscreteState = std::vector<std::uint8_t>;

/// Q-values of one state row, one entry per operation mode.
using QRow = std::array<double, kNumOpModes>;

/// Per-(state, action) visit counters, used for the count-based learning
/// rate ("the learning rate alpha can be reduced over time", Section IV.A).
using QVisits = std::array<std::uint32_t, kNumOpModes>;

struct DiscreteStateHash {
  std::size_t operator()(const DiscreteState& s) const noexcept {
    // FNV-1a over the bin bytes.
    std::size_t h = 0xcbf29ce484222325ULL;
    for (const std::uint8_t b : s) {
      h ^= b;
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

/// Sparse Q-table.
///
/// Rows materialize on first visit, filled with `init`. The paper
/// initializes Q to 0; with its strictly positive reward that makes the
/// first action ever tried in a state win the greedy comparison forever
/// ("greedy lock-in"), so the default here is an optimistic value above any
/// reachable return, which forces every action to be tried once per state.
/// Pass init = 0 to reproduce the paper-literal behaviour.
class QTable {
 public:
  explicit QTable(double init = 0.0) noexcept : init_(init) {}

  struct Row {
    QRow q;
    QVisits visits{};
  };

  /// Returns the row for `s`, inserting an init-filled row on first visit.
  Row& row(const DiscreteState& s) {
    const auto [it, inserted] = table_.try_emplace(s);
    if (inserted) it->second.q.fill(init_);
    return it->second;
  }

  /// Read-only lookup; returns nullptr for unvisited states.
  const Row* find(const DiscreteState& s) const {
    const auto it = table_.find(s);
    return it == table_.end() ? nullptr : &it->second;
  }

  /// Greedy action for `s` (0 for unvisited states).
  ///
  /// `confidence_penalty` subtracts c/sqrt(n) from each action's value
  /// before comparing, so an action whose high estimate rests on a couple
  /// of noisy visits cannot beat a well-sampled one (pessimistic greedy).
  /// `action_cost_prior` subtracts p*a, expressing that higher modes cost
  /// more hardware — it breaks near-ties toward the cheaper mode (the same
  /// bias as the paper's all-mode-0 initialization) without overriding a
  /// genuinely better Q-value. Pass 0/0 for the plain argmax.
  int argmax(const DiscreteState& s, double confidence_penalty = 0.0,
             double action_cost_prior = 0.0) const {
    const Row* r = find(s);
    if (r == nullptr) return 0;
    int best = 0;
    double best_score = -1e300;
    for (int a = 0; a < static_cast<int>(kNumOpModes); ++a) {
      const auto ai = static_cast<std::size_t>(a);
      const double n = std::max<double>(r->visits[ai], 1.0);
      const double score = r->q[ai] - confidence_penalty / std::sqrt(n) -
                           action_cost_prior * a;
      if (score > best_score) {
        best_score = score;
        best = a;
      }
    }
    return best;
  }

  /// Largest Q-value in the row for `s` (`init` for unvisited states).
  double max_q(const DiscreteState& s) const {
    const Row* r = find(s);
    if (r == nullptr) return init_;
    double m = r->q[0];
    for (const double q : r->q) m = q > m ? q : m;
    return m;
  }

  double init_value() const noexcept { return init_; }
  std::size_t size() const noexcept { return table_.size(); }
  void clear() { table_.clear(); }

  /// The only iteration surface: a snapshot of (state, row) pointers sorted
  /// lexicographically by state bytes. The hash table's own traversal order
  /// never escapes this class — qtable_io serializes through this, so saved
  /// Q-table bytes are identical for identical table *contents* regardless
  /// of insertion history or standard-library hash internals.
  std::vector<std::pair<const DiscreteState*, const Row*>> sorted_items()
      const {
    std::vector<std::pair<const DiscreteState*, const Row*>> items;
    items.reserve(table_.size());
    // rlftnoc-lint: allow(R1) snapshot sorted below; hash order cannot escape
    for (const auto& [state, row] : table_) items.emplace_back(&state, &row);
    std::sort(items.begin(), items.end(),
              [](const auto& a, const auto& b) { return *a.first < *b.first; });
    return items;
  }

 private:
  double init_ = 0.0;
  std::unordered_map<DiscreteState, Row, DiscreteStateHash> table_;
};

}  // namespace rlftnoc
