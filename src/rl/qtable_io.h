// Q-table persistence: save a trained policy after pre-training and load it
// in later runs, skipping the (expensive) learning phases. Text format, one
// row per visited state:
//
//   # rlftnoc qtable v1
//   agents <N>
//   agent <i> rows <R> features <F>
//   <bin...> | <q0 q1 q2 q3> | <n0 n1 n2 n3>
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "rl/qtable.h"

namespace rlftnoc {

/// Serializes a set of Q-tables (one per agent; a shared-table policy saves
/// a single agent).
void write_qtables(std::ostream& out, const std::vector<const QTable*>& tables);
void write_qtables_file(const std::string& path,
                        const std::vector<const QTable*>& tables);

/// Loads tables saved by write_qtables into `tables` (sizes must match).
/// Existing rows are replaced wholesale. Throws std::runtime_error on
/// malformed input or an agent-count mismatch.
void read_qtables(std::istream& in, const std::vector<QTable*>& tables);
void read_qtables_file(const std::string& path, const std::vector<QTable*>& tables);

}  // namespace rlftnoc
