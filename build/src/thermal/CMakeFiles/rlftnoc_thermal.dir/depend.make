# Empty dependencies file for rlftnoc_thermal.
# This may be replaced when dependencies are built.
