file(REMOVE_RECURSE
  "CMakeFiles/rlftnoc_thermal.dir/hotspot_lite.cpp.o"
  "CMakeFiles/rlftnoc_thermal.dir/hotspot_lite.cpp.o.d"
  "librlftnoc_thermal.a"
  "librlftnoc_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlftnoc_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
