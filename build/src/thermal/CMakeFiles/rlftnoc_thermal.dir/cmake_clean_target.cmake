file(REMOVE_RECURSE
  "librlftnoc_thermal.a"
)
