file(REMOVE_RECURSE
  "librlftnoc_coding.a"
)
