# Empty dependencies file for rlftnoc_coding.
# This may be replaced when dependencies are built.
