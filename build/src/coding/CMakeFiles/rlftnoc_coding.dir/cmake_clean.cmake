file(REMOVE_RECURSE
  "CMakeFiles/rlftnoc_coding.dir/crc.cpp.o"
  "CMakeFiles/rlftnoc_coding.dir/crc.cpp.o.d"
  "CMakeFiles/rlftnoc_coding.dir/secded.cpp.o"
  "CMakeFiles/rlftnoc_coding.dir/secded.cpp.o.d"
  "librlftnoc_coding.a"
  "librlftnoc_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlftnoc_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
