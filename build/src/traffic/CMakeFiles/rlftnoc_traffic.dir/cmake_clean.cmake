file(REMOVE_RECURSE
  "CMakeFiles/rlftnoc_traffic.dir/parsec.cpp.o"
  "CMakeFiles/rlftnoc_traffic.dir/parsec.cpp.o.d"
  "CMakeFiles/rlftnoc_traffic.dir/trace.cpp.o"
  "CMakeFiles/rlftnoc_traffic.dir/trace.cpp.o.d"
  "CMakeFiles/rlftnoc_traffic.dir/traffic.cpp.o"
  "CMakeFiles/rlftnoc_traffic.dir/traffic.cpp.o.d"
  "librlftnoc_traffic.a"
  "librlftnoc_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlftnoc_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
