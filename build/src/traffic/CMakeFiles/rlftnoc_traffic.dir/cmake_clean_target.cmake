file(REMOVE_RECURSE
  "librlftnoc_traffic.a"
)
