# Empty dependencies file for rlftnoc_traffic.
# This may be replaced when dependencies are built.
