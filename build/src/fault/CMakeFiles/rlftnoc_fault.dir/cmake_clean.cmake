file(REMOVE_RECURSE
  "CMakeFiles/rlftnoc_fault.dir/injector.cpp.o"
  "CMakeFiles/rlftnoc_fault.dir/injector.cpp.o.d"
  "CMakeFiles/rlftnoc_fault.dir/varius.cpp.o"
  "CMakeFiles/rlftnoc_fault.dir/varius.cpp.o.d"
  "librlftnoc_fault.a"
  "librlftnoc_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlftnoc_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
