# Empty compiler generated dependencies file for rlftnoc_fault.
# This may be replaced when dependencies are built.
