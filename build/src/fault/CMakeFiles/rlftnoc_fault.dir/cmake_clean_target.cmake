file(REMOVE_RECURSE
  "librlftnoc_fault.a"
)
