
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/injector.cpp" "src/fault/CMakeFiles/rlftnoc_fault.dir/injector.cpp.o" "gcc" "src/fault/CMakeFiles/rlftnoc_fault.dir/injector.cpp.o.d"
  "/root/repo/src/fault/varius.cpp" "src/fault/CMakeFiles/rlftnoc_fault.dir/varius.cpp.o" "gcc" "src/fault/CMakeFiles/rlftnoc_fault.dir/varius.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rlftnoc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/rlftnoc_coding.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
