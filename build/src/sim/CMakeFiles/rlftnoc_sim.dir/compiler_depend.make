# Empty compiler generated dependencies file for rlftnoc_sim.
# This may be replaced when dependencies are built.
