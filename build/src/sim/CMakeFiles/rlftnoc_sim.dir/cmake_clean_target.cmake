file(REMOVE_RECURSE
  "librlftnoc_sim.a"
)
