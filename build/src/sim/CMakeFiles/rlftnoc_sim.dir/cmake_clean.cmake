file(REMOVE_RECURSE
  "CMakeFiles/rlftnoc_sim.dir/campaign.cpp.o"
  "CMakeFiles/rlftnoc_sim.dir/campaign.cpp.o.d"
  "CMakeFiles/rlftnoc_sim.dir/options_io.cpp.o"
  "CMakeFiles/rlftnoc_sim.dir/options_io.cpp.o.d"
  "CMakeFiles/rlftnoc_sim.dir/results_io.cpp.o"
  "CMakeFiles/rlftnoc_sim.dir/results_io.cpp.o.d"
  "CMakeFiles/rlftnoc_sim.dir/simulator.cpp.o"
  "CMakeFiles/rlftnoc_sim.dir/simulator.cpp.o.d"
  "librlftnoc_sim.a"
  "librlftnoc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlftnoc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
