file(REMOVE_RECURSE
  "librlftnoc_rl.a"
)
