file(REMOVE_RECURSE
  "CMakeFiles/rlftnoc_rl.dir/qtable_io.cpp.o"
  "CMakeFiles/rlftnoc_rl.dir/qtable_io.cpp.o.d"
  "librlftnoc_rl.a"
  "librlftnoc_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlftnoc_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
