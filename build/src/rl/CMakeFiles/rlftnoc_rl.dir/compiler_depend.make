# Empty compiler generated dependencies file for rlftnoc_rl.
# This may be replaced when dependencies are built.
