# Empty compiler generated dependencies file for rlftnoc_common.
# This may be replaced when dependencies are built.
