file(REMOVE_RECURSE
  "CMakeFiles/rlftnoc_common.dir/bitvec.cpp.o"
  "CMakeFiles/rlftnoc_common.dir/bitvec.cpp.o.d"
  "CMakeFiles/rlftnoc_common.dir/config.cpp.o"
  "CMakeFiles/rlftnoc_common.dir/config.cpp.o.d"
  "CMakeFiles/rlftnoc_common.dir/log.cpp.o"
  "CMakeFiles/rlftnoc_common.dir/log.cpp.o.d"
  "CMakeFiles/rlftnoc_common.dir/rng.cpp.o"
  "CMakeFiles/rlftnoc_common.dir/rng.cpp.o.d"
  "CMakeFiles/rlftnoc_common.dir/stats.cpp.o"
  "CMakeFiles/rlftnoc_common.dir/stats.cpp.o.d"
  "librlftnoc_common.a"
  "librlftnoc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlftnoc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
