file(REMOVE_RECURSE
  "librlftnoc_common.a"
)
