
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/network.cpp" "src/noc/CMakeFiles/rlftnoc_noc.dir/network.cpp.o" "gcc" "src/noc/CMakeFiles/rlftnoc_noc.dir/network.cpp.o.d"
  "/root/repo/src/noc/ni.cpp" "src/noc/CMakeFiles/rlftnoc_noc.dir/ni.cpp.o" "gcc" "src/noc/CMakeFiles/rlftnoc_noc.dir/ni.cpp.o.d"
  "/root/repo/src/noc/router.cpp" "src/noc/CMakeFiles/rlftnoc_noc.dir/router.cpp.o" "gcc" "src/noc/CMakeFiles/rlftnoc_noc.dir/router.cpp.o.d"
  "/root/repo/src/noc/routing.cpp" "src/noc/CMakeFiles/rlftnoc_noc.dir/routing.cpp.o" "gcc" "src/noc/CMakeFiles/rlftnoc_noc.dir/routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rlftnoc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/rlftnoc_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/rlftnoc_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/rlftnoc_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
