# Empty compiler generated dependencies file for rlftnoc_noc.
# This may be replaced when dependencies are built.
