file(REMOVE_RECURSE
  "CMakeFiles/rlftnoc_noc.dir/network.cpp.o"
  "CMakeFiles/rlftnoc_noc.dir/network.cpp.o.d"
  "CMakeFiles/rlftnoc_noc.dir/ni.cpp.o"
  "CMakeFiles/rlftnoc_noc.dir/ni.cpp.o.d"
  "CMakeFiles/rlftnoc_noc.dir/router.cpp.o"
  "CMakeFiles/rlftnoc_noc.dir/router.cpp.o.d"
  "CMakeFiles/rlftnoc_noc.dir/routing.cpp.o"
  "CMakeFiles/rlftnoc_noc.dir/routing.cpp.o.d"
  "librlftnoc_noc.a"
  "librlftnoc_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlftnoc_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
