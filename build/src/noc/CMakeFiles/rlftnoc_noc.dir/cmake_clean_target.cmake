file(REMOVE_RECURSE
  "librlftnoc_noc.a"
)
