# Empty compiler generated dependencies file for rlftnoc_dt.
# This may be replaced when dependencies are built.
