file(REMOVE_RECURSE
  "librlftnoc_dt.a"
)
