file(REMOVE_RECURSE
  "CMakeFiles/rlftnoc_dt.dir/decision_tree.cpp.o"
  "CMakeFiles/rlftnoc_dt.dir/decision_tree.cpp.o.d"
  "librlftnoc_dt.a"
  "librlftnoc_dt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlftnoc_dt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
