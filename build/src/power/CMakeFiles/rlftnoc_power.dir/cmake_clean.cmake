file(REMOVE_RECURSE
  "CMakeFiles/rlftnoc_power.dir/orion_lite.cpp.o"
  "CMakeFiles/rlftnoc_power.dir/orion_lite.cpp.o.d"
  "librlftnoc_power.a"
  "librlftnoc_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlftnoc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
