# Empty dependencies file for rlftnoc_power.
# This may be replaced when dependencies are built.
