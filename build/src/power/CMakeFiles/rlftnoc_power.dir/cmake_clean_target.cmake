file(REMOVE_RECURSE
  "librlftnoc_power.a"
)
