file(REMOVE_RECURSE
  "CMakeFiles/rlftnoc_ftnoc.dir/controller.cpp.o"
  "CMakeFiles/rlftnoc_ftnoc.dir/controller.cpp.o.d"
  "CMakeFiles/rlftnoc_ftnoc.dir/rl_policy.cpp.o"
  "CMakeFiles/rlftnoc_ftnoc.dir/rl_policy.cpp.o.d"
  "librlftnoc_ftnoc.a"
  "librlftnoc_ftnoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlftnoc_ftnoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
