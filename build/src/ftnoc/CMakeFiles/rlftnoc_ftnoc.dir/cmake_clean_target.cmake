file(REMOVE_RECURSE
  "librlftnoc_ftnoc.a"
)
