# Empty compiler generated dependencies file for rlftnoc_ftnoc.
# This may be replaced when dependencies are built.
