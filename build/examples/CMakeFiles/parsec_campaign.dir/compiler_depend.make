# Empty compiler generated dependencies file for parsec_campaign.
# This may be replaced when dependencies are built.
