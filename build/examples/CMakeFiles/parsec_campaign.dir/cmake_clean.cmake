file(REMOVE_RECURSE
  "CMakeFiles/parsec_campaign.dir/parsec_campaign.cpp.o"
  "CMakeFiles/parsec_campaign.dir/parsec_campaign.cpp.o.d"
  "parsec_campaign"
  "parsec_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsec_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
