# Empty compiler generated dependencies file for rlftnoc_tests.
# This may be replaced when dependencies are built.
