
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bitvec.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_bitvec.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_bitvec.cpp.o.d"
  "/root/repo/tests/test_channel.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_channel.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_channel.cpp.o.d"
  "/root/repo/tests/test_config.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_config.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_config.cpp.o.d"
  "/root/repo/tests/test_controller.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_controller.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_controller.cpp.o.d"
  "/root/repo/tests/test_crc.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_crc.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_crc.cpp.o.d"
  "/root/repo/tests/test_dt.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_dt.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_dt.cpp.o.d"
  "/root/repo/tests/test_features.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_features.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_features.cpp.o.d"
  "/root/repo/tests/test_injector.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_injector.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_injector.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_link_arq.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_link_arq.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_link_arq.cpp.o.d"
  "/root/repo/tests/test_network_basic.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_network_basic.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_network_basic.cpp.o.d"
  "/root/repo/tests/test_network_faults.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_network_faults.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_network_faults.cpp.o.d"
  "/root/repo/tests/test_options_io.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_options_io.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_options_io.cpp.o.d"
  "/root/repo/tests/test_percentiles.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_percentiles.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_percentiles.cpp.o.d"
  "/root/repo/tests/test_pipeline_timing.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_pipeline_timing.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_pipeline_timing.cpp.o.d"
  "/root/repo/tests/test_policies.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_policies.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_policies.cpp.o.d"
  "/root/repo/tests/test_power.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_power.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_power.cpp.o.d"
  "/root/repo/tests/test_qtable_io.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_qtable_io.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_qtable_io.cpp.o.d"
  "/root/repo/tests/test_results_io.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_results_io.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_results_io.cpp.o.d"
  "/root/repo/tests/test_rl.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_rl.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_rl.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_routing.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_routing.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_routing.cpp.o.d"
  "/root/repo/tests/test_secded.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_secded.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_secded.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_thermal.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_thermal.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_thermal.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_traffic.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_traffic.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_traffic.cpp.o.d"
  "/root/repo/tests/test_varius.cpp" "tests/CMakeFiles/rlftnoc_tests.dir/test_varius.cpp.o" "gcc" "tests/CMakeFiles/rlftnoc_tests.dir/test_varius.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rlftnoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ftnoc/CMakeFiles/rlftnoc_ftnoc.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/rlftnoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/rlftnoc_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/rlftnoc_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/dt/CMakeFiles/rlftnoc_dt.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/rlftnoc_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/rlftnoc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/rlftnoc_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/rlftnoc_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rlftnoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
