# Empty dependencies file for bench_fig9_energy_efficiency.
# This may be replaced when dependencies are built.
