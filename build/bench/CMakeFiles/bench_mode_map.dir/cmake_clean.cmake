file(REMOVE_RECURSE
  "CMakeFiles/bench_mode_map.dir/bench_mode_map.cpp.o"
  "CMakeFiles/bench_mode_map.dir/bench_mode_map.cpp.o.d"
  "bench_mode_map"
  "bench_mode_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mode_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
