# Empty dependencies file for bench_mode_map.
# This may be replaced when dependencies are built.
