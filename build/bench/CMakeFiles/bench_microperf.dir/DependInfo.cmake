
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_microperf.cpp" "bench/CMakeFiles/bench_microperf.dir/bench_microperf.cpp.o" "gcc" "bench/CMakeFiles/bench_microperf.dir/bench_microperf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rlftnoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ftnoc/CMakeFiles/rlftnoc_ftnoc.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/rlftnoc_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/rlftnoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/rlftnoc_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/rlftnoc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/rlftnoc_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/rlftnoc_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/rlftnoc_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/dt/CMakeFiles/rlftnoc_dt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rlftnoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
