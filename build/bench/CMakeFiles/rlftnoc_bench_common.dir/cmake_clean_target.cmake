file(REMOVE_RECURSE
  "librlftnoc_bench_common.a"
)
