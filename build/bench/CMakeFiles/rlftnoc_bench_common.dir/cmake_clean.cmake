file(REMOVE_RECURSE
  "CMakeFiles/rlftnoc_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/rlftnoc_bench_common.dir/bench_common.cpp.o.d"
  "librlftnoc_bench_common.a"
  "librlftnoc_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlftnoc_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
