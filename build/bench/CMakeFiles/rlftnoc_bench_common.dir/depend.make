# Empty dependencies file for rlftnoc_bench_common.
# This may be replaced when dependencies are built.
