# Empty dependencies file for bench_fig6_retransmission.
# This may be replaced when dependencies are built.
