file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_retransmission.dir/bench_fig6_retransmission.cpp.o"
  "CMakeFiles/bench_fig6_retransmission.dir/bench_fig6_retransmission.cpp.o.d"
  "bench_fig6_retransmission"
  "bench_fig6_retransmission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_retransmission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
