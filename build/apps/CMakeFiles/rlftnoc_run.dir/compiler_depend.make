# Empty compiler generated dependencies file for rlftnoc_run.
# This may be replaced when dependencies are built.
