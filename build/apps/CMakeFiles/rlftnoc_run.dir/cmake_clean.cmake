file(REMOVE_RECURSE
  "CMakeFiles/rlftnoc_run.dir/rlftnoc_run.cpp.o"
  "CMakeFiles/rlftnoc_run.dir/rlftnoc_run.cpp.o.d"
  "rlftnoc_run"
  "rlftnoc_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlftnoc_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
