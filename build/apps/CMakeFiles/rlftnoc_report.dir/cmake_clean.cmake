file(REMOVE_RECURSE
  "CMakeFiles/rlftnoc_report.dir/rlftnoc_report.cpp.o"
  "CMakeFiles/rlftnoc_report.dir/rlftnoc_report.cpp.o.d"
  "rlftnoc_report"
  "rlftnoc_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlftnoc_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
