# Empty compiler generated dependencies file for rlftnoc_report.
# This may be replaced when dependencies are built.
