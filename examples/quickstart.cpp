// Quickstart: run one PARSEC-like benchmark under the RL policy and the CRC
// baseline, and print the headline metrics side by side.
//
//   ./quickstart [benchmark] [seed]
//
// Benchmarks: blackscholes bodytrack canneal dedup ferret fluidanimate
//             swaptions x264          (default: canneal)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/simulator.h"
#include "traffic/parsec.h"

using namespace rlftnoc;

namespace {

SimResult run_one(PolicyKind policy, const std::string& bench, std::uint64_t seed) {
  SimOptions opt;
  opt.policy = policy;
  opt.seed = seed;
  // Keep the demo snappy: shorter pretrain and a reduced packet budget.
  opt.pretrain_cycles = 120000;
  opt.warmup_cycles = 30000;

  Simulator sim(opt);
  ParsecProfile profile = parsec_profile(bench);
  profile.total_packets /= 2;  // demo-sized execution
  ParsecTraffic traffic(MeshTopology(opt.noc), profile, seed);
  return sim.run(traffic);
}

void print_result(const SimResult& r) {
  std::printf("%-8s exec=%9llu cyc  lat=%7.1f cyc  retxFlits=%8llu  "
              "eff=%6.3f flits/nJ  dynPwr=%6.3f W  T=%4.0f/%4.0f C  "
              "modes=[%.2f %.2f %.2f %.2f]\n",
              r.policy.c_str(),
              static_cast<unsigned long long>(r.execution_cycles),
              r.avg_packet_latency,
              static_cast<unsigned long long>(r.retransmitted_flits),
              r.energy_efficiency, r.avg_dynamic_power_w, r.avg_temperature_c,
              r.max_temperature_c, r.mode_fraction[0], r.mode_fraction[1],
              r.mode_fraction[2], r.mode_fraction[3]);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string bench = argc > 1 ? argv[1] : "canneal";
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  std::printf("rlftnoc quickstart: benchmark '%s', 8x8 mesh, seed %llu\n",
              bench.c_str(), static_cast<unsigned long long>(seed));

  const SimResult crc = run_one(PolicyKind::kStaticCrc, bench, seed);
  print_result(crc);
  const SimResult rl = run_one(PolicyKind::kRl, bench, seed);
  print_result(rl);

  if (crc.avg_packet_latency > 0.0 && crc.retransmitted_flits > 0) {
    std::printf("\nRL vs CRC: latency %+.1f%%, retransmission %+.1f%%, "
                "energy efficiency %+.1f%%\n",
                (rl.avg_packet_latency / crc.avg_packet_latency - 1.0) * 100.0,
                (static_cast<double>(rl.retransmitted_flits) /
                     static_cast<double>(crc.retransmitted_flits) -
                 1.0) * 100.0,
                (rl.energy_efficiency / crc.energy_efficiency - 1.0) * 100.0);
  }
  return 0;
}
