// Fault-sweep example: scale the timing-error probability globally
// (simulating harsher process/thermal corners than the nominal calibration)
// and watch each policy's latency and retransmission traffic respond. This
// is where the higher operation modes earn their keep.
//
//   ./fault_sweep [benchmark]
#include <cstdio>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "traffic/parsec.h"

using namespace rlftnoc;

int main(int argc, char** argv) {
  const std::string bench = argc > 1 ? argv[1] : "bodytrack";
  const std::vector<double> scales = {0.25, 1.0, 4.0, 10.0};
  const std::vector<PolicyKind> policies = {
      PolicyKind::kStaticCrc, PolicyKind::kStaticArqEcc, PolicyKind::kOracle,
      PolicyKind::kRl};

  std::printf("fault sweep on '%s' (error_scale multiplies the VARIUS "
              "probability on every link)\n\n",
              bench.c_str());
  std::printf("%-8s", "scale");
  for (const PolicyKind p : policies) std::printf("%22s", policy_name(p));
  std::printf("\n%-8s", "");
  for (std::size_t i = 0; i < policies.size(); ++i) std::printf("%22s", "lat / faultRetx");
  std::printf("\n");

  for (const double scale : scales) {
    std::printf("%-8.2f", scale);
    for (const PolicyKind pol : policies) {
      SimOptions opt;
      opt.policy = pol;
      opt.seed = 3;
      opt.error_scale = scale;
      opt.pretrain_cycles = 250000;
      Simulator sim(opt);
      ParsecProfile prof = parsec_profile(bench);
      prof.total_packets /= 3;
      ParsecTraffic gen(MeshTopology(opt.noc), prof, opt.seed);
      const SimResult r = sim.run(gen);
      char cell[64];
      std::snprintf(cell, sizeof cell, "%.0f / %llu%s", r.avg_packet_latency,
                    static_cast<unsigned long long>(r.retx_flits_e2e +
                                                    r.retx_flits_hop),
                    r.drained ? "" : "*");
      std::printf("%22s", cell);
    }
    std::printf("\n");
  }
  std::printf("\n(* = run hit the cycle guard before draining)\n");
  std::printf("expected shape: CRC degrades steeply with scale; the adaptive "
              "policies escalate modes and stay close to the best static.\n");
  return 0;
}
