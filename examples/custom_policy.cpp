// Custom-policy example: the ControlPolicy interface is the extension point
// of the library. This defines a hand-written temperature-threshold policy
// with hysteresis (no learning, no ground truth) and races it against the
// built-in RL policy and the static baselines on one benchmark.
//
//   ./custom_policy [benchmark] [seed]
#include <cstdio>
#include <string>
#include <vector>

#include "ftnoc/policy.h"
#include "sim/simulator.h"
#include "traffic/parsec.h"

using namespace rlftnoc;

namespace {

/// Escalates by local temperature with 3 C of hysteresis, and drops to the
/// relaxed mode only when NACKs prove the errors are beating SECDED.
class ThermalHysteresisPolicy final : public ControlPolicy {
 public:
  const char* name() const override { return "thermal-hys"; }

  OpMode decide(NodeId router, const FeatureSnapshot& s, double) override {
    if (last_.size() <= static_cast<std::size_t>(router))
      last_.resize(static_cast<std::size_t>(router) + 1, OpMode::kMode0);
    OpMode& mode = last_[static_cast<std::size_t>(router)];

    double max_nack = 0.0;
    for (const double n : s.in_nack_rate) max_nack = std::max(max_nack, n);

    const double up = s.temperature_c;
    const double down = s.temperature_c + 3.0;  // hysteresis band
    if (mode == OpMode::kMode0 && up > 72.0) mode = OpMode::kMode1;
    if (mode != OpMode::kMode0 && down < 72.0) mode = OpMode::kMode0;
    if (mode == OpMode::kMode1 && max_nack > 0.05) mode = OpMode::kMode3;
    if (mode == OpMode::kMode3 && max_nack < 0.01 && down < 95.0)
      mode = OpMode::kMode1;
    return mode;
  }

 private:
  std::vector<OpMode> last_;
};

SimResult run(const std::string& bench, std::uint64_t seed,
              std::unique_ptr<ControlPolicy> policy, PolicyKind kind) {
  SimOptions opt;
  opt.policy = kind;
  opt.seed = seed;
  opt.pretrain_cycles = 300000;
  Simulator sim = policy ? Simulator(opt, std::move(policy)) : Simulator(opt);
  ParsecProfile prof = parsec_profile(bench);
  prof.total_packets /= 2;
  ParsecTraffic gen(MeshTopology(opt.noc), prof, seed);
  return sim.run(gen);
}

void show(const SimResult& r) {
  std::printf("%-12s lat=%7.1f cyc  faultRetx=%8llu  eff=%5.2f flits/nJ  "
              "modes=[%.2f %.2f %.2f %.2f]\n",
              r.policy.c_str(), r.avg_packet_latency,
              static_cast<unsigned long long>(r.retx_flits_e2e + r.retx_flits_hop),
              r.energy_efficiency, r.mode_fraction[0], r.mode_fraction[1],
              r.mode_fraction[2], r.mode_fraction[3]);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string bench = argc > 1 ? argv[1] : "ferret";
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  std::printf("custom policy vs built-ins on '%s'\n", bench.c_str());
  show(run(bench, seed, nullptr, PolicyKind::kStaticCrc));
  show(run(bench, seed, nullptr, PolicyKind::kStaticArqEcc));
  show(run(bench, seed, std::make_unique<ThermalHysteresisPolicy>(),
           PolicyKind::kStaticCrc));
  show(run(bench, seed, nullptr, PolicyKind::kRl));
  return 0;
}
