// Campaign example: run a subset of the PARSEC-like suite across all four
// policies and print every figure's normalized table in one go.
//
//   ./parsec_campaign [--scale=N] [--jobs=N] [bench1 bench2 ...]
//
// Default: three representative benchmarks (light / medium / heavy) at 25%
// packet budget, so it finishes in a few minutes. See bench/ for the full
// per-figure harnesses.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "sim/campaign.h"

using namespace rlftnoc;

int main(int argc, char** argv) {
  std::uint64_t scale = 25;
  unsigned jobs = 1;
  std::vector<std::string> benchmarks;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--scale=", 0) == 0) {
      scale = std::strtoull(a.c_str() + 8, nullptr, 10);
    } else if (a.rfind("--jobs=", 0) == 0) {
      jobs = static_cast<unsigned>(std::strtoul(a.c_str() + 7, nullptr, 10));
    } else {
      benchmarks.push_back(a);
    }
  }
  if (benchmarks.empty()) benchmarks = {"blackscholes", "ferret", "canneal"};

  SimOptions base;
  base.seed = 11;
  base.jobs = jobs;

  const std::vector<PolicyKind> policies = {
      PolicyKind::kStaticCrc, PolicyKind::kStaticArqEcc, PolicyKind::kDecisionTree,
      PolicyKind::kRl};

  const CampaignResults res = run_campaign(base, benchmarks, policies, scale);

  print_normalized_table(std::cout, res, "Fig. 6: fault retransmissions",
                         [](const SimResult& r) {
                           return static_cast<double>(r.retx_flits_e2e +
                                                      r.retx_flits_hop);
                         },
                         false);
  print_normalized_table(std::cout, res, "Fig. 7: execution time (lower = faster)",
                         metric_exec_speedup_inverse, false);
  print_normalized_table(std::cout, res, "Fig. 8: avg end-to-end latency",
                         metric_latency, false);
  print_normalized_table(std::cout, res, "Fig. 9: energy efficiency",
                         metric_energy_efficiency, true);
  print_normalized_table(std::cout, res, "Fig. 10: dynamic power",
                         metric_dynamic_power, false);

  std::printf("\nper-run detail:\n");
  for (std::size_t b = 0; b < res.benchmarks.size(); ++b) {
    for (std::size_t p = 0; p < res.policies.size(); ++p) {
      const SimResult& r = res.at(b, p);
      std::printf("  %-13s %-8s lat=%7.1f cyc  T=%3.0f/%3.0f C  "
                  "modes=[%.2f %.2f %.2f %.2f]%s\n",
                  r.workload.c_str(), r.policy.c_str(), r.avg_packet_latency,
                  r.avg_temperature_c, r.max_temperature_c, r.mode_fraction[0],
                  r.mode_fraction[1], r.mode_fraction[2], r.mode_fraction[3],
                  r.drained ? "" : "  [NOT DRAINED]");
    }
  }
  return 0;
}
