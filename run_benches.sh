#!/bin/sh
# Runs every bench binary in dependency-friendly order (the campaign cache
# is produced by the first figure bench and reused by the rest).
set -e
cd "$(dirname "$0")"
for b in \
  build/bench/bench_table2_config \
  build/bench/bench_overheads \
  build/bench/bench_fig6_retransmission \
  build/bench/bench_fig7_speedup \
  build/bench/bench_fig8_latency \
  build/bench/bench_fig9_energy_efficiency \
  build/bench/bench_fig10_dynamic_power \
  build/bench/bench_ablation_modes \
  build/bench/bench_ablation_rl \
  build/bench/bench_latency_throughput \
  build/bench/bench_mode_map \
  build/bench/bench_microperf; do
  echo "===== $b ====="
  "$b" "$@"
done
