#!/bin/sh
# Runs every bench binary in dependency-friendly order (the campaign cache
# is produced by the first figure bench and reused by the rest), then the
# perf-tracking benches, which emit BENCH_microperf.json, BENCH_campaign.json,
# BENCH_scaling.json and BENCH_faults.json. tools/bench_summary.py turns those into a summary
# table and (with --check) a regression gate against the committed baseline.
set -e
cd "$(dirname "$0")"
for b in \
  build/bench/bench_table2_config \
  build/bench/bench_overheads \
  build/bench/bench_fig6_retransmission \
  build/bench/bench_fig7_speedup \
  build/bench/bench_fig8_latency \
  build/bench/bench_fig9_energy_efficiency \
  build/bench/bench_fig10_dynamic_power \
  build/bench/bench_ablation_modes \
  build/bench/bench_ablation_rl \
  build/bench/bench_latency_throughput \
  build/bench/bench_mode_map; do
  echo "===== $b ====="
  "$b" "$@"
done

echo "===== build/bench/bench_microperf ====="
build/bench/bench_microperf \
  --benchmark_out=BENCH_microperf.json --benchmark_out_format=json

echo "===== build/bench/bench_campaign ====="
build/bench/bench_campaign --out=BENCH_campaign.json

echo "===== build/bench/bench_scaling ====="
build/bench/bench_scaling --out=BENCH_scaling.json

echo "===== build/bench/bench_faults ====="
build/bench/bench_faults --out=BENCH_faults.json

echo "===== perf summary ====="
python3 tools/bench_summary.py BENCH_microperf.json BENCH_campaign.json \
  --scaling BENCH_scaling.json --faults BENCH_faults.json
