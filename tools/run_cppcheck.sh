#!/usr/bin/env bash
# Advisory cppcheck sweep over first-party sources. Complements rlftnoc_lint
# (project-specific determinism rules) with generic C++ defect patterns.
#
# Usage:
#   tools/run_cppcheck.sh [--base <git-ref>] [-- extra cppcheck args]
#
# The suppression list is pinned at tools/lint/cppcheck_suppressions.txt so
# CI noise is a reviewed, committed artifact rather than per-run flags.
#
# Exit status: cppcheck's own (0 clean, 1 findings); 0 with a notice when
# cppcheck is not installed — this sweep is advisory, so an environment
# without the tool must not fail the caller.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
base=""
extra=()
while [ $# -gt 0 ]; do
  case "$1" in
    --base)
      [ $# -ge 2 ] || { echo "run_cppcheck.sh: --base needs a ref" >&2; exit 2; }
      base="$2"; shift 2 ;;
    --)
      shift; extra=("$@"); break ;;
    *)
      echo "run_cppcheck.sh: unknown argument $1" >&2; exit 2 ;;
  esac
done

if ! command -v cppcheck >/dev/null 2>&1; then
  echo "run_cppcheck.sh: cppcheck not installed; skipping (advisory)" >&2
  exit 0
fi

args=(--ext cpp src apps)
[ -n "$base" ] && args=(--ext cpp --base "$base" src apps)
mapfile -t sources < <("$repo_root/tools/changed_files.sh" "${args[@]}")
if [ "${#sources[@]}" -eq 0 ]; then
  echo "run_cppcheck.sh: nothing to check" >&2
  exit 0
fi

cd "$repo_root"
exec cppcheck \
  --std=c++20 --language=c++ \
  --enable=warning,performance,portability \
  --inline-suppr \
  --suppressions-list=tools/lint/cppcheck_suppressions.txt \
  -I src \
  --error-exitcode=1 \
  "${extra[@]}" \
  "${sources[@]}"
