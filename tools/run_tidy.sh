#!/usr/bin/env bash
# clang-tidy driver over the project's compilation database.
#
# Usage:
#   tools/run_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# The build dir must hold a compile_commands.json (the root CMakeLists sets
# CMAKE_EXPORT_COMPILE_COMMANDS, so any configured build tree works):
#   cmake -B build -S .
#   tools/run_tidy.sh build
#
# Environment:
#   CLANG_TIDY  override the clang-tidy binary (default: newest on PATH)
#   TIDY_JOBS   parallel workers (default: nproc)
#
# Exit status: 0 = clean, 1 = findings (the .clang-tidy config promotes all
# warnings to errors), 2 = environment problem (no clang-tidy, no database).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true
[ "${1:-}" = "--" ] && shift

find_clang_tidy() {
  if [ -n "${CLANG_TIDY:-}" ]; then
    echo "$CLANG_TIDY"
    return
  fi
  # Prefer a versioned binary (newest first), fall back to the plain name.
  for ver in 21 20 19 18 17 16 15 14; do
    if command -v "clang-tidy-$ver" >/dev/null 2>&1; then
      echo "clang-tidy-$ver"
      return
    fi
  done
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy"
    return
  fi
  echo ""
}

tidy="$(find_clang_tidy)"
if [ -z "$tidy" ]; then
  echo "run_tidy.sh: clang-tidy not found on PATH (set CLANG_TIDY to override)" >&2
  exit 2
fi

db="$build_dir/compile_commands.json"
if [ ! -f "$db" ]; then
  echo "run_tidy.sh: $db not found — configure first: cmake -B $build_dir -S $repo_root" >&2
  exit 2
fi

jobs="${TIDY_JOBS:-$(nproc 2>/dev/null || echo 2)}"

# First-party translation units only: the library core, the CLIs and the
# examples. Tests and benches follow gtest/benchmark idioms that trip
# several checks (e.g. bugprone-unchecked-optional-access on ASSERT paths)
# without guarding any shipping code. The file list comes from the shared
# enumerator so tidy, lint and cppcheck agree on what "first-party" means.
mapfile -t sources < <(
  "$repo_root/tools/changed_files.sh" --ext cpp src apps examples |
  while IFS= read -r f; do printf '%s\n' "$repo_root/$f"; done)

if [ "${#sources[@]}" -eq 0 ]; then
  echo "run_tidy.sh: no sources found" >&2
  exit 2
fi

echo "run_tidy.sh: $tidy over ${#sources[@]} files ($jobs jobs)" >&2

status=0
printf '%s\0' "${sources[@]}" |
  xargs -0 -n 1 -P "$jobs" "$tidy" -p "$build_dir" --quiet "$@" || status=1

if [ "$status" -ne 0 ]; then
  echo "run_tidy.sh: clang-tidy reported findings" >&2
  exit 1
fi
echo "run_tidy.sh: clean" >&2
