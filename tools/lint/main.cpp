// rlftnoc_lint CLI. See lint.h for the rule set and directives.
//
// Usage:
//   rlftnoc_lint [options] [files...]
//
// With no file arguments, scans src/, apps/ and bench/ under --repo-root.
// Exit status: 0 clean, 1 findings (or stale baseline under
// --require-tight-baseline), 2 usage/environment error.
//
// Options:
//   --repo-root DIR            repository root (default: cwd)
//   --baseline FILE            absorb grandfathered findings from FILE
//   --update-baseline FILE     rewrite FILE from the current findings
//   --require-tight-baseline   fail if any baseline budget is no longer used
//   --json FILE                write the machine-readable report to FILE
//   --verbose                  also print suppressed/baselined findings
//   --list-rules               print the rule catalogue and exit

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

using rlftnoc::lint::Baseline;
using rlftnoc::lint::Finding;
using rlftnoc::lint::LintConfig;

constexpr const char* kRuleCatalogue =
    "R1 no-unordered-iteration   iterating std::unordered_{map,set} in\n"
    "                            determinism-critical dirs (src/noc, src/sim,\n"
    "                            src/telemetry, src/rl, src/dt)\n"
    "R2 no-ambient-entropy       random_device/rand/time()/chrono clocks\n"
    "                            outside src/common/rng.*\n"
    "R3 no-bare-assert           assert() must be RLFTNOC_CHECK\n"
    "R4 hot-path-container-bans  std::deque/map/list and throwing .at() in\n"
    "                            per-cycle step-path files\n"
    "R5 float-accumulation-order float/double += in range-for bodies needs a\n"
    "                            `// rlftnoc-lint: ordered` attestation\n"
    "\n"
    "directives (in comments):\n"
    "  rlftnoc-lint: allow(R1,R2) <reason>   suppress on this + next line\n"
    "  rlftnoc-lint: ordered                 R5 attestation\n"
    "  rlftnoc-lint: hot-path                mark file as per-cycle path\n"
    "  rlftnoc-lint: determinism-critical    opt file into R1/R5 scope\n";

int usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "rlftnoc_lint: %s\n", msg);
  std::fprintf(stderr,
               "usage: rlftnoc_lint [--repo-root DIR] [--baseline FILE] "
               "[--update-baseline FILE]\n"
               "                    [--require-tight-baseline] [--json FILE] "
               "[--verbose] [--list-rules] [files...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  LintConfig cfg;
  std::string baseline_path;
  std::string update_baseline_path;
  std::string json_path;
  bool require_tight = false;
  bool verbose = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--repo-root") {
      const char* v = value();
      if (v == nullptr) return usage("--repo-root needs a value");
      cfg.repo_root = v;
    } else if (arg == "--baseline") {
      const char* v = value();
      if (v == nullptr) return usage("--baseline needs a value");
      baseline_path = v;
    } else if (arg == "--update-baseline") {
      const char* v = value();
      if (v == nullptr) return usage("--update-baseline needs a value");
      update_baseline_path = v;
    } else if (arg == "--json") {
      const char* v = value();
      if (v == nullptr) return usage("--json needs a value");
      json_path = v;
    } else if (arg == "--require-tight-baseline") {
      require_tight = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--list-rules") {
      std::fputs(kRuleCatalogue, stdout);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(nullptr);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(("unknown option " + arg).c_str());
    } else {
      files.push_back(arg);
    }
  }

  try {
    if (files.empty()) files = rlftnoc::lint::discover_files(cfg);
    if (files.empty()) return usage("no files to lint");

    std::vector<Finding> findings;
    for (const std::string& f : files) {
      std::vector<Finding> one = rlftnoc::lint::lint_file(f, cfg);
      findings.insert(findings.end(), one.begin(), one.end());
    }

    std::vector<std::string> stale;
    if (!baseline_path.empty()) {
      const Baseline b = rlftnoc::lint::read_baseline_file(baseline_path);
      stale = rlftnoc::lint::apply_baseline(findings, b);
    } else {
      std::sort(findings.begin(), findings.end(),
                rlftnoc::lint::finding_order);
    }

    if (!update_baseline_path.empty()) {
      std::ofstream out(update_baseline_path);
      if (!out) {
        std::fprintf(stderr, "rlftnoc_lint: cannot write %s\n",
                     update_baseline_path.c_str());
        return 2;
      }
      rlftnoc::lint::write_baseline(out, findings);
      std::fprintf(stderr, "rlftnoc_lint: baseline written to %s\n",
                   update_baseline_path.c_str());
    }

    if (!json_path.empty()) {
      std::ofstream out(json_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "rlftnoc_lint: cannot write %s\n",
                     json_path.c_str());
        return 2;
      }
      rlftnoc::lint::write_json(out, findings, stale, files.size());
    }

    rlftnoc::lint::write_text(std::cout, findings, verbose);

    std::size_t active = 0;
    std::size_t suppressed = 0;
    for (const Finding& f : findings) {
      if (f.suppressed) ++suppressed;
      else if (!f.baselined) ++active;
    }
    std::fprintf(stderr,
                 "rlftnoc_lint: %zu files, %zu findings "
                 "(%zu active, %zu baselined, %zu suppressed)\n",
                 files.size(), findings.size(), active,
                 findings.size() - active - suppressed, suppressed);

    if (require_tight && !stale.empty()) {
      for (const std::string& s : stale) {
        std::fprintf(stderr,
                     "rlftnoc_lint: stale baseline entry (%s) — the "
                     "baseline must shrink when findings are fixed\n",
                     s.c_str());
      }
      return 1;
    }
    return active == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rlftnoc_lint: %s\n", e.what());
    return 2;
  }
}
