// Rule implementations for rlftnoc_lint (see lint.h for the rule list).
//
// Everything here works on the token stream from lexer.h plus a handful of
// per-file "lightweight parse" passes: declaration collection (which
// variables are unordered containers / floating-point accumulators), loop
// extent detection (range-for headers and body line ranges), and comment
// directive parsing. That is deliberately far short of a C++ front end —
// the rules are spelled so that lexical evidence is sufficient, and the
// known blind spots (cross-file type inference beyond the sibling header)
// are documented in DESIGN.md.
//
// The linter dogfoods its own rules: ordered containers only, no ambient
// entropy, deterministic output byte-for-byte.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"
#include "lint/lint.h"

namespace rlftnoc::lint {
namespace {

const std::set<std::string>& unordered_type_names() {
  static const std::set<std::string> kNames = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset", "flat_hash_map", "flat_hash_set"};
  return kNames;
}

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::Punct && t.text == s;
}
bool is_ident(const Token& t, const char* s) {
  return t.kind == TokKind::Ident && t.text == s;
}

/// Skips a balanced <...> starting at tokens[i] == "<"; returns the index
/// just past the closing ">". ">>" closes two levels. Returns i on failure.
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i) {
  if (!is_punct(toks[i], "<")) return i;
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (t.kind == TokKind::End) break;
    if (is_punct(t, "<")) ++depth;
    else if (is_punct(t, "<<")) depth += 2;
    else if (is_punct(t, ">")) --depth;
    else if (is_punct(t, ">>")) depth -= 2;
    else if (is_punct(t, ";")) break;  // never spans statements
    if (depth <= 0) return j + 1;
  }
  return i;
}

/// Skips a balanced bracket pair backwards: tokens[i] is the closer;
/// returns the index of the matching opener, or i if unbalanced.
std::size_t skip_back(const std::vector<Token>& toks, std::size_t i,
                      const char* open, const char* close) {
  int depth = 0;
  for (std::size_t j = i + 1; j-- > 0;) {
    if (is_punct(toks[j], close)) ++depth;
    else if (is_punct(toks[j], open)) {
      --depth;
      if (depth == 0) return j;
    }
  }
  return i;
}

struct Decls {
  std::set<std::string> unordered_vars;
  std::set<std::string> unordered_aliases;  // using X = std::unordered_map<..>
  std::set<std::string> float_vars;
};

/// Records variable names declared right after a type at `j` (the token past
/// the type, its template args and any cv/ref/ptr decoration).
void take_declarators(const std::vector<Token>& toks, std::size_t j,
                      std::set<std::string>& out) {
  while (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
         is_ident(toks[j], "const") || is_punct(toks[j], "&&")) {
    ++j;
  }
  if (toks[j].kind != TokKind::Ident) return;
  const std::string& name = toks[j].text;
  const Token& after = toks[j + 1];
  // `name(` is a function declaration/call, not a variable.
  if (is_punct(after, ";") || is_punct(after, "=") || is_punct(after, "{") ||
      is_punct(after, ",") || is_punct(after, ")") || is_punct(after, "[")) {
    out.insert(name);
    // Comma chains: `T a, b;`
    std::size_t k = j + 1;
    while (is_punct(toks[k], ",") && toks[k + 1].kind == TokKind::Ident &&
           (is_punct(toks[k + 2], ";") || is_punct(toks[k + 2], ",") ||
            is_punct(toks[k + 2], "=") || is_punct(toks[k + 2], "{"))) {
      out.insert(toks[k + 1].text);
      k += 2;
      while (!is_punct(toks[k], ",") && !is_punct(toks[k], ";") &&
             toks[k].kind != TokKind::End) {
        ++k;
      }
    }
  }
}

Decls collect_decls(const LexedFile& lex) {
  Decls d;
  const std::vector<Token>& toks = lex.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Ident) continue;
    if (unordered_type_names().count(t.text) != 0) {
      // `using Alias = std::unordered_map<...>`?
      std::size_t type_start = i;
      if (i >= 2 && is_punct(toks[i - 1], "::") &&
          toks[i - 2].kind == TokKind::Ident) {
        type_start = i - 2;
      }
      if (type_start >= 2 && is_punct(toks[type_start - 1], "=") &&
          toks[type_start - 2].kind == TokKind::Ident && type_start >= 3 &&
          is_ident(toks[type_start - 3], "using")) {
        d.unordered_aliases.insert(toks[type_start - 2].text);
        continue;
      }
      std::size_t j = i + 1;
      if (is_punct(toks[j], "<")) j = skip_angles(toks, j);
      take_declarators(toks, j, d.unordered_vars);
    } else if (t.text == "double" || t.text == "float") {
      take_declarators(toks, i + 1, d.float_vars);
    }
  }
  // Second pass: declarations whose type is a recorded unordered alias.
  if (!d.unordered_aliases.empty()) {
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind == TokKind::Ident &&
          d.unordered_aliases.count(toks[i].text) != 0 &&
          !is_punct(toks[i + 1], "=")) {
        take_declarators(toks, i + 1, d.unordered_vars);
      }
    }
  }
  return d;
}

// -- directives -----------------------------------------------------------

struct Directives {
  /// line -> rules inline-allowed there (directive covers its own line and
  /// the next, so a comment-above and a trailing comment both work).
  std::map<int, std::set<std::string>> allows;
  std::map<int, std::string> allow_reasons;  // first reason per line, for JSON
  std::set<int> ordered_lines;               // R5 attestation coverage
  bool hot_path = false;
  bool determinism_critical = false;
};

std::string trim(const std::string& s) {
  std::size_t a = s.find_first_not_of(" \t");
  if (a == std::string::npos) return "";
  std::size_t b = s.find_last_not_of(" \t");
  return s.substr(a, b - a + 1);
}

Directives parse_directives(const LexedFile& lex, const std::string& path,
                            std::vector<Finding>& findings) {
  Directives d;
  const std::set<std::string> kRules = {"R1", "R2", "R3", "R4", "R5"};
  for (const CommentLine& c : lex.comments) {
    const std::size_t pos = c.text.find("rlftnoc-lint:");
    if (pos == std::string::npos) continue;
    const std::string body = trim(c.text.substr(pos + 13));
    auto bad = [&](const std::string& why) {
      findings.push_back(Finding{"R0", path, c.line, 1,
                                 "malformed rlftnoc-lint directive (" + why +
                                     "): '" + body + "'"});
    };
    if (body.rfind("allow(", 0) == 0) {
      const std::size_t close = body.find(')');
      if (close == std::string::npos) {
        bad("unclosed allow(");
        continue;
      }
      const std::string reason = trim(body.substr(close + 1));
      if (reason.empty()) {
        bad("allow() requires a reason");
        continue;
      }
      std::string rules = body.substr(6, close - 6);
      bool ok = true;
      std::set<std::string> parsed;
      std::size_t start = 0;
      while (start <= rules.size()) {
        std::size_t comma = rules.find(',', start);
        const std::string r =
            trim(rules.substr(start, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - start));
        if (kRules.count(r) == 0) {
          ok = false;
          break;
        }
        parsed.insert(r);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (!ok || parsed.empty()) {
        bad("unknown rule id");
        continue;
      }
      for (const std::string& r : parsed) {
        d.allows[c.line].insert(r);
        d.allows[c.line + 1].insert(r);
      }
      d.allow_reasons.emplace(c.line, reason);
      d.allow_reasons.emplace(c.line + 1, reason);
    } else if (body == "ordered" || body.rfind("ordered ", 0) == 0 ||
               body.rfind("ordered(", 0) == 0) {
      d.ordered_lines.insert(c.line);
      d.ordered_lines.insert(c.line + 1);
    } else if (body == "hot-path" || body.rfind("hot-path ", 0) == 0 ||
               body.rfind("hot-path(", 0) == 0) {
      d.hot_path = true;
    } else if (body == "determinism-critical" ||
               body.rfind("determinism-critical ", 0) == 0 ||
               body.rfind("determinism-critical(", 0) == 0) {
      d.determinism_critical = true;
    } else {
      bad("unknown directive");
    }
  }
  return d;
}

// -- loop extents ---------------------------------------------------------

struct RangeLoop {
  int header_line = 0;
  int body_first_line = 0;
  int body_last_line = 0;
  std::size_t range_begin = 0;  // token span of the expression after ':'
  std::size_t range_end = 0;
};

std::vector<RangeLoop> find_range_loops(const std::vector<Token>& toks) {
  std::vector<RangeLoop> loops;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "for") || !is_punct(toks[i + 1], "(")) continue;
    // Find the matching ')'.
    int depth = 0;
    std::size_t close = 0;
    std::size_t colon = 0;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind == TokKind::End) break;
      if (is_punct(toks[j], "(")) ++depth;
      else if (is_punct(toks[j], ")")) {
        --depth;
        if (depth == 0) {
          close = j;
          break;
        }
      } else if (depth == 1 && colon == 0 && is_punct(toks[j], ":")) {
        colon = j;
      }
    }
    if (close == 0 || colon == 0) continue;  // classic for or unbalanced
    RangeLoop loop;
    loop.header_line = toks[i].line;
    loop.range_begin = colon + 1;
    loop.range_end = close;
    // Body: `{...}` or a single statement up to ';'.
    std::size_t b = close + 1;
    if (is_punct(toks[b], "{")) {
      int bd = 0;
      std::size_t j = b;
      for (; j < toks.size() && toks[j].kind != TokKind::End; ++j) {
        if (is_punct(toks[j], "{")) ++bd;
        else if (is_punct(toks[j], "}")) {
          --bd;
          if (bd == 0) break;
        }
      }
      loop.body_first_line = toks[b].line;
      loop.body_last_line = toks[j < toks.size() ? j : toks.size() - 1].line;
    } else {
      std::size_t j = b;
      int pd = 0;
      for (; j < toks.size() && toks[j].kind != TokKind::End; ++j) {
        if (is_punct(toks[j], "(") || is_punct(toks[j], "[")) ++pd;
        else if (is_punct(toks[j], ")") || is_punct(toks[j], "]")) --pd;
        else if (pd == 0 && is_punct(toks[j], ";")) break;
      }
      loop.body_first_line = toks[b].line;
      loop.body_last_line = toks[j < toks.size() ? j : toks.size() - 1].line;
    }
    loops.push_back(loop);
  }
  return loops;
}

// -- scoping --------------------------------------------------------------

bool under_any(const std::string& path, const std::vector<std::string>& dirs) {
  for (const std::string& d : dirs) {
    if (path == d) return true;
    if (path.size() > d.size() && path.compare(0, d.size(), d) == 0 &&
        path[d.size()] == '/') {
      return true;
    }
  }
  return false;
}

bool listed(const std::string& path, const std::vector<std::string>& files) {
  return std::find(files.begin(), files.end(), path) != files.end();
}

}  // namespace

bool finding_order(const Finding& a, const Finding& b) {
  if (a.path != b.path) return a.path < b.path;
  if (a.line != b.line) return a.line < b.line;
  if (a.col != b.col) return a.col < b.col;
  return a.rule < b.rule;
}

std::vector<Finding> lint_source(const std::string& rel_path,
                                 const std::string& source,
                                 const LintConfig& cfg,
                                 const std::string& sibling_header_source) {
  const LexedFile lex = tokenize(source);
  const std::vector<Token>& toks = lex.tokens;

  std::vector<Finding> findings;
  const Directives dir = parse_directives(lex, rel_path, findings);

  Decls decls = collect_decls(lex);
  if (!sibling_header_source.empty()) {
    const Decls hdr = collect_decls(tokenize(sibling_header_source));
    decls.unordered_vars.insert(hdr.unordered_vars.begin(),
                                hdr.unordered_vars.end());
    decls.unordered_aliases.insert(hdr.unordered_aliases.begin(),
                                   hdr.unordered_aliases.end());
    decls.float_vars.insert(hdr.float_vars.begin(), hdr.float_vars.end());
  }

  const bool determinism = dir.determinism_critical ||
                           under_any(rel_path, cfg.determinism_dirs);
  const bool hot = dir.hot_path || listed(rel_path, cfg.hot_path_files);
  const bool entropy_exempt = listed(rel_path, cfg.entropy_allow_files);

  auto is_unordered_name = [&](const std::string& name) {
    return decls.unordered_vars.count(name) != 0 ||
           decls.unordered_aliases.count(name) != 0 ||
           unordered_type_names().count(name) != 0;
  };

  // Dedup per (rule, line): several token patterns can hit the same loop.
  std::set<std::pair<std::string, int>> emitted;
  auto emit = [&](const char* rule, int line, int col, std::string msg) {
    if (!emitted.insert({rule, line}).second) return;
    findings.push_back(Finding{rule, rel_path, line, col, std::move(msg)});
  };

  const std::vector<RangeLoop> loops = find_range_loops(toks);

  // R1: range-for over an unordered container.
  if (determinism) {
    for (const RangeLoop& loop : loops) {
      for (std::size_t j = loop.range_begin; j < loop.range_end; ++j) {
        if (toks[j].kind == TokKind::Ident && is_unordered_name(toks[j].text)) {
          emit("R1", loop.header_line, toks[j].col,
               "range-for over unordered container '" + toks[j].text +
                   "': iteration order is hash/insertion-dependent and can "
                   "reach results or telemetry bytes; iterate a sorted key "
                   "snapshot or an index-keyed structure instead");
          break;
        }
      }
    }
    // R1: explicit iterator surface — `x.begin()` / `x.cbegin()` on an
    // unordered variable (classic iterator loops, and accessors that leak
    // unordered iteration to callers).
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].kind == TokKind::Ident &&
          decls.unordered_vars.count(toks[i].text) != 0 &&
          (is_punct(toks[i + 1], ".") || is_punct(toks[i + 1], "->")) &&
          (is_ident(toks[i + 2], "begin") || is_ident(toks[i + 2], "cbegin"))) {
        emit("R1", toks[i].line, toks[i].col,
             "iterator obtained from unordered container '" + toks[i].text +
                 "': hash-order traversal is not deterministic across "
                 "library versions or insertion histories");
      }
    }
  }

  // R2: ambient entropy / wall-clock outside the seeded Rng layer.
  if (!entropy_exempt) {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::Ident) continue;
      const Token& prev = i > 0 ? toks[i - 1] : toks[0];
      const bool std_qualified =
          i >= 2 && is_punct(prev, "::") && is_ident(toks[i - 2], "std");
      const bool member_access = is_punct(prev, ".") || is_punct(prev, "->") ||
                                 (is_punct(prev, "::") && !std_qualified);
      auto hit = [&](const char* what) {
        emit("R2", t.line, t.col,
             std::string(what) +
                 ": ambient entropy/wall-clock breaks bit-reproducibility; "
                 "derive all randomness from the run seed via rlftnoc::Rng "
                 "(src/common/rng.h) and keep wall time out of results");
      };
      if (t.text == "random_device") {
        hit("std::random_device");
      } else if ((t.text == "rand" || t.text == "srand") &&
                 (std_qualified ||
                  (!member_access && is_punct(toks[i + 1], "(")))) {
        hit("rand()/srand()");
      } else if (t.text == "time" &&
                 (std_qualified ||
                  (!member_access && is_punct(toks[i + 1], "(")))) {
        hit("time()");
      } else if (t.text == "system_clock" || t.text == "steady_clock" ||
                 t.text == "high_resolution_clock") {
        if (!is_punct(prev, ".") && !is_punct(prev, "->")) {
          hit(("std::chrono::" + t.text).c_str());
        }
      } else if (t.text == "clock" && std_qualified) {
        hit("std::clock()");
      }
    }
  }

  // R3: bare assert — vanishes under NDEBUG, exactly the release/campaign
  // configuration where the invariants matter. RLFTNOC_CHECK is always-on.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (is_ident(toks[i], "assert") && is_punct(toks[i + 1], "(") &&
        !(i > 0 && is_punct(toks[i - 1], "#"))) {
      emit("R3", toks[i].line, toks[i].col,
           "bare assert() compiles out under NDEBUG; use RLFTNOC_CHECK "
           "(src/common/check.h), which stays live in sanitizer/Debug "
           "builds and becomes an optimizer hint in release");
    }
    if (is_punct(toks[i], "#") && is_ident(toks[i + 1], "include") &&
        i + 3 < toks.size() && is_punct(toks[i + 2], "<") &&
        (is_ident(toks[i + 3], "cassert") || is_ident(toks[i + 3], "assert"))) {
      emit("R3", toks[i].line, toks[i].col,
           "#include <cassert>: this project uses RLFTNOC_CHECK "
           "(src/common/check.h) instead of assert");
    }
  }

  // R4: hot-path container discipline (per-cycle step path only).
  if (hot) {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::Ident) continue;
      const bool banned_type = t.text == "deque" || t.text == "list" ||
                               t.text == "map" || t.text == "multimap";
      if (banned_type && i >= 2 && is_punct(toks[i - 1], "::") &&
          is_ident(toks[i - 2], "std")) {
        emit("R4", t.line, t.col,
             "std::" + t.text +
                 " on the per-cycle step path: node-allocating containers "
                 "were purged in the hot-path overhaul; use RingBuffer, "
                 "RetentionTable or a flat vector (see "
                 "src/common/ring_buffer.h)");
      }
      if ((t.text == "deque" || t.text == "list" || t.text == "map") &&
          i >= 2 && is_punct(toks[i - 1], "<") &&
          is_ident(toks[i - 2], "include")) {
        emit("R4", t.line, t.col,
             "#include <" + t.text + "> in a hot-path file");
      }
      if (t.text == "at" && i > 0 &&
          (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
          is_punct(toks[i + 1], "(")) {
        emit("R4", t.line, t.col,
             ".at() on the per-cycle step path throws and carries a bounds "
             "branch the optimizer cannot elide; use unchecked indexing "
             "guarded by RLFTNOC_CHECK");
      }
    }
  }

  // R5: floating-point accumulation inside range-for bodies must attest
  // iteration order (`// rlftnoc-lint: ordered`): FP addition is not
  // associative, so accumulation order IS the result.
  if (determinism) {
    for (std::size_t i = 1; i < toks.size(); ++i) {
      if (!is_punct(toks[i], "+=")) continue;
      const int line = toks[i].line;
      const RangeLoop* in_loop = nullptr;
      for (const RangeLoop& loop : loops) {
        if (line >= loop.body_first_line && line <= loop.body_last_line) {
          in_loop = &loop;
          break;
        }
      }
      if (in_loop == nullptr) continue;
      // LHS identifier: walk back over one trailing index/call suffix.
      std::size_t j = i - 1;
      if (is_punct(toks[j], "]")) j = skip_back(toks, j, "[", "]");
      if (j > 0 && is_punct(toks[j], ")")) j = skip_back(toks, j, "(", ")");
      if (j > 0 && (is_punct(toks[j], "]") || is_punct(toks[j], ")"))) {
        --j;  // one more level is enough for this codebase's idioms
      }
      while (j > 0 && toks[j].kind != TokKind::Ident) --j;
      if (toks[j].kind != TokKind::Ident ||
          decls.float_vars.count(toks[j].text) == 0) {
        continue;
      }
      const bool attested = dir.ordered_lines.count(line) != 0 ||
                            dir.ordered_lines.count(in_loop->header_line) != 0;
      if (attested) continue;
      emit("R5", line, toks[i].col,
           "floating-point accumulation into '" + toks[j].text +
               "' inside a range-for: FP addition is order-sensitive; "
               "attest the iteration order with `// rlftnoc-lint: ordered` "
               "on the loop or restructure the reduction");
    }
  }

  // Apply inline allow() suppressions (R0 directive errors are never
  // suppressible).
  for (Finding& f : findings) {
    if (f.rule == "R0") continue;
    const auto it = dir.allows.find(f.line);
    if (it != dir.allows.end() && it->second.count(f.rule) != 0) {
      f.suppressed = true;
    }
  }

  std::sort(findings.begin(), findings.end(), finding_order);
  return findings;
}

}  // namespace rlftnoc::lint
