#include "lint/lexer.h"

#include <cctype>

namespace rlftnoc::lint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Multi-character punctuators the rules care about being atomic. Longest
/// match first within each leading character.
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "+=", "-=", "*=",
    "/=",  "%=",  "&=",  "|=",  "^=", "<<", ">>", "<=", ">=", "==", "!=",
    "&&",  "||",  ".*",
};

}  // namespace

LexedFile tokenize(std::string_view src) {
  LexedFile out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;
  std::size_t line_start = 0;
  bool code_on_line = false;

  auto col_of = [&](std::size_t pos) {
    return static_cast<int>(pos - line_start) + 1;
  };
  auto newline = [&](std::size_t pos_after_nl) {
    ++line;
    line_start = pos_after_nl;
    code_on_line = false;
  };
  auto push = [&](TokKind k, std::string text, std::size_t pos) {
    out.tokens.push_back(Token{k, std::move(text), line, col_of(pos)});
    code_on_line = true;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++i;
      newline(i);
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Line continuation.
    if (c == '\\' && i + 1 < n && (src[i + 1] == '\n' || src[i + 1] == '\r')) {
      i += src[i + 1] == '\r' && i + 2 < n && src[i + 2] == '\n' ? 3 : 2;
      newline(i);
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i + 2;
      std::size_t end = start;
      while (end < n && src[end] != '\n') ++end;
      out.comments.push_back(CommentLine{
          std::string(src.substr(start, end - start)), line, code_on_line});
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t p = i + 2;
      std::size_t seg_start = p;
      bool first = true;
      while (p + 1 < n && !(src[p] == '*' && src[p + 1] == '/')) {
        if (src[p] == '\n') {
          out.comments.push_back(
              CommentLine{std::string(src.substr(seg_start, p - seg_start)),
                          line, first && code_on_line});
          first = false;
          ++p;
          newline(p);
          seg_start = p;
        } else {
          ++p;
        }
      }
      const std::size_t seg_end = p < n ? p : n;
      out.comments.push_back(
          CommentLine{std::string(src.substr(seg_start, seg_end - seg_start)),
                      line, first && code_on_line});
      i = p + 1 < n ? p + 2 : n;
      continue;
    }
    // Raw strings: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && src[p] != '(' && src[p] != '\n' && delim.size() < 16) {
        delim.push_back(src[p]);
        ++p;
      }
      if (p < n && src[p] == '(') {
        const std::string closer = ")" + delim + "\"";
        const std::size_t body = p + 1;
        const std::size_t close = src.find(closer, body);
        const std::size_t end = close == std::string_view::npos
                                    ? n
                                    : close + closer.size();
        push(TokKind::String, std::string(src.substr(i, end - i)), i);
        // Keep line numbers accurate across the raw string body.
        for (std::size_t q = i; q < end; ++q) {
          if (src[q] == '\n') newline(q + 1);
        }
        i = end;
        continue;
      }
      // 'R' not followed by a raw string: fall through as identifier.
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t p = i + 1;
      while (p < n && src[p] != quote) {
        if (src[p] == '\\' && p + 1 < n) ++p;
        if (src[p] == '\n') break;  // unterminated; don't eat the file
        ++p;
      }
      const std::size_t end = p < n && src[p] == quote ? p + 1 : p;
      push(quote == '"' ? TokKind::String : TokKind::CharLit,
           std::string(src.substr(i + 1, end - i - (end > i + 1 ? 2 : 1))), i);
      i = end;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t p = i + 1;
      while (p < n && is_ident_cont(src[p])) ++p;
      push(TokKind::Ident, std::string(src.substr(i, p - i)), i);
      i = p;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])) != 0)) {
      std::size_t p = i + 1;
      while (p < n && (is_ident_cont(src[p]) || src[p] == '.' ||
                       ((src[p] == '+' || src[p] == '-') &&
                        (src[p - 1] == 'e' || src[p - 1] == 'E' ||
                         src[p - 1] == 'p' || src[p - 1] == 'P')))) {
        ++p;
      }
      push(TokKind::Number, std::string(src.substr(i, p - i)), i);
      i = p;
      continue;
    }
    // Punctuation: longest multi-char operator wins.
    bool matched = false;
    for (const char* op : kPuncts) {
      const std::size_t len = std::char_traits<char>::length(op);
      if (src.compare(i, len, op) == 0) {
        push(TokKind::Punct, op, i);
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      push(TokKind::Punct, std::string(1, c), i);
      ++i;
    }
  }
  out.last_line = line;
  out.tokens.push_back(Token{TokKind::End, "", line, col_of(i)});
  return out;
}

}  // namespace rlftnoc::lint
