// rlftnoc_lint — project-specific determinism & hot-path discipline checker.
//
// The simulator's core contract is bit-identical results for any --jobs and
// --sim-threads value. That contract is enforced dynamically by byte-diff
// tests; this tool enforces it *statically*, at review time, with rules that
// generic clang-tidy cannot express (see DESIGN.md "Determinism discipline"):
//
//   R1 no-unordered-iteration   iterating std::unordered_{map,set,...} in
//                               determinism-critical dirs (iteration order is
//                               libstdc++-version- and insertion-dependent)
//   R2 no-ambient-entropy       std::random_device / rand / time() / chrono
//                               clocks outside the seeded Rng layer
//   R3 no-bare-assert           assert() vanishes under NDEBUG; use
//                               RLFTNOC_CHECK (always-on invariant layer)
//   R4 hot-path-container-bans  std::deque/map/list and throwing .at() in
//                               per-cycle-path files (PR 4 purged these)
//   R5 float-accumulation-order float/double += in range-for bodies without
//                               an explicit `// rlftnoc-lint: ordered`
//                               attestation that the iteration order is
//                               deterministic and intended
//
// In-source directives (all spelled inside comments):
//   // rlftnoc-lint: allow(R1,R2) <reason>   suppress on this + next line
//   // rlftnoc-lint: ordered                 R5 attestation, this + next line
//   // rlftnoc-lint: hot-path                mark this file per-cycle-path
//   // rlftnoc-lint: determinism-critical    opt this file into R1/R5 scope
//
// A malformed directive (unknown rule, missing reason) is itself reported as
// rule R0 so typos cannot silently disable checking.
#pragma once

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace rlftnoc::lint {

struct Finding {
  std::string rule;     // "R0".."R5"
  std::string path;     // repo-relative when under the root, else as given
  int line = 0;
  int col = 0;
  std::string message;
  bool suppressed = false;  // matched an inline allow() directive
  bool baselined = false;   // absorbed by the committed baseline
};

/// Stable ordering: path, then line/col, then rule. All tool output
/// (text, JSON, baseline) is emitted in this order so reruns are
/// byte-identical — the linter holds itself to the determinism rules it
/// enforces.
bool finding_order(const Finding& a, const Finding& b);

struct LintConfig {
  std::string repo_root;  // absolute or cwd-relative; "" = cwd

  /// Directories (repo-relative prefixes) scanned when no explicit file list
  /// is given, and used for rule scoping.
  std::vector<std::string> scan_dirs = {"src", "apps", "bench"};

  /// R1/R5 scope: determinism-critical directory prefixes.
  std::vector<std::string> determinism_dirs = {
      "src/noc", "src/sim", "src/telemetry", "src/rl", "src/dt"};

  /// R2 allowlist: the seeded-RNG layer owns all entropy.
  std::vector<std::string> entropy_allow_files = {"src/common/rng.h",
                                                  "src/common/rng.cpp"};

  /// R4 scope: files on the per-cycle Network::step path. Kept as an
  /// explicit committed list (plus the in-file `hot-path` marker) so
  /// deleting a marker comment cannot silently shrink the scope.
  std::vector<std::string> hot_path_files = {
      "src/noc/router.h",      "src/noc/router.cpp", "src/noc/ni.h",
      "src/noc/ni.cpp",        "src/noc/channel.h",  "src/noc/network.h",
      "src/noc/network.cpp",   "src/noc/flit.h",     "src/noc/retention.h",
      "src/noc/step_effects.h", "src/common/ring_buffer.h"};
};

/// One file's worth of findings (path must already be repo-relative where
/// possible). `source` is the file contents. `sibling_header_source`, when
/// non-empty, is lexed for *declarations only* (unordered/float members of
/// the class this .cpp implements) so iteration in the implementation file
/// over members declared in the header is still caught.
std::vector<Finding> lint_source(const std::string& rel_path,
                                 const std::string& source,
                                 const LintConfig& cfg,
                                 const std::string& sibling_header_source = {});

/// Lints `rel_path` on disk; a sibling header (foo.cpp -> foo.h) is lexed
/// too so iteration over unordered *members* declared in the header is
/// caught in the implementation file.
std::vector<Finding> lint_file(const std::string& rel_path,
                               const LintConfig& cfg);

/// Discovers *.h/*.cpp under cfg.scan_dirs (sorted, deterministic).
std::vector<std::string> discover_files(const LintConfig& cfg);

// -- baseline -------------------------------------------------------------
//
// Format: one `RULE<space>PATH<space>COUNT` line per (rule, file) pair,
// sorted; '#' comments. The baseline grandfathers up to COUNT findings of
// RULE in PATH. It is required to shrink monotonically: with
// `require_tight`, an entry whose budget exceeds the live finding count (or
// names a file/rule with no findings at all) is an error, so fixing a
// violation forces the baseline entry down in the same commit.

struct Baseline {
  std::map<std::pair<std::string, std::string>, int> budget;  // (rule,path)->n
};

Baseline read_baseline(std::istream& in);
Baseline read_baseline_file(const std::string& path);
void write_baseline(std::ostream& out, const std::vector<Finding>& findings);

/// Marks up to budget findings per (rule, path) as baselined, in
/// finding_order. Returns the list of stale entries (budget exceeds live
/// count), each formatted "RULE PATH have=H budget=B".
std::vector<std::string> apply_baseline(std::vector<Finding>& findings,
                                        const Baseline& b);

// -- output ---------------------------------------------------------------

/// Machine-readable report, schema "rlftnoc-lint-v1". Deterministic bytes.
void write_json(std::ostream& out, const std::vector<Finding>& findings,
                const std::vector<std::string>& stale,
                std::size_t files_scanned);

/// Human-readable `path:line:col: rule: message` lines (suppressed and
/// baselined findings are tagged, not hidden, under verbose).
void write_text(std::ostream& out, const std::vector<Finding>& findings,
                bool verbose);

}  // namespace rlftnoc::lint
