// Driver layer for rlftnoc_lint: file discovery, sibling-header pairing,
// baseline bookkeeping and report serialization. All output is emitted in
// finding_order so reruns are byte-identical.

#include "lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rlftnoc::lint {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("rlftnoc_lint: cannot read " + p.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

fs::path root_path(const LintConfig& cfg) {
  return cfg.repo_root.empty() ? fs::path(".") : fs::path(cfg.repo_root);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> discover_files(const LintConfig& cfg) {
  std::vector<std::string> files;
  const fs::path root = root_path(cfg);
  for (const std::string& dir : cfg.scan_dirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cpp" && ext != ".hpp" && ext != ".cc") {
        continue;
      }
      files.push_back(fs::relative(entry.path(), root).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::vector<Finding> lint_file(const std::string& rel_path,
                               const LintConfig& cfg) {
  const fs::path root = root_path(cfg);
  const fs::path full = root / rel_path;
  const std::string source = slurp(full);
  std::string sibling;
  if (full.extension() == ".cpp") {
    fs::path hdr = full;
    hdr.replace_extension(".h");
    if (fs::exists(hdr)) sibling = slurp(hdr);
  }
  return lint_source(rel_path, source, cfg, sibling);
}

Baseline read_baseline(std::istream& in) {
  Baseline b;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ss(line);
    std::string rule;
    std::string path;
    int count = 0;
    if (!(ss >> rule)) continue;  // blank
    if (!(ss >> path >> count) || count <= 0) {
      throw std::runtime_error(
          "rlftnoc_lint: bad baseline line " + std::to_string(lineno) +
          ": expected 'RULE PATH COUNT'");
    }
    b.budget[{rule, path}] += count;
  }
  return b;
}

Baseline read_baseline_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("rlftnoc_lint: cannot read baseline " + path);
  }
  return read_baseline(in);
}

void write_baseline(std::ostream& out, const std::vector<Finding>& findings) {
  out << "# rlftnoc_lint baseline — grandfathered findings, one\n"
         "# 'RULE PATH COUNT' per (rule, file). This file must only ever\n"
         "# shrink: CI runs with --require-tight-baseline, so fixing a\n"
         "# violation forces the matching budget down in the same commit.\n";
  std::map<std::pair<std::string, std::string>, int> counts;
  for (const Finding& f : findings) {
    if (f.suppressed || f.rule == "R0") continue;
    ++counts[{f.rule, f.path}];
  }
  for (const auto& [key, n] : counts) {
    out << key.first << ' ' << key.second << ' ' << n << '\n';
  }
}

std::vector<std::string> apply_baseline(std::vector<Finding>& findings,
                                        const Baseline& b) {
  std::sort(findings.begin(), findings.end(), finding_order);
  std::map<std::pair<std::string, std::string>, int> used;
  for (Finding& f : findings) {
    if (f.suppressed || f.rule == "R0") continue;
    const auto it = b.budget.find({f.rule, f.path});
    if (it == b.budget.end()) continue;
    if (used[{f.rule, f.path}] < it->second) {
      ++used[{f.rule, f.path}];
      f.baselined = true;
    }
  }
  std::vector<std::string> stale;
  for (const auto& [key, budget] : b.budget) {
    const auto it = used.find(key);
    const int have = it == used.end() ? 0 : it->second;
    if (have < budget) {
      stale.push_back(key.first + " " + key.second + " have=" +
                      std::to_string(have) + " budget=" +
                      std::to_string(budget));
    }
  }
  return stale;
}

void write_json(std::ostream& out, const std::vector<Finding>& findings,
                const std::vector<std::string>& stale,
                std::size_t files_scanned) {
  std::size_t suppressed = 0;
  std::size_t baselined = 0;
  std::size_t active = 0;
  for (const Finding& f : findings) {
    if (f.suppressed) ++suppressed;
    else if (f.baselined) ++baselined;
    else ++active;
  }
  out << "{\n  \"schema\": \"rlftnoc-lint-v1\",\n";
  out << "  \"files_scanned\": " << files_scanned << ",\n";
  out << "  \"total_findings\": " << findings.size() << ",\n";
  out << "  \"suppressed\": " << suppressed << ",\n";
  out << "  \"baselined\": " << baselined << ",\n";
  out << "  \"active\": " << active << ",\n";
  out << "  \"stale_baseline_entries\": [";
  for (std::size_t i = 0; i < stale.size(); ++i) {
    out << (i == 0 ? "" : ", ") << '"' << json_escape(stale[i]) << '"';
  }
  out << "],\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"rule\": \"" << json_escape(f.rule) << "\", \"path\": \""
        << json_escape(f.path) << "\", \"line\": " << f.line
        << ", \"col\": " << f.col << ", \"suppressed\": "
        << (f.suppressed ? "true" : "false") << ", \"baselined\": "
        << (f.baselined ? "true" : "false") << ", \"message\": \""
        << json_escape(f.message) << "\"}";
  }
  out << (findings.empty() ? "]\n}\n" : "\n  ]\n}\n");
}

void write_text(std::ostream& out, const std::vector<Finding>& findings,
                bool verbose) {
  for (const Finding& f : findings) {
    if (!verbose && (f.suppressed || f.baselined)) continue;
    out << f.path << ':' << f.line << ':' << f.col << ": " << f.rule;
    if (f.suppressed) out << " [suppressed]";
    if (f.baselined) out << " [baselined]";
    out << ": " << f.message << '\n';
  }
}

}  // namespace rlftnoc::lint
