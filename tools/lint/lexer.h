// Minimal C++ tokenizer for rlftnoc_lint.
//
// This is deliberately NOT a real C++ front end: the project's lint rules
// (see rules.cpp) only need identifier/punctuator streams with accurate line
// numbers, plus the comment text for suppression directives. No preprocessing
// is performed — macros appear as the identifiers they are spelled with,
// which is exactly what the rules want (RLFTNOC_CHECK vs assert is a spelling
// distinction).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rlftnoc::lint {

enum class TokKind {
  Ident,    // identifiers and keywords (no distinction needed)
  Number,   // numeric literals, including ud-suffixes
  String,   // "..." and R"(...)" (text excludes quotes for ordinary strings)
  CharLit,  // '...'
  Punct,    // operators/punctuation; multi-char ops are single tokens
  End,
};

struct Token {
  TokKind kind = TokKind::End;
  std::string text;
  int line = 0;  // 1-based
  int col = 0;   // 1-based
};

/// A comment with its location; `text` excludes the comment markers.
/// Block comments spanning multiple lines produce one entry per line so
/// per-line directives (suppressions) stay line-accurate.
struct CommentLine {
  std::string text;
  int line = 0;
  bool trailing_code = false;  // true when code precedes the comment on its line
};

struct LexedFile {
  std::vector<Token> tokens;       // comments excluded, End-terminated
  std::vector<CommentLine> comments;
  int last_line = 0;
};

/// Tokenizes `source`. Never fails: malformed input degrades to Punct tokens.
LexedFile tokenize(std::string_view source);

}  // namespace rlftnoc::lint
