#!/usr/bin/env bash
# Shared first-party file enumerator for the static-analysis drivers
# (tools/run_tidy.sh, tools/run_lint.sh, tools/run_cppcheck.sh). One place
# decides what "first-party sources" means so the tools cannot drift apart.
#
# Usage:
#   tools/changed_files.sh [--ext cpp|header|all] [--base <git-ref>] dir...
#
#   dir...        repo-relative directories to enumerate (e.g. src apps)
#   --ext cpp     only *.cpp (default)
#   --ext header  only *.h
#   --ext all     *.cpp and *.h
#   --base REF    restrict to files changed since REF (git diff + untracked);
#                 falls back to the full listing when git cannot answer
#
# Output: newline-delimited repo-relative paths, LC_ALL=C sorted, no
# duplicates. Exit 0 even when the list is empty (callers decide whether an
# empty list is an error); exit 2 on usage errors.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

ext="cpp"
base=""
dirs=()
while [ $# -gt 0 ]; do
  case "$1" in
    --ext)
      [ $# -ge 2 ] || { echo "changed_files.sh: --ext needs a value" >&2; exit 2; }
      ext="$2"; shift 2 ;;
    --base)
      [ $# -ge 2 ] || { echo "changed_files.sh: --base needs a ref" >&2; exit 2; }
      base="$2"; shift 2 ;;
    --*)
      echo "changed_files.sh: unknown option $1" >&2; exit 2 ;;
    *)
      dirs+=("$1"); shift ;;
  esac
done

if [ "${#dirs[@]}" -eq 0 ]; then
  echo "changed_files.sh: no directories given" >&2
  exit 2
fi

case "$ext" in
  cpp)    name_expr=(-name '*.cpp') ;;
  header) name_expr=(-name '*.h') ;;
  all)    name_expr=(\( -name '*.cpp' -o -name '*.h' \)) ;;
  *)      echo "changed_files.sh: bad --ext '$ext' (cpp|header|all)" >&2; exit 2 ;;
esac

# Full listing: every matching file under the requested dirs, repo-relative.
list_all() {
  (cd "$repo_root" && find "${dirs[@]}" "${name_expr[@]}" 2>/dev/null) || true
}

if [ -z "$base" ]; then
  list_all | LC_ALL=C sort -u
  exit 0
fi

# Changed-only listing: committed changes since the merge base plus any
# uncommitted/untracked files, intersected with the full listing so the
# dir/extension filter still applies. If git cannot resolve the ref (shallow
# clone, detached state), degrade to the full listing rather than silently
# checking nothing.
if ! git -C "$repo_root" rev-parse --verify --quiet "$base" >/dev/null; then
  echo "changed_files.sh: ref '$base' not resolvable; listing all files" >&2
  list_all | LC_ALL=C sort -u
  exit 0
fi

{
  git -C "$repo_root" diff --name-only --diff-filter=d "$base" -- "${dirs[@]}"
  git -C "$repo_root" ls-files --others --exclude-standard -- "${dirs[@]}"
} | LC_ALL=C sort -u > /tmp/changed_files.$$ || true

list_all | LC_ALL=C sort -u | comm -12 - /tmp/changed_files.$$
rm -f /tmp/changed_files.$$
