#!/usr/bin/env bash
# rlftnoc_lint driver: builds (if needed) and runs the project's determinism
# & hot-path discipline checker against the committed baseline.
#
# Usage:
#   tools/run_lint.sh [build-dir] [--base <git-ref>] [-- extra lint args]
#
#   build-dir     a configured CMake build tree (default: ./build)
#   --base REF    lint only files changed since REF (via changed_files.sh);
#                 default lints the whole tree
#
# Examples:
#   tools/run_lint.sh                          # full tree, tight baseline
#   tools/run_lint.sh build --base origin/main # changed files only
#   tools/run_lint.sh build -- --json out.json # plus machine-readable report
#
# Exit status mirrors rlftnoc_lint: 0 clean, 1 findings or stale baseline,
# 2 environment problem.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="$repo_root/build"
base=""
extra=()

if [ $# -gt 0 ] && [ "${1#--}" = "$1" ]; then
  build_dir="$1"; shift
fi
while [ $# -gt 0 ]; do
  case "$1" in
    --base)
      [ $# -ge 2 ] || { echo "run_lint.sh: --base needs a ref" >&2; exit 2; }
      base="$2"; shift 2 ;;
    --)
      shift; extra=("$@"); break ;;
    *)
      echo "run_lint.sh: unknown argument $1" >&2; exit 2 ;;
  esac
done

lint_bin="$build_dir/tools/lint/rlftnoc_lint"
if [ ! -x "$lint_bin" ]; then
  if [ -f "$build_dir/CMakeCache.txt" ]; then
    echo "run_lint.sh: building rlftnoc_lint in $build_dir" >&2
    cmake --build "$build_dir" --target rlftnoc_lint >/dev/null
  else
    echo "run_lint.sh: $build_dir is not a configured build tree — run: cmake -B $build_dir -S $repo_root" >&2
    exit 2
  fi
fi
[ -x "$lint_bin" ] || { echo "run_lint.sh: $lint_bin missing after build" >&2; exit 2; }

files=()
if [ -n "$base" ]; then
  # Changed-files mode shares the enumerator with run_tidy.sh. Headers are
  # included: rules fire in headers too, and a changed .h can introduce
  # findings in its sibling .cpp (re-linted via the pairing pass when listed).
  mapfile -t files < <("$repo_root/tools/changed_files.sh" --ext all \
                       --base "$base" src apps bench)
  if [ "${#files[@]}" -eq 0 ]; then
    echo "run_lint.sh: no first-party files changed since $base" >&2
    exit 0
  fi
fi

exec "$lint_bin" \
  --repo-root "$repo_root" \
  --baseline "$repo_root/tools/lint/baseline.txt" \
  --require-tight-baseline \
  "${extra[@]}" \
  ${files[@]+"${files[@]}"}
