#!/usr/bin/env python3
"""Summarize (and optionally gate on) the rlftnoc perf artifacts.

Inputs are the JSON files produced by run_benches.sh:
  BENCH_microperf.json  google-benchmark JSON from bench_microperf
  BENCH_campaign.json   wall-time / simulated-cycles-per-second from
                        bench_campaign (schema rlftnoc-bench-campaign-v1)
  BENCH_scaling.json    per-(mesh, sim_threads) throughput matrix from
                        bench_scaling (schema rlftnoc-bench-scaling-v1)

Usage:
  bench_summary.py MICROPERF_JSON CAMPAIGN_JSON
      Print a human-readable summary table.

  bench_summary.py MICROPERF_JSON CAMPAIGN_JSON \
      --check-against BASELINE_MICROPERF BASELINE_CAMPAIGN [--threshold 0.25]
      Additionally compare against a committed baseline and exit non-zero if
      any gated micro-kernel slows down by more than the threshold, or the
      campaign cycles-per-second throughput drops by more than it.

  bench_summary.py ... --scaling BENCH_SCALING [--scaling-floor 1.5]
      Additionally summarize the intra-run scaling matrix. Always fails if
      the bench reported a cross-thread-count result divergence. The speedup
      gate (16x16 mesh, sim_threads=4 vs 1, machine-relative) applies only
      when the producing machine had >= 4 hardware threads: the floor is a
      conservative 1.5x for noisy shared CI runners, against the 2.5x the
      stepper achieves on quiet 4-core hardware.

The gate covers the kernels this repo actively optimizes; other benchmarks
are reported but not gated (end-to-end network benches on shared CI runners
are too noisy for a hard 25% bar at per-cycle granularity, the three gated
coding/router kernels are not).
"""

import argparse
import json
import sys

# Micro-kernels the CI perf-smoke job hard-fails on: the coding kernels and
# the mid-load router-step kernel.
GATED_KERNELS = [
    "BM_Crc32Flit",
    "BM_SecdedEncodeFlit",
    "BM_SecdedDecodeCorrupted",
    "BM_NetworkCyclePerLoad/8",
]


def load_microperf(path):
    """Returns {benchmark name: real_time in ns}."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for entry in doc.get("benchmarks", []):
        if entry.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows (mean/median/stddev)
        unit = entry.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        out[entry["name"]] = float(entry["real_time"]) * scale
    if not out:
        sys.exit(f"{path}: no benchmark entries found")
    return out


def load_campaign(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "rlftnoc-bench-campaign-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def load_scaling(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "rlftnoc-bench-scaling-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def load_faults(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "rlftnoc-bench-faults-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def print_faults(faults):
    print()
    print(
        f"hard-fault sweep ({faults['mesh']}x{faults['mesh']} "
        f"{faults['topology']}, {faults['routing']} routing, "
        f"{faults['total_links']} links)"
    )
    print(
        f"{'faults':>7}  {'killed':>6}  {'delivered':>9}  {'unreach':>7}  "
        f"{'latency':>8}  {'vs fault-free':>13}"
    )
    for c in faults["cells"]:
        print(
            f"{c['fraction'] * 100.0:>6.1f}%  {c['links_killed']:>6}  "
            f"{c['packets_delivered']:>9}  {c['unreachable_drops']:>7}  "
            f"{c['avg_latency']:>8.2f}  "
            f"{c['delivered_vs_faultfree'] * 100.0:>12.1f}%"
        )


def check_faults(faults):
    """Returns a list of failure messages (empty = pass)."""
    failures = []
    if not faults.get("results_identical", False):
        failures.append(
            "faults bench reported result divergence across sim_threads "
            "(determinism contract broken under hard faults)"
        )
    for c in faults["cells"]:
        if c["packets_delivered"] == 0:
            failures.append(
                f"zero throughput with {c['links_killed']} dead links"
            )
        if not c["drained"]:
            failures.append(
                f"run with {c['links_killed']} dead links did not drain"
            )
    return failures


def print_scaling(scaling):
    print()
    print(
        f"scaling (hardware threads on producing machine: "
        f"{scaling['hardware_threads']})"
    )
    print(f"{'mesh':>6}  {'sim_threads':>11}  {'cycles/s':>10}  {'speedup':>7}")
    for c in scaling["cells"]:
        print(
            f"{c['mesh']:>4}x{c['mesh']:<2} {c['sim_threads']:>11} "
            f"{c['cycles_per_second']:>11.0f}  {c['speedup_vs_serial']:>6.2f}x"
        )


def check_scaling(scaling, floor):
    """Returns a list of failure messages (empty = pass)."""
    failures = []
    if not scaling.get("results_identical", False):
        failures.append(
            "scaling bench reported result divergence across sim_threads "
            "(determinism contract broken)"
        )
    hw = scaling.get("hardware_threads", 0)
    if hw < 4:
        print(
            f"scaling speedup gate skipped: only {hw} hardware thread(s) "
            f"on the producing machine (need >= 4)"
        )
        return failures
    cell = next(
        (
            c
            for c in scaling["cells"]
            if c["mesh"] == 16 and c["sim_threads"] == 4
        ),
        None,
    )
    if cell is None:
        failures.append("scaling results missing the 16x16 sim_threads=4 cell")
    elif cell["speedup_vs_serial"] < floor:
        failures.append(
            f"16x16 sim_threads=4 speedup {cell['speedup_vs_serial']:.2f}x "
            f"below the {floor:.2f}x floor"
        )
    return failures


def print_summary(micro, campaign):
    width = max(len(n) for n in micro)
    print(f"{'micro-kernel':<{width}}  {'ns/op':>12}  gated")
    for name, ns in micro.items():
        gate = "yes" if name in GATED_KERNELS else ""
        print(f"{name:<{width}}  {ns:>12.2f}  {gate}")
    print()
    print(f"campaign runs            : {campaign['runs']}")
    print(f"campaign wall seconds    : {campaign['wall_seconds']:.3f}")
    print(f"campaign simulated cycles: {campaign['simulated_cycles']}")
    print(f"campaign cycles/second   : {campaign['cycles_per_second']:.0f}")


def check(micro, campaign, base_micro, base_campaign, threshold):
    """Returns a list of regression messages (empty = pass)."""
    failures = []
    for name in GATED_KERNELS:
        if name not in micro or name not in base_micro:
            failures.append(f"gated kernel {name} missing from results")
            continue
        new, old = micro[name], base_micro[name]
        if old > 0 and new > old * (1.0 + threshold):
            failures.append(
                f"{name}: {new:.2f} ns vs baseline {old:.2f} ns "
                f"(+{(new / old - 1.0) * 100.0:.1f}%, limit "
                f"+{threshold * 100.0:.0f}%)"
            )
    new_cps = campaign["cycles_per_second"]
    old_cps = base_campaign["cycles_per_second"]
    if old_cps > 0 and new_cps < old_cps * (1.0 - threshold):
        failures.append(
            f"campaign throughput: {new_cps:.0f} cycles/s vs baseline "
            f"{old_cps:.0f} ({(new_cps / old_cps - 1.0) * 100.0:.1f}%, limit "
            f"-{threshold * 100.0:.0f}%)"
        )
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("microperf")
    ap.add_argument("campaign")
    ap.add_argument(
        "--check-against",
        nargs=2,
        metavar=("BASELINE_MICROPERF", "BASELINE_CAMPAIGN"),
        help="baseline JSON pair to gate against",
    )
    ap.add_argument("--threshold", type=float, default=0.25)
    ap.add_argument(
        "--scaling",
        metavar="BENCH_SCALING",
        help="bench_scaling JSON to summarize and gate",
    )
    ap.add_argument("--scaling-floor", type=float, default=1.5)
    ap.add_argument(
        "--faults",
        metavar="BENCH_FAULTS",
        help="bench_faults JSON to summarize and gate",
    )
    args = ap.parse_args()

    micro = load_microperf(args.microperf)
    campaign = load_campaign(args.campaign)
    print_summary(micro, campaign)

    if args.scaling:
        scaling = load_scaling(args.scaling)
        print_scaling(scaling)
        failures = check_scaling(scaling, args.scaling_floor)
        if failures:
            for msg in failures:
                print(f"PERF REGRESSION: {msg}")
            sys.exit(1)

    if args.faults:
        faults = load_faults(args.faults)
        print_faults(faults)
        failures = check_faults(faults)
        if failures:
            for msg in failures:
                print(f"FAULT SWEEP FAILURE: {msg}")
            sys.exit(1)

    if args.check_against:
        base_micro = load_microperf(args.check_against[0])
        base_campaign = load_campaign(args.check_against[1])
        failures = check(micro, campaign, base_micro, base_campaign, args.threshold)
        print()
        if failures:
            for msg in failures:
                print(f"PERF REGRESSION: {msg}")
            sys.exit(1)
        print(
            f"perf check passed (threshold {args.threshold * 100.0:.0f}%, "
            f"{len(GATED_KERNELS)} gated kernels + campaign throughput)"
        )


if __name__ == "__main__":
    main()
