// Fault-free network behaviour: delivery, latency, credits, drain.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "noc/network.h"
#include "noc/ni.h"
#include "traffic/traffic.h"

namespace rlftnoc {
namespace {

NocConfig small_cfg(int w = 4, int h = 4) {
  NocConfig c;
  c.mesh_width = w;
  c.mesh_height = h;
  return c;
}

void run_until_drained(Network& net, Cycle max_cycles) {
  const Cycle end = net.now() + max_cycles;
  while (net.now() < end && !net.drained()) net.step();
}

TEST(NetworkBasic, SinglePacketDelivered) {
  Network net(small_cfg(), 1);
  Rng rng(7);
  net.ni(0).enqueue_packet(make_packet(1, 0, 15, 4, 0, rng));
  run_until_drained(net, 500);
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(net.metrics().packets_delivered, 1u);
  EXPECT_EQ(net.metrics().flits_delivered, 4u);
  EXPECT_EQ(net.metrics().packet_e2e_retransmissions, 0u);
  EXPECT_EQ(net.ni(15).counters().crc_flit_failures, 0u);
}

TEST(NetworkBasic, LatencyIsPlausible) {
  Network net(small_cfg(), 1);
  Rng rng(7);
  net.ni(0).enqueue_packet(make_packet(1, 0, 15, 4, 0, rng));
  run_until_drained(net, 500);
  // 6 hops, ~3 cycles per hop router pipeline + serialization of 4 flits.
  const double lat = net.metrics().packet_latency.mean();
  EXPECT_GE(lat, 10.0);
  EXPECT_LE(lat, 60.0);
}

TEST(NetworkBasic, SingleFlitPacket) {
  Network net(small_cfg(), 1);
  Rng rng(7);
  net.ni(5).enqueue_packet(make_packet(9, 5, 6, 1, 0, rng));
  run_until_drained(net, 200);
  EXPECT_EQ(net.metrics().packets_delivered, 1u);
  EXPECT_EQ(net.metrics().flits_delivered, 1u);
}

TEST(NetworkBasic, IdleSkipElidesQuiescentNodes) {
  Network net(small_cfg(), 1);
  // A fully idle network: every per-node visit is provably a no-op, so all
  // of them must be skipped.
  for (int i = 0; i < 100; ++i) net.step();
  const std::uint64_t nodes = 16;
  EXPECT_EQ(net.router_steps_skipped(), 100 * nodes);
  EXPECT_EQ(net.ni_steps_skipped(), 100 * nodes);

  // With one packet crossing the mesh, the nodes it touches must NOT be
  // skipped while it is in flight — but far-away corners still are.
  Rng rng(7);
  net.ni(0).enqueue_packet(make_packet(1, 0, 15, 4, net.now(), rng));
  const std::uint64_t before_r = net.router_steps_skipped();
  run_until_drained(net, 500);
  EXPECT_EQ(net.metrics().packets_delivered, 1u);
  const Cycle active_cycles = net.now() - 100;
  const std::uint64_t skipped_r = net.router_steps_skipped() - before_r;
  EXPECT_LT(skipped_r, active_cycles * nodes);  // some work happened
  EXPECT_GT(skipped_r, 0u);                     // but idle corners were elided
}

TEST(NetworkBasic, SelfAddressedViaLocalPort) {
  // src == dst: the flit turns around through the router's local ports.
  Network net(small_cfg(), 1);
  Rng rng(7);
  net.ni(3).enqueue_packet(make_packet(2, 3, 3, 2, 0, rng));
  run_until_drained(net, 200);
  EXPECT_EQ(net.metrics().packets_delivered, 1u);
}

/// Parameterized mesh sizes: every (src, dst) pair delivers.
class NetworkAllPairs : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(NetworkAllPairs, AllPairsDeliver) {
  const auto [w, h] = GetParam();
  Network net(small_cfg(w, h), 1);
  Rng rng(7);
  PacketId id = 1;
  std::uint64_t expected = 0;
  for (NodeId s = 0; s < net.config().num_nodes(); ++s) {
    for (NodeId d = 0; d < net.config().num_nodes(); ++d) {
      if (s == d) continue;
      ASSERT_TRUE(net.ni(s).enqueue_packet(make_packet(id++, s, d, 2, net.now(), rng)));
      ++expected;
    }
  }
  run_until_drained(net, 60000);
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(net.metrics().packets_delivered, expected);
  EXPECT_EQ(net.metrics().crc_packet_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NetworkAllPairs,
                         ::testing::Values(std::make_tuple(2, 2),
                                           std::make_tuple(3, 3),
                                           std::make_tuple(4, 4),
                                           std::make_tuple(2, 5)));

TEST(NetworkBasic, SustainedLoadDeliversEverythingAndDrains) {
  Network net(small_cfg(), 1);
  SyntheticTraffic::Options o;
  o.injection_rate = 0.10;
  o.total_packets = 3000;
  SyntheticTraffic gen(MeshTopology(net.config()), o, 3);
  std::vector<Packet> batch;
  while (!gen.exhausted() || !net.drained()) {
    batch.clear();
    gen.tick(net.now(), batch);
    for (auto& p : batch) ASSERT_TRUE(net.ni(p.src).enqueue_packet(std::move(p)));
    net.step();
    ASSERT_LT(net.now(), 200000u) << "network failed to drain";
  }
  EXPECT_EQ(net.metrics().packets_delivered, 3000u);
  EXPECT_EQ(net.metrics().packets_injected, 3000u);
}

TEST(NetworkBasic, NoSpuriousRetransmissionsWithoutFaults) {
  Network net(small_cfg(), 1);
  SyntheticTraffic::Options o;
  o.injection_rate = 0.15;
  o.total_packets = 2000;
  SyntheticTraffic gen(MeshTopology(net.config()), o, 5);
  std::vector<Packet> batch;
  for (Cycle t = 0; t < 40000 && !(gen.exhausted() && net.drained()); ++t) {
    batch.clear();
    gen.tick(net.now(), batch);
    for (auto& p : batch) net.ni(p.src).enqueue_packet(std::move(p));
    net.step();
  }
  EXPECT_EQ(net.metrics().total_retransmitted_flits(), 0u);
  EXPECT_EQ(net.metrics().crc_packet_failures, 0u);
}

TEST(NetworkBasic, DeterministicAcrossRuns) {
  auto run = [] {
    Network net(small_cfg(), 99);
    SyntheticTraffic::Options o;
    o.injection_rate = 0.08;
    o.total_packets = 500;
    SyntheticTraffic gen(MeshTopology(net.config()), o, 99);
    std::vector<Packet> batch;
    while (!gen.exhausted() || !net.drained()) {
      batch.clear();
      gen.tick(net.now(), batch);
      for (auto& p : batch) net.ni(p.src).enqueue_packet(std::move(p));
      net.step();
      if (net.now() > 100000) break;
    }
    return std::make_tuple(net.now(), net.metrics().packet_latency.mean(),
                           net.metrics().packets_delivered);
  };
  EXPECT_EQ(run(), run());
}

TEST(NetworkBasic, ChannelWiringConsistency) {
  Network net(small_cfg(), 1);
  const MeshTopology& t = net.topology();
  for (NodeId n = 0; n < net.config().num_nodes(); ++n) {
    for (const Port p : kAllPorts) {
      if (p == Port::kLocal) {
        EXPECT_EQ(net.out_channel(n, p), nullptr);
        continue;
      }
      const NodeId nb = t.neighbor(n, p);
      if (nb == kInvalidNode) {
        EXPECT_EQ(net.out_channel(n, p), nullptr);
        EXPECT_EQ(net.in_channel(n, p), nullptr);
      } else {
        // My outgoing channel is my neighbour's incoming channel.
        EXPECT_EQ(net.out_channel(n, p), net.in_channel(nb, opposite(p)));
      }
    }
  }
}

TEST(NetworkBasic, PathLatencyCreditsWholePath) {
  Network net(small_cfg(), 1);
  net.add_path_latency(0, 3, 30.0);  // straight east path: 0,1,2,3
  for (NodeId n : {0, 1, 2, 3}) {
    EXPECT_EQ(net.router_latency_window(n).count(), 1u);
    EXPECT_DOUBLE_EQ(net.router_latency_window(n).mean(), 30.0);
  }
  EXPECT_EQ(net.router_latency_window(4).count(), 0u);
}

TEST(NetworkBasic, EnqueueRejectsWhenFull) {
  NocConfig cfg = small_cfg();
  cfg.ni_queue_limit = 2;
  Network net(cfg, 1);
  Rng rng(7);
  EXPECT_TRUE(net.ni(0).enqueue_packet(make_packet(1, 0, 1, 1, 0, rng)));
  EXPECT_TRUE(net.ni(0).enqueue_packet(make_packet(2, 0, 1, 1, 0, rng)));
  EXPECT_FALSE(net.ni(0).enqueue_packet(make_packet(3, 0, 1, 1, 0, rng)));
  EXPECT_EQ(net.ni(0).counters().queue_rejects, 1u);
}

TEST(NetworkBasic, PowerEventsRecordedDuringDelivery) {
  Network net(small_cfg(), 1);
  Rng rng(7);
  net.ni(0).enqueue_packet(make_packet(1, 0, 15, 4, 0, rng));
  run_until_drained(net, 500);
  EXPECT_GT(net.power().total_dynamic_energy_pj(), 0.0);
  EXPECT_GT(net.power().total_event_count(PowerEvent::kLinkTraversal), 0u);
  EXPECT_GT(net.power().total_event_count(PowerEvent::kCrcEncode), 0u);
  EXPECT_GT(net.power().total_event_count(PowerEvent::kCrcDecode), 0u);
  // No ECC activity in mode 0.
  EXPECT_EQ(net.power().total_event_count(PowerEvent::kEccEncode), 0u);
}

}  // namespace
}  // namespace rlftnoc
