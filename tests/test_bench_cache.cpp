#include "bench_common.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace rlftnoc::bench {
namespace {

TEST(BenchCache, OptionsHashKeysOnResultAffectingOptions) {
  BenchArgs a;
  BenchArgs b;
  EXPECT_EQ(campaign_options_hash(a), campaign_options_hash(b));

  b = a;
  b.seed = 12;
  EXPECT_NE(campaign_options_hash(a), campaign_options_hash(b));

  b = a;
  b.scale_pct = 3;
  EXPECT_NE(campaign_options_hash(a), campaign_options_hash(b));

  b = a;
  b.full = true;
  EXPECT_NE(campaign_options_hash(a), campaign_options_hash(b));

  // jobs never changes results (per-run seed derivation), so a cache
  // written at any job count stays valid.
  b = a;
  b.jobs = 8;
  EXPECT_EQ(campaign_options_hash(a), campaign_options_hash(b));

  // The cache path is where the file lives, not what is in it.
  b = a;
  b.cache = "elsewhere.tsv";
  EXPECT_EQ(campaign_options_hash(a), campaign_options_hash(b));
}

TEST(BenchCache, ReusesCacheOnlyWhenHashMatches) {
  BenchArgs args;
  args.cache = ::testing::TempDir() + "/rlftnoc_bench_cache.tsv";

  // Fabricate a cache with a recognizable marker result and the hash the
  // current options produce. The marker row lets us tell "served from
  // cache" apart from "re-simulated" without running a campaign.
  CampaignResults fake;
  fake.benchmarks = bench::paper_benchmarks();
  fake.policies = paper_policies();
  fake.results.resize(fake.benchmarks.size());
  for (std::size_t b = 0; b < fake.benchmarks.size(); ++b) {
    for (std::size_t p = 0; p < fake.policies.size(); ++p) {
      SimResult r;
      r.workload = fake.benchmarks[b];
      r.policy = policy_name(fake.policies[p]);
      r.execution_cycles = 123456789;  // marker
      fake.results[b].push_back(std::move(r));
    }
  }
  {
    std::ofstream out(args.cache);
    char comment[64];
    std::snprintf(comment, sizeof comment, "# campaign-options-hash %016llx",
                  static_cast<unsigned long long>(campaign_options_hash(args)));
    out << comment << '\n';
    write_results(out, fake);
  }

  // Matching hash: the fabricated cache is served back verbatim.
  const CampaignResults reused = load_or_run_campaign(args);
  EXPECT_EQ(reused.at(0, 0).execution_cycles, 123456789u);

  // A cache whose recorded hash does not match the requested options must
  // not be served. (Checked through the same first-line probe the loader
  // uses; actually rerunning the campaign here would be a minutes-long
  // unit test.)
  BenchArgs other = args;
  other.seed = 777;
  std::ifstream in(args.cache);
  std::string first;
  ASSERT_TRUE(std::getline(in, first));
  char expect_other[64];
  std::snprintf(expect_other, sizeof expect_other,
                "# campaign-options-hash %016llx",
                static_cast<unsigned long long>(campaign_options_hash(other)));
  EXPECT_NE(first, expect_other);

  std::remove(args.cache.c_str());
}

}  // namespace
}  // namespace rlftnoc::bench
