#include "fault/injector.h"

#include <gtest/gtest.h>

namespace rlftnoc {
namespace {

class InjectorTest : public ::testing::Test {
 protected:
  VariusModel model_;
};

TEST_F(InjectorTest, ZeroProbabilityNeverFlips) {
  LinkFaultInjector inj(&model_, 1, "link:test");
  BitVec128 payload(123, 456);
  const BitVec128 orig = payload;
  for (int i = 0; i < 1000; ++i) {
    const InjectionResult r = inj.inject(payload, nullptr, 0.0);
    EXPECT_FALSE(r.error_event);
    EXPECT_EQ(r.bits_flipped, 0);
  }
  EXPECT_EQ(payload, orig);
  EXPECT_EQ(inj.total_events(), 0u);
}

TEST_F(InjectorTest, CertainProbabilityAlwaysFlips) {
  LinkFaultInjector inj(&model_, 2, "link:test");
  for (int i = 0; i < 200; ++i) {
    BitVec128 payload(0, 0);
    const InjectionResult r = inj.inject(payload, nullptr, 1.0);
    EXPECT_TRUE(r.error_event);
    EXPECT_GE(r.bits_flipped, 1);
    // Flips can collide on the same bit (flip twice = restore), so the
    // surviving popcount is at most the flip count and has equal parity.
    EXPECT_LE(payload.popcount(), r.payload_flips);
    EXPECT_EQ(payload.popcount() % 2, r.payload_flips % 2);
  }
}

TEST_F(InjectorTest, EventRateMatchesProbability) {
  // Droop off: this test checks the raw per-traversal Bernoulli rate. With
  // droop enabled the true mean sits above p (bursts multiply it by
  // droop_scale), which is covered by DroopRaisesEventRate below.
  VariusParams p;
  p.droop_rate = 0.0;
  const VariusModel model(p);
  LinkFaultInjector inj(&model, 3, "link:test");
  const int n = 200000;
  int events = 0;
  for (int i = 0; i < n; ++i) {
    BitVec128 payload(0, 0);
    if (inj.inject(payload, nullptr, 0.05).error_event) ++events;
  }
  EXPECT_NEAR(static_cast<double>(events) / n, 0.05, 0.003);
  EXPECT_EQ(inj.total_droops(), 0u);
  EXPECT_TRUE(inj.droop_accounting_consistent());
}

TEST_F(InjectorTest, DroopRaisesEventRateAndAccountingBalances) {
  // Default params have droop on (rate 2e-4, 24-traversal bursts, 12x
  // scale); the measured rate must exceed the base probability and the
  // droop counters must reconcile at every point.
  LinkFaultInjector inj(&model_, 3, "link:test");
  const int n = 200000;
  int events = 0;
  for (int i = 0; i < n; ++i) {
    BitVec128 payload(0, 0);
    if (inj.inject(payload, nullptr, 0.05).error_event) ++events;
    ASSERT_TRUE(inj.droop_accounting_consistent());
  }
  EXPECT_GT(inj.total_droops(), 0u);
  // Expected mean ~= 0.05 + burst_fraction * (min(1, 0.6) - 0.05) ~= 0.0526.
  EXPECT_NEAR(static_cast<double>(events) / n, 0.0526, 0.004);
  EXPECT_GT(inj.droop_traversals(),
            inj.total_droops());  // bursts are longer than one traversal
}

TEST_F(InjectorTest, DroopBurstCoversExactlyLenTraversals) {
  // Force a droop on (almost) every idle traversal and check each burst
  // scales exactly droop_len_traversals flits, counting the starter.
  VariusParams p;
  p.droop_rate = 1.0;
  p.droop_len_traversals = 5;
  const VariusModel model(p);
  LinkFaultInjector inj(&model, 9, "link:test");
  BitVec128 payload(0, 0);
  for (int i = 0; i < 100; ++i) {
    inj.inject(payload, nullptr, 0.0);
    ASSERT_TRUE(inj.droop_accounting_consistent());
  }
  // Back-to-back bursts: 100 traversals / 5 per burst = 20 bursts exactly.
  EXPECT_EQ(inj.total_droops(), 20u);
  EXPECT_EQ(inj.droop_traversals(), 100u);
  EXPECT_EQ(inj.droop_left(), 0);
}

TEST_F(InjectorTest, FlipsLandInPayloadWithoutEcc) {
  LinkFaultInjector inj(&model_, 4, "link:test");
  for (int i = 0; i < 500; ++i) {
    BitVec128 payload(0, 0);
    const InjectionResult r = inj.inject(payload, nullptr, 1.0);
    EXPECT_EQ(r.check_flips, 0);
    EXPECT_EQ(r.payload_flips, r.bits_flipped);
  }
}

TEST_F(InjectorTest, FlipsCanHitCheckBitsWithEcc) {
  LinkFaultInjector inj(&model_, 5, "link:test");
  int check_hits = 0;
  for (int i = 0; i < 5000; ++i) {
    BitVec128 payload(0, 0);
    FlitEcc ecc;
    const InjectionResult r = inj.inject(payload, &ecc, 1.0);
    check_hits += r.check_flips;
    EXPECT_LE(payload.popcount(), r.payload_flips);
  }
  // 16 of 144 codeword bits are check bits: expect roughly 11% of flips.
  EXPECT_GT(check_hits, 100);
}

TEST_F(InjectorTest, BurstLengthBounded) {
  LinkFaultInjector inj(&model_, 6, "link:test");
  for (int i = 0; i < 2000; ++i) {
    BitVec128 payload(0, 0);
    const InjectionResult r = inj.inject(payload, nullptr, 1.0);
    EXPECT_LE(r.bits_flipped, 8);
  }
}

TEST_F(InjectorTest, MostEventsAreSingleBitAtLowPressure) {
  LinkFaultInjector inj(&model_, 7, "link:test");
  int singles = 0;
  int events = 0;
  for (int i = 0; i < 20000; ++i) {
    BitVec128 payload(0, 0);
    const InjectionResult r = inj.inject(payload, nullptr, 0.01);
    if (r.error_event) {
      ++events;
      if (r.bits_flipped == 1) ++singles;
    }
  }
  ASSERT_GT(events, 50);
  EXPECT_GT(static_cast<double>(singles) / events, 0.7);
}

TEST_F(InjectorTest, DeterministicPerTag) {
  LinkFaultInjector a(&model_, 42, "link:0:N");
  LinkFaultInjector b(&model_, 42, "link:0:N");
  for (int i = 0; i < 200; ++i) {
    BitVec128 pa(7, 7);
    BitVec128 pb(7, 7);
    a.inject(pa, nullptr, 0.3);
    b.inject(pb, nullptr, 0.3);
    EXPECT_EQ(pa, pb);
  }
}

TEST_F(InjectorTest, DifferentTagsDiverge) {
  LinkFaultInjector a(&model_, 42, "link:0:N");
  LinkFaultInjector b(&model_, 42, "link:0:S");
  int diffs = 0;
  for (int i = 0; i < 200; ++i) {
    BitVec128 pa(7, 7);
    BitVec128 pb(7, 7);
    a.inject(pa, nullptr, 0.5);
    b.inject(pb, nullptr, 0.5);
    if (!(pa == pb)) ++diffs;
  }
  EXPECT_GT(diffs, 10);
}

TEST_F(InjectorTest, CountersAccumulate) {
  LinkFaultInjector inj(&model_, 8, "link:test");
  std::uint64_t flips = 0;
  for (int i = 0; i < 100; ++i) {
    BitVec128 payload(0, 0);
    flips += static_cast<std::uint64_t>(inj.inject(payload, nullptr, 1.0).bits_flipped);
  }
  EXPECT_EQ(inj.total_events(), 100u);
  EXPECT_EQ(inj.total_flips(), flips);
}

TEST_F(InjectorTest, DroopsCreateErrorBursts) {
  VariusParams vp;
  vp.droop_rate = 0.01;
  vp.droop_len_traversals = 20;
  vp.droop_scale = 50.0;
  const VariusModel model(vp);
  LinkFaultInjector inj(&model, 31, "link:droop");
  // At base p = 0.002, droops raise the in-burst probability to ~0.1:
  // errors cluster instead of arriving uniformly.
  int runs_of_3 = 0;
  int consecutive = 0;
  int events = 0;
  for (int i = 0; i < 100000; ++i) {
    BitVec128 payload(0, 0);
    if (inj.inject(payload, nullptr, 0.002).error_event) {
      ++events;
      if (++consecutive >= 2) ++runs_of_3;
    } else {
      consecutive = 0;
    }
  }
  EXPECT_GT(inj.total_droops(), 100u);
  EXPECT_GT(events, 200);
  // Under the uncorrelated model at the same average rate, back-to-back
  // errors would be vanishingly rare (p^2 ~ 1e-4 of traversals).
  EXPECT_GT(runs_of_3, 5);
}

TEST_F(InjectorTest, DroopDisabledMeansNoBursts) {
  VariusParams vp;
  vp.droop_rate = 0.0;
  const VariusModel model(vp);
  LinkFaultInjector inj(&model, 32, "link:nodroop");
  for (int i = 0; i < 10000; ++i) {
    BitVec128 payload(0, 0);
    inj.inject(payload, nullptr, 0.01);
  }
  EXPECT_EQ(inj.total_droops(), 0u);
  EXPECT_FALSE(inj.in_droop());
}

}  // namespace
}  // namespace rlftnoc
