#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace rlftnoc {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) pool.submit([&ran] { ++ran; });
  pool.wait_all();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SlotOutputsAreOrderIndependent) {
  // Each job writes into its own slot; the result must not depend on which
  // worker ran which job or in what order they finished.
  constexpr int kJobs = 64;
  std::vector<int> slots(kJobs, -1);
  ThreadPool pool(4);
  for (int i = 0; i < kJobs; ++i) {
    pool.submit([&slots, i] {
      // Stagger completion times so finish order != submit order.
      std::this_thread::sleep_for(std::chrono::microseconds((kJobs - i) * 10));
      slots[static_cast<std::size_t>(i)] = i * i;
    });
  }
  pool.wait_all();
  for (int i = 0; i < kJobs; ++i) EXPECT_EQ(slots[static_cast<std::size_t>(i)], i * i);
}

TEST(ThreadPool, WaitAllRethrowsFirstException) {
  ThreadPool pool(2);
  std::atomic<int> survivors{0};
  pool.submit([] { throw std::runtime_error("job failed"); });
  for (int i = 0; i < 10; ++i) pool.submit([&survivors] { ++survivors; });
  EXPECT_THROW(pool.wait_all(), std::runtime_error);
  // The failure did not cancel the remaining jobs.
  EXPECT_EQ(survivors.load(), 10);
  // The error is consumed: a second wait over new work succeeds.
  pool.submit([&survivors] { ++survivors; });
  EXPECT_NO_THROW(pool.wait_all());
  EXPECT_EQ(survivors.load(), 11);
}

TEST(ThreadPool, WaitAllWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.wait_all());
}

TEST(ThreadPool, SubmitFromInsideAJob) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&pool, &ran] {
    ++ran;
    pool.submit([&ran] { ++ran; });
  });
  pool.wait_all();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, EightWorkerContentionStress) {
  // Oversubscribed relative to most CI runners: 8 workers hammering one
  // queue plus non-slot shared state (the atomic) and slot-style private
  // state, with exceptions interleaved. Primarily a TSan target — the
  // sanitizer presets run this with full race detection.
  constexpr int kJobs = 400;
  ThreadPool pool(8);
  EXPECT_EQ(pool.size(), 8u);
  std::vector<std::uint64_t> slots(kJobs, 0);
  std::atomic<int> ran{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < kJobs; ++i) {
      pool.submit([&slots, &ran, i] {
        slots[static_cast<std::size_t>(i)] += static_cast<std::uint64_t>(i) + 1;
        ++ran;
      });
    }
    if (round == 1) {
      pool.submit([] { throw std::runtime_error("round-1 failure"); });
      EXPECT_THROW(pool.wait_all(), std::runtime_error);
    } else {
      EXPECT_NO_THROW(pool.wait_all());
    }
  }
  EXPECT_EQ(ran.load(), 3 * kJobs);
  for (int i = 0; i < kJobs; ++i)
    EXPECT_EQ(slots[static_cast<std::size_t>(i)],
              3u * (static_cast<std::uint64_t>(i) + 1));
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) pool.submit([&ran] { ++ran; });
    // No wait_all: destruction must still run everything already submitted.
  }
  EXPECT_EQ(ran.load(), 20);
}

TEST(PhasePool, RunsEveryIndexExactlyOnce) {
  PhasePool pool(3);
  EXPECT_EQ(pool.helpers(), 3u);
  constexpr std::size_t kTasks = 257;  // more tasks than threads
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run(kTasks, [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(PhasePool, ZeroHelpersRunsInline) {
  PhasePool pool(0);
  EXPECT_EQ(pool.helpers(), 0u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> who(8);
  pool.run(8, [&who, caller](std::size_t i) { who[i] = caller; });
  for (const auto& id : who) EXPECT_EQ(id, caller);
}

TEST(PhasePool, ReusableAcrossManyPhases) {
  // The stepper dispatches three phases per cycle for millions of cycles;
  // each run() must be a complete barrier (no task of phase N+1 may observe
  // phase N unfinished).
  PhasePool pool(4);
  std::vector<std::uint64_t> slots(64, 0);
  for (int phase = 0; phase < 500; ++phase) {
    pool.run(slots.size(), [&slots, phase](std::size_t i) {
      EXPECT_EQ(slots[i], static_cast<std::uint64_t>(phase));
      ++slots[i];
    });
  }
  for (const std::uint64_t v : slots) EXPECT_EQ(v, 500u);
}

TEST(PhasePool, RethrowsFirstTaskException) {
  PhasePool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.run(16,
                        [&ran](std::size_t i) {
                          ++ran;
                          if (i == 5) throw std::runtime_error("task 5 failed");
                        }),
               std::runtime_error);
  // The error is consumed: the pool is reusable afterwards.
  ran = 0;
  EXPECT_NO_THROW(pool.run(16, [&ran](std::size_t) { ++ran; }));
  EXPECT_EQ(ran.load(), 16);
}

TEST(PhasePool, ZeroTasksIsANoOp) {
  PhasePool pool(2);
  EXPECT_NO_THROW(pool.run(0, [](std::size_t) { FAIL() << "ran a task"; }));
}

TEST(PhasePool, ContentionStress) {
  // TSan target: oversubscribed helpers racing the dispenser across many
  // back-to-back phases, mimicking the per-cycle barrier cadence.
  PhasePool pool(8);
  std::vector<std::uint64_t> slots(128, 0);
  std::atomic<std::uint64_t> sum{0};
  for (int phase = 0; phase < 200; ++phase) {
    pool.run(slots.size(), [&slots, &sum](std::size_t i) {
      ++slots[i];
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  }
  for (const std::uint64_t v : slots) EXPECT_EQ(v, 200u);
  EXPECT_EQ(sum.load(), 200u * (127u * 128u / 2));
}

}  // namespace
}  // namespace rlftnoc
