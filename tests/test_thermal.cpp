#include "thermal/hotspot_lite.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rlftnoc {
namespace {

TEST(Thermal, StartsAtAmbient) {
  ThermalGrid g(4, 4);
  for (int i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(g.temperature(i), g.params().ambient_c);
}

TEST(Thermal, InvalidArgumentsThrow) {
  EXPECT_THROW(ThermalGrid(0, 4), std::invalid_argument);
  ThermalParams bad;
  bad.r_ambient = -1.0;
  EXPECT_THROW(ThermalGrid(2, 2, bad), std::invalid_argument);
}

TEST(Thermal, UniformPowerSteadyState) {
  // With equal power everywhere, no lateral flow: T = ambient + P * R_amb.
  ThermalParams p;
  ThermalGrid g(4, 4, p);
  for (int i = 0; i < 16; ++i) g.set_power(i, 0.4);
  g.settle(1e-6);
  const double expected = p.ambient_c + 0.4 * p.r_ambient;
  for (int i = 0; i < 16; ++i) EXPECT_NEAR(g.temperature(i), expected, 0.05);
}

TEST(Thermal, HeatFlowsTowardNeighbors) {
  ThermalGrid g(3, 3);
  g.set_power(4, 0.8);  // center only
  g.settle(1e-6);
  const double center = g.temperature(4);
  const double edge = g.temperature(1);
  const double corner = g.temperature(0);
  EXPECT_GT(center, edge);
  EXPECT_GT(edge, corner);
  EXPECT_GT(corner, g.params().ambient_c - 1e-9);
}

TEST(Thermal, NoPowerStaysAtAmbient) {
  ThermalGrid g(2, 2);
  for (int i = 0; i < 100; ++i) g.step();
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(g.temperature(i), g.params().ambient_c, 1e-9);
}

TEST(Thermal, MonotoneHeatingUnderConstantPower) {
  ThermalGrid g(2, 2);
  g.set_power(0, 0.5);
  double prev = g.temperature(0);
  for (int i = 0; i < 50; ++i) {
    g.step();
    const double t = g.temperature(0);
    EXPECT_GE(t, prev - 1e-12);
    prev = t;
  }
  EXPECT_GT(prev, g.params().ambient_c + 1.0);
}

TEST(Thermal, CoolsAfterPowerRemoved) {
  ThermalGrid g(2, 2);
  for (int i = 0; i < 4; ++i) g.set_power(i, 0.6);
  g.settle(1e-6);
  const double hot = g.temperature(0);
  for (int i = 0; i < 4; ++i) g.set_power(i, 0.0);
  g.settle(1e-6);
  EXPECT_LT(g.temperature(0), hot);
  EXPECT_NEAR(g.temperature(0), g.params().ambient_c, 0.05);
}

TEST(Thermal, ThrottleCeilingHolds) {
  ThermalParams p;
  p.max_temp_c = 100.0;
  ThermalGrid g(2, 2, p);
  for (int i = 0; i < 4; ++i) g.set_power(i, 50.0);  // absurd power
  g.settle(1e-4, 50000);
  for (int i = 0; i < 4; ++i) EXPECT_LE(g.temperature(i), 100.0 + 1e-9);
}

TEST(Thermal, NegativePowerClampedToZero) {
  ThermalGrid g(2, 2);
  g.set_power(0, -5.0);
  g.settle(1e-6);
  EXPECT_NEAR(g.temperature(0), g.params().ambient_c, 1e-6);
}

TEST(Thermal, ResetRestoresAmbient) {
  ThermalGrid g(2, 2);
  g.set_power(0, 1.0);
  g.step();
  g.reset();
  EXPECT_DOUBLE_EQ(g.temperature(0), g.params().ambient_c);
  g.step();  // power was cleared too
  EXPECT_DOUBLE_EQ(g.temperature(0), g.params().ambient_c);
}

TEST(Thermal, SettleReportsConvergence) {
  ThermalGrid g(2, 2);
  g.set_power(0, 0.2);
  const int steps = g.settle(1e-7, 100000);
  EXPECT_LT(steps, 100000);
  EXPECT_GT(steps, 1);
}

// Out-of-range nodes are an RLFTNOC_CHECK invariant violation (checked-index
// accessors were converted from throwing .at() to the always-on invariant
// layer, matching the rest of the per-cycle surfaces).
#if RLFTNOC_CHECK_ENABLED
using ThermalDeathTest = ::testing::Test;

TEST(ThermalDeathTest, OutOfRangeNodeAborts) {
  ThermalGrid g(2, 2);
  EXPECT_DEATH(g.temperature(4), "RLFTNOC_CHECK failed");
  EXPECT_DEATH(g.set_power(-1, 1.0), "RLFTNOC_CHECK failed");
}
#endif

/// Steady-state superposition sanity on a larger grid: doubling all power
/// doubles the rise over ambient (the RC network is linear).
TEST(Thermal, LinearityOfSteadyState) {
  ThermalGrid a(4, 4);
  ThermalGrid b(4, 4);
  for (int i = 0; i < 16; ++i) {
    const double w = 0.05 * (i % 4);
    a.set_power(i, w);
    b.set_power(i, 2.0 * w);
  }
  a.settle(1e-7);
  b.settle(1e-7);
  for (int i = 0; i < 16; ++i) {
    const double rise_a = a.temperature(i) - a.params().ambient_c;
    const double rise_b = b.temperature(i) - b.params().ambient_c;
    EXPECT_NEAR(rise_b, 2.0 * rise_a, 0.05);
  }
}

}  // namespace
}  // namespace rlftnoc
