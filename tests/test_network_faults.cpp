// Fault-tolerance behaviour of the four operation modes under injected
// timing errors.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "noc/network.h"
#include "noc/ni.h"
#include "traffic/traffic.h"

namespace rlftnoc {
namespace {

NocConfig small_cfg() {
  NocConfig c;
  c.mesh_width = 4;
  c.mesh_height = 4;
  return c;
}

void set_all_modes(Network& net, OpMode m) {
  for (NodeId r = 0; r < net.config().num_nodes(); ++r) net.router(r).set_mode(m);
}

void set_all_link_probs(Network& net, double normal, double relaxed = 1e-12) {
  for (NodeId r = 0; r < net.config().num_nodes(); ++r) {
    for (const Port p : kAllPorts) {
      if (p != Port::kLocal && net.out_channel(r, p) != nullptr) {
        net.set_link_error_prob(r, p, LinkErrorProb{normal, relaxed});
      }
    }
  }
}

/// Drives `packets` uniform packets through the network; returns when all
/// are resolved or `max_cycles` elapse.
void drive(Network& net, int packets, Cycle max_cycles, std::uint64_t seed = 3) {
  SyntheticTraffic::Options o;
  o.injection_rate = 0.06;
  o.total_packets = static_cast<std::uint64_t>(packets);
  SyntheticTraffic gen(MeshTopology(net.config()), o, seed);
  std::vector<Packet> batch;
  const Cycle end = net.now() + max_cycles;
  while (net.now() < end && (!gen.exhausted() || !net.drained())) {
    batch.clear();
    gen.tick(net.now(), batch);
    for (auto& p : batch) net.ni(p.src).enqueue_packet(std::move(p));
    net.step();
  }
}

TEST(FaultMode0, ErrorsCaughtByCrcAndRetransmittedEndToEnd) {
  Network net(small_cfg(), 1);
  set_all_modes(net, OpMode::kMode0);
  set_all_link_probs(net, 0.02);
  drive(net, 1500, 300000);
  const NetworkMetrics& m = net.metrics();
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(m.packets_delivered, 1500u);
  EXPECT_GT(m.crc_packet_failures, 0u);
  EXPECT_GT(m.packet_e2e_retransmissions, 0u);
  EXPECT_GT(m.retx_flits_e2e, 0u);
  // Mode 0 has no link-level machinery.
  EXPECT_EQ(m.retx_flits_hop, 0u);
  EXPECT_EQ(m.dup_flits, 0u);
}

TEST(FaultMode1, EccCorrectsAndNacksInsteadOfE2e) {
  Network net(small_cfg(), 1);
  set_all_modes(net, OpMode::kMode1);
  set_all_link_probs(net, 0.02);
  drive(net, 1500, 300000);
  const NetworkMetrics& m = net.metrics();
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(m.packets_delivered, 1500u);
  std::uint64_t corrections = 0;
  std::uint64_t uncorrectable = 0;
  for (NodeId r = 0; r < 16; ++r) {
    corrections += net.router(r).counters().ecc_corrections;
    uncorrectable += net.router(r).counters().ecc_uncorrectable;
  }
  EXPECT_GT(corrections, 0u);
  // Most errors are single-bit: corrections dominate rejections.
  EXPECT_GT(corrections, uncorrectable);
  // Link-level retransmission replaces nearly all source retransmission.
  EXPECT_LT(m.packet_e2e_retransmissions, m.crc_packet_failures + 50);
  EXPECT_LT(m.retx_flits_e2e, m.retx_flits_hop + 500);
}

TEST(FaultMode1, DramaticallyFewerRetransmittedFlitsThanMode0) {
  auto run = [](OpMode mode) {
    Network net(small_cfg(), 1);
    set_all_modes(net, mode);
    set_all_link_probs(net, 0.03);
    drive(net, 1200, 300000);
    return net.metrics().retx_flits_e2e + net.metrics().retx_flits_hop;
  };
  const auto mode0 = run(OpMode::kMode0);
  const auto mode1 = run(OpMode::kMode1);
  EXPECT_GT(mode0, 2 * mode1);
}

TEST(FaultMode2, ProactiveDuplicatesAreSentAndDiscarded) {
  Network net(small_cfg(), 1);
  set_all_modes(net, OpMode::kMode2);
  set_all_link_probs(net, 0.01);
  drive(net, 800, 300000);
  const NetworkMetrics& m = net.metrics();
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(m.packets_delivered, 800u);
  EXPECT_GT(m.dup_flits, 0u);
  std::uint64_t discards = 0;
  for (NodeId r = 0; r < 16; ++r) discards += net.router(r).counters().dup_discards;
  // Most duplicates chase an already-accepted original.
  EXPECT_GT(discards, m.dup_flits / 2);
}

TEST(FaultMode3, RelaxedTimingEliminatesErrors) {
  Network net(small_cfg(), 1);
  set_all_modes(net, OpMode::kMode3);
  set_all_link_probs(net, 0.05, 1e-12);
  drive(net, 800, 400000);
  const NetworkMetrics& m = net.metrics();
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(m.packets_delivered, 800u);
  EXPECT_EQ(m.crc_packet_failures, 0u);
  EXPECT_EQ(m.retx_flits_hop, 0u);
  EXPECT_EQ(m.packet_e2e_retransmissions, 0u);
}

TEST(FaultMode3, CostsLatencyComparedToMode1) {
  auto run = [](OpMode mode) {
    Network net(small_cfg(), 1);
    set_all_modes(net, mode);
    set_all_link_probs(net, 1e-9, 1e-12);
    drive(net, 800, 300000);
    return net.metrics().packet_latency.mean();
  };
  EXPECT_GT(run(OpMode::kMode3), run(OpMode::kMode1) + 3.0);
}

TEST(FaultModes, AllModesDeliverEverythingUnderHeavyErrors) {
  for (const OpMode mode : {OpMode::kMode0, OpMode::kMode1, OpMode::kMode2,
                            OpMode::kMode3}) {
    Network net(small_cfg(), 1);
    set_all_modes(net, mode);
    set_all_link_probs(net, 0.05);
    drive(net, 500, 600000);
    EXPECT_TRUE(net.drained()) << "mode " << static_cast<int>(mode);
    EXPECT_EQ(net.metrics().packets_delivered, 500u)
        << "mode " << static_cast<int>(mode);
  }
}

TEST(FaultModes, PayloadsDeliveredIntactUnderEcc) {
  // CRC failures at the destination may only come from genuinely
  // uncorrected patterns; with ECC enabled and moderate errors the flit
  // failure rate at the NI must be far below the raw link error rate.
  Network net(small_cfg(), 1);
  set_all_modes(net, OpMode::kMode1);
  set_all_link_probs(net, 0.02);
  drive(net, 2000, 400000);
  std::uint64_t ejected = 0;
  std::uint64_t failures = 0;
  for (NodeId n = 0; n < 16; ++n) {
    ejected += net.ni(n).counters().flits_ejected;
    failures += net.ni(n).counters().crc_flit_failures;
  }
  ASSERT_GT(ejected, 0u);
  EXPECT_LT(static_cast<double>(failures) / static_cast<double>(ejected), 0.02 / 4);
}

TEST(FaultModes, ModeSwitchMidTrafficStaysCorrect) {
  Network net(small_cfg(), 1);
  set_all_link_probs(net, 0.02);
  SyntheticTraffic::Options o;
  o.injection_rate = 0.08;
  o.total_packets = 2000;
  SyntheticTraffic gen(MeshTopology(net.config()), o, 9);
  std::vector<Packet> batch;
  Rng mode_rng(123);
  while (!gen.exhausted() || !net.drained()) {
    batch.clear();
    gen.tick(net.now(), batch);
    for (auto& p : batch) net.ni(p.src).enqueue_packet(std::move(p));
    // Aggressively flip random routers between random modes.
    if (net.now() % 250 == 0) {
      for (int k = 0; k < 4; ++k) {
        const auto r = static_cast<NodeId>(mode_rng.next_below(16));
        net.router(r).set_mode(static_cast<OpMode>(mode_rng.next_below(4)));
      }
    }
    net.step();
    ASSERT_LT(net.now(), 600000u) << "drain failure after mode churn";
  }
  EXPECT_EQ(net.metrics().packets_delivered, 2000u);
}

TEST(FaultModes, HotSingleLinkOnlyAffectsCrossingTraffic) {
  Network net(small_cfg(), 1);
  set_all_modes(net, OpMode::kMode0);
  // Only router 5's east link is faulty.
  net.set_link_error_prob(5, Port::kEast, LinkErrorProb{0.2, 1e-12});
  Rng rng(7);
  // Packet 0->3 (top row, no east link of 5): must never fail.
  // Packet 4->7 crosses 5->6 east: fails often.
  PacketId id = 1;
  for (int i = 0; i < 200; ++i) {
    net.ni(0).enqueue_packet(make_packet(id++, 0, 3, 2, net.now(), rng));
    net.ni(4).enqueue_packet(make_packet(id++, 4, 7, 2, net.now(), rng));
  }
  for (Cycle t = 0; t < 100000 && !net.drained(); ++t) net.step();
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(net.metrics().packets_delivered, 400u);
  EXPECT_GT(net.metrics().crc_packet_failures, 0u);
  EXPECT_EQ(net.ni(3).counters().crc_flit_failures, 0u);
  EXPECT_GT(net.ni(7).counters().crc_flit_failures, 0u);
}

}  // namespace
}  // namespace rlftnoc
