#include "fault/varius.h"

#include <gtest/gtest.h>

namespace rlftnoc {
namespace {

TEST(Varius, NormalCdfReference) {
  EXPECT_NEAR(VariusModel::normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(VariusModel::normal_cdf(1.0), 0.8413447, 1e-6);
  EXPECT_NEAR(VariusModel::normal_cdf(-1.0), 0.1586553, 1e-6);
  EXPECT_NEAR(VariusModel::normal_cdf(3.0), 0.9986501, 1e-6);
}

TEST(Varius, DelayGrowsWithTemperature) {
  const VariusModel m;
  double prev = 0.0;
  for (double t = 50.0; t <= 110.0; t += 10.0) {
    const double d = m.mean_path_delay(t, 0.1, 1.0);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(Varius, DelayGrowsWithUtilization) {
  const VariusModel m;
  EXPECT_LT(m.mean_path_delay(80.0, 0.0, 1.0), m.mean_path_delay(80.0, 0.3, 1.0));
}

TEST(Varius, DelayShrinksWithVoltage) {
  const VariusModel m;
  EXPECT_GT(m.mean_path_delay(80.0, 0.1, 0.9), m.mean_path_delay(80.0, 0.1, 1.1));
}

TEST(Varius, UtilizationClamped) {
  const VariusModel m;
  EXPECT_DOUBLE_EQ(m.mean_path_delay(80.0, 1.5, 1.0), m.mean_path_delay(80.0, 1.0, 1.0));
  EXPECT_DOUBLE_EQ(m.mean_path_delay(80.0, -0.5, 1.0), m.mean_path_delay(80.0, 0.0, 1.0));
}

TEST(Varius, ErrorProbabilityMonotoneInTemperature) {
  const VariusModel m;
  double prev = 0.0;
  for (double t = 50.0; t <= 110.0; t += 5.0) {
    const double p = m.flit_error_probability(t, 0.1, 1.0);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(Varius, CalibratedOperatingBand) {
  // The defaults must span the regimes that motivate the four modes:
  // harmless when cool, material when hot.
  const VariusModel m;
  EXPECT_LT(m.flit_error_probability(50.0, 0.0, 1.0), 2e-3);
  EXPECT_GT(m.flit_error_probability(100.0, 0.3, 1.0), 2e-2);
  EXPECT_LT(m.flit_error_probability(110.0, 0.3, 1.0), 0.3);
}

TEST(Varius, RelaxedTimingCollapsesErrorProbability) {
  const VariusModel m;
  const double normal = m.flit_error_probability(105.0, 0.3, 1.0, 1.0);
  const double relaxed = m.flit_error_probability(105.0, 0.3, 1.0, 2.0);
  EXPECT_GT(normal, 1e-3);
  EXPECT_LT(relaxed, 1e-9);
}

TEST(Varius, ProbabilityBounded) {
  const VariusModel m;
  for (double t = 0.0; t < 400.0; t += 25.0) {
    const double p = m.flit_error_probability(t, 0.3, 0.6);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

TEST(Varius, MultibitParamMonotoneAndCapped) {
  const VariusModel m;
  EXPECT_LE(m.multibit_param(0.001), m.multibit_param(0.1));
  EXPECT_LE(m.multibit_param(0.9), m.params().multibit_cap);
  EXPECT_GE(m.multibit_param(0.0), m.params().multibit_base);
}

TEST(Varius, CustomParamsRespected) {
  VariusParams p;
  p.nominal_delay = 0.5;
  p.sigma = 0.01;
  const VariusModel m(p);
  // Huge slack: error probability at the clamp floor.
  EXPECT_LE(m.flit_error_probability(50.0, 0.0, 1.0), 1e-11);
}

}  // namespace
}  // namespace rlftnoc
