#include "common/bitvec.h"

#include <gtest/gtest.h>

namespace rlftnoc {
namespace {

TEST(BitVec, DefaultIsZero) {
  BitVec128 v;
  EXPECT_EQ(v.word(0), 0u);
  EXPECT_EQ(v.word(1), 0u);
  EXPECT_EQ(v.popcount(), 0);
}

TEST(BitVec, SetAndReadBits) {
  BitVec128 v;
  v.set_bit(0, true);
  v.set_bit(63, true);
  v.set_bit(64, true);
  v.set_bit(127, true);
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(63));
  EXPECT_TRUE(v.bit(64));
  EXPECT_TRUE(v.bit(127));
  EXPECT_FALSE(v.bit(1));
  EXPECT_FALSE(v.bit(65));
  EXPECT_EQ(v.popcount(), 4);
}

TEST(BitVec, ClearBit) {
  BitVec128 v(~0ULL, ~0ULL);
  v.set_bit(42, false);
  EXPECT_FALSE(v.bit(42));
  EXPECT_EQ(v.popcount(), 127);
}

TEST(BitVec, FlipBitTwiceRestores) {
  BitVec128 v(0x1234, 0x5678);
  const BitVec128 orig = v;
  for (std::size_t i = 0; i < 128; i += 7) v.flip_bit(i);
  EXPECT_NE(v, orig);
  for (std::size_t i = 0; i < 128; i += 7) v.flip_bit(i);
  EXPECT_EQ(v, orig);
}

TEST(BitVec, WordBoundaryMapping) {
  BitVec128 v;
  v.set_bit(63, true);
  EXPECT_EQ(v.word(0), 1ULL << 63);
  EXPECT_EQ(v.word(1), 0u);
  v.set_bit(64, true);
  EXPECT_EQ(v.word(1), 1ULL);
}

TEST(BitVec, HammingDistance) {
  BitVec128 a(0b1010, 0);
  BitVec128 b(0b0110, 0);
  EXPECT_EQ(a.hamming_distance(b), 2);
  EXPECT_EQ(a.hamming_distance(a), 0);
}

TEST(BitVec, XorAssign) {
  BitVec128 a(0xFF00, 0x00FF);
  BitVec128 b(0x0FF0, 0x0FF0);
  a ^= b;
  EXPECT_EQ(a.word(0), 0xFF00ULL ^ 0x0FF0ULL);
  EXPECT_EQ(a.word(1), 0x00FFULL ^ 0x0FF0ULL);
}

TEST(BitVec, Equality) {
  EXPECT_EQ(BitVec128(1, 2), BitVec128(1, 2));
  EXPECT_NE(BitVec128(1, 2), BitVec128(2, 1));
}

TEST(BitVec, HexRendering) {
  BitVec128 v(0x00000000deadbeefULL, 0x0123456789abcdefULL);
  EXPECT_EQ(v.to_hex(), "0x0123456789abcdef00000000deadbeef");
}

TEST(BitVec, PopcountFull) {
  BitVec128 v(~0ULL, ~0ULL);
  EXPECT_EQ(v.popcount(), 128);
}

}  // namespace
}  // namespace rlftnoc
