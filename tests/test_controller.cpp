#include "ftnoc/controller.h"

#include "ftnoc/dt_policy.h"

#include <gtest/gtest.h>

#include "noc/ni.h"
#include "traffic/traffic.h"

namespace rlftnoc {
namespace {

NocConfig cfg4() {
  NocConfig c;
  c.mesh_width = 4;
  c.mesh_height = 4;
  return c;
}

TEST(Controller, InitializesLinkProbabilities) {
  Network net(cfg4(), 1);
  StaticPolicy pol(OpMode::kMode0);
  FtController ctl(&net, &pol);
  // All links carry the cool-ambient error probability right away.
  const LinkErrorProb p = net.link_error_prob(5, Port::kEast);
  EXPECT_GT(p.normal, 0.0);
  EXPECT_LT(p.normal, 0.01);
  EXPECT_LT(p.relaxed, 1e-9);
}

TEST(Controller, FaultsCanBeDisabled) {
  Network net(cfg4(), 1);
  StaticPolicy pol(OpMode::kMode0);
  ControllerOptions opt;
  opt.faults_enabled = false;
  FtController ctl(&net, &pol, opt);
  EXPECT_EQ(net.link_error_prob(5, Port::kEast).normal, 0.0);
}

TEST(Controller, AppliesPolicyModeToAllRouters) {
  Network net(cfg4(), 1);
  StaticPolicy pol(OpMode::kMode2);
  FtController ctl(&net, &pol);
  for (NodeId r = 0; r < 16; ++r) EXPECT_EQ(net.router(r).mode(), OpMode::kMode2);
}

TEST(Controller, StepsOnSchedule) {
  Network net(cfg4(), 1);
  StaticPolicy pol(OpMode::kMode0);
  ControllerOptions opt;
  opt.step_cycles = 100;
  FtController ctl(&net, &pol, opt);
  const std::uint64_t start = ctl.steps();
  for (int i = 0; i < 1000; ++i) {
    net.step();
    ctl.on_cycle();
  }
  EXPECT_EQ(ctl.steps() - start, 10u);
}

TEST(Controller, TemperatureRisesUnderTraffic) {
  Network net(cfg4(), 1);
  StaticPolicy pol(OpMode::kMode0);
  ControllerOptions opt;
  opt.faults_enabled = false;  // isolate the thermal path
  FtController ctl(&net, &pol, opt);
  const double t0 = ctl.thermal().temperature(5);

  SyntheticTraffic::Options o;
  o.injection_rate = 0.15;
  o.total_packets = 0;
  SyntheticTraffic gen(MeshTopology(cfg4()), o, 2);
  std::vector<Packet> batch;
  for (Cycle t = 0; t < 60000; ++t) {
    batch.clear();
    gen.tick(net.now(), batch);
    for (auto& p : batch) net.ni(p.src).enqueue_packet(std::move(p));
    net.step();
    ctl.on_cycle();
  }
  EXPECT_GT(ctl.thermal().temperature(5), t0 + 5.0);
}

TEST(Controller, HotterMeansMoreErrors) {
  Network net(cfg4(), 1);
  StaticPolicy pol(OpMode::kMode0);
  FtController ctl(&net, &pol);
  const double p_cool = net.link_error_prob(5, Port::kEast).normal;

  SyntheticTraffic::Options o;
  o.injection_rate = 0.15;
  o.total_packets = 0;
  SyntheticTraffic gen(MeshTopology(cfg4()), o, 2);
  std::vector<Packet> batch;
  for (Cycle t = 0; t < 60000; ++t) {
    batch.clear();
    gen.tick(net.now(), batch);
    for (auto& p : batch) net.ni(p.src).enqueue_packet(std::move(p));
    net.step();
    ctl.on_cycle();
  }
  EXPECT_GT(net.link_error_prob(5, Port::kEast).normal, p_cool);
}

TEST(Controller, FeaturesReflectTraffic) {
  Network net(cfg4(), 1);
  StaticPolicy pol(OpMode::kMode0);
  ControllerOptions opt;
  opt.faults_enabled = false;
  FtController ctl(&net, &pol, opt);

  SyntheticTraffic::Options o;
  o.injection_rate = 0.12;
  o.total_packets = 0;
  SyntheticTraffic gen(MeshTopology(cfg4()), o, 4);
  std::vector<Packet> batch;
  for (Cycle t = 0; t < 20000; ++t) {
    batch.clear();
    gen.tick(net.now(), batch);
    for (auto& p : batch) net.ni(p.src).enqueue_packet(std::move(p));
    net.step();
    ctl.on_cycle();
  }
  const FeatureSnapshot& f = ctl.last_features(5);
  double total_util = 0.0;
  for (const double u : f.out_link_util) total_util += u;
  EXPECT_GT(total_util, 0.05);
  EXPECT_GT(f.temperature_c, 45.0);
}

TEST(Controller, RewardIsFiniteAndPositive) {
  Network net(cfg4(), 1);
  StaticPolicy pol(OpMode::kMode1);
  FtController ctl(&net, &pol);
  SyntheticTraffic::Options o;
  o.injection_rate = 0.1;
  o.total_packets = 0;
  SyntheticTraffic gen(MeshTopology(cfg4()), o, 6);
  std::vector<Packet> batch;
  for (Cycle t = 0; t < 10000; ++t) {
    batch.clear();
    gen.tick(net.now(), batch);
    for (auto& p : batch) net.ni(p.src).enqueue_packet(std::move(p));
    net.step();
    ctl.on_cycle();
  }
  for (NodeId r = 0; r < 16; ++r) {
    EXPECT_GT(ctl.last_reward(r), 0.0);
    EXPECT_LT(ctl.last_reward(r), 100.0);
  }
}

TEST(Controller, ControlEnergyChargedForLearningPolicies) {
  Network net(cfg4(), 1);
  DtPolicy dt;
  FtController ctl(&net, &dt);
  for (int i = 0; i < 3000; ++i) {
    net.step();
    ctl.on_cycle();
  }
  EXPECT_GT(net.power().total_event_count(PowerEvent::kDtInference), 0u);
}

TEST(Controller, ErrorScaleMultiplies) {
  Network net1(cfg4(), 1);
  Network net2(cfg4(), 1);
  StaticPolicy pol(OpMode::kMode0);
  FtController c1(&net1, &pol, {}, {}, 1.0);
  FtController c2(&net2, &pol, {}, {}, 10.0);
  EXPECT_NEAR(net2.link_error_prob(5, Port::kEast).normal,
              10.0 * net1.link_error_prob(5, Port::kEast).normal, 1e-12);
}

}  // namespace
}  // namespace rlftnoc
