// Focused link-layer ARQ protocol tests on a minimal 2x2 mesh: ordering
// under retransmission (the go-back-N invariant), duplicate handling,
// retention lifecycle, and mode-0 drain gating.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "noc/network.h"
#include "noc/ni.h"

namespace rlftnoc {
namespace {

NocConfig cfg2() {
  NocConfig c;
  c.mesh_width = 2;
  c.mesh_height = 2;
  return c;
}

void run_until_drained(Network& net, Cycle max_cycles) {
  const Cycle end = net.now() + max_cycles;
  while (net.now() < end && !net.drained()) net.step();
}

TEST(LinkArq, RetentionFreedByAcks) {
  Network net(cfg2(), 1);
  for (NodeId r = 0; r < 4; ++r) net.router(r).set_mode(OpMode::kMode1);
  Rng rng(7);
  net.ni(0).enqueue_packet(make_packet(1, 0, 3, 4, 0, rng));
  run_until_drained(net, 500);
  EXPECT_TRUE(net.drained());
  for (NodeId r = 0; r < 4; ++r) EXPECT_EQ(net.router(r).pending_link_work(), 0);
}

TEST(LinkArq, HighErrorSingleLinkStillDeliversInOrder) {
  // A single terrible link (p = 0.3) between router 0 and 1: every packet
  // crossing it must still arrive complete and pass CRC after ECC repair
  // and retransmission. In-order link delivery is what makes this safe.
  Network net(cfg2(), 1);
  for (NodeId r = 0; r < 4; ++r) net.router(r).set_mode(OpMode::kMode1);
  net.set_link_error_prob(0, Port::kEast, LinkErrorProb{0.3, 1e-12});
  Rng rng(9);
  PacketId id = 1;
  for (int i = 0; i < 300; ++i)
    net.ni(0).enqueue_packet(make_packet(id++, 0, 1, 4, 0, rng));
  run_until_drained(net, 400000);
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(net.metrics().packets_delivered, 300u);
  EXPECT_GT(net.metrics().retx_flits_hop, 0u);
  // Only SECDED miscorrections escape to the end-to-end layer. At p = 0.3
  // with the heavy multi-bit tail, a triple-bit alias per flit exposure is
  // ~3%, and retransmission attempts multiply exposures, so up to ~25% of
  // packets legitimately need a source retransmission.
  EXPECT_LE(net.metrics().packet_e2e_retransmissions, 75u);
}

TEST(LinkArq, NackCountersMatchAcrossTheLink) {
  Network net(cfg2(), 1);
  for (NodeId r = 0; r < 4; ++r) net.router(r).set_mode(OpMode::kMode1);
  net.set_link_error_prob(0, Port::kEast, LinkErrorProb{0.2, 1e-12});
  Rng rng(11);
  PacketId id = 1;
  for (int i = 0; i < 200; ++i)
    net.ni(0).enqueue_packet(make_packet(id++, 0, 1, 2, 0, rng));
  run_until_drained(net, 300000);
  ASSERT_TRUE(net.drained());
  // NACKs sent by router 1's west input == NACKs received at router 0's
  // east output (the ack lane is lossless).
  const auto& tx = net.router(0).counters();
  const auto& rx = net.router(1).counters();
  EXPECT_EQ(tx.nacks_received[port_index(Port::kEast)],
            rx.nacks_sent[port_index(Port::kWest)]);
  EXPECT_GT(tx.nacks_received[port_index(Port::kEast)], 0u);
}

TEST(LinkArq, Mode2DuplicatesResolveFasterThanNacks) {
  // With pre-retransmission, a failed original is usually repaired by the
  // duplicate before the NACK round-trip completes, so link-level resends
  // are much rarer than under mode 1 at the same error rate.
  auto hop_retx = [](OpMode mode) {
    Network net(cfg2(), 1);
    for (NodeId r = 0; r < 4; ++r) net.router(r).set_mode(mode);
    for (NodeId r = 0; r < 4; ++r) {
      for (const Port p : kAllPorts) {
        if (p != Port::kLocal && net.out_channel(r, p) != nullptr)
          net.set_link_error_prob(r, p, LinkErrorProb{0.15, 1e-12});
      }
    }
    Rng rng(13);
    PacketId id = 1;
    for (int i = 0; i < 250; ++i) {
      net.ni(0).enqueue_packet(make_packet(id++, 0, 3, 4, 0, rng));
      net.ni(1).enqueue_packet(make_packet(id++, 1, 2, 4, 0, rng));
    }
    for (Cycle t = 0; t < 500000 && !net.drained(); ++t) net.step();
    EXPECT_TRUE(net.drained());
    return net.metrics().retx_flits_hop;
  };
  const auto mode1 = hop_retx(OpMode::kMode1);
  const auto mode2 = hop_retx(OpMode::kMode2);
  EXPECT_LT(mode2 * 2, mode1);
}

TEST(LinkArq, DuplicatesAreDiscardedNotDoubleDelivered) {
  Network net(cfg2(), 1);
  for (NodeId r = 0; r < 4; ++r) net.router(r).set_mode(OpMode::kMode2);
  Rng rng(15);
  PacketId id = 1;
  for (int i = 0; i < 100; ++i)
    net.ni(0).enqueue_packet(make_packet(id++, 0, 3, 4, 0, rng));
  run_until_drained(net, 200000);
  ASSERT_TRUE(net.drained());
  EXPECT_EQ(net.metrics().packets_delivered, 100u);
  EXPECT_EQ(net.metrics().flits_delivered, 400u);
  EXPECT_GT(net.metrics().dup_flits, 0u);
  std::uint64_t discards = 0;
  for (NodeId r = 0; r < 4; ++r) discards += net.router(r).counters().dup_discards;
  EXPECT_EQ(discards, net.metrics().dup_flits);  // error-free: every dup dropped
}

TEST(LinkArq, ModeZeroSendsNothingWhileArqWindowOpen) {
  // Switch a router from mode 1 to mode 0 with traffic in flight: the
  // drain gate must prevent unprotected flits from overtaking the ARQ
  // window, which would strand a NACKed flit forever. Success criterion:
  // everything still delivers.
  Network net(cfg2(), 1);
  for (NodeId r = 0; r < 4; ++r) net.router(r).set_mode(OpMode::kMode1);
  net.set_link_error_prob(0, Port::kEast, LinkErrorProb{0.25, 1e-12});
  Rng rng(17);
  PacketId id = 1;
  std::uint64_t injected = 0;
  for (Cycle t = 0; t < 20000; ++t) {
    if (t % 7 == 0) {
      net.ni(0).enqueue_packet(make_packet(id++, 0, 1, 4, net.now(), rng));
      ++injected;
    }
    if (t % 500 == 0) {
      net.router(0).set_mode(t % 1000 == 0 ? OpMode::kMode0 : OpMode::kMode1);
    }
    net.step();
  }
  run_until_drained(net, 400000);
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(net.metrics().packets_delivered, injected);
}

TEST(LinkArq, RetentionDepthLimitsBacklogNotCorrectness) {
  NocConfig cfg = cfg2();
  cfg.retention_depth = 2;  // minimal legal window
  Network net(cfg, 1);
  for (NodeId r = 0; r < 4; ++r) net.router(r).set_mode(OpMode::kMode1);
  net.set_link_error_prob(0, Port::kEast, LinkErrorProb{0.2, 1e-12});
  Rng rng(19);
  PacketId id = 1;
  for (int i = 0; i < 150; ++i)
    net.ni(0).enqueue_packet(make_packet(id++, 0, 1, 4, 0, rng));
  run_until_drained(net, 400000);
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(net.metrics().packets_delivered, 150u);
}

TEST(LinkArq, AckTrafficCostsEnergy) {
  Network net(cfg2(), 1);
  for (NodeId r = 0; r < 4; ++r) net.router(r).set_mode(OpMode::kMode1);
  Rng rng(21);
  net.ni(0).enqueue_packet(make_packet(1, 0, 3, 4, 0, rng));
  run_until_drained(net, 1000);
  EXPECT_GT(net.power().total_event_count(PowerEvent::kAckFlit), 0u);
  EXPECT_GT(net.power().total_event_count(PowerEvent::kOutputBufferWrite), 0u);
}

}  // namespace
}  // namespace rlftnoc
