// Pins the documented router pipeline timings (DESIGN.md): ~3 in-router
// cycles + 1 link cycle per hop for a head flit, +1 per hop with ECC
// enabled, +2 more per hop in relaxed-timing mode.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "noc/network.h"
#include "noc/ni.h"

namespace rlftnoc {
namespace {

/// Latency of a single 1-flit packet across `hops` hops in a quiet 1-row
/// mesh under `mode` (no faults).
double one_packet_latency(int hops, OpMode mode) {
  NocConfig cfg;
  cfg.mesh_width = hops + 1;
  cfg.mesh_height = 2;  // validate() requires >= 2 rows
  Network net(cfg, 1);
  for (NodeId r = 0; r < cfg.num_nodes(); ++r) net.router(r).set_mode(mode);
  Rng rng(3);
  net.ni(0).enqueue_packet(make_packet(1, 0, hops, 1, 0, rng));
  for (Cycle t = 0; t < 400 && net.metrics().packets_delivered == 0; ++t) net.step();
  EXPECT_EQ(net.metrics().packets_delivered, 1u);
  return net.metrics().packet_latency.mean();
}

TEST(PipelineTiming, PerHopCostIsThreeCyclesUnprotected) {
  // Each extra hop adds RC -> VA -> SA/ST (one cycle each), with link
  // traversal overlapping the next router's RC: 3 cycles per hop.
  const double h1 = one_packet_latency(1, OpMode::kMode0);
  const double h2 = one_packet_latency(2, OpMode::kMode0);
  const double h4 = one_packet_latency(4, OpMode::kMode0);
  EXPECT_DOUBLE_EQ(h2 - h1, 3.0);
  EXPECT_DOUBLE_EQ(h4 - h2, 6.0);
}

TEST(PipelineTiming, EccAddsOneCyclePerHop) {
  for (const int hops : {1, 3, 5}) {
    const double plain = one_packet_latency(hops, OpMode::kMode0);
    const double ecc = one_packet_latency(hops, OpMode::kMode1);
    EXPECT_DOUBLE_EQ(ecc - plain, static_cast<double>(hops));
  }
}

TEST(PipelineTiming, RelaxedModeAddsTwoMoreCyclesPerHop) {
  for (const int hops : {1, 3}) {
    const double ecc = one_packet_latency(hops, OpMode::kMode1);
    const double relaxed = one_packet_latency(hops, OpMode::kMode3);
    EXPECT_DOUBLE_EQ(relaxed - ecc, 2.0 * hops);
  }
}

TEST(PipelineTiming, BodyFlitsPipelineBehindHead) {
  // A 4-flit packet finishes 3 cycles after a 1-flit packet would (one
  // cycle of serialization per extra flit) on an idle path.
  NocConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 2;
  auto run = [&](int len) {
    Network net(cfg, 1);
    Rng rng(3);
    net.ni(0).enqueue_packet(make_packet(1, 0, 3, len, 0, rng));
    for (Cycle t = 0; t < 400 && net.metrics().packets_delivered == 0; ++t)
      net.step();
    return net.metrics().packet_latency.mean();
  };
  EXPECT_DOUBLE_EQ(run(4) - run(1), 3.0);
}

TEST(PipelineTiming, Mode3ThrottlesBackToBackFlits) {
  // On one hop, a 4-flit packet in mode 3 serializes at one flit per 3
  // cycles (channel occupancy), not one per cycle.
  NocConfig cfg;
  cfg.mesh_width = 2;
  cfg.mesh_height = 2;
  auto run = [&](OpMode mode) {
    Network net(cfg, 1);
    for (NodeId r = 0; r < 4; ++r) net.router(r).set_mode(mode);
    Rng rng(3);
    net.ni(0).enqueue_packet(make_packet(1, 0, 1, 4, 0, rng));
    for (Cycle t = 0; t < 400 && net.metrics().packets_delivered == 0; ++t)
      net.step();
    return net.metrics().packet_latency.mean();
  };
  // Mode 3 holds the channel 3 cycles per flit: the tail flit slips by two
  // extra cycles per body flit behind it (6 total); the head's own +2 stall
  // overlaps with the first body's occupancy wait.
  EXPECT_DOUBLE_EQ(run(OpMode::kMode3) - run(OpMode::kMode1), 6.0);
}

}  // namespace
}  // namespace rlftnoc
