#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "traffic/parsec.h"
#include "traffic/traffic.h"

namespace rlftnoc {
namespace {

/// Fast options: 4x4 mesh, short phases — enough to exercise every phase
/// transition without making the suite slow.
SimOptions fast_options(PolicyKind policy, std::uint64_t seed = 1) {
  SimOptions opt;
  opt.policy = policy;
  opt.seed = seed;
  opt.noc.mesh_width = 4;
  opt.noc.mesh_height = 4;
  opt.pretrain_cycles = 30000;
  opt.warmup_cycles = 2000;
  opt.max_measure_cycles = 400000;
  return opt;
}

SyntheticTraffic fast_workload(const SimOptions& opt, std::uint64_t packets = 4000) {
  SyntheticTraffic::Options o;
  o.injection_rate = 0.08;
  o.total_packets = packets;
  return SyntheticTraffic(MeshTopology(opt.noc), o, opt.seed);
}

/// Parameterized over all policy kinds: each runs end to end.
class SimulatorAllPolicies : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(SimulatorAllPolicies, RunsToCompletion) {
  const SimOptions opt = fast_options(GetParam());
  Simulator sim(opt);
  SyntheticTraffic gen = fast_workload(opt);
  const SimResult r = sim.run(gen);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.policy, std::string(policy_name(GetParam())));
  EXPECT_GT(r.packets_delivered, 0u);
  EXPECT_GT(r.avg_packet_latency, 5.0);
  EXPECT_LT(r.avg_packet_latency, 5000.0);
  EXPECT_GT(r.execution_cycles, 0u);
  EXPECT_GT(r.total_energy_pj, 0.0);
  EXPECT_GT(r.energy_efficiency, 0.0);
  EXPECT_GT(r.avg_dynamic_power_w, 0.0);
  EXPECT_GT(r.avg_temperature_c, 45.0);
  double mode_sum = 0.0;
  for (const double f : r.mode_fraction) mode_sum += f;
  EXPECT_NEAR(mode_sum, 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Policies, SimulatorAllPolicies,
                         ::testing::Values(PolicyKind::kStaticCrc,
                                           PolicyKind::kStaticArqEcc,
                                           PolicyKind::kDecisionTree,
                                           PolicyKind::kRl,
                                           PolicyKind::kOracle),
                         [](const auto& info) {
                           std::string n = policy_name(info.param);
                           for (char& c : n) {
                             if (c == '+') c = '_';
                           }
                           return n;
                         });

TEST(Simulator, StaticPoliciesHaveFixedModeFractions) {
  const SimOptions opt = fast_options(PolicyKind::kStaticArqEcc);
  Simulator sim(opt);
  SyntheticTraffic gen = fast_workload(opt);
  const SimResult r = sim.run(gen);
  EXPECT_NEAR(r.mode_fraction[1], 1.0, 1e-9);
}

TEST(Simulator, DeterministicForSameSeed) {
  auto run = [] {
    const SimOptions opt = fast_options(PolicyKind::kRl, 77);
    Simulator sim(opt);
    SyntheticTraffic gen = fast_workload(opt, 1500);
    return sim.run(gen);
  };
  const SimResult a = run();
  const SimResult b = run();
  EXPECT_EQ(a.execution_cycles, b.execution_cycles);
  EXPECT_DOUBLE_EQ(a.avg_packet_latency, b.avg_packet_latency);
  EXPECT_EQ(a.retransmitted_flits, b.retransmitted_flits);
  EXPECT_DOUBLE_EQ(a.total_energy_pj, b.total_energy_pj);
}

TEST(Simulator, SeedChangesOutcome) {
  auto run = [](std::uint64_t seed) {
    const SimOptions opt = fast_options(PolicyKind::kStaticCrc, seed);
    Simulator sim(opt);
    SyntheticTraffic gen = fast_workload(opt, 1500);
    return sim.run(gen).avg_packet_latency;
  };
  EXPECT_NE(run(1), run(2));
}

TEST(Simulator, StaticPoliciesSkipPretraining) {
  SimOptions opt = fast_options(PolicyKind::kStaticCrc);
  opt.pretrain_cycles = 1'000'000;  // would be very slow if not skipped
  Simulator sim(opt);
  SyntheticTraffic gen = fast_workload(opt, 500);
  const SimResult r = sim.run(gen);
  EXPECT_TRUE(r.drained);
  // The whole run (warmup + measure) stays far below the pretrain budget.
  EXPECT_LT(sim.network().now(), 500000u);
}

TEST(Simulator, RlReportsTableSize) {
  const SimOptions opt = fast_options(PolicyKind::kRl);
  Simulator sim(opt);
  SyntheticTraffic gen = fast_workload(opt);
  const SimResult r = sim.run(gen);
  EXPECT_GT(r.rl_table_entries, 0u);
}

TEST(Simulator, DtReportsTrainingAccuracy) {
  const SimOptions opt = fast_options(PolicyKind::kDecisionTree);
  Simulator sim(opt);
  SyntheticTraffic gen = fast_workload(opt);
  const SimResult r = sim.run(gen);
  EXPECT_GT(r.dt_training_accuracy, 0.5);
  EXPECT_LE(r.dt_training_accuracy, 1.0);
}

TEST(Simulator, CustomPolicyInjection) {
  // Any user-defined ControlPolicy slots in (the custom_policy example).
  class AlternatingPolicy final : public ControlPolicy {
   public:
    const char* name() const override { return "alternating"; }
    OpMode decide(NodeId router, const FeatureSnapshot&, double) override {
      return static_cast<OpMode>(router % 2);
    }
  };
  SimOptions opt = fast_options(PolicyKind::kStaticCrc);
  Simulator sim(opt, std::make_unique<AlternatingPolicy>());
  SyntheticTraffic gen = fast_workload(opt, 1200);
  const SimResult r = sim.run(gen);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.policy, "alternating");
  EXPECT_NEAR(r.mode_fraction[0], 0.5, 1e-9);
  EXPECT_NEAR(r.mode_fraction[1], 0.5, 1e-9);
}

TEST(Simulator, ErrorScaleZeroMeansNoRetransmissions) {
  SimOptions opt = fast_options(PolicyKind::kStaticCrc);
  opt.error_scale = 0.0;
  Simulator sim(opt);
  SyntheticTraffic gen = fast_workload(opt, 1500);
  const SimResult r = sim.run(gen);
  EXPECT_EQ(r.retransmitted_flits, 0u);
  EXPECT_EQ(r.crc_packet_failures, 0u);
}

TEST(Simulator, HigherErrorScaleHurtsCrcBaseline) {
  auto run = [](double scale) {
    SimOptions opt = fast_options(PolicyKind::kStaticCrc);
    opt.error_scale = scale;
    Simulator sim(opt);
    SyntheticTraffic gen = fast_workload(opt, 1500);
    return sim.run(gen);
  };
  const SimResult lo = run(0.2);
  const SimResult hi = run(3.0);
  EXPECT_GT(hi.retransmitted_flits, lo.retransmitted_flits);
  EXPECT_GT(hi.avg_packet_latency, lo.avg_packet_latency);
}

TEST(Simulator, ParsecWorkloadRuns) {
  SimOptions opt = fast_options(PolicyKind::kStaticArqEcc);
  ParsecProfile prof = parsec_profile("swaptions");
  prof.total_packets = 2000;
  Simulator sim(opt);
  ParsecTraffic gen(MeshTopology(opt.noc), prof, opt.seed);
  const SimResult r = sim.run(gen);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.workload, "swaptions");
  EXPECT_GT(r.packets_delivered, 1000u);
}

TEST(Simulator, PaperScaleSetterAdjustsPhases) {
  SimOptions opt;
  opt.use_paper_scale();
  EXPECT_EQ(opt.pretrain_cycles, 1'000'000u);
  EXPECT_EQ(opt.warmup_cycles, 300'000u);
}

}  // namespace
}  // namespace rlftnoc
