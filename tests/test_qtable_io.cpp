#include "rl/qtable_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "ftnoc/rl_policy.h"

namespace rlftnoc {
namespace {

QTable make_table(double init, int rows, std::uint64_t salt) {
  QTable t(init);
  for (int r = 0; r < rows; ++r) {
    DiscreteState s{static_cast<std::uint8_t>(r % 5),
                    static_cast<std::uint8_t>((r + salt) % 4),
                    static_cast<std::uint8_t>(r % 3)};
    QTable::Row& row = t.row(s);
    for (int a = 0; a < 4; ++a) {
      row.q[static_cast<std::size_t>(a)] = 0.25 * a + r + static_cast<double>(salt);
      row.visits[static_cast<std::size_t>(a)] = static_cast<std::uint32_t>(r + a);
    }
  }
  return t;
}

TEST(QTableIo, RoundTripSingleTable) {
  const QTable orig = make_table(2.0, 7, 1);
  std::ostringstream os;
  write_qtables(os, {&orig});
  QTable back(0.0);
  std::istringstream is(os.str());
  read_qtables(is, {&back});

  EXPECT_EQ(back.size(), orig.size());
  EXPECT_DOUBLE_EQ(back.init_value(), 2.0);
  for (const auto& [state, row] : orig.sorted_items()) {
    const QTable::Row* r = back.find(*state);
    ASSERT_NE(r, nullptr);
    for (int a = 0; a < 4; ++a) {
      EXPECT_DOUBLE_EQ(r->q[static_cast<std::size_t>(a)],
                       row->q[static_cast<std::size_t>(a)]);
      EXPECT_EQ(r->visits[static_cast<std::size_t>(a)],
                row->visits[static_cast<std::size_t>(a)]);
    }
  }
}

TEST(QTableIo, RoundTripMultipleTables) {
  const QTable a = make_table(1.0, 3, 1);
  const QTable b = make_table(5.0, 9, 2);
  std::ostringstream os;
  write_qtables(os, {&a, &b});
  QTable ra(0.0);
  QTable rb(0.0);
  std::istringstream is(os.str());
  read_qtables(is, {&ra, &rb});
  EXPECT_EQ(ra.size(), 3u);
  EXPECT_EQ(rb.size(), 9u);
}

TEST(QTableIo, EmptyTableIsFine) {
  const QTable empty(3.0);
  std::ostringstream os;
  write_qtables(os, {&empty});
  QTable back(0.0);
  std::istringstream is(os.str());
  read_qtables(is, {&back});
  EXPECT_EQ(back.size(), 0u);
  EXPECT_DOUBLE_EQ(back.init_value(), 3.0);
}

TEST(QTableIo, AgentCountMismatchThrows) {
  const QTable a = make_table(1.0, 2, 1);
  std::ostringstream os;
  write_qtables(os, {&a});
  QTable x(0.0);
  QTable y(0.0);
  std::istringstream is(os.str());
  EXPECT_THROW(read_qtables(is, {&x, &y}), std::runtime_error);
}

TEST(QTableIo, BadMagicThrows) {
  std::istringstream is("not a qtable file\n");
  QTable t(0.0);
  EXPECT_THROW(read_qtables(is, {&t}), std::runtime_error);
}

TEST(QTableIo, TruncatedFileThrows) {
  const QTable a = make_table(1.0, 5, 1);
  std::ostringstream os;
  write_qtables(os, {&a});
  std::string text = os.str();
  text.resize(text.size() / 2);
  std::istringstream is(text);
  QTable t(0.0);
  EXPECT_THROW(read_qtables(is, {&t}), std::runtime_error);
}

TEST(QTableIo, PolicySaveLoadPreservesGreedyChoices) {
  QLearningParams params;
  RlPolicy trained(4, params, 7);
  FeatureSnapshot snap;
  snap.temperature_c = 90.0;
  snap.buffer_util = 0.2;
  for (int i = 0; i < 200; ++i) {
    snap.temperature_c = 55.0 + (i % 50);
    for (NodeId r = 0; r < 4; ++r) trained.decide(r, snap, 0.5 + 0.1 * (i % 3));
  }
  const std::string path = ::testing::TempDir() + "/rlftnoc_policy.qt";
  trained.save_tables(path);

  RlPolicy fresh(4, params, 99);  // different seed: exploration RNG differs
  fresh.load_tables(path);
  EXPECT_EQ(fresh.total_table_entries(), trained.total_table_entries());
  // Greedy decisions agree on every visited state.
  for (int t = 50; t <= 100; t += 5) {
    FeatureSnapshot s;
    s.temperature_c = t;
    s.buffer_util = 0.2;
    EXPECT_EQ(fresh.agent(0).greedy_action(s.discretize()),
              trained.agent(0).greedy_action(s.discretize()));
  }
}

TEST(QTableIo, SharedVsPerRouterMismatchThrows) {
  QLearningParams params;
  RlPolicy shared(4, params, 1, false, /*shared_table=*/true);
  const std::string path = ::testing::TempDir() + "/rlftnoc_shared.qt";
  shared.save_tables(path);
  RlPolicy per_router(4, params, 1, false, /*shared_table=*/false);
  EXPECT_THROW(per_router.load_tables(path), std::runtime_error);
}

}  // namespace
}  // namespace rlftnoc
