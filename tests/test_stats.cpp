#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rlftnoc {
namespace {

TEST(StatAccumulator, EmptyIsZero) {
  StatAccumulator s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(StatAccumulator, BasicMoments) {
  StatAccumulator s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook set
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StatAccumulator, SingleSample) {
  StatAccumulator s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StatAccumulator, MergeMatchesCombined) {
  StatAccumulator all;
  StatAccumulator a;
  StatAccumulator b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StatAccumulator, MergeWithEmpty) {
  StatAccumulator a;
  a.add(1.0);
  StatAccumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(StatAccumulator, Reset) {
  StatAccumulator s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Ema, FirstSamplePrimes) {
  Ema e(0.5);
  EXPECT_FALSE(e.primed());
  e.add(10.0);
  EXPECT_TRUE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ema, Blending) {
  Ema e(0.5);
  e.add(10.0);
  e.add(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.add(5.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(Ema, ConvergesToConstant) {
  Ema e(0.25);
  e.add(0.0);
  for (int i = 0; i < 100; ++i) e.add(8.0);
  EXPECT_NEAR(e.value(), 8.0, 1e-9);
}

TEST(Ema, Reset) {
  Ema e(0.5);
  e.add(3.0);
  e.reset();
  EXPECT_FALSE(e.primed());
  EXPECT_EQ(e.value(), 0.0);
}

TEST(Histogram, BucketPlacement) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(5.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.bucket(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OverUnderflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(11.0);
  h.add(10.0);  // hi edge is exclusive -> overflow
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, QuantileMedian) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
}

TEST(Histogram, QuantileEmpty) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, QuantileZeroIsFirstNonEmptyBucketEdge) {
  // All mass far from lo_: q=0 must report where data actually starts, not
  // the histogram floor (there are no underflow samples).
  Histogram h(0.0, 100.0, 10);
  h.add(55.0);
  h.add(57.0);
  EXPECT_EQ(h.quantile(0.0), 50.0);

  // With underflow mass, the floor is the honest answer.
  Histogram u(10.0, 20.0, 10);
  u.add(5.0);  // below lo_
  u.add(15.0);
  EXPECT_EQ(u.quantile(0.0), 10.0);
}

TEST(Histogram, DegenerateRangeStaysWellFormed) {
  // hi <= lo used to produce a zero/negative bucket width, sending every
  // sample to a garbage index; the range is widened to a unit span instead.
  Histogram h(5.0, 5.0, 4);
  h.add(5.0);
  h.add(5.3);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.bucket(0), 1u);  // [5.0, 5.25)
  EXPECT_EQ(h.bucket(1), 1u);  // [5.25, 5.5)
  EXPECT_EQ(h.quantile(0.5), h.quantile(0.5));  // finite, not NaN
  EXPECT_GE(h.quantile(1.0), 5.0);

  Histogram inverted(10.0, 3.0, 4);
  inverted.add(10.5);
  EXPECT_EQ(inverted.bucket(2), 1u);  // [10.5, 10.75) within [10, 11)
  EXPECT_EQ(inverted.overflow(), 0u);
}

TEST(Histogram, QuantileNeverExceedsMaxSample) {
  // A single sample: every quantile — q = 1.0 included — must report the
  // sample itself, not its bucket's upper edge.
  Histogram h(0.0, 100.0, 10);
  h.add(55.0);
  EXPECT_EQ(h.quantile(1.0), 55.0);
  EXPECT_EQ(h.quantile(0.5), 55.0);

  // With several samples in one bucket the interpolated midpoints still may
  // not pass the true maximum.
  Histogram m(0.0, 100.0, 10);
  m.add(51.0);
  m.add(52.0);
  EXPECT_LE(m.quantile(1.0), 52.0);
  EXPECT_GE(m.quantile(1.0), 51.0);
}

TEST(CounterSet, BumpAndGet) {
  CounterSet c;
  EXPECT_EQ(c.get("x"), 0u);
  c.bump("x");
  c.bump("x", 4);
  c.bump("y");
  EXPECT_EQ(c.get("x"), 5u);
  EXPECT_EQ(c.get("y"), 1u);
  EXPECT_EQ(c.all().size(), 2u);
  c.reset();
  EXPECT_EQ(c.get("x"), 0u);
}

}  // namespace
}  // namespace rlftnoc
