// Latency-percentile reporting added on top of the paper's metrics.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "traffic/traffic.h"

namespace rlftnoc {
namespace {

TEST(Percentiles, OrderedAndNearMean) {
  SimOptions opt;
  opt.policy = PolicyKind::kStaticArqEcc;
  opt.noc.mesh_width = 4;
  opt.noc.mesh_height = 4;
  opt.pretrain_cycles = 0;
  opt.warmup_cycles = 2000;
  Simulator sim(opt);
  SyntheticTraffic::Options o;
  o.injection_rate = 0.08;
  o.total_packets = 5000;
  SyntheticTraffic gen(MeshTopology(opt.noc), o, 3);
  const SimResult r = sim.run(gen);
  ASSERT_TRUE(r.drained);
  EXPECT_GT(r.p50_latency, 0.0);
  EXPECT_LE(r.p50_latency, r.p95_latency);
  EXPECT_LE(r.p95_latency, r.p99_latency);
  // Under light load the distribution is tight: the median sits near the
  // mean and the tail is bounded.
  EXPECT_NEAR(r.p50_latency, r.avg_packet_latency, r.avg_packet_latency * 0.5);
  EXPECT_LT(r.p99_latency, 20.0 * r.avg_packet_latency);
}

TEST(Percentiles, TailGrowsUnderFaults) {
  auto run = [](double scale) {
    SimOptions opt;
    opt.policy = PolicyKind::kStaticCrc;
    opt.noc.mesh_width = 4;
    opt.noc.mesh_height = 4;
    opt.pretrain_cycles = 0;
    opt.warmup_cycles = 2000;
    opt.error_scale = scale;
    Simulator sim(opt);
    SyntheticTraffic::Options o;
    o.injection_rate = 0.06;
    o.total_packets = 4000;
    SyntheticTraffic gen(MeshTopology(opt.noc), o, 5);
    return sim.run(gen);
  };
  const SimResult clean = run(0.0);
  const SimResult faulty = run(4.0);
  // Retransmissions are rare but expensive: the p99 tail inflates much more
  // than the median.
  EXPECT_GT(faulty.p99_latency - clean.p99_latency,
            (faulty.p50_latency - clean.p50_latency) * 2.0);
}

}  // namespace
}  // namespace rlftnoc
