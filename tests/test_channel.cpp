#include "noc/channel.h"

#include <gtest/gtest.h>

namespace rlftnoc {
namespace {

TEST(DelayLine, DeliversAfterLatency) {
  DelayLine<int> d(2);
  d.push(10, 42);
  EXPECT_FALSE(d.pop(10).has_value());
  EXPECT_FALSE(d.pop(11).has_value());
  const auto v = d.pop(12);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(d.empty());
}

TEST(DelayLine, FifoOrder) {
  DelayLine<int> d(1);
  d.push(0, 1);
  d.push(0, 2);
  d.push(1, 3);
  EXPECT_EQ(*d.pop(5), 1);
  EXPECT_EQ(*d.pop(5), 2);
  EXPECT_EQ(*d.pop(5), 3);
  EXPECT_FALSE(d.pop(5).has_value());
}

TEST(DelayLine, StretchedEntryBlocksFollowers) {
  // A mode-3 stretched transfer keeps the wire busy: followers pushed after
  // the stretch (the occupancy protocol guarantees this, and push enforces
  // monotone stamps — see test_audit.cpp for the violation death test) wait
  // their own latency but never overtake.
  DelayLine<int> d(1);
  d.push_delayed(0, 1, 5);  // matures at 6
  d.push(6, 2);             // matures at 7, FIFO behind the first
  EXPECT_FALSE(d.pop(5).has_value());
  EXPECT_EQ(*d.pop(6), 1);
  EXPECT_FALSE(d.pop(6).has_value());
  EXPECT_EQ(*d.pop(7), 2);
}

TEST(DelayLine, PushDelayedAddsExtra) {
  DelayLine<int> d(1);
  d.push_delayed(0, 9, 2);
  EXPECT_FALSE(d.pop(2).has_value());
  EXPECT_EQ(*d.pop(3), 9);
}

TEST(DelayLine, SizeTracksEntries) {
  DelayLine<int> d(1);
  EXPECT_EQ(d.size(), 0u);
  d.push(0, 1);
  d.push(0, 2);
  EXPECT_EQ(d.size(), 2u);
  d.pop(10);
  EXPECT_EQ(d.size(), 1u);
}

TEST(DelayLine, MovesValueOut) {
  DelayLine<std::unique_ptr<int>> d(1);
  d.push(0, std::make_unique<int>(7));
  auto v = d.pop(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 7);
}

TEST(ChannelPair, DefaultLatencies) {
  ChannelPair ch;
  EXPECT_EQ(ch.flits.latency(), 1u);
  EXPECT_EQ(ch.credits.latency(), 1u);
  EXPECT_EQ(ch.acks.latency(), 1u);
}

}  // namespace
}  // namespace rlftnoc
