#include "sim/options_io.h"

#include <gtest/gtest.h>

#include "traffic/traffic.h"

namespace rlftnoc {
namespace {

TEST(OptionsIo, EmptyConfigYieldsDefaults) {
  const SimOptions def;
  const SimOptions opt = sim_options_from_config(Config{});
  EXPECT_EQ(opt.noc.mesh_width, def.noc.mesh_width);
  EXPECT_EQ(opt.policy, def.policy);
  EXPECT_EQ(opt.seed, 1u);
  EXPECT_DOUBLE_EQ(opt.rl.alpha, def.rl.alpha);
  EXPECT_DOUBLE_EQ(opt.thermal.ambient_c, def.thermal.ambient_c);
}

TEST(OptionsIo, PolicySpellings) {
  EXPECT_EQ(policy_from_string("crc"), PolicyKind::kStaticCrc);
  EXPECT_EQ(policy_from_string("CRC"), PolicyKind::kStaticCrc);
  EXPECT_EQ(policy_from_string("arq"), PolicyKind::kStaticArqEcc);
  EXPECT_EQ(policy_from_string("ARQ+ECC"), PolicyKind::kStaticArqEcc);
  EXPECT_EQ(policy_from_string("dt"), PolicyKind::kDecisionTree);
  EXPECT_EQ(policy_from_string("rl"), PolicyKind::kRl);
  EXPECT_EQ(policy_from_string("Oracle"), PolicyKind::kOracle);
  EXPECT_THROW(policy_from_string("magic"), ConfigError);
}

TEST(OptionsIo, FullOverrideSet) {
  const Config cfg = Config::from_string(R"(
    policy = dt
    seed = 99
    jobs = 6
    sim_threads = 4
    audit = true
    audit_interval = 32
    error_scale = 2.5
    pretrain_cycles = 1234
    warmup_cycles = 567
    freeze_rl_on_measure = false
    per_port_state = true
    rl_shared_table = false
    rl.alpha = 0.3
    rl.gamma = 0.7
    rl.epsilon = 0.05
    ctrl.step_cycles = 250
    ctrl.voltage = 0.9
    ctrl.faults_enabled = false
    varius.sigma = 0.06
    varius.droop_rate = 0.0
    thermal.ambient_c = 55
    power.leak_w_at_ref = 0.02
    thresholds.low = 0.005
    noc.mesh_width = 4
    noc.mesh_height = 6
    noc.vcs_per_port = 2
    noc.routing = yx
  )");
  const SimOptions opt = sim_options_from_config(cfg);
  EXPECT_EQ(opt.policy, PolicyKind::kDecisionTree);
  EXPECT_EQ(opt.seed, 99u);
  EXPECT_EQ(opt.jobs, 6u);
  EXPECT_EQ(opt.sim_threads, 4u);
  EXPECT_TRUE(opt.audit);
  EXPECT_EQ(opt.audit_interval, 32u);
  EXPECT_DOUBLE_EQ(opt.error_scale, 2.5);
  EXPECT_EQ(opt.pretrain_cycles, 1234u);
  EXPECT_EQ(opt.warmup_cycles, 567u);
  EXPECT_FALSE(opt.freeze_rl_on_measure);
  EXPECT_TRUE(opt.per_port_state);
  EXPECT_FALSE(opt.rl_shared_table);
  EXPECT_DOUBLE_EQ(opt.rl.alpha, 0.3);
  EXPECT_DOUBLE_EQ(opt.rl.gamma, 0.7);
  EXPECT_DOUBLE_EQ(opt.rl.epsilon, 0.05);
  EXPECT_EQ(opt.controller.step_cycles, 250u);
  EXPECT_DOUBLE_EQ(opt.controller.voltage, 0.9);
  EXPECT_FALSE(opt.controller.faults_enabled);
  EXPECT_DOUBLE_EQ(opt.varius.sigma, 0.06);
  EXPECT_DOUBLE_EQ(opt.varius.droop_rate, 0.0);
  EXPECT_DOUBLE_EQ(opt.thermal.ambient_c, 55.0);
  EXPECT_DOUBLE_EQ(opt.power.leak_w_at_ref, 0.02);
  EXPECT_DOUBLE_EQ(opt.thresholds.low, 0.005);
  EXPECT_EQ(opt.noc.mesh_width, 4);
  EXPECT_EQ(opt.noc.mesh_height, 6);
  EXPECT_EQ(opt.noc.vcs_per_port, 2);
  EXPECT_EQ(opt.noc.routing, RoutingAlgorithm::kYX);
}

TEST(OptionsIo, AuditKeysRoundTrip) {
  Config cfg;
  cfg.set("audit", "true");
  cfg.set("audit_interval", "64");
  const Config reparsed = Config::from_string(cfg.to_string());
  const SimOptions opt = sim_options_from_config(reparsed);
  EXPECT_TRUE(opt.audit);
  EXPECT_EQ(opt.audit_interval, 64u);
}

TEST(OptionsIo, HardFaultsKeyParses) {
  const Config cfg = Config::from_string(R"(
    noc.mesh_width = 4
    noc.mesh_height = 4
    hard_faults = link:5:E@100, router:9
  )");
  const SimOptions opt = sim_options_from_config(cfg);
  ASSERT_EQ(opt.hard_faults.size(), 2u);
  EXPECT_EQ(opt.hard_faults[0].kind, HardFault::Kind::kLink);
  EXPECT_EQ(opt.hard_faults[0].node, 5);
  EXPECT_EQ(opt.hard_faults[0].port, Port::kEast);
  EXPECT_EQ(opt.hard_faults[0].at_cycle, 100u);
  EXPECT_EQ(opt.hard_faults[1].kind, HardFault::Kind::kRouter);
  EXPECT_EQ(opt.hard_faults[1].node, 9);
}

TEST(OptionsIo, MalformedHardFaultsThrowConfigError) {
  const Config cfg = Config::from_string("hard_faults = link:oops\n");
  EXPECT_THROW(sim_options_from_config(cfg), ConfigError);
}

TEST(OptionsIo, HardFaultsRejectWestfirstRouting) {
  const Config cfg = Config::from_string(R"(
    noc.routing = westfirst
    hard_faults = link:5:E
  )");
  EXPECT_THROW(sim_options_from_config(cfg), ConfigError);
}

TEST(OptionsIo, InvalidStructuralValueThrows) {
  const Config cfg = Config::from_string("noc.mesh_width = 1\n");
  EXPECT_THROW(sim_options_from_config(cfg), std::invalid_argument);
}

TEST(OptionsIo, MalformedValueThrows) {
  const Config cfg = Config::from_string("rl.alpha = fast\n");
  EXPECT_THROW(sim_options_from_config(cfg), ConfigError);
}

TEST(OptionsIo, ConfiguredOptionsRunEndToEnd) {
  const Config cfg = Config::from_string(R"(
    policy = arq
    seed = 3
    noc.mesh_width = 4
    noc.mesh_height = 4
    pretrain_cycles = 0
    warmup_cycles = 1000
  )");
  SimOptions opt = sim_options_from_config(cfg);
  Simulator sim(opt);
  SyntheticTraffic::Options o;
  o.injection_rate = 0.08;
  o.total_packets = 1500;
  SyntheticTraffic gen(MeshTopology(opt.noc), o, opt.seed);
  const SimResult r = sim.run(gen);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.policy, "ARQ+ECC");
}

}  // namespace
}  // namespace rlftnoc
