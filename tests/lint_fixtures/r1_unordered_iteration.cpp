// Lint fixture: R1 no-unordered-iteration. Not part of any build target —
// this file exists only to be scanned by test_lint.
// rlftnoc-lint: determinism-critical
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

using Lut = std::unordered_map<int, double>;

struct Holder {
  std::unordered_map<int, int> counts_;
  std::unordered_set<std::string> names_;
  Lut aliased_;
};

inline int range_for_over_map(Holder& h) {
  int sum = 0;
  for (const auto& [k, v] : h.counts_) sum += k + v;  // VIOLATION R1
  return sum;
}

inline int iterator_loop_over_set(Holder& h) {
  int n = 0;
  for (auto it = h.names_.begin(); it != h.names_.end(); ++it) {  // VIOLATION R1
    ++n;
  }
  return n;
}

inline double range_for_over_alias(Holder& h) {
  double s = 0;
  for (const auto& [k, v] : h.aliased_) s = s + v;  // VIOLATION R1
  return s;
}

inline int lookup_only_is_fine(Holder& h, int key) {
  const auto it = h.counts_.find(key);  // lookups are not iteration: no finding
  return it == h.counts_.end() ? 0 : it->second;
}

}  // namespace fixture
