// Lint fixture: a determinism-critical file with zero findings — ordered
// containers, seeded entropy, RLFTNOC_CHECK-style invariants, attested FP
// accumulation. Not part of any build target.
// rlftnoc-lint: determinism-critical
#include <map>
#include <vector>

namespace fixture {

struct Clean {
  std::map<int, double> ordered_;
};

inline double sum(const Clean& c) {
  double s = 0.0;
  // rlftnoc-lint: ordered (std::map iterates in key order)
  for (const auto& [k, v] : c.ordered_) {
    s += v;
  }
  return s;
}

inline int checked(const std::vector<int>& xs, unsigned long i) {
  return i < xs.size() ? xs[i] : 0;
}

}  // namespace fixture
