// Lint fixture: R4 hot-path-container-bans. Not part of any build target.
// rlftnoc-lint: hot-path
#include <deque>  // VIOLATION R4
#include <vector>

namespace fixture {

struct PerCycleState {
  std::deque<int> fifo;          // VIOLATION R4
  std::map<int, int> ordered;    // VIOLATION R4 (std::map allocates per node)
  std::vector<int> flat;         // vectors are fine
};

inline int throwing_access(const PerCycleState& s, int i) {
  return s.flat.at(static_cast<unsigned long>(i));  // VIOLATION R4 (.at throws)
}

inline int unchecked_access(const PerCycleState& s, int i) {
  return s.flat[static_cast<unsigned long>(i)];  // unchecked indexing is fine
}

}  // namespace fixture
