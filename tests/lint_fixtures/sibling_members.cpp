// Lint fixture: iterates a member whose unordered declaration lives in the
// sibling header — the pairing pass must still flag it. Not part of any
// build target.
// rlftnoc-lint: determinism-critical
#include "sibling_members.h"

namespace fixture {

long Tracker::total() const {
  long sum = 0;
  for (const auto& [id, n] : by_id_) sum += n;  // VIOLATION R1 (member in .h)
  return sum;
}

}  // namespace fixture
