// Lint fixture: R3 no-bare-assert. Not part of any build target.
#include <cassert>  // VIOLATION R3

namespace fixture {

inline void check_positive(int v) {
  assert(v > 0);  // VIOLATION R3
  static_assert(sizeof(int) >= 4, "static_assert is fine");
  (void)v;
}

}  // namespace fixture
