// Lint fixture: R5 float-accumulation-order. Not part of any build target.
// rlftnoc-lint: determinism-critical
#include <vector>

namespace fixture {

inline double unattested_sum(const std::vector<double>& xs) {
  double total = 0.0;
  for (const double x : xs) {
    total += x;  // VIOLATION R5: no ordering attestation
  }
  return total;
}

inline double attested_sum(const std::vector<double>& xs) {
  double acc = 0.0;
  // rlftnoc-lint: ordered (vector index order is fixed)
  for (const double x : xs) {
    acc += x;  // attested via the loop header: no finding
  }
  return acc;
}

// Note: variable names are distinct per function on purpose — declaration
// tracking is file-scoped (no scope analysis), so reusing `total` for an
// integer here would alias the double above.
inline long integer_sum_is_fine(const std::vector<int>& xs) {
  long count = 0;
  for (const int x : xs) {
    count += x;  // integer accumulation is associative: no finding
  }
  return count;
}

}  // namespace fixture
