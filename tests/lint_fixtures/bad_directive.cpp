// Lint fixture: malformed directives must be reported as R0, never silently
// ignored. Not part of any build target.

namespace fixture {

// rlftnoc-lint: allow(R9) no such rule
inline int unknown_rule() { return 1; }

// rlftnoc-lint: allow(R1)
inline int missing_reason() { return 2; }

// rlftnoc-lint: totally-unknown-directive
inline int unknown_directive() { return 3; }

}  // namespace fixture
