// Lint fixture: header half of the sibling-pairing case — the unordered
// member is declared here, iterated in sibling_members.cpp. Not part of any
// build target.
#pragma once

#include <unordered_map>

namespace fixture {

struct Tracker {
  std::unordered_map<int, long> by_id_;
  long total() const;
};

}  // namespace fixture
