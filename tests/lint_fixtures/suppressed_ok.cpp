// Lint fixture: inline allow() suppressions. Every violation here carries a
// reasoned suppression, so the file must lint clean (0 active findings, 3
// suppressed). Not part of any build target.
// rlftnoc-lint: determinism-critical
#include <cassert>  // rlftnoc-lint: allow(R3) fixture must pull in assert to suppress it below
#include <unordered_map>

namespace fixture {

struct S {
  std::unordered_map<int, int> m_;
};

inline int suppressed_iteration(S& s) {
  int sum = 0;
  // rlftnoc-lint: allow(R1) snapshot is sorted by the caller; order cannot escape
  for (const auto& [k, v] : s.m_) sum += k + v;
  return sum;
}

inline void suppressed_assert(int v) {
  assert(v >= 0);  // rlftnoc-lint: allow(R3) fixture exercising trailing-comment suppression
  (void)v;
}

inline long suppressed_time() {
  // rlftnoc-lint: allow(R2) diagnostic timestamp, never reaches results
  return time(nullptr);
}

}  // namespace fixture
