// Lint fixture: R2 no-ambient-entropy. Not part of any build target.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

inline unsigned ambient_seed() {
  std::random_device rd;  // VIOLATION R2
  return rd();
}

inline int ambient_rand() {
  return std::rand();  // VIOLATION R2
}

inline long ambient_time() {
  return time(nullptr);  // VIOLATION R2
}

inline long long ambient_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // VIOLATION R2
}

inline int runtime_is_fine(int runtime) {
  // Identifiers merely *containing* the banned names are not findings.
  const int time_budget = runtime;
  return time_budget;
}

}  // namespace fixture
