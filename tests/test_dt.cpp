#include "dt/decision_tree.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.h"

namespace rlftnoc {
namespace {

std::vector<DtSample> threshold_dataset(int n, double threshold, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<DtSample> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_double();
    const double noise = rng.next_double();  // irrelevant feature
    out.push_back(DtSample{{x, noise}, x > threshold ? 1 : 0});
  }
  return out;
}

TEST(DecisionTree, UntrainedPredictsZero) {
  DecisionTree t;
  EXPECT_FALSE(t.trained());
  const std::vector<double> f{1.0, 2.0};
  EXPECT_EQ(t.predict(f), 0);
  EXPECT_TRUE(t.predict_proba(f).empty());
}

TEST(DecisionTree, RejectsBadInput) {
  DecisionTree t;
  EXPECT_THROW(t.train({}, 2), std::invalid_argument);
  std::vector<DtSample> one{{{1.0}, 0}};
  EXPECT_THROW(t.train(one, 1), std::invalid_argument);
  std::vector<DtSample> bad_label{{{1.0}, 5}};
  EXPECT_THROW(t.train(bad_label, 2), std::invalid_argument);
  std::vector<DtSample> ragged{{{1.0}, 0}, {{1.0, 2.0}, 1}};
  EXPECT_THROW(t.train(ragged, 2), std::invalid_argument);
}

TEST(DecisionTree, LearnsSimpleThreshold) {
  DecisionTree t;
  t.train(threshold_dataset(500, 0.6, 1), 2);
  EXPECT_TRUE(t.trained());
  const std::vector<double> lo{0.2, 0.5};
  const std::vector<double> hi{0.9, 0.5};
  EXPECT_EQ(t.predict(lo), 0);
  EXPECT_EQ(t.predict(hi), 1);
  EXPECT_GT(t.accuracy(threshold_dataset(500, 0.6, 2)), 0.95);
}

TEST(DecisionTree, PureDataMakesSingleLeaf) {
  std::vector<DtSample> pure;
  for (int i = 0; i < 20; ++i) pure.push_back(DtSample{{static_cast<double>(i)}, 1});
  DecisionTree t;
  t.train(pure, 2);
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_EQ(t.depth(), 1);
  const std::vector<double> f{3.0};
  EXPECT_EQ(t.predict(f), 1);
}

TEST(DecisionTree, LearnsXorWithDepth) {
  // XOR of two binary features needs depth >= 2.
  Rng rng(3);
  std::vector<DtSample> data;
  for (int i = 0; i < 400; ++i) {
    const double a = rng.bernoulli(0.5) ? 1.0 : 0.0;
    const double b = rng.bernoulli(0.5) ? 1.0 : 0.0;
    data.push_back(DtSample{{a, b}, (a != b) ? 1 : 0});
  }
  DtParams p;
  p.max_depth = 4;
  p.min_samples_leaf = 2;
  DecisionTree t;
  t.train(data, 2, p);
  EXPECT_GT(t.accuracy(data), 0.98);
  EXPECT_GE(t.depth(), 3);
}

TEST(DecisionTree, DepthLimitRespected) {
  DtParams p;
  p.max_depth = 2;
  p.min_samples_leaf = 1;
  DecisionTree t;
  t.train(threshold_dataset(400, 0.5, 5), 2, p);
  EXPECT_LE(t.depth(), 3);  // root at depth 1, two split levels
}

TEST(DecisionTree, MinLeafRespected) {
  // With min_samples_leaf = half the data, at most one split is possible.
  DtParams p;
  p.min_samples_leaf = 200;
  DecisionTree t;
  t.train(threshold_dataset(400, 0.5, 7), 2, p);
  EXPECT_LE(t.node_count(), 3u);
}

TEST(DecisionTree, MultiClass) {
  Rng rng(11);
  std::vector<DtSample> data;
  for (int i = 0; i < 900; ++i) {
    const double x = rng.next_double() * 3.0;
    data.push_back(DtSample{{x}, static_cast<int>(x)});
  }
  DecisionTree t;
  t.train(data, 3);
  EXPECT_GT(t.accuracy(data), 0.97);
  const std::vector<double> f0{0.4};
  const std::vector<double> f1{1.5};
  const std::vector<double> f2{2.6};
  EXPECT_EQ(t.predict(f0), 0);
  EXPECT_EQ(t.predict(f1), 1);
  EXPECT_EQ(t.predict(f2), 2);
}

TEST(DecisionTree, ProbaSumsToOne) {
  DecisionTree t;
  t.train(threshold_dataset(300, 0.5, 13), 2);
  const std::vector<double> f{0.7, 0.2};
  const auto proba = t.predict_proba(f);
  ASSERT_EQ(proba.size(), 2u);
  EXPECT_NEAR(proba[0] + proba[1], 1.0, 1e-9);
}

TEST(DecisionTree, IgnoresIrrelevantFeature) {
  // The noise feature must not be chosen as the root split.
  DecisionTree t;
  t.train(threshold_dataset(1000, 0.5, 17), 2);
  // Root split on feature 0 implies flipping feature 1 never changes the
  // prediction for clear-cut points.
  for (double noise : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const std::vector<double> lo{0.1, noise};
    const std::vector<double> hi{0.9, noise};
    EXPECT_EQ(t.predict(lo), 0);
    EXPECT_EQ(t.predict(hi), 1);
  }
}

TEST(DecisionTree, DeterministicTraining) {
  DecisionTree a;
  DecisionTree b;
  const auto data = threshold_dataset(400, 0.45, 19);
  a.train(data, 2);
  b.train(data, 2);
  EXPECT_EQ(a.node_count(), b.node_count());
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> f{rng.next_double(), rng.next_double()};
    EXPECT_EQ(a.predict(f), b.predict(f));
  }
}

TEST(DecisionTree, RetrainReplacesModel) {
  DecisionTree t;
  t.train(threshold_dataset(300, 0.2, 23), 2);
  const std::size_t first = t.node_count();
  t.train(threshold_dataset(300, 0.8, 29), 2);
  const std::vector<double> mid{0.5, 0.5};
  EXPECT_EQ(t.predict(mid), 0);  // below the new 0.8 threshold
  EXPECT_GT(t.node_count() + first, 2u);
}

}  // namespace
}  // namespace rlftnoc
