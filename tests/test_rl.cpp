#include <gtest/gtest.h>

#include "rl/agent.h"
#include "rl/discretizer.h"
#include "rl/qtable.h"

namespace rlftnoc {
namespace {

TEST(LinearBins, EdgesAndClamping) {
  const LinearBins b(0.0, 1.0, 5);
  EXPECT_EQ(b.bin(-1.0), 0);
  EXPECT_EQ(b.bin(0.0), 0);
  EXPECT_EQ(b.bin(0.19), 0);
  EXPECT_EQ(b.bin(0.21), 1);
  EXPECT_EQ(b.bin(0.99), 4);
  EXPECT_EQ(b.bin(1.0), 4);
  EXPECT_EQ(b.bin(5.0), 4);
}

TEST(LinearBins, EvenWidths) {
  const LinearBins b(50.0, 100.0, 5);
  EXPECT_EQ(b.bin(54.9), 0);
  EXPECT_EQ(b.bin(60.1), 1);
  EXPECT_EQ(b.bin(75.0), 2);
  EXPECT_EQ(b.bin(89.9), 3);
  EXPECT_EQ(b.bin(95.0), 4);
}

TEST(LogBins, DecadesAndZeros) {
  const LogBins b(1e-3, 0.5, 4);
  EXPECT_EQ(b.bin(0.0), 0);
  EXPECT_EQ(b.bin(-0.1), 0);
  EXPECT_EQ(b.bin(5e-4), 0);
  EXPECT_EQ(b.bin(1e-3), 0);
  EXPECT_EQ(b.bin(0.5), 3);
  EXPECT_EQ(b.bin(0.9), 3);
  // Monotone between the edges.
  int prev = 0;
  for (double x = 1e-3; x < 0.5; x *= 1.5) {
    const int cur = b.bin(x);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(QTable, RowInitialization) {
  QTable t(2.5);
  const DiscreteState s{1, 2, 3};
  EXPECT_EQ(t.find(s), nullptr);
  EXPECT_DOUBLE_EQ(t.max_q(s), 2.5);
  QTable::Row& row = t.row(s);
  for (const double q : row.q) EXPECT_DOUBLE_EQ(q, 2.5);
  for (const auto n : row.visits) EXPECT_EQ(n, 0u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(QTable, ArgmaxPicksLargest) {
  QTable t(0.0);
  const DiscreteState s{1};
  t.row(s).q = {0.1, 0.9, 0.3, 0.2};
  EXPECT_EQ(t.argmax(s), 1);
}

TEST(QTable, ArgmaxTieBreaksLowestIndex) {
  QTable t(0.0);
  const DiscreteState s{1};
  t.row(s).q = {0.5, 0.5, 0.5, 0.5};
  EXPECT_EQ(t.argmax(s), 0);
}

TEST(QTable, ConfidencePenaltyDemotesUndersampled) {
  QTable t(0.0);
  const DiscreteState s{1};
  QTable::Row& r = t.row(s);
  r.q = {0.9, 1.0, 0.0, 0.0};   // action 1 looks best...
  r.visits = {100, 1, 1, 1};    // ...from a single sample
  EXPECT_EQ(t.argmax(s, 0.0), 1);
  EXPECT_EQ(t.argmax(s, 0.5), 0);  // 1.0 - 0.5/1 < 0.9 - 0.05
}

TEST(QTable, ActionCostPriorBreaksNearTies) {
  QTable t(0.0);
  const DiscreteState s{1};
  QTable::Row& r = t.row(s);
  r.q = {1.00, 1.01, 1.02, 1.03};
  r.visits = {100, 100, 100, 100};
  EXPECT_EQ(t.argmax(s, 0.0, 0.0), 3);
  EXPECT_EQ(t.argmax(s, 0.0, 0.05), 0);  // prior 0.05*a outweighs 0.01*a gaps
}

TEST(QTable, UnvisitedArgmaxIsModeZero) {
  QTable t(5.0);
  EXPECT_EQ(t.argmax(DiscreteState{9, 9}), 0);
}

TEST(Agent, UpdateMovesTowardTarget) {
  QLearningParams p;
  p.alpha = 0.5;
  p.gamma = 0.0;
  p.optimistic_init = 0.0;
  QLearningAgent a(p, 1, "t");
  const DiscreteState s{0};
  const DiscreteState s2{1};
  a.update(s, 2, 1.0, s2);  // first visit: rate = max(0.5, 1/1) = 1
  EXPECT_DOUBLE_EQ(a.table().find(s)->q[2], 1.0);
  a.update(s, 2, 0.0, s2);  // second: rate = 0.5
  EXPECT_DOUBLE_EQ(a.table().find(s)->q[2], 0.5);
}

TEST(Agent, CountBasedRateDecaysToAlpha) {
  QLearningParams p;
  p.alpha = 0.1;
  p.gamma = 0.0;
  p.optimistic_init = 0.0;
  QLearningAgent a(p, 1, "t");
  const DiscreteState s{0};
  for (int i = 0; i < 50; ++i) a.update(s, 0, 1.0, s);
  // Converged to the constant reward.
  EXPECT_NEAR(a.table().find(s)->q[0], 1.0, 1e-3);
  EXPECT_EQ(a.table().find(s)->visits[0], 50u);
}

TEST(Agent, BanditConvergesToBestAction) {
  QLearningParams p;
  p.gamma = 0.0;
  p.epsilon = 0.2;
  p.optimistic_init = 2.0;
  p.confidence_penalty = 0.0;
  p.action_cost_prior = 0.0;
  QLearningAgent a(p, 7, "bandit");
  const DiscreteState s{0};
  // Deterministic rewards: action 2 pays the most.
  const double reward[4] = {0.2, 0.5, 1.0, 0.4};
  for (int step = 0; step < 500; ++step) {
    const int act = a.select_action(s);
    a.update(s, act, reward[act], s);
  }
  EXPECT_EQ(a.greedy_action(s), 2);
  EXPECT_NEAR(a.table().find(s)->q[2], 1.0, 0.05);
}

TEST(Agent, OptimisticInitForcesTryingEveryAction) {
  QLearningParams p;
  p.gamma = 0.0;
  p.epsilon = 0.0;  // no random exploration: only optimism drives it
  p.optimistic_init = 10.0;
  p.confidence_penalty = 0.0;
  p.action_cost_prior = 0.0;
  QLearningAgent a(p, 7, "optimism");
  const DiscreteState s{0};
  for (int step = 0; step < 8; ++step) {
    const int act = a.select_action(s);
    a.update(s, act, 0.5, s);
  }
  const QTable::Row* r = a.table().find(s);
  for (const auto n : r->visits) EXPECT_GE(n, 1u);
}

TEST(Agent, GammaPropagatesSuccessorValue) {
  QLearningParams p;
  p.alpha = 1.0;
  p.gamma = 0.5;
  p.optimistic_init = 0.0;
  QLearningAgent a(p, 1, "t");
  const DiscreteState s1{1};
  const DiscreteState s2{2};
  a.update(s2, 0, 4.0, s2);  // Q(s2,0) -> 4 + 0.5*0 = 4... first rate=1
  a.update(s1, 0, 1.0, s2);  // target = 1 + 0.5 * 4 = 3
  EXPECT_DOUBLE_EQ(a.table().find(s1)->q[0], 3.0);
}

TEST(Agent, ExplorationTogglesOff) {
  QLearningParams p;
  p.epsilon = 1.0;  // always explore when enabled
  p.optimistic_init = 0.0;
  QLearningAgent a(p, 3, "t");
  const DiscreteState s{0};
  a.table().row(s).q = {9.0, 0.0, 0.0, 0.0};
  a.set_exploring(false);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.select_action(s), 0);
  a.set_exploring(true);
  int nonzero = 0;
  for (int i = 0; i < 200; ++i) nonzero += a.select_action(s) != 0 ? 1 : 0;
  EXPECT_GT(nonzero, 100);
}

TEST(Agent, DeterministicWithSameSeed) {
  QLearningParams p;
  QLearningAgent a(p, 5, "same");
  QLearningAgent b(p, 5, "same");
  const DiscreteState s{3};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.select_action(s), b.select_action(s));
}

}  // namespace
}  // namespace rlftnoc
