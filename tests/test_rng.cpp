#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace rlftnoc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, TaggedStreamsAreIndependent) {
  Rng a(7, "traffic");
  Rng b(7, "faults");
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, SameTagSameStream) {
  Rng a(7, "x");
  Rng b(7, "x");
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ZeroSeedStillWorks) {
  Rng r(0);
  std::set<std::uint64_t> vals;
  for (int i = 0; i < 100; ++i) vals.insert(r.next_u64());
  EXPECT_GT(vals.size(), 95u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng r(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(9);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroOrOneReturnsZero) {
  Rng r(9);
  EXPECT_EQ(r.next_below(0), 0u);
  EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextBelowApproximatelyUniform) {
  Rng r(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.next_below(10)];
  for (const int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, NextInInclusiveRange) {
  Rng r(15);
  for (int i = 0; i < 1000; ++i) {
    const auto x = r.next_in(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
}

TEST(Rng, NextInDegenerateRange) {
  Rng r(15);
  EXPECT_EQ(r.next_in(3, 3), 3);
  EXPECT_EQ(r.next_in(5, 2), 5);  // inverted -> lo
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliRate) {
  Rng r(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng r(21);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialNonPositiveRate) {
  Rng r(21);
  EXPECT_EQ(r.exponential(0.0), 0.0);
  EXPECT_EQ(r.exponential(-1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng r(23);
  double sum = 0.0;
  double sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 3.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, GeometricMean) {
  Rng r(25);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.geometric(0.5));
  // mean of failures-before-success = (1-p)/p = 1
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(Rng, GeometricCertainSuccess) {
  Rng r(25);
  EXPECT_EQ(r.geometric(1.0), 0u);
}

TEST(Rng, Fnv1aKnownValues) {
  // FNV-1a 64-bit of empty string is the offset basis.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

}  // namespace
}  // namespace rlftnoc
