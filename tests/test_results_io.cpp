#include "sim/results_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace rlftnoc {
namespace {

CampaignResults sample_results() {
  CampaignResults res;
  res.benchmarks = {"alpha", "beta"};
  res.policies = {PolicyKind::kStaticCrc, PolicyKind::kRl};
  res.results.resize(2);
  std::uint64_t n = 1;
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t p = 0; p < 2; ++p) {
      SimResult r;
      r.workload = res.benchmarks[b];
      r.policy = policy_name(res.policies[p]);
      r.execution_cycles = 1000 * n;
      r.total_cycles = 600000 + 1000 * n;
      r.drained = true;
      r.avg_packet_latency = 10.5 * static_cast<double>(n);
      r.packets_injected = 100 * n;
      r.packets_delivered = 100 * n;
      r.flits_delivered = 400 * n;
      r.enqueue_drops = 5 * n;
      r.retransmitted_flits = 7 * n;
      r.retx_flits_e2e = 3 * n;
      r.retx_flits_hop = 2 * n;
      r.dup_flits = 2 * n;
      r.crc_packet_failures = n;
      r.dynamic_energy_pj = 1.5e6 * static_cast<double>(n);
      r.leakage_energy_pj = 2.5e6 * static_cast<double>(n);
      r.total_energy_pj = r.dynamic_energy_pj + r.leakage_energy_pj;
      r.energy_efficiency = 1.25 * static_cast<double>(n);
      r.avg_dynamic_power_w = 0.4;
      r.avg_total_power_w = 0.9;
      r.avg_temperature_c = 75.0;
      r.max_temperature_c = 99.0;
      r.mode_fraction = {0.4, 0.3, 0.2, 0.1};
      r.rl_table_entries = 123;
      r.dt_training_accuracy = 0.5;
      res.results[b].push_back(std::move(r));
      ++n;
    }
  }
  return res;
}

TEST(ResultsIo, RoundTripPreservesEverything) {
  const CampaignResults orig = sample_results();
  std::ostringstream os;
  write_results(os, orig);
  std::istringstream is(os.str());
  const CampaignResults back = read_results(is);

  ASSERT_EQ(back.benchmarks, orig.benchmarks);
  ASSERT_EQ(back.policies.size(), orig.policies.size());
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t p = 0; p < 2; ++p) {
      const SimResult& a = orig.at(b, p);
      const SimResult& c = back.at(b, p);
      EXPECT_EQ(a.execution_cycles, c.execution_cycles);
      EXPECT_EQ(a.total_cycles, c.total_cycles);
      EXPECT_EQ(a.drained, c.drained);
      EXPECT_DOUBLE_EQ(a.avg_packet_latency, c.avg_packet_latency);
      EXPECT_EQ(a.packets_delivered, c.packets_delivered);
      EXPECT_EQ(a.enqueue_drops, c.enqueue_drops);
      EXPECT_EQ(a.retx_flits_e2e, c.retx_flits_e2e);
      EXPECT_EQ(a.dup_flits, c.dup_flits);
      EXPECT_DOUBLE_EQ(a.energy_efficiency, c.energy_efficiency);
      EXPECT_DOUBLE_EQ(a.mode_fraction[2], c.mode_fraction[2]);
      EXPECT_EQ(a.rl_table_entries, c.rl_table_entries);
    }
  }
}

TEST(ResultsIo, RoundTripIsBitExactForUglyDoubles) {
  // Doubles with no short decimal form: the default 6-significant-digit
  // stream precision used to truncate these, so a cached campaign differed
  // from a fresh one. max_digits10 output must reproduce every bit.
  CampaignResults res;
  res.benchmarks = {"gamma"};
  res.policies = {PolicyKind::kStaticCrc};
  res.results.resize(1);
  SimResult r;
  r.workload = "gamma";
  r.policy = policy_name(PolicyKind::kStaticCrc);
  r.execution_cycles = 123457;
  r.drained = true;
  r.avg_packet_latency = 1.0 / 3.0;
  r.dynamic_energy_pj = 123456789.123456789;
  r.leakage_energy_pj = 2.0 / 7.0;
  r.total_energy_pj = r.dynamic_energy_pj + r.leakage_energy_pj;
  r.energy_efficiency = 0.1 + 0.2;  // famously not 0.3
  r.avg_dynamic_power_w = 1e-17;
  r.avg_total_power_w = 9.87654321e12;
  r.avg_temperature_c = 76.543210987654321;
  r.max_temperature_c = 101.9999999999999;
  r.mode_fraction = {1.0 / 3.0, 1.0 / 6.0, 1.0 / 7.0, 1.0 / 11.0};
  r.dt_training_accuracy = 0.9999999999999999;
  res.results[0].push_back(r);

  std::ostringstream os;
  write_results(os, res);
  std::istringstream is(os.str());
  const CampaignResults back = read_results(is);
  const SimResult& c = back.at(0, 0);
  EXPECT_EQ(r.avg_packet_latency, c.avg_packet_latency);
  EXPECT_EQ(r.dynamic_energy_pj, c.dynamic_energy_pj);
  EXPECT_EQ(r.leakage_energy_pj, c.leakage_energy_pj);
  EXPECT_EQ(r.total_energy_pj, c.total_energy_pj);
  EXPECT_EQ(r.energy_efficiency, c.energy_efficiency);
  EXPECT_EQ(r.avg_dynamic_power_w, c.avg_dynamic_power_w);
  EXPECT_EQ(r.avg_total_power_w, c.avg_total_power_w);
  EXPECT_EQ(r.avg_temperature_c, c.avg_temperature_c);
  EXPECT_EQ(r.max_temperature_c, c.max_temperature_c);
  for (std::size_t m = 0; m < kNumOpModes; ++m)
    EXPECT_EQ(r.mode_fraction[m], c.mode_fraction[m]);
  EXPECT_EQ(r.dt_training_accuracy, c.dt_training_accuracy);

  // And writing the reread results again is byte-identical.
  std::ostringstream os2;
  write_results(os2, back);
  EXPECT_EQ(os.str(), os2.str());
}

TEST(ResultsIo, PreservesDeclarationOrderNotLexicographic) {
  // Campaign declaration order is deliberately anti-alphabetical; report
  // tables must come back in this order, not sorted.
  CampaignResults res;
  res.benchmarks = {"zulu", "alpha"};
  res.policies = {PolicyKind::kRl, PolicyKind::kStaticCrc};
  res.results.resize(2);
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t p = 0; p < 2; ++p) {
      SimResult r;
      r.workload = res.benchmarks[b];
      r.policy = policy_name(res.policies[p]);
      r.execution_cycles = 10 * (b + 1) + p;
      res.results[b].push_back(std::move(r));
    }
  }
  std::ostringstream os;
  write_results(os, res);
  std::istringstream is(os.str());
  const CampaignResults back = read_results(is);
  ASSERT_EQ(back.benchmarks, (std::vector<std::string>{"zulu", "alpha"}));
  ASSERT_EQ(back.policies.size(), 2u);
  EXPECT_EQ(back.policies[0], PolicyKind::kRl);
  EXPECT_EQ(back.policies[1], PolicyKind::kStaticCrc);
  EXPECT_EQ(back.at(0, 0).execution_cycles, 10u);
  EXPECT_EQ(back.at(1, 1).execution_cycles, 21u);
}

TEST(ResultsIo, SkipsCommentLines) {
  std::ostringstream os;
  write_results(os, sample_results());
  const std::string body = os.str();
  const std::string annotated =
      "# campaign-options-hash 1f2e3d4c\n# another note\n" + body +
      "# trailing comment\n";
  std::istringstream is(annotated);
  const CampaignResults back = read_results(is);
  EXPECT_EQ(back.benchmarks.size(), 2u);
  EXPECT_EQ(back.at(0, 0).execution_cycles, 1000u);
}

TEST(ResultsIo, RejectsStaleHeader) {
  std::istringstream is("wrong\theader\n1\t2\n");
  EXPECT_THROW(read_results(is), std::runtime_error);
}

TEST(ResultsIo, RejectsEmptyFile) {
  std::ostringstream os;
  write_results(os, sample_results());
  const std::string text = os.str();
  std::istringstream header_only(text.substr(0, text.find('\n') + 1));
  EXPECT_THROW(read_results(header_only), std::runtime_error);
}

TEST(ResultsIo, RejectsTruncatedRow) {
  std::ostringstream os;
  write_results(os, sample_results());
  std::string text = os.str();
  // Chop the last row in half.
  text.resize(text.size() - 40);
  std::istringstream is(text);
  EXPECT_THROW(read_results(is), std::runtime_error);
}

TEST(ResultsIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/rlftnoc_results.tsv";
  write_results_file(path, sample_results());
  const CampaignResults back = read_results_file(path);
  EXPECT_EQ(back.benchmarks.size(), 2u);
  EXPECT_THROW(read_results_file("/no/such/file.tsv"), std::runtime_error);
}

}  // namespace
}  // namespace rlftnoc
