// NetworkAuditor contract: a faithful simulation — including one under heavy
// fault injection, where every ARQ path fires — audits clean every cycle,
// and deliberately corrupted state (phantom flits, minted credits) trips the
// matching invariant with an actionable location.
#include "noc/audit.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "noc/network.h"
#include "sim/simulator.h"
#include "traffic/traffic.h"

namespace rlftnoc {
namespace {

NocConfig tiny_mesh() {
  NocConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  return cfg;
}

/// Steps `net` for up to `cycles`, auditing after every step; returns every
/// violation found (the audit stops adding new cycles once traffic drains).
std::vector<AuditViolation> step_and_audit(Network& net, NetworkAuditor& auditor,
                                           Cycle cycles) {
  std::vector<AuditViolation> all;
  for (Cycle c = 0; c < cycles; ++c) {
    net.step();
    std::vector<AuditViolation> v = auditor.run(net);
    all.insert(all.end(), v.begin(), v.end());
    if (net.drained()) break;
  }
  return all;
}

TEST(Audit, QuiescentNetworkIsClean) {
  Network net(tiny_mesh(), /*seed=*/11);
  NetworkAuditor auditor;
  EXPECT_TRUE(auditor.run(net).empty());
  EXPECT_EQ(auditor.clean_passes(), 1u);
}

TEST(Audit, FaultHeavyArqTrafficAuditsCleanEveryCycle) {
  const NocConfig cfg = tiny_mesh();
  Network net(cfg, /*seed=*/23);

  // Mode 2 exercises the whole link layer: ECC retention, NACK resends,
  // proactive duplicates and duplicate discards at the receivers.
  for (NodeId n = 0; n < cfg.num_nodes(); ++n) {
    net.router(n).set_mode(OpMode::kMode2);
    for (const Port p : {Port::kNorth, Port::kSouth, Port::kEast, Port::kWest}) {
      if (net.out_channel(n, p) != nullptr)
        net.set_link_error_prob(n, p, LinkErrorProb{0.08, 0.004});
    }
  }

  Rng traffic_rng(23, "audit-traffic");
  PacketId next_id = 1;
  for (int i = 0; i < 60; ++i) {
    const auto src = static_cast<NodeId>(traffic_rng.next_u64() %
                                         static_cast<std::uint64_t>(cfg.num_nodes()));
    const auto dst = static_cast<NodeId>(traffic_rng.next_u64() %
                                         static_cast<std::uint64_t>(cfg.num_nodes()));
    if (src == dst) continue;
    net.ni(src).enqueue_packet(make_packet(next_id++, src, dst,
                                           cfg.flits_per_packet, 0,
                                           net.payload_rng()));
  }

  NetworkAuditor auditor;
  const std::vector<AuditViolation> violations =
      step_and_audit(net, auditor, 20000);
  for (const AuditViolation& v : violations) ADD_FAILURE() << v.to_string();
  EXPECT_TRUE(net.drained());
  EXPECT_GT(auditor.clean_passes(), 0u);

  // The run must actually have exercised the ARQ machinery to mean anything.
  std::uint64_t dups = 0;
  std::uint64_t discards = 0;
  for (NodeId n = 0; n < cfg.num_nodes(); ++n) {
    dups += net.router(n).counters().preretx_duplicates;
    discards += net.router(n).counters().dup_discards;
  }
  EXPECT_GT(dups, 0u);
  EXPECT_GT(discards, 0u);
}

TEST(Audit, DroopAccountingBalancesOnEveryLiveInjector) {
  // Every link injector must satisfy droop_traversals + droop_left ==
  // total_droops * droop_len at all times (the burst counter covers exactly
  // its burst, counting the starter traversal). Drive real traffic, then
  // sweep every live link's injector through Network::link_injector.
  const NocConfig cfg = tiny_mesh();
  Network net(cfg, /*seed=*/29);
  for (NodeId n = 0; n < cfg.num_nodes(); ++n) {
    for (const Port p : {Port::kNorth, Port::kSouth, Port::kEast, Port::kWest}) {
      if (net.out_channel(n, p) != nullptr)
        net.set_link_error_prob(n, p, LinkErrorProb{0.05, 0.002});
    }
  }
  Rng traffic_rng(29, "droop-traffic");
  PacketId next_id = 1;
  for (int i = 0; i < 80; ++i) {
    const auto src = static_cast<NodeId>(traffic_rng.next_u64() %
                                         static_cast<std::uint64_t>(cfg.num_nodes()));
    const auto dst = static_cast<NodeId>(traffic_rng.next_u64() %
                                         static_cast<std::uint64_t>(cfg.num_nodes()));
    if (src == dst) continue;
    net.ni(src).enqueue_packet(make_packet(next_id++, src, dst,
                                           cfg.flits_per_packet, 0,
                                           net.payload_rng()));
  }
  for (int i = 0; i < 20000 && !net.drained(); ++i) net.step();
  ASSERT_TRUE(net.drained());

  std::uint64_t droops = 0;
  int injectors = 0;
  for (NodeId n = 0; n < cfg.num_nodes(); ++n) {
    for (const Port p : {Port::kNorth, Port::kSouth, Port::kEast, Port::kWest}) {
      const LinkFaultInjector* inj = net.link_injector(n, p);
      if (inj == nullptr) continue;
      ++injectors;
      EXPECT_TRUE(inj->droop_accounting_consistent())
          << "node " << n << " port " << port_name(p);
      droops += inj->total_droops();
    }
  }
  EXPECT_GT(injectors, 0);
  EXPECT_GT(droops, 0u);  // the run must have entered bursts to mean much
}

TEST(Audit, PhantomFlitTripsConservation) {
  const NocConfig cfg = tiny_mesh();
  Network net(cfg, /*seed=*/5);

  // A flit that no NI counter accounts for: exactly what a buggy injection
  // path (or a fault injector dropping flits silently) would produce.
  Flit rogue;
  rogue.packet_id = 999;
  rogue.vc = 0;
  rogue.src = 0;
  rogue.dst = 1;
  net.inj_channel(0).flits.push(net.now(), rogue);

  NetworkAuditor auditor;
  const std::vector<AuditViolation> violations = auditor.run(net);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().invariant, "flit-conservation");
  EXPECT_EQ(auditor.clean_passes(), 0u);
}

TEST(Audit, MintedEjectionCreditTripsCreditBalance) {
  const NocConfig cfg = tiny_mesh();
  Network net(cfg, /*seed=*/5);

  // A credit out of thin air on the ejection loop: the local output VC now
  // believes the NI has more buffer than physically exists.
  net.ej_channel(3).credits.push(net.now(), Credit{0});

  NetworkAuditor auditor;
  const std::vector<AuditViolation> violations = auditor.run(net);
  ASSERT_FALSE(violations.empty());
  const auto it = std::find_if(violations.begin(), violations.end(),
                               [](const AuditViolation& v) {
                                 return v.invariant == "credit-balance";
                               });
  ASSERT_NE(it, violations.end());
  EXPECT_EQ(it->node, 3);
  EXPECT_TRUE(it->has_port);
  EXPECT_EQ(it->port, Port::kLocal);
}

TEST(Audit, MintedMeshCreditTripsCreditBalance) {
  const NocConfig cfg = tiny_mesh();
  Network net(cfg, /*seed=*/5);

  ChannelPair* ch = net.out_channel(0, Port::kEast);
  ASSERT_NE(ch, nullptr);
  ch->credits.push(net.now(), Credit{1});

  NetworkAuditor auditor;
  const std::vector<AuditViolation> violations = auditor.run(net);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().invariant, "credit-balance");
  EXPECT_EQ(violations.front().node, 0);
  EXPECT_EQ(violations.front().port, Port::kEast);
}

TEST(Audit, CheckOrThrowReportsLocation) {
  const NocConfig cfg = tiny_mesh();
  Network net(cfg, /*seed=*/5);
  Flit rogue;
  rogue.packet_id = 1000;
  rogue.vc = 0;
  net.inj_channel(2).flits.push(net.now(), rogue);

  NetworkAuditor auditor;
  try {
    auditor.check_or_throw(net);
    FAIL() << "expected AuditError";
  } catch (const AuditError& e) {
    EXPECT_EQ(e.violation().invariant, "flit-conservation");
    EXPECT_NE(std::string(e.what()).find("flit-conservation"),
              std::string::npos);
  }
}

TEST(Audit, SimulatorIntegrationAuditsCleanRun) {
  SimOptions opt;
  opt.noc = tiny_mesh();
  opt.policy = PolicyKind::kStaticArqEcc;  // ECC links on everywhere
  opt.seed = 17;
  opt.audit = true;
  opt.pretrain_cycles = 0;
  opt.warmup_cycles = 2000;
  opt.error_scale = 4.0;  // force real ARQ traffic during the audit

  Simulator sim(opt);
  ASSERT_NE(sim.auditor(), nullptr);

  SyntheticTraffic::Options to;
  to.injection_rate = 0.06;
  to.total_packets = 800;
  SyntheticTraffic gen(MeshTopology(opt.noc), to, opt.seed);

  SimResult res;
  ASSERT_NO_THROW(res = sim.run(gen));
  EXPECT_TRUE(res.drained);
  EXPECT_GT(sim.auditor()->clean_passes(), 1000u);
}

TEST(Audit, SimulatorAuditIntervalThins) {
  SimOptions opt;
  opt.noc = tiny_mesh();
  opt.policy = PolicyKind::kStaticCrc;
  opt.seed = 9;
  opt.audit = true;
  opt.audit_interval = 64;
  opt.pretrain_cycles = 0;
  opt.warmup_cycles = 500;

  Simulator sim(opt);
  SyntheticTraffic::Options to;
  to.injection_rate = 0.05;
  to.total_packets = 200;
  SyntheticTraffic gen(MeshTopology(opt.noc), to, opt.seed);
  const SimResult res = sim.run(gen);
  EXPECT_TRUE(res.drained);
  const std::uint64_t passes = sim.auditor()->clean_passes();
  EXPECT_GT(passes, 0u);
  // Sparser than every-cycle auditing by construction.
  EXPECT_LT(passes, res.execution_cycles);
}

#if RLFTNOC_CHECK_ENABLED
using AuditDeathTest = ::testing::Test;

TEST(AuditDeathTest, DelayLineStampRegressionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        DelayLine<Credit> line;
        line.push(/*now=*/10, Credit{0});
        line.push(/*now=*/5, Credit{0});
      },
      "RLFTNOC_CHECK failed");
}
#endif

}  // namespace
}  // namespace rlftnoc
