#include "common/config.h"

#include <gtest/gtest.h>

namespace rlftnoc {
namespace {

TEST(Config, ParsesBasicPairs) {
  const Config c = Config::from_string("a = 1\nb = hello\nc=3.5\n");
  EXPECT_EQ(c.get_int("a"), 1);
  EXPECT_EQ(c.get_string("b"), "hello");
  EXPECT_DOUBLE_EQ(c.get_double("c"), 3.5);
}

TEST(Config, StripsComments) {
  const Config c = Config::from_string(
      "# full comment line\n"
      "a = 1  # trailing hash\n"
      "b = 2  // trailing slashes\n"
      "\n"
      "   \n");
  EXPECT_EQ(c.get_int("a"), 1);
  EXPECT_EQ(c.get_int("b"), 2);
  EXPECT_EQ(c.keys().size(), 2u);
}

TEST(Config, LaterKeysOverride) {
  const Config c = Config::from_string("a = 1\na = 2\n");
  EXPECT_EQ(c.get_int("a"), 2);
}

TEST(Config, MissingKeyThrows) {
  const Config c = Config::from_string("a = 1\n");
  EXPECT_THROW(c.get_int("missing"), ConfigError);
  EXPECT_THROW(c.get_string("missing"), ConfigError);
}

TEST(Config, MalformedLineThrows) {
  EXPECT_THROW(Config::from_string("no equals sign here\n"), ConfigError);
  EXPECT_THROW(Config::from_string("= value without key\n"), ConfigError);
}

TEST(Config, BadTypesThrow) {
  const Config c = Config::from_string("a = notanint\nb = 1.5x\nc = maybe\n");
  EXPECT_THROW(c.get_int("a"), ConfigError);
  EXPECT_THROW(c.get_double("b"), ConfigError);
  EXPECT_THROW(c.get_bool("c"), ConfigError);
}

TEST(Config, BoolForms) {
  const Config c = Config::from_string(
      "a = true\nb = FALSE\nc = 1\nd = 0\ne = Yes\nf = off\n");
  EXPECT_TRUE(c.get_bool("a"));
  EXPECT_FALSE(c.get_bool("b"));
  EXPECT_TRUE(c.get_bool("c"));
  EXPECT_FALSE(c.get_bool("d"));
  EXPECT_TRUE(c.get_bool("e"));
  EXPECT_FALSE(c.get_bool("f"));
}

TEST(Config, DefaultsOnlyApplyWhenAbsent) {
  const Config c = Config::from_string("a = 7\n");
  EXPECT_EQ(c.get_int("a", 99), 7);
  EXPECT_EQ(c.get_int("b", 99), 99);
  EXPECT_EQ(c.get_string("s", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(c.get_double("d", 2.5), 2.5);
  EXPECT_TRUE(c.get_bool("t", true));
}

TEST(Config, MalformedValueThrowsEvenWithDefault) {
  const Config c = Config::from_string("a = oops\n");
  EXPECT_THROW(c.get_int("a", 1), ConfigError);
}

TEST(Config, IntDoubleDistinction) {
  const Config c = Config::from_string("a = 2.5\n");
  EXPECT_THROW(c.get_int("a"), ConfigError);
  EXPECT_DOUBLE_EQ(c.get_double("a"), 2.5);
}

TEST(Config, NegativeNumbers) {
  const Config c = Config::from_string("a = -42\nb = -1.25\n");
  EXPECT_EQ(c.get_int("a"), -42);
  EXPECT_DOUBLE_EQ(c.get_double("b"), -1.25);
}

TEST(Config, RoundTripThroughToString) {
  const Config c = Config::from_string("a = 1\nb = two\n");
  const Config c2 = Config::from_string(c.to_string());
  EXPECT_EQ(c2.get_int("a"), 1);
  EXPECT_EQ(c2.get_string("b"), "two");
}

TEST(Config, Merge) {
  Config base = Config::from_string("a = 1\nb = 2\n");
  const Config over = Config::from_string("b = 20\nc = 30\n");
  base.merge(over);
  EXPECT_EQ(base.get_int("a"), 1);
  EXPECT_EQ(base.get_int("b"), 20);
  EXPECT_EQ(base.get_int("c"), 30);
}

TEST(Config, SetAndContains) {
  Config c;
  EXPECT_FALSE(c.contains("k"));
  c.set("k", "v");
  EXPECT_TRUE(c.contains("k"));
  EXPECT_EQ(c.get_string("k"), "v");
}

TEST(Config, MissingFileThrows) {
  EXPECT_THROW(Config::from_file("/nonexistent/path/to/config"), ConfigError);
}

}  // namespace
}  // namespace rlftnoc
