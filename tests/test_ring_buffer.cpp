#include "common/ring_buffer.h"

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "noc/retention.h"

namespace rlftnoc {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb;
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 0u);
}

TEST(RingBuffer, PushPopFifoOrder) {
  RingBuffer<int> rb;
  for (int i = 0; i < 5; ++i) rb.push_back(i);
  EXPECT_EQ(rb.size(), 5u);
  EXPECT_EQ(rb.front(), 0);
  EXPECT_EQ(rb.back(), 4);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(rb.front(), i);
    rb.pop_front();
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WraparoundMatchesDequeReference) {
  // Long interleaved push/pop churn with a bounded occupancy forces the
  // head index to wrap the backing store many times.
  RingBuffer<std::uint64_t> rb;
  std::deque<std::uint64_t> ref;
  Rng rng(7, "ring");
  for (int step = 0; step < 20000; ++step) {
    const bool push = ref.empty() || (ref.size() < 6 && rng.next_u64() % 2);
    if (push) {
      const std::uint64_t v = rng.next_u64();
      rb.push_back(v);
      ref.push_back(v);
    } else {
      ASSERT_EQ(rb.front(), ref.front());
      rb.pop_front();
      ref.pop_front();
    }
    ASSERT_EQ(rb.size(), ref.size());
  }
  // Capacity settled at the high-water mark: bounded churn never grows past
  // the first doubling that covers it.
  EXPECT_LE(rb.capacity(), 8u);
}

TEST(RingBuffer, GrowthPreservesOrderAcrossWrap) {
  RingBuffer<int> rb;
  // Misalign head so the pre-growth contents straddle the wrap point.
  for (int i = 0; i < 6; ++i) rb.push_back(-1);
  for (int i = 0; i < 6; ++i) rb.pop_front();
  for (int i = 0; i < 40; ++i) rb.push_back(i);  // forces several doublings
  ASSERT_EQ(rb.size(), 40u);
  EXPECT_EQ(rb.capacity(), 64u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(rb.front(), i);
    rb.pop_front();
  }
}

TEST(RingBuffer, PushFrontPrepends) {
  RingBuffer<int> rb;
  rb.push_back(2);
  rb.push_back(3);
  rb.push_front(1);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb[0], 1);
  EXPECT_EQ(rb[1], 2);
  EXPECT_EQ(rb[2], 3);
  // push_front at full capacity must grow correctly too.
  RingBuffer<int> tight;
  for (int i = 0; i < 8; ++i) tight.push_back(i);
  tight.push_front(-1);
  EXPECT_EQ(tight.size(), 9u);
  EXPECT_EQ(tight.front(), -1);
  EXPECT_EQ(tight.back(), 7);
}

TEST(RingBuffer, MoveOnlyPayloads) {
  RingBuffer<std::unique_ptr<int>> rb;
  for (int i = 0; i < 20; ++i) rb.push_back(std::make_unique<int>(i));
  for (int i = 0; i < 20; ++i) {
    std::unique_ptr<int> p = std::move(rb.front());
    rb.pop_front();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, i);
  }
}

TEST(RingBuffer, ForEachVisitsOldestFirst) {
  RingBuffer<int> rb;
  for (int i = 0; i < 12; ++i) rb.push_back(-1);
  for (int i = 0; i < 12; ++i) rb.pop_front();  // wrap the head
  for (int i = 0; i < 5; ++i) rb.push_back(i * 10);
  std::vector<int> seen;
  rb.for_each([&](int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{0, 10, 20, 30, 40}));
}

TEST(RingBuffer, AnyOf) {
  RingBuffer<int> rb;
  rb.push_back(1);
  rb.push_back(2);
  EXPECT_TRUE(rb.any_of([](int v) { return v == 2; }));
  EXPECT_FALSE(rb.any_of([](int v) { return v == 9; }));
}

TEST(RingBuffer, RemoveIfIsStable) {
  RingBuffer<int> rb;
  for (int i = 0; i < 10; ++i) rb.push_back(-1);
  for (int i = 0; i < 10; ++i) rb.pop_front();  // wrap
  for (int i = 0; i < 10; ++i) rb.push_back(i);
  const std::size_t removed = rb.remove_if([](int v) { return v % 3 == 0; });
  EXPECT_EQ(removed, 4u);  // 0, 3, 6, 9
  std::vector<int> seen;
  rb.for_each([&](int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 4, 5, 7, 8}));
}

TEST(RingBuffer, ReserveRoundsUpToPowerOfTwo) {
  RingBuffer<int> rb(12);
  EXPECT_EQ(rb.capacity(), 16u);
  rb.reserve(3);  // never shrinks
  EXPECT_EQ(rb.capacity(), 16u);
  for (int i = 0; i < 16; ++i) rb.push_back(i);
  EXPECT_EQ(rb.capacity(), 16u);  // exactly full, no reallocation yet
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb;
  for (int i = 0; i < 7; ++i) rb.push_back(i);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push_back(42);
  EXPECT_EQ(rb.front(), 42);
}

// ---------------------------------------------------------------------------
// RetentionTable
// ---------------------------------------------------------------------------

ArqRetention make_entry(FlitId id) {
  ArqRetention r;
  r.clean.packet_id = id >> 8;
  r.clean.seq = static_cast<std::uint32_t>(id & 0xFF);
  r.unresolved = 1;
  return r;
}

TEST(RetentionTable, InsertFindErase) {
  RetentionTable t;
  t.reset(8);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.capacity(), 8u);
  EXPECT_EQ(t.find(42), nullptr);

  t.insert(42, make_entry(42));
  t.insert(513, make_entry(513));
  EXPECT_EQ(t.size(), 2u);
  ASSERT_NE(t.find(42), nullptr);
  EXPECT_EQ(t.find(42)->clean.id(), 42u);
  ASSERT_NE(t.find(513), nullptr);
  EXPECT_EQ(t.find(513)->clean.id(), 513u);

  EXPECT_TRUE(t.erase(42));
  EXPECT_FALSE(t.erase(42));
  EXPECT_EQ(t.find(42), nullptr);
  ASSERT_NE(t.find(513), nullptr);
  EXPECT_EQ(t.size(), 1u);
}

TEST(RetentionTable, PointerStableAcrossUnrelatedChurn) {
  RetentionTable t;
  t.reset(8);
  ArqRetention* keep = &t.insert(1000, make_entry(1000));
  for (FlitId id = 1; id <= 7; ++id) t.insert(id, make_entry(id));
  for (FlitId id = 1; id <= 7; ++id) t.erase(id);
  for (FlitId id = 10; id <= 16; ++id) t.insert(id, make_entry(id));
  EXPECT_EQ(t.find(1000), keep);
  EXPECT_EQ(keep->clean.id(), 1000u);
}

TEST(RetentionTable, NackStormChurnMatchesReferenceModel) {
  // ARQ under a NACK storm: constant insert (transmits), lookup (ACK/NACK
  // arrivals, many for already-freed flits) and erase (ACK resolutions),
  // with the occupancy bouncing off the depth bound. Cross-check every
  // operation against std::unordered_map. FlitIds replicate the real
  // (packet_id << 8 | seq) shape, so low bits are heavily clustered.
  RetentionTable t;
  t.reset(8);
  std::unordered_map<FlitId, int> ref;  // id -> unresolved
  Rng rng(99, "storm");
  std::vector<FlitId> live;
  FlitId next_pkt = 1;

  for (int step = 0; step < 50000; ++step) {
    const std::uint64_t op = rng.next_u64() % 4;
    if (op == 0 && live.size() < 8) {  // transmit: insert fresh entry
      const FlitId id = make_flit_id(next_pkt++, rng.next_u64() % 4);
      t.insert(id, make_entry(id));
      ref[id] = 1;
      live.push_back(id);
    } else if (op == 1 && !live.empty()) {  // NACK: mutate through find()
      const FlitId id = live[rng.next_u64() % live.size()];
      ArqRetention* r = t.find(id);
      ASSERT_NE(r, nullptr);
      ++r->unresolved;
      ++ref[id];
    } else if (op == 2 && !live.empty()) {  // ACK: erase
      const std::size_t k = rng.next_u64() % live.size();
      const FlitId id = live[k];
      EXPECT_TRUE(t.erase(id));
      ref.erase(id);
      live[k] = live.back();
      live.pop_back();
    } else {  // stale response: lookup of a freed (or never-sent) id
      const FlitId id = make_flit_id(rng.next_u64() % (next_pkt + 3), 0);
      const ArqRetention* r = t.find(id);
      const auto it = ref.find(id);
      ASSERT_EQ(r != nullptr, it != ref.end());
      if (r != nullptr) {
        EXPECT_EQ(r->unresolved, it->second);
      }
    }
    ASSERT_EQ(t.size(), ref.size());
  }

  // for_each must visit exactly the live set.
  std::unordered_map<FlitId, int> seen;
  t.for_each([&](FlitId id, const ArqRetention& r) { seen[id] = r.unresolved; });
  EXPECT_EQ(seen.size(), ref.size());
  for (const auto& [id, unresolved] : ref) {
    ASSERT_TRUE(seen.count(id));
    EXPECT_EQ(seen[id], unresolved);
  }
}

TEST(RetentionTable, ResetDiscardsContents) {
  RetentionTable t;
  t.reset(4);
  t.insert(7, make_entry(7));
  t.reset(4);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.find(7), nullptr);
  // Full capacity usable after reset.
  for (FlitId id = 0; id < 4; ++id) t.insert(id, make_entry(id));
  EXPECT_EQ(t.size(), 4u);
}

}  // namespace
}  // namespace rlftnoc
