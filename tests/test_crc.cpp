#include "coding/crc.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"

namespace rlftnoc {
namespace {

TEST(Crc32, KnownCheckValue) {
  // The canonical CRC-32 check: "123456789" -> 0xCBF43926.
  const char* s = "123456789";
  std::vector<std::uint8_t> bytes(s, s + std::strlen(s));
  EXPECT_EQ(default_crc32().compute(bytes), 0xCBF43926u);
}

TEST(Crc32, EmptyInput) {
  // CRC of nothing = init ^ final-xor = 0.
  EXPECT_EQ(default_crc32().compute(std::span<const std::uint8_t>{}), 0u);
}

TEST(Crc32, WordAndByteAgree) {
  const std::uint64_t w = 0x0123456789abcdefULL;
  std::vector<std::uint8_t> bytes(8);
  for (int i = 0; i < 8; ++i) bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(w >> (8 * i));
  EXPECT_EQ(default_crc32().compute(w), default_crc32().compute(bytes));
}

TEST(Crc32, PayloadMatchesTwoWords) {
  const BitVec128 v(0xdeadbeefcafebabeULL, 0x0123456789abcdefULL);
  std::vector<std::uint8_t> bytes(16);
  for (int i = 0; i < 8; ++i) {
    bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v.word(0) >> (8 * i));
    bytes[static_cast<std::size_t>(8 + i)] = static_cast<std::uint8_t>(v.word(1) >> (8 * i));
  }
  EXPECT_EQ(default_crc32().compute(v), default_crc32().compute(bytes));
}

TEST(Crc32, IncrementalMatchesBatch) {
  const BitVec128 a(1, 2);
  const BitVec128 b(3, 4);
  std::uint32_t crc = Crc32::initial();
  crc = default_crc32().feed(crc, a);
  crc = default_crc32().feed(crc, b);
  crc = Crc32::finalize(crc);

  std::vector<std::uint8_t> bytes;
  for (const BitVec128* v : {&a, &b}) {
    for (int w = 0; w < 2; ++w) {
      for (int i = 0; i < 8; ++i)
        bytes.push_back(static_cast<std::uint8_t>(v->word(static_cast<std::size_t>(w)) >> (8 * i)));
    }
  }
  EXPECT_EQ(crc, default_crc32().compute(bytes));
}

/// Property: every single-bit flip anywhere in the payload changes the CRC.
class CrcSingleBitSweep : public ::testing::TestWithParam<int> {};

TEST_P(CrcSingleBitSweep, DetectsSingleBitFlip) {
  BitVec128 v(0x1111222233334444ULL, 0x5555666677778888ULL);
  const std::uint32_t clean = default_crc32().compute(v);
  v.flip_bit(static_cast<std::size_t>(GetParam()));
  EXPECT_NE(default_crc32().compute(v), clean);
}

INSTANTIATE_TEST_SUITE_P(AllBits, CrcSingleBitSweep, ::testing::Range(0, 128));

TEST(Crc32, DetectsAllDoubleBitFlipsSampled) {
  Rng rng(77);
  BitVec128 v(rng.next_u64(), rng.next_u64());
  const std::uint32_t clean = default_crc32().compute(v);
  for (int trial = 0; trial < 2000; ++trial) {
    BitVec128 c = v;
    const auto i = static_cast<std::size_t>(rng.next_below(128));
    auto j = static_cast<std::size_t>(rng.next_below(128));
    while (j == i) j = static_cast<std::size_t>(rng.next_below(128));
    c.flip_bit(i);
    c.flip_bit(j);
    EXPECT_NE(default_crc32().compute(c), clean);
  }
}

TEST(Crc32, DetectsBurstErrors) {
  // CRC-32 detects all burst errors up to 32 bits long.
  BitVec128 v(0xabcdef0123456789ULL, 0x9876543210fedcbaULL);
  const std::uint32_t clean = default_crc32().compute(v);
  for (int start = 0; start <= 128 - 32; start += 3) {
    for (int len = 2; len <= 32; len += 5) {
      BitVec128 c = v;
      for (int i = 0; i < len; ++i) c.flip_bit(static_cast<std::size_t>(start + i));
      EXPECT_NE(default_crc32().compute(c), clean)
          << "burst at " << start << " len " << len;
    }
  }
}

TEST(Crc32, DifferentPolynomialsDiffer) {
  const Crc32 ieee(0xEDB88320u);
  const Crc32 castagnoli(0x82F63B78u);
  const BitVec128 v(123, 456);
  EXPECT_NE(ieee.compute(v), castagnoli.compute(v));
}

TEST(Crc32, DeterministicAcrossInstances) {
  const Crc32 a;
  const Crc32 b;
  const BitVec128 v(42, 43);
  EXPECT_EQ(a.compute(v), b.compute(v));
}

}  // namespace
}  // namespace rlftnoc
