// Hard (permanent) faults: spec parsing, fault-adaptive route-LUT rebuild,
// audited end-to-end runs over dead links/routers, and the determinism
// contract (bit-identical results for any sim_threads) under mid-run kills.
#include "fault/hard_faults.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "noc/network.h"
#include "noc/topology.h"
#include "sim/simulator.h"
#include "traffic/traffic.h"

namespace rlftnoc {
namespace {

// ---------------------------------------------------------------- parsing

TEST(ParseHardFaults, EmptyYieldsEmpty) {
  EXPECT_TRUE(parse_hard_faults("").empty());
  EXPECT_TRUE(parse_hard_faults("  , ,, ").empty());
}

TEST(ParseHardFaults, LinkAndRouterItems) {
  const auto v = parse_hard_faults("link:5:E, router:12, link:0:n@300");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].kind, HardFault::Kind::kLink);
  EXPECT_EQ(v[0].node, 5);
  EXPECT_EQ(v[0].port, Port::kEast);
  EXPECT_EQ(v[0].at_cycle, 0u);
  EXPECT_EQ(v[1].kind, HardFault::Kind::kRouter);
  EXPECT_EQ(v[1].node, 12);
  EXPECT_EQ(v[2].kind, HardFault::Kind::kLink);
  EXPECT_EQ(v[2].port, Port::kNorth);  // case-insensitive port
  EXPECT_EQ(v[2].at_cycle, 300u);
}

TEST(ParseHardFaults, SeparatorsAreCommasAndWhitespace) {
  const auto v = parse_hard_faults("link:1:N link:2:S\trouter:3@7\nlink:4:W");
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[2].at_cycle, 7u);
}

TEST(ParseHardFaults, RoundTripsThroughToString) {
  const auto v = parse_hard_faults("link:9:W@123, router:4, router:0@1");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(hard_fault_to_string(v[0]), "link:9:W@123");
  EXPECT_EQ(hard_fault_to_string(v[1]), "router:4");
  EXPECT_EQ(hard_fault_to_string(v[2]), "router:0@1");
  for (const HardFault& f : v) {
    const auto again = parse_hard_faults(hard_fault_to_string(f));
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(again[0], f);
  }
}

TEST(ParseHardFaults, MalformedSpecsThrow) {
  EXPECT_THROW(parse_hard_faults("link"), std::invalid_argument);
  EXPECT_THROW(parse_hard_faults("link:3"), std::invalid_argument);
  EXPECT_THROW(parse_hard_faults("link:3:Q"), std::invalid_argument);
  EXPECT_THROW(parse_hard_faults("link:x:N"), std::invalid_argument);
  EXPECT_THROW(parse_hard_faults("link:3:N@"), std::invalid_argument);
  EXPECT_THROW(parse_hard_faults("link:3:N@x"), std::invalid_argument);
  EXPECT_THROW(parse_hard_faults("router:1:N"), std::invalid_argument);
  EXPECT_THROW(parse_hard_faults("node:3"), std::invalid_argument);
}

// ------------------------------------------------------------ LUT rebuild

/// Walks the route LUT from src to dst; returns hops or -1 on a severed or
/// cyclic walk. `banned` (node, port) must never be traversed.
int walk_route(const Topology& t, NodeId src, NodeId dst, NodeId banned_node,
               Port banned_port) {
  NodeId cur = src;
  int hops = 0;
  while (cur != dst) {
    if (!t.reachable(cur, dst)) return -1;
    const Port p = t.route(cur, dst);
    if (p == Port::kLocal) return -1;
    if ((cur == banned_node && p == banned_port) ||
        (t.neighbor(cur, p) == banned_node && opposite(p) == banned_port))
      return -1;  // crossed the dead wire
    cur = t.neighbor(cur, p);
    if (cur == kInvalidNode || ++hops > t.num_nodes()) return -1;
  }
  return hops;
}

TEST(AdaptiveRouting, FaultFreeMeshIsMinimal) {
  const Topology t(TopologyKind::kMesh, 6, 6, RoutingAlgorithm::kAdaptive);
  for (NodeId src = 0; src < t.num_nodes(); ++src) {
    for (NodeId dst = 0; dst < t.num_nodes(); ++dst) {
      ASSERT_EQ(walk_route(t, src, dst, kInvalidNode, Port::kLocal),
                t.distance(src, dst));
    }
  }
}

TEST(AdaptiveRouting, RebuildRoutesAroundDeadLink) {
  Topology t(TopologyKind::kMesh, 6, 6, RoutingAlgorithm::kAdaptive);
  const NodeId a = t.node(2, 2);
  ASSERT_TRUE(t.kill_link(a, Port::kEast));
  t.rebuild_routes();
  // Every pair stays connected (a mesh minus one link is still connected)
  // and no route crosses the dead wire.
  for (NodeId src = 0; src < t.num_nodes(); ++src) {
    for (NodeId dst = 0; dst < t.num_nodes(); ++dst) {
      ASSERT_GE(walk_route(t, src, dst, a, Port::kEast), 0)
          << "severed " << src << " -> " << dst;
    }
  }
}

TEST(AdaptiveRouting, DeadRouterBecomesUnreachable) {
  Topology t(TopologyKind::kTorus, 4, 4, RoutingAlgorithm::kAdaptive);
  ASSERT_TRUE(t.kill_router(9));
  t.rebuild_routes();
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    if (n == 9) continue;
    EXPECT_FALSE(t.reachable(n, 9));
    EXPECT_FALSE(t.reachable(9, n));
    for (NodeId m = 0; m < t.num_nodes(); ++m) {
      if (m == 9 || n == 9) continue;
      EXPECT_TRUE(t.reachable(n, m));  // survivors stay fully connected
    }
  }
}

TEST(DorRouting, SeveredXyPairsAreUnreachableNotMisrouted) {
  // xy is single-path: a pair whose dimension-ordered route crosses the
  // dead link is marked unreachable (the NI refuses such packets) instead
  // of being silently misrouted.
  Topology t(TopologyKind::kMesh, 4, 4, RoutingAlgorithm::kXY);
  ASSERT_TRUE(t.kill_link(t.node(1, 1), Port::kEast));
  t.rebuild_routes();
  // (0,1) -> (3,1) goes East along y=1 straight through the dead wire.
  EXPECT_FALSE(t.reachable(t.node(0, 1), t.node(3, 1)));
  // (1,0) -> (1,3) never touches it.
  EXPECT_TRUE(t.reachable(t.node(1, 0), t.node(1, 3)));
  ASSERT_GT(walk_route(t, t.node(1, 0), t.node(1, 3), t.node(1, 1),
                       Port::kEast),
            0);
}

// -------------------------------------------------- network-level checks

TEST(HardFaults, ScheduleValidatesSpecs) {
  NocConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  {
    Network net(cfg, 1);
    // Edge of the mesh: node 3 has no East link.
    EXPECT_THROW(net.schedule_hard_faults(parse_hard_faults("link:3:E")),
                 std::invalid_argument);
    EXPECT_THROW(net.schedule_hard_faults(parse_hard_faults("router:16")),
                 std::invalid_argument);
  }
  {
    NocConfig wf = cfg;
    wf.routing = RoutingAlgorithm::kWestFirst;
    Network net(wf, 1);
    EXPECT_THROW(net.schedule_hard_faults(parse_hard_faults("link:5:E")),
                 std::invalid_argument);
  }
}

SimOptions faulted_options(const char* spec, std::uint64_t seed = 5) {
  SimOptions opt;
  opt.policy = PolicyKind::kStaticArqEcc;
  opt.seed = seed;
  opt.noc.mesh_width = 4;
  opt.noc.mesh_height = 4;
  opt.pretrain_cycles = 0;
  opt.warmup_cycles = 0;
  opt.audit = true;
  opt.audit_interval = 4;
  opt.hard_faults = parse_hard_faults(spec);
  return opt;
}

SimResult run_uniform(const SimOptions& opt, std::uint64_t packets = 1500) {
  Simulator sim(opt);
  SyntheticTraffic::Options o;
  o.injection_rate = 0.05;
  o.total_packets = packets;
  SyntheticTraffic gen(MeshTopology(opt.noc), o, opt.seed);
  return sim.run(gen);
}

TEST(HardFaults, StaticDeadLinkOnXyMeshDrainsAudited) {
  const SimOptions opt = faulted_options("link:5:E");
  const SimResult r = run_uniform(opt);
  EXPECT_TRUE(r.drained);
  EXPECT_GT(r.packets_delivered, 0u);
  EXPECT_EQ(r.packets_delivered, r.packets_injected);
  // xy severs some pairs: those packets are refused at the source.
  EXPECT_GT(r.unreachable_drops, 0u);
}

TEST(HardFaults, StaticDeadLinksOnAdaptiveTorusDeliverEverything) {
  SimOptions opt = faulted_options("link:5:E, link:10:N, link:0:W");
  opt.noc.topology = TopologyKind::kTorus;
  opt.noc.routing = RoutingAlgorithm::kAdaptive;
  const SimResult r = run_uniform(opt);
  EXPECT_TRUE(r.drained);
  // Adaptive routing keeps the torus connected: nothing is refused.
  EXPECT_EQ(r.unreachable_drops, 0u);
  EXPECT_GT(r.packets_delivered, 0u);
  EXPECT_EQ(r.packets_delivered, r.packets_injected);
}

TEST(HardFaults, StaticDeadRouterDrainsAudited) {
  SimOptions opt = faulted_options("router:6");
  opt.noc.routing = RoutingAlgorithm::kAdaptive;
  const SimResult r = run_uniform(opt);
  EXPECT_TRUE(r.drained);
  EXPECT_GT(r.packets_delivered, 0u);
  EXPECT_EQ(r.packets_delivered, r.packets_injected);
  // Traffic to/from the dead router is refused at generation time.
  EXPECT_GT(r.unreachable_drops, 0u);
}

// ---------------------------------------------------------- determinism

bool same_result(const SimResult& a, const SimResult& b) {
  return a.execution_cycles == b.execution_cycles &&
         a.total_cycles == b.total_cycles && a.drained == b.drained &&
         a.packets_injected == b.packets_injected &&
         a.packets_delivered == b.packets_delivered &&
         a.flits_delivered == b.flits_delivered &&
         a.enqueue_drops == b.enqueue_drops &&
         a.unreachable_drops == b.unreachable_drops &&
         a.retransmitted_flits == b.retransmitted_flits &&
         a.retx_flits_e2e == b.retx_flits_e2e &&
         a.retx_flits_hop == b.retx_flits_hop &&
         a.avg_packet_latency == b.avg_packet_latency &&
         a.p99_latency == b.p99_latency;
}

TEST(HardFaults, MidRunKillsAreBitIdenticalAcrossSimThreads) {
  // Link kill at cycle 400 and a router kill at 900, both mid-traffic on an
  // adaptive torus; teardown + reroute + e2e repair must land identically
  // for every thread count.
  SimOptions opt = faulted_options("link:5:E@400, router:10@900", 7);
  opt.noc.topology = TopologyKind::kTorus;
  opt.noc.routing = RoutingAlgorithm::kAdaptive;
  SimResult serial;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    SimOptions o = opt;
    o.sim_threads = threads;
    const SimResult r = run_uniform(o, 2000);
    EXPECT_TRUE(r.drained);
    EXPECT_GT(r.packets_delivered, 0u);
    if (threads == 1u) {
      serial = r;
    } else {
      EXPECT_TRUE(same_result(serial, r)) << "sim_threads=" << threads;
    }
  }
}

TEST(HardFaults, MidRunKillOnXyMeshIsBitIdentical) {
  // Dimension-ordered routing takes the purge-heavy path (severed pairs,
  // e2e abandonment); cover it across thread counts too.
  const SimOptions opt = faulted_options("link:9:N@500", 13);
  SimResult serial;
  for (const unsigned threads : {1u, 4u}) {
    SimOptions o = opt;
    o.sim_threads = threads;
    const SimResult r = run_uniform(o, 2000);
    EXPECT_TRUE(r.drained);
    if (threads == 1u) {
      serial = r;
    } else {
      EXPECT_TRUE(same_result(serial, r)) << "sim_threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace rlftnoc
