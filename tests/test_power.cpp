#include "power/orion_lite.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rlftnoc {
namespace {

TEST(Power, StartsEmpty) {
  PowerModel m(4);
  EXPECT_EQ(m.total_dynamic_energy_pj(), 0.0);
  EXPECT_EQ(m.total_leakage_energy_pj(), 0.0);
  EXPECT_EQ(m.window_dynamic_energy_pj(0), 0.0);
}

TEST(Power, InvalidRouterCountThrows) {
  EXPECT_THROW(PowerModel(0), std::invalid_argument);
}

TEST(Power, RecordAccumulatesEnergy) {
  PowerModel m(2);
  m.record(0, PowerEvent::kBufferWrite, 10);
  const double expected =
      10.0 * m.params().energy_pj[static_cast<std::size_t>(PowerEvent::kBufferWrite)];
  EXPECT_DOUBLE_EQ(m.total_dynamic_energy_pj(0), expected);
  EXPECT_DOUBLE_EQ(m.total_dynamic_energy_pj(1), 0.0);
  EXPECT_DOUBLE_EQ(m.total_dynamic_energy_pj(), expected);
}

TEST(Power, WindowResetKeepsTotals) {
  PowerModel m(1);
  m.record(0, PowerEvent::kCrossbar, 5);
  EXPECT_GT(m.window_dynamic_energy_pj(0), 0.0);
  m.reset_window(0);
  EXPECT_DOUBLE_EQ(m.window_dynamic_energy_pj(0), 0.0);
  EXPECT_GT(m.total_dynamic_energy_pj(0), 0.0);
}

TEST(Power, ResetTotalsClearsEverything) {
  PowerModel m(1);
  m.record(0, PowerEvent::kLinkTraversal, 3);
  m.integrate_leakage(0, 80.0, 1000);
  m.reset_totals();
  EXPECT_DOUBLE_EQ(m.total_dynamic_energy_pj(), 0.0);
  EXPECT_DOUBLE_EQ(m.total_leakage_energy_pj(), 0.0);
  EXPECT_DOUBLE_EQ(m.window_dynamic_energy_pj(0), 0.0);
}

TEST(Power, WindowPowerConversion) {
  PowerModel m(1);
  m.record(0, PowerEvent::kLinkTraversal, 1000);
  // 1000 events over 1000 cycles at 2 GHz.
  const double pj = 1000.0 * m.params().energy_pj[static_cast<std::size_t>(
                                 PowerEvent::kLinkTraversal)];
  const double seconds = 1000.0 / m.params().clock_hz;
  EXPECT_NEAR(m.window_dynamic_power_w(0, 1000), pj * 1e-12 / seconds, 1e-9);
  EXPECT_EQ(m.window_dynamic_power_w(0, 0), 0.0);
}

TEST(Power, LeakageGrowsExponentiallyWithTemperature) {
  PowerModel m(1);
  const double at50 = m.leakage_watts(50.0);
  const double at80 = m.leakage_watts(80.0);
  const double at110 = m.leakage_watts(110.0);
  EXPECT_NEAR(at50, m.params().leak_w_at_ref, 1e-12);
  EXPECT_GT(at80, at50);
  // Constant ratio per 30 C step (exponential).
  EXPECT_NEAR(at110 / at80, at80 / at50, 1e-9);
}

TEST(Power, LeakageExponentClamped) {
  PowerModel m(1);
  EXPECT_DOUBLE_EQ(m.leakage_watts(150.0), m.leakage_watts(1000.0));
}

TEST(Power, LeakageIntegration) {
  PowerModel m(1);
  m.integrate_leakage(0, 50.0, 2'000'000'000ULL);  // exactly one second
  EXPECT_NEAR(m.total_leakage_energy_pj(0), m.params().leak_w_at_ref * 1e12, 1.0);
}

TEST(Power, EventCounting) {
  PowerModel m(3);
  m.record(0, PowerEvent::kEccEncode, 2);
  m.record(2, PowerEvent::kEccEncode, 3);
  m.record(1, PowerEvent::kEccDecode, 7);
  EXPECT_EQ(m.total_event_count(PowerEvent::kEccEncode), 5u);
  EXPECT_EQ(m.total_event_count(PowerEvent::kEccDecode), 7u);
  EXPECT_EQ(m.total_event_count(PowerEvent::kAckFlit), 0u);
}

TEST(Power, EventNamesAreDistinct) {
  for (std::size_t i = 0; i < kNumPowerEvents; ++i) {
    for (std::size_t j = i + 1; j < kNumPowerEvents; ++j) {
      EXPECT_STRNE(power_event_name(static_cast<PowerEvent>(i)),
                   power_event_name(static_cast<PowerEvent>(j)));
    }
  }
}

// Out-of-range router indices are an RLFTNOC_CHECK invariant violation (the
// record path runs per power event per cycle, so it uses unchecked indexing
// with the always-on invariant layer instead of throwing .at()).
#if RLFTNOC_CHECK_ENABLED
using PowerDeathTest = ::testing::Test;

TEST(PowerDeathTest, OutOfRangeRouterAborts) {
  PowerModel m(2);
  EXPECT_DEATH(m.record(5, PowerEvent::kCrossbar), "RLFTNOC_CHECK failed");
  EXPECT_DEATH(m.window_dynamic_energy_pj(-1), "RLFTNOC_CHECK failed");
}
#endif

TEST(Power, PerFlitHopCostCalibration) {
  // One hop of a flit: buffer write + read + arbitration + crossbar + link.
  // The sum must sit in the single-digit pJ range that makes the paper's
  // 13.3 pJ/flit router-energy (Section VI-B arithmetic) plausible over an
  // average ~2-hop journey.
  PowerParams p;
  const double hop =
      p.energy_pj[static_cast<std::size_t>(PowerEvent::kBufferWrite)] +
      p.energy_pj[static_cast<std::size_t>(PowerEvent::kBufferRead)] +
      p.energy_pj[static_cast<std::size_t>(PowerEvent::kArbitration)] +
      p.energy_pj[static_cast<std::size_t>(PowerEvent::kCrossbar)] +
      p.energy_pj[static_cast<std::size_t>(PowerEvent::kLinkTraversal)];
  EXPECT_GT(hop, 4.0);
  EXPECT_LT(hop, 10.0);
}

}  // namespace
}  // namespace rlftnoc
