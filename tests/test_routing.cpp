#include "noc/routing.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "noc/network.h"
#include "noc/ni.h"
#include "traffic/traffic.h"

namespace rlftnoc {
namespace {

const MeshTopology kTopo(6, 6);

TEST(Routing, NameRoundTrip) {
  for (const RoutingAlgorithm a :
       {RoutingAlgorithm::kXY, RoutingAlgorithm::kYX, RoutingAlgorithm::kWestFirst}) {
    EXPECT_EQ(routing_from_name(routing_name(a)), a);
  }
  EXPECT_THROW(routing_from_name("spiral"), std::invalid_argument);
}

TEST(Routing, SelfRouteIsLocal) {
  std::array<Port, 2> cand{};
  for (const RoutingAlgorithm a :
       {RoutingAlgorithm::kXY, RoutingAlgorithm::kYX, RoutingAlgorithm::kWestFirst}) {
    EXPECT_EQ(route_candidates(a, kTopo, 7, 7, cand), 1);
    EXPECT_EQ(cand[0], Port::kLocal);
  }
}

TEST(Routing, YxRoutesYFirst) {
  std::array<Port, 2> cand{};
  ASSERT_EQ(route_candidates(RoutingAlgorithm::kYX, kTopo, kTopo.node(0, 0),
                             kTopo.node(3, 4), cand),
            1);
  EXPECT_EQ(cand[0], Port::kNorth);
  ASSERT_EQ(route_candidates(RoutingAlgorithm::kYX, kTopo, kTopo.node(0, 4),
                             kTopo.node(3, 4), cand),
            1);
  EXPECT_EQ(cand[0], Port::kEast);
}

TEST(Routing, WestFirstForcesWestward) {
  std::array<Port, 2> cand{};
  ASSERT_EQ(route_candidates(RoutingAlgorithm::kWestFirst, kTopo, kTopo.node(4, 1),
                             kTopo.node(1, 4), cand),
            1);
  EXPECT_EQ(cand[0], Port::kWest);
}

TEST(Routing, WestFirstOffersTwoCandidatesWhenDiagonalEast) {
  std::array<Port, 2> cand{};
  const int n = route_candidates(RoutingAlgorithm::kWestFirst, kTopo,
                                 kTopo.node(1, 1), kTopo.node(4, 4), cand);
  ASSERT_EQ(n, 2);
  EXPECT_EQ(cand[0], Port::kEast);
  EXPECT_EQ(cand[1], Port::kNorth);
}

/// Property sweep: every algorithm delivers every pair minimally when the
/// preferred candidate is always taken.
class RoutingMinimality : public ::testing::TestWithParam<RoutingAlgorithm> {};

TEST_P(RoutingMinimality, AllCandidatesAreMinimal) {
  std::array<Port, 2> cand{};
  for (NodeId src = 0; src < kTopo.num_nodes(); ++src) {
    for (NodeId dst = 0; dst < kTopo.num_nodes(); ++dst) {
      if (src == dst) continue;
      const int n = route_candidates(GetParam(), kTopo, src, dst, cand);
      ASSERT_GE(n, 1);
      for (int k = 0; k < n; ++k) {
        const NodeId next = kTopo.neighbor(src, cand[static_cast<std::size_t>(k)]);
        ASSERT_NE(next, kInvalidNode);
        // Every candidate must reduce the distance by exactly one.
        EXPECT_EQ(kTopo.distance(next, dst), kTopo.distance(src, dst) - 1);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, RoutingMinimality,
                         ::testing::Values(RoutingAlgorithm::kXY,
                                           RoutingAlgorithm::kYX,
                                           RoutingAlgorithm::kWestFirst),
                         [](const auto& info) {
                           return std::string(routing_name(info.param));
                         });

TEST(Routing, WestFirstNeverTurnsIntoWest) {
  // The turn-model invariant: once a packet has moved east/north/south it
  // never needs a westward hop — i.e. candidates never include West unless
  // the destination column is west of the current column.
  std::array<Port, 2> cand{};
  for (NodeId src = 0; src < kTopo.num_nodes(); ++src) {
    for (NodeId dst = 0; dst < kTopo.num_nodes(); ++dst) {
      const int n = route_candidates(RoutingAlgorithm::kWestFirst, kTopo, src, dst, cand);
      const bool dst_is_west = kTopo.coord(dst).x < kTopo.coord(src).x;
      for (int k = 0; k < n; ++k) {
        if (cand[static_cast<std::size_t>(k)] == Port::kWest) {
          EXPECT_TRUE(dst_is_west);
          EXPECT_EQ(n, 1);  // westward movement is exclusive
        }
      }
    }
  }
}

/// End-to-end: the full network delivers and drains under every routing
/// algorithm, with faults and mixed modes — the deadlock-freedom test.
class RoutingNetworkSweep : public ::testing::TestWithParam<RoutingAlgorithm> {};

TEST_P(RoutingNetworkSweep, DeliversUnderLoadAndFaults) {
  NocConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.routing = GetParam();
  Network net(cfg, 1);
  for (NodeId r = 0; r < 16; ++r) {
    net.router(r).set_mode(OpMode::kMode1);
    for (const Port p : kAllPorts) {
      if (p != Port::kLocal && net.out_channel(r, p) != nullptr)
        net.set_link_error_prob(r, p, LinkErrorProb{0.02, 1e-12});
    }
  }
  SyntheticTraffic::Options o;
  o.injection_rate = 0.10;
  o.total_packets = 3000;
  SyntheticTraffic gen(MeshTopology(cfg), o, 5);
  std::vector<Packet> batch;
  while (!gen.exhausted() || !net.drained()) {
    batch.clear();
    gen.tick(net.now(), batch);
    for (auto& p : batch) net.ni(p.src).enqueue_packet(std::move(p));
    net.step();
    ASSERT_LT(net.now(), 500000u) << "possible deadlock under "
                                  << routing_name(GetParam());
  }
  EXPECT_EQ(net.metrics().packets_delivered, 3000u);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, RoutingNetworkSweep,
                         ::testing::Values(RoutingAlgorithm::kXY,
                                           RoutingAlgorithm::kYX,
                                           RoutingAlgorithm::kWestFirst),
                         [](const auto& info) {
                           return std::string(routing_name(info.param));
                         });

TEST(Routing, WestFirstAvoidsCongestedCandidate) {
  // Under transpose traffic the adaptive candidate choice should spread
  // load across the two minimal quadrant paths, reducing peak latency vs
  // deterministic XY at high load.
  auto mean_latency = [](RoutingAlgorithm alg) {
    NocConfig cfg;
    cfg.routing = alg;
    Network net(cfg, 1);
    SyntheticTraffic::Options o;
    o.pattern = TrafficPattern::kTranspose;
    o.injection_rate = 0.20;
    o.total_packets = 12000;
    SyntheticTraffic gen(MeshTopology(cfg), o, 5);
    std::vector<Packet> batch;
    while ((!gen.exhausted() || !net.drained()) && net.now() < 500000) {
      batch.clear();
      gen.tick(net.now(), batch);
      for (auto& p : batch) net.ni(p.src).enqueue_packet(std::move(p));
      net.step();
    }
    return net.metrics().packet_latency.mean();
  };
  // Not asserting a strict win (transpose is pathological either way), but
  // the adaptive algorithm must at least stay in the same regime.
  EXPECT_LT(mean_latency(RoutingAlgorithm::kWestFirst),
            3.0 * mean_latency(RoutingAlgorithm::kXY));
}

TEST(Routing, ConfigParsesRouting) {
  const Config cfg = Config::from_string("noc.routing = westfirst\n");
  const NocConfig noc = NocConfig::from_config(cfg);
  EXPECT_EQ(noc.routing, RoutingAlgorithm::kWestFirst);
  const Config bad = Config::from_string("noc.routing = zigzag\n");
  EXPECT_THROW(NocConfig::from_config(bad), std::invalid_argument);
}

}  // namespace
}  // namespace rlftnoc
