// Determinism contract of the phase-parallel network stepper: any
// SimOptions::sim_threads value must produce bit-identical results. Shards
// are contiguous node ranges, receive/execute run data-parallel, and every
// cross-shard effect is staged per shard and merged in canonical node order
// after each phase barrier, so the FP accumulation order, the e2e tie-break
// sequence stream and the trace ring content never depend on thread count.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "noc/audit.h"
#include "noc/network.h"
#include "sim/options_io.h"
#include "sim/simulator.h"
#include "traffic/traffic.h"

namespace rlftnoc {
namespace {

NocConfig small_mesh() {
  NocConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  return cfg;
}

// ---------------------------------------------------------------------------
// Shard partition structure
// ---------------------------------------------------------------------------

TEST(ParallelStep, ShardPartitionFollowsThreadCount) {
  Network net(small_mesh(), /*seed=*/3);
  EXPECT_EQ(net.sim_threads(), 1u);
  EXPECT_EQ(net.shard_count(), 1u);

  net.set_sim_threads(4);
  EXPECT_EQ(net.sim_threads(), 4u);
  EXPECT_EQ(net.shard_count(), 4u);

  // More threads than nodes: one shard per node at most.
  net.set_sim_threads(64);
  EXPECT_EQ(net.shard_count(), 16u);

  // 0 = one per hardware thread, never less than one shard.
  net.set_sim_threads(0);
  EXPECT_GE(net.sim_threads(), 1u);
  EXPECT_GE(net.shard_count(), 1u);

  net.set_sim_threads(1);
  EXPECT_EQ(net.shard_count(), 1u);
}

TEST(ParallelStep, RebindingThreadsMidRunKeepsAuditClean) {
  const NocConfig cfg = small_mesh();
  Network net(cfg, /*seed=*/3);
  NetworkAuditor auditor;
  for (const unsigned t : {1u, 3u, 4u, 8u, 1u}) {
    net.set_sim_threads(t);
    EXPECT_TRUE(auditor.run(net).empty()) << "threads=" << t;
  }
}

// ---------------------------------------------------------------------------
// Network-level bit-identity: identical traffic, different shard counts
// ---------------------------------------------------------------------------

/// Drives one fault-heavy mode-2 run to drain and returns the network for
/// inspection. Everything (traffic, faults, seeds) is a pure function of
/// `seed`, so two calls differing only in `sim_threads` must agree exactly.
std::unique_ptr<Network> run_fault_heavy(unsigned sim_threads,
                                         std::uint64_t seed,
                                         EventTracer* tracer = nullptr) {
  const NocConfig cfg = small_mesh();
  auto net = std::make_unique<Network>(cfg, seed);
  net->set_sim_threads(sim_threads);
  if (tracer != nullptr) net->set_tracer(tracer);

  // Mode 2 exercises the whole staged-effect surface: ECC retention, NACK
  // resends (staged ack pushes), proactive duplicates, CRC packet failures
  // (staged e2e responses) and deliveries (staged FP latency samples).
  for (NodeId n = 0; n < cfg.num_nodes(); ++n) {
    net->router(n).set_mode(OpMode::kMode2);
    for (const Port p : {Port::kNorth, Port::kSouth, Port::kEast, Port::kWest}) {
      if (net->out_channel(n, p) != nullptr)
        net->set_link_error_prob(n, p, LinkErrorProb{0.12, 0.004});
    }
  }

  Rng traffic_rng(seed, "parallel-step-traffic");
  PacketId next_id = 1;
  for (int i = 0; i < 400; ++i) {
    const auto src = static_cast<NodeId>(
        traffic_rng.next_u64() % static_cast<std::uint64_t>(cfg.num_nodes()));
    const auto dst = static_cast<NodeId>(
        traffic_rng.next_u64() % static_cast<std::uint64_t>(cfg.num_nodes()));
    if (src == dst) continue;
    net->ni(src).enqueue_packet(make_packet(next_id++, src, dst,
                                            cfg.flits_per_packet, 0,
                                            net->payload_rng()));
  }

  for (Cycle c = 0; c < 20000 && !net->drained(); ++c) net->step();
  return net;
}

void expect_networks_identical(const Network& a, const Network& b) {
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.drained(), b.drained());

  const NetworkMetrics& ma = a.metrics();
  const NetworkMetrics& mb = b.metrics();
  EXPECT_EQ(ma.packets_injected, mb.packets_injected);
  EXPECT_EQ(ma.packets_delivered, mb.packets_delivered);
  EXPECT_EQ(ma.flits_delivered, mb.flits_delivered);
  EXPECT_EQ(ma.retx_flits_e2e, mb.retx_flits_e2e);
  EXPECT_EQ(ma.retx_flits_hop, mb.retx_flits_hop);
  EXPECT_EQ(ma.dup_flits, mb.dup_flits);
  EXPECT_EQ(ma.crc_packet_failures, mb.crc_packet_failures);
  EXPECT_EQ(ma.packet_e2e_retransmissions, mb.packet_e2e_retransmissions);
  EXPECT_EQ(ma.last_delivery_cycle, mb.last_delivery_cycle);
  // Bit-exact FP: the merge replays latency samples in the serial order, so
  // the accumulator state must match to the last ulp, not approximately.
  EXPECT_EQ(ma.packet_latency.count(), mb.packet_latency.count());
  EXPECT_EQ(ma.packet_latency.sum(), mb.packet_latency.sum());
  EXPECT_EQ(ma.packet_latency.mean(), mb.packet_latency.mean());
  EXPECT_EQ(ma.packet_latency.variance(), mb.packet_latency.variance());

  const int n = a.config().num_nodes();
  for (NodeId r = 0; r < n; ++r) {
    SCOPED_TRACE("router " + std::to_string(r));
    const RouterCounters& ra = a.router(r).counters();
    const RouterCounters& rb = b.router(r).counters();
    for (std::size_t p = 0; p < kNumPorts; ++p) {
      EXPECT_EQ(ra.flits_in[p], rb.flits_in[p]);
      EXPECT_EQ(ra.flits_out[p], rb.flits_out[p]);
      EXPECT_EQ(ra.nacks_sent[p], rb.nacks_sent[p]);
      EXPECT_EQ(ra.acks_received[p], rb.acks_received[p]);
    }
    EXPECT_EQ(ra.hop_retransmissions, rb.hop_retransmissions);
    EXPECT_EQ(ra.preretx_duplicates, rb.preretx_duplicates);
    EXPECT_EQ(ra.dup_discards, rb.dup_discards);
    EXPECT_EQ(ra.ecc_corrections, rb.ecc_corrections);
    EXPECT_EQ(ra.ecc_uncorrectable, rb.ecc_uncorrectable);

    const NiCounters& na = a.ni(r).counters();
    const NiCounters& nb = b.ni(r).counters();
    EXPECT_EQ(na.packets_injected, nb.packets_injected);
    EXPECT_EQ(na.packets_delivered, nb.packets_delivered);
    EXPECT_EQ(na.packets_reinjected, nb.packets_reinjected);
    EXPECT_EQ(na.flits_sent, nb.flits_sent);
    EXPECT_EQ(na.flits_ejected, nb.flits_ejected);
    EXPECT_EQ(na.crc_flit_failures, nb.crc_flit_failures);
  }

  // Idle-skip decisions and merged-effect counts are functions of the
  // simulated traffic alone, so they too must be thread-count-invariant.
  EXPECT_EQ(a.router_steps_skipped(), b.router_steps_skipped());
  EXPECT_EQ(a.ni_steps_skipped(), b.ni_steps_skipped());
  EXPECT_EQ(a.staged_effects_merged(), b.staged_effects_merged());
}

TEST(ParallelStep, NetworkStepBitIdenticalAcrossShardCounts) {
  const auto serial = run_fault_heavy(/*sim_threads=*/1, /*seed=*/23);
  ASSERT_TRUE(serial->drained());
  ASSERT_GT(serial->metrics().packets_delivered, 0u);
  // The run must exercise the staged ARQ paths to mean anything.
  ASSERT_GT(serial->metrics().retx_flits_hop, 0u);
  ASSERT_GT(serial->metrics().dup_flits, 0u);

  for (const unsigned t : {2u, 4u, 8u}) {
    SCOPED_TRACE("sim_threads=" + std::to_string(t));
    const auto threaded = run_fault_heavy(t, /*seed=*/23);
    expect_networks_identical(*serial, *threaded);
  }
}

TEST(ParallelStep, TraceStreamIdenticalAcrossShardCounts) {
  // The per-shard trace stages must merge back into the exact serial event
  // order (all routers node-ascending, then all NIs node-ascending, per
  // phase) — including the ring's drop accounting.
  EventTracer serial_tracer(4096);
  const auto serial = run_fault_heavy(1, /*seed=*/29, &serial_tracer);
  ASSERT_GT(serial_tracer.size(), 0u);

  for (const unsigned t : {2u, 4u}) {
    SCOPED_TRACE("sim_threads=" + std::to_string(t));
    EventTracer tracer(4096);
    const auto threaded = run_fault_heavy(t, /*seed=*/29, &tracer);
    expect_networks_identical(*serial, *threaded);
    ASSERT_EQ(tracer.size(), serial_tracer.size());
    EXPECT_EQ(tracer.dropped(), serial_tracer.dropped());
    for (std::size_t i = 0; i < tracer.size(); ++i) {
      const TraceEvent& ea = serial_tracer.at(i);
      const TraceEvent& eb = tracer.at(i);
      EXPECT_EQ(ea.kind, eb.kind) << "event " << i;
      EXPECT_EQ(ea.cycle, eb.cycle) << "event " << i;
      EXPECT_EQ(ea.node, eb.node) << "event " << i;
      EXPECT_EQ(ea.port, eb.port) << "event " << i;
      EXPECT_EQ(ea.arg, eb.arg) << "event " << i;
      EXPECT_EQ(ea.value, eb.value) << "event " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Per-cycle audit under threaded fault-heavy stepping
// ---------------------------------------------------------------------------

TEST(ParallelStep, FaultHeavyMode2AuditsCleanEveryCycleThreaded) {
  const NocConfig cfg = small_mesh();
  Network net(cfg, /*seed=*/31);
  net.set_sim_threads(4);

  for (NodeId n = 0; n < cfg.num_nodes(); ++n) {
    net.router(n).set_mode(OpMode::kMode2);
    for (const Port p : {Port::kNorth, Port::kSouth, Port::kEast, Port::kWest}) {
      if (net.out_channel(n, p) != nullptr)
        net.set_link_error_prob(n, p, LinkErrorProb{0.08, 0.004});
    }
  }

  Rng traffic_rng(31, "parallel-audit-traffic");
  PacketId next_id = 1;
  for (int i = 0; i < 60; ++i) {
    const auto src = static_cast<NodeId>(
        traffic_rng.next_u64() % static_cast<std::uint64_t>(cfg.num_nodes()));
    const auto dst = static_cast<NodeId>(
        traffic_rng.next_u64() % static_cast<std::uint64_t>(cfg.num_nodes()));
    if (src == dst) continue;
    net.ni(src).enqueue_packet(make_packet(next_id++, src, dst,
                                           cfg.flits_per_packet, 0,
                                           net.payload_rng()));
  }

  NetworkAuditor auditor;
  for (Cycle c = 0; c < 20000 && !net.drained(); ++c) {
    net.step();
    for (const AuditViolation& v : auditor.run(net))
      ADD_FAILURE() << v.to_string();
  }
  EXPECT_TRUE(net.drained());
  EXPECT_GT(auditor.clean_passes(), 0u);
}

// ---------------------------------------------------------------------------
// Simulator-level bit-identity (full pipeline: controller, RL, telemetry)
// ---------------------------------------------------------------------------

SimOptions sim_base(unsigned sim_threads) {
  SimOptions opt;
  opt.seed = 13;
  opt.noc = small_mesh();
  opt.policy = PolicyKind::kRl;  // adaptive: modes actually change mid-run
  opt.sim_threads = sim_threads;
  opt.pretrain_cycles = 3000;
  opt.warmup_cycles = 1000;
  opt.error_scale = 3.0;  // fault-heavy so every ARQ/CRC path fires
  return opt;
}

SyntheticTraffic::Options sim_traffic() {
  SyntheticTraffic::Options t;
  t.total_packets = 400;
  t.injection_rate = 0.08;
  return t;
}

void expect_results_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.execution_cycles, b.execution_cycles);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.avg_packet_latency, b.avg_packet_latency);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p95_latency, b.p95_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.packets_injected, b.packets_injected);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.flits_delivered, b.flits_delivered);
  EXPECT_EQ(a.enqueue_drops, b.enqueue_drops);
  EXPECT_EQ(a.retransmitted_flits, b.retransmitted_flits);
  EXPECT_EQ(a.retx_flits_e2e, b.retx_flits_e2e);
  EXPECT_EQ(a.retx_flits_hop, b.retx_flits_hop);
  EXPECT_EQ(a.dup_flits, b.dup_flits);
  EXPECT_EQ(a.crc_packet_failures, b.crc_packet_failures);
  EXPECT_EQ(a.dynamic_energy_pj, b.dynamic_energy_pj);
  EXPECT_EQ(a.leakage_energy_pj, b.leakage_energy_pj);
  EXPECT_EQ(a.total_energy_pj, b.total_energy_pj);
  EXPECT_EQ(a.avg_temperature_c, b.avg_temperature_c);
  EXPECT_EQ(a.max_temperature_c, b.max_temperature_c);
  for (std::size_t m = 0; m < kNumOpModes; ++m)
    EXPECT_EQ(a.mode_fraction[m], b.mode_fraction[m]);
  EXPECT_EQ(a.rl_table_entries, b.rl_table_entries);
}

TEST(ParallelStep, SimulatorResultsBitIdenticalAcrossThreadCounts) {
  SimResult serial;
  {
    Simulator sim(sim_base(1));
    SyntheticTraffic gen(MeshTopology(small_mesh()), sim_traffic(), 13);
    serial = sim.run(gen);
  }
  EXPECT_TRUE(serial.drained);
  EXPECT_GT(serial.packets_delivered, 0u);
  EXPECT_GT(serial.retransmitted_flits, 0u);

  for (const unsigned t : {2u, 4u, 8u}) {
    SCOPED_TRACE("sim_threads=" + std::to_string(t));
    Simulator sim(sim_base(t));
    EXPECT_EQ(sim.network().shard_count(), static_cast<std::size_t>(t));
    SyntheticTraffic gen(MeshTopology(small_mesh()), sim_traffic(), 13);
    const SimResult threaded = sim.run(gen);
    expect_results_identical(serial, threaded);
  }
}

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::filesystem::path fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(ParallelStep, TelemetryExportBytesIdenticalAcrossThreadCounts) {
  // The acceptance-criterion form: the complete exported file set (trace
  // JSON, metrics TSV, heatmaps, manifest) is byte-identical for any
  // sim_threads value.
  const auto run_traced = [](unsigned threads, const std::filesystem::path& d) {
    SimOptions opt = sim_base(threads);
    opt.telemetry.enabled = true;
    opt.telemetry.out_dir = d.string();
    opt.telemetry.metrics_interval = 500;
    Simulator sim(opt);
    SyntheticTraffic gen(MeshTopology(small_mesh()), sim_traffic(), 13);
    const SimResult res = sim.run(gen);
    EXPECT_GT(res.packets_delivered, 0u);
  };

  const std::filesystem::path dir1 = fresh_dir("rlftnoc_simthreads1");
  run_traced(1, dir1);
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir1))
    names.push_back(entry.path().filename().string());
  ASSERT_FALSE(names.empty());

  for (const unsigned t : {4u, 8u}) {
    const std::filesystem::path dirt =
        fresh_dir("rlftnoc_simthreads" + std::to_string(t));
    run_traced(t, dirt);
    for (const std::string& name : names) {
      ASSERT_TRUE(std::filesystem::exists(dirt / name)) << name;
      EXPECT_EQ(read_file(dir1 / name), read_file(dirt / name))
          << name << " differs between sim_threads=1 and sim_threads=" << t;
    }
  }
}

TEST(ParallelStep, SimulatorAuditsCleanWithThreadsAndFaults) {
  SimOptions opt = sim_base(4);
  opt.policy = PolicyKind::kStaticArqEcc;
  opt.pretrain_cycles = 0;
  opt.warmup_cycles = 1000;
  opt.audit = true;
  Simulator sim(opt);
  ASSERT_NE(sim.auditor(), nullptr);
  SyntheticTraffic gen(MeshTopology(small_mesh()), sim_traffic(), 13);
  SimResult res;
  ASSERT_NO_THROW(res = sim.run(gen));
  EXPECT_TRUE(res.drained);
  EXPECT_GT(sim.auditor()->clean_passes(), 100u);
}

// ---------------------------------------------------------------------------
// Options plumbing
// ---------------------------------------------------------------------------

TEST(ParallelStep, SimThreadsConfigKeyRoundTrips) {
  Config cfg;
  cfg.set("sim_threads", "4");
  EXPECT_EQ(sim_options_from_config(cfg).sim_threads, 4u);
  // Default stays serial.
  EXPECT_EQ(sim_options_from_config(Config{}).sim_threads, 1u);
}

}  // namespace
}  // namespace rlftnoc
