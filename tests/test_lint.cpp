// Tests for rlftnoc_lint: one seeded violation per rule under
// tests/lint_fixtures/, plus suppression, directive-error, sibling-header
// pairing, and baseline round-trip coverage. The fixture directory is passed
// in via RLFTNOC_LINT_FIXTURE_DIR so the tests run from any build dir.
#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lint/lint.h"

namespace {

using rlftnoc::lint::apply_baseline;
using rlftnoc::lint::Baseline;
using rlftnoc::lint::Finding;
using rlftnoc::lint::LintConfig;
using rlftnoc::lint::lint_file;
using rlftnoc::lint::lint_source;
using rlftnoc::lint::read_baseline;
using rlftnoc::lint::write_baseline;
using rlftnoc::lint::write_json;

LintConfig fixture_config() {
  LintConfig cfg;
  cfg.repo_root = RLFTNOC_LINT_FIXTURE_DIR;
  return cfg;
}

std::vector<Finding> lint_fixture(const std::string& name) {
  return lint_file(name, fixture_config());
}

std::vector<Finding> active(const std::vector<Finding>& fs) {
  std::vector<Finding> out;
  for (const auto& f : fs) {
    if (!f.suppressed && !f.baselined) out.push_back(f);
  }
  return out;
}

std::multiset<std::string> rules_of(const std::vector<Finding>& fs) {
  std::multiset<std::string> out;
  for (const auto& f : fs) out.insert(f.rule);
  return out;
}

std::vector<int> lines_of(const std::vector<Finding>& fs,
                          const std::string& rule) {
  std::vector<int> out;
  for (const auto& f : fs) {
    if (f.rule == rule) out.push_back(f.line);
  }
  return out;
}

TEST(LintRules, R1FlagsUnorderedIterationOnly) {
  const auto fs = lint_fixture("r1_unordered_iteration.cpp");
  const auto act = active(fs);
  EXPECT_EQ(rules_of(act), (std::multiset<std::string>{"R1", "R1", "R1"}));
  // Range-for over a member, an explicit iterator loop, and a range-for over
  // a using-alias type; the find()-based lookup must not be flagged.
  EXPECT_EQ(lines_of(act, "R1"), (std::vector<int>{20, 26, 34}));
}

TEST(LintRules, R2FlagsAmbientEntropySources) {
  const auto fs = lint_fixture("r2_ambient_entropy.cpp");
  const auto act = active(fs);
  EXPECT_EQ(rules_of(act), (std::multiset<std::string>{"R2", "R2", "R2", "R2"}));
  // random_device, rand(), time(), steady_clock — but not `time_budget`.
  EXPECT_EQ(lines_of(act, "R2"), (std::vector<int>{10, 15, 19, 23}));
}

TEST(LintRules, R3FlagsBareAssertButNotStaticAssert) {
  const auto fs = lint_fixture("r3_bare_assert.cpp");
  const auto act = active(fs);
  EXPECT_EQ(rules_of(act), (std::multiset<std::string>{"R3", "R3"}));
  // The <cassert> include and the assert() call; static_assert is exempt.
  EXPECT_EQ(lines_of(act, "R3"), (std::vector<int>{2, 7}));
}

TEST(LintRules, R4FlagsBannedContainersAndThrowingAt) {
  const auto fs = lint_fixture("r4_hot_path_containers.cpp");
  const auto act = active(fs);
  EXPECT_EQ(rules_of(act),
            (std::multiset<std::string>{"R4", "R4", "R4", "R4"}));
  // <deque> include, deque member, map member, .at() call; the std::vector
  // member and unchecked operator[] must not be flagged.
  EXPECT_EQ(lines_of(act, "R4"), (std::vector<int>{3, 9, 10, 15}));
}

TEST(LintRules, R5FlagsUnattestedFloatAccumulation) {
  const auto fs = lint_fixture("r5_float_accumulation.cpp");
  const auto act = active(fs);
  EXPECT_EQ(rules_of(act), (std::multiset<std::string>{"R5"}));
  // Only the unattested double += loop; the attested loop and the integer
  // accumulation are clean.
  EXPECT_EQ(lines_of(act, "R5"), (std::vector<int>{10}));
}

TEST(LintRules, SiblingHeaderMembersAreSeenByImplementationFile) {
  const auto fs = lint_fixture("sibling_members.cpp");
  const auto act = active(fs);
  ASSERT_EQ(act.size(), 1u);
  EXPECT_EQ(act[0].rule, "R1");
  EXPECT_EQ(act[0].line, 11);  // by_id_ is declared only in the .h
}

TEST(LintSuppression, InlineAllowSuppressesButStillReports) {
  const auto fs = lint_fixture("suppressed_ok.cpp");
  EXPECT_TRUE(active(fs).empty());
  // The violations are still *found* (R1, R2, the <cassert> include, and
  // the assert call), just marked suppressed — suppression must never hide
  // a finding from the report.
  EXPECT_EQ(rules_of(fs),
            (std::multiset<std::string>{"R1", "R2", "R3", "R3"}));
  for (const auto& f : fs) EXPECT_TRUE(f.suppressed) << f.rule;
}

TEST(LintSuppression, MalformedDirectivesAreR0AndUnsuppressible) {
  const auto fs = lint_fixture("bad_directive.cpp");
  const auto act = active(fs);
  // Unknown rule, missing reason, unknown directive — three R0 findings.
  EXPECT_EQ(rules_of(act), (std::multiset<std::string>{"R0", "R0", "R0"}));
  EXPECT_EQ(lines_of(act, "R0"), (std::vector<int>{6, 9, 12}));
}

TEST(LintSuppression, CleanFixtureHasNoFindings) {
  const auto fs = lint_fixture("clean.cpp");
  EXPECT_TRUE(active(fs).empty());
}

TEST(LintScoping, R1AndR5AreScopedToDeterminismCriticalFiles) {
  // Same source, no marker, path outside determinism_dirs: R1/R5 do not fire
  // (R2/R3 still would — scope is per-rule, not per-file).
  const std::string src =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n"
      "int f() { int s = 0; for (const auto& [k, v] : m) s += v; return s; }\n";
  LintConfig cfg = fixture_config();
  EXPECT_TRUE(active(lint_source("apps/outside.cpp", src, cfg)).empty());

  const std::string marked = "// rlftnoc-lint: determinism-critical\n" + src;
  const auto fs = active(lint_source("apps/outside.cpp", marked, cfg));
  EXPECT_EQ(rules_of(fs), (std::multiset<std::string>{"R1"}));
}

TEST(LintBaseline, RoundTripAbsorbsExactlyTheBudget) {
  auto fs = lint_fixture("r1_unordered_iteration.cpp");
  ASSERT_EQ(active(fs).size(), 3u);

  // write_baseline -> read_baseline must reproduce the exact budget.
  std::stringstream ss;
  write_baseline(ss, fs);
  const Baseline b = read_baseline(ss);
  ASSERT_EQ(b.budget.size(), 1u);
  EXPECT_EQ(b.budget.begin()->second, 3);

  const auto stale = apply_baseline(fs, b);
  EXPECT_TRUE(stale.empty());
  EXPECT_TRUE(active(fs).empty());
  for (const auto& f : fs) EXPECT_TRUE(f.baselined);
}

TEST(LintBaseline, StaleBudgetIsReportedWhenFindingsShrink) {
  // Budget of 5 against 3 live findings: stale (the tight-baseline CI mode
  // turns this into a hard failure, forcing the baseline down).
  std::stringstream in("R1 r1_unordered_iteration.cpp 5\n");
  const Baseline b = read_baseline(in);
  auto fs = lint_fixture("r1_unordered_iteration.cpp");
  const auto stale = apply_baseline(fs, b);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], "R1 r1_unordered_iteration.cpp have=3 budget=5");
}

TEST(LintBaseline, PartialBudgetLeavesOverflowActive) {
  std::stringstream in("# comment lines are ignored\n"
                       "R1 r1_unordered_iteration.cpp 2\n");
  const Baseline b = read_baseline(in);
  auto fs = lint_fixture("r1_unordered_iteration.cpp");
  const auto stale = apply_baseline(fs, b);
  EXPECT_TRUE(stale.empty());
  // First two findings (in stable order) absorbed, third stays active.
  EXPECT_EQ(active(fs).size(), 1u);
  EXPECT_EQ(active(fs)[0].line, 34);
}

TEST(LintBaseline, EntryForCleanFileIsStale) {
  std::stringstream in("R3 clean.cpp 1\n");
  const Baseline b = read_baseline(in);
  auto fs = lint_fixture("clean.cpp");
  const auto stale = apply_baseline(fs, b);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], "R3 clean.cpp have=0 budget=1");
}

TEST(LintOutput, JsonIsDeterministicAndCarriesSchema) {
  const auto fs = lint_fixture("r2_ambient_entropy.cpp");
  std::stringstream a, b;
  write_json(a, fs, {}, 1);
  write_json(b, fs, {}, 1);
  EXPECT_EQ(a.str(), b.str());  // byte-identical reruns
  EXPECT_NE(a.str().find("\"schema\": \"rlftnoc-lint-v1\""), std::string::npos);
  EXPECT_NE(a.str().find("\"R2\""), std::string::npos);
}

TEST(LintRepoTree, CommittedBaselineIsTightAgainstTheRealTree) {
  // Guard the burn-down: the committed baseline must stay empty (every
  // historical finding was fixed or attested inline, not grandfathered).
  std::ifstream in(std::string(RLFTNOC_LINT_REPO_ROOT) +
                   "/tools/lint/baseline.txt");
  ASSERT_TRUE(in.good());
  const Baseline b = read_baseline(in);
  EXPECT_TRUE(b.budget.empty())
      << "tools/lint/baseline.txt grew; fix findings instead of baselining";
}

}  // namespace
