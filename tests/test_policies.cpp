#include <gtest/gtest.h>

#include "ftnoc/dt_policy.h"
#include "ftnoc/policy.h"
#include "ftnoc/rl_policy.h"

namespace rlftnoc {
namespace {

FeatureSnapshot snapshot_with(double temp, double error_prob) {
  FeatureSnapshot s;
  s.temperature_c = temp;
  s.true_error_prob = error_prob;
  return s;
}

TEST(StaticPolicy, AlwaysReturnsItsMode) {
  StaticPolicy crc(OpMode::kMode0);
  StaticPolicy arq(OpMode::kMode1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(crc.decide(i, snapshot_with(90.0, 0.5), 0.1), OpMode::kMode0);
    EXPECT_EQ(arq.decide(i, snapshot_with(50.0, 0.0), 0.9), OpMode::kMode1);
  }
  EXPECT_STREQ(crc.name(), "CRC");
  EXPECT_STREQ(arq.name(), "ARQ+ECC");
  EXPECT_FALSE(crc.control_energy_event().has_value());
}

TEST(OraclePolicy, FollowsTrueErrorLevel) {
  const ErrorLevelThresholds t;
  OraclePolicy o(t);
  EXPECT_EQ(o.decide(0, snapshot_with(50, t.low / 2), 0), OpMode::kMode0);
  EXPECT_EQ(o.decide(0, snapshot_with(50, t.low * 2), 0), OpMode::kMode1);
  EXPECT_EQ(o.decide(0, snapshot_with(50, t.medium * 1.1), 0), OpMode::kMode2);
  EXPECT_EQ(o.decide(0, snapshot_with(50, t.high * 2), 0), OpMode::kMode3);
}

TEST(DtPolicy, ActsLikeOracleDuringPretrain) {
  DtPolicy dt;
  const ErrorLevelThresholds t;
  dt.begin_phase(SimPhase::kPretrain);
  EXPECT_EQ(dt.decide(0, snapshot_with(55, t.low / 2), 0), OpMode::kMode0);
  EXPECT_EQ(dt.decide(0, snapshot_with(95, t.medium * 1.1), 0), OpMode::kMode2);
  EXPECT_EQ(dt.collected_samples(), 2u);
}

TEST(DtPolicy, TrainsAtEndOfPretrainAndFreezes) {
  DtPolicy dt;
  dt.begin_phase(SimPhase::kPretrain);
  const ErrorLevelThresholds t;
  // Temperature is the separating feature: hot <-> level 1, cool <-> level 0.
  for (int i = 0; i < 300; ++i) {
    dt.decide(0, snapshot_with(55.0 + (i % 5), t.low / 2), 0);
    dt.decide(0, snapshot_with(92.0 + (i % 5), t.low * 3), 0);
  }
  dt.begin_phase(SimPhase::kWarmup);
  EXPECT_TRUE(dt.tree().trained());
  EXPECT_GT(dt.training_accuracy(), 0.95);
  EXPECT_EQ(dt.collected_samples(), 0u);  // cleared after training

  // At test time the ground truth is hidden: predictions come from the
  // observable features only.
  EXPECT_EQ(dt.decide(0, snapshot_with(56.0, /*truth ignored*/ 1.0), 0),
            OpMode::kMode0);
  EXPECT_EQ(dt.decide(0, snapshot_with(93.0, /*truth ignored*/ 0.0), 0),
            OpMode::kMode1);
}

TEST(DtPolicy, UntrainedFallsBackToMode1) {
  DtPolicy dt;
  dt.begin_phase(SimPhase::kMeasure);
  EXPECT_EQ(dt.decide(0, snapshot_with(70, 0.5), 0), OpMode::kMode1);
}

TEST(DtPolicy, ReportsControlEnergy) {
  DtPolicy dt;
  ASSERT_TRUE(dt.control_energy_event().has_value());
  EXPECT_EQ(*dt.control_energy_event(), PowerEvent::kDtInference);
}

TEST(RlPolicy, SharedTableSeesAllRouters) {
  QLearningParams p;
  RlPolicy rl(8, p, 1, false, /*shared_table=*/true);
  const FeatureSnapshot s = snapshot_with(80, 0.01);
  for (NodeId r = 0; r < 8; ++r) rl.decide(r, s, 0.5);
  for (NodeId r = 0; r < 8; ++r) rl.decide(r, s, 0.5);  // triggers updates
  EXPECT_GE(rl.total_table_entries(), 1u);
  // Shared: agent(0) and agent(7) are the same table.
  EXPECT_EQ(&rl.agent(0), &rl.agent(7));
}

TEST(RlPolicy, PerRouterTablesAreIndependent) {
  QLearningParams p;
  RlPolicy rl(4, p, 1, false, /*shared_table=*/false);
  EXPECT_NE(&rl.agent(0), &rl.agent(3));
  const FeatureSnapshot s = snapshot_with(80, 0.01);
  rl.decide(0, s, 0.5);
  rl.decide(0, s, 0.5);
  EXPECT_GE(rl.agent(0).table().size(), 1u);
  EXPECT_EQ(rl.agent(3).table().size(), 0u);
}

TEST(RlPolicy, FreezeStopsUpdates) {
  QLearningParams p;
  RlPolicy rl(1, p, 1);
  rl.set_freeze_on_measure(true);
  const FeatureSnapshot s = snapshot_with(75, 0.01);
  rl.begin_phase(SimPhase::kPretrain);
  rl.decide(0, s, 1.0);
  rl.decide(0, s, 1.0);
  const std::size_t entries = rl.total_table_entries();
  rl.begin_phase(SimPhase::kMeasure);
  FeatureSnapshot other = snapshot_with(99.0, 0.2);
  other.buffer_util = 0.9;
  for (int i = 0; i < 20; ++i) rl.decide(0, other, 1.0);
  // Frozen: no new rows were created by the unseen state.
  EXPECT_EQ(rl.total_table_entries(), entries);
}

TEST(RlPolicy, PretrainEpsilonHigherThanMeasure) {
  QLearningParams p;
  p.epsilon = 0.1;
  RlPolicy rl(1, p, 1);
  rl.begin_phase(SimPhase::kPretrain);
  EXPECT_DOUBLE_EQ(rl.agent(0).params().epsilon, 0.25);
  rl.begin_phase(SimPhase::kWarmup);
  EXPECT_DOUBLE_EQ(rl.agent(0).params().epsilon, 0.1);
}

TEST(RlPolicy, LearnsRewardingActionInFixedState) {
  // Drill: one recurring state where mode 1 always pays the most. The
  // reward delivered at step t applies to the action chosen at step t-1.
  QLearningParams p;
  p.gamma = 0.0;
  p.optimistic_init = 2.0;
  p.confidence_penalty = 0.0;
  p.action_cost_prior = 0.0;
  RlPolicy rl(1, p, 3);
  const FeatureSnapshot s = snapshot_with(95.0, 0.05);
  OpMode last = OpMode::kMode0;
  for (int i = 0; i < 300; ++i) {
    const double reward = last == OpMode::kMode1 ? 1.0 : 0.2;
    last = rl.decide(0, s, reward);
  }
  rl.begin_phase(SimPhase::kMeasure);
  EXPECT_EQ(rl.agent(0).greedy_action(s.discretize()), 1);
}

}  // namespace
}  // namespace rlftnoc
