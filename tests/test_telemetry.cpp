// Telemetry subsystem contract: ring wraparound is counted (never silent),
// exporter output is well-formed (a real JSON parse, not a substring check),
// runs without telemetry carry no collector, and a traced campaign stays
// byte-identical for any --jobs value.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.h"
#include "sim/campaign.h"
#include "sim/options_io.h"
#include "sim/simulator.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"
#include "traffic/traffic.h"

namespace rlftnoc {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough to *parse* (not merely grep) exporter
// output: objects, arrays, strings with escapes, numbers, true/false/null.
// ---------------------------------------------------------------------------

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  bool has(const std::string& k) const { return obj.count(k) > 0; }
  const Json& at(const std::string& k) const { return obj.at(k); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Json value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
      case 'f': return boolean();
      case 'n': return null();
      default: return number();
    }
  }

  Json object() {
    expect('{');
    Json v;
    v.type = Json::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      Json key = string_value();
      expect(':');
      v.obj.emplace(key.str, value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    expect('[');
    Json v;
    v.type = Json::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Json string_value() {
    expect('"');
    Json v;
    v.type = Json::Type::kString;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.str += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': v.str += '"'; break;
        case '\\': v.str += '\\'; break;
        case '/': v.str += '/'; break;
        case 'n': v.str += '\n'; break;
        case 'r': v.str += '\r'; break;
        case 't': v.str += '\t'; break;
        case 'b': v.str += '\b'; break;
        case 'f': v.str += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i])))
              fail("bad \\u escape");
          }
          pos_ += 4;
          v.str += '?';  // code point value irrelevant for these tests
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json boolean() {
    Json v;
    v.type = Json::Type::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  Json null() {
    if (s_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return Json{};
  }

  Json number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Json v;
    v.type = Json::Type::kNumber;
    try {
      v.number = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::filesystem::path fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Ring buffers
// ---------------------------------------------------------------------------

TEST(TimeSeriesRing, WrapsOldestFirstAndCountsDrops) {
  TimeSeriesRing ring(/*rows=*/4, /*width=*/2);
  double row[2];
  for (int i = 0; i < 6; ++i) {
    row[0] = i;
    row[1] = 10.0 * i;
    ring.push_row(static_cast<Cycle>(100 * i), row);
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped_rows(), 2u);  // rows 0 and 1 were overwritten
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const int logical = static_cast<int>(i) + 2;  // oldest surviving row = 2
    EXPECT_EQ(ring.stamp(i), static_cast<Cycle>(100 * logical));
    EXPECT_EQ(ring.row(i)[0], static_cast<double>(logical));
    EXPECT_EQ(ring.row(i)[1], 10.0 * logical);
  }
}

TEST(EventTracer, WrapsOldestFirstAndCountsDrops) {
  EventTracer tracer(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    tracer.record(TraceEventKind::kNackSent, static_cast<Cycle>(i),
                  static_cast<NodeId>(i), /*port=*/1, /*arg=*/i);
  }
  EXPECT_EQ(tracer.size(), 3u);
  EXPECT_EQ(tracer.dropped(), 2u);
  for (std::size_t i = 0; i < tracer.size(); ++i) {
    EXPECT_EQ(tracer.at(i).cycle, static_cast<Cycle>(i + 2));
    EXPECT_EQ(tracer.at(i).arg, static_cast<std::int32_t>(i + 2));
  }
}

TEST(MetricsRegistry, CountersSampleAsDeltasAndSurviveSourceResets) {
  MetricsRegistry reg(/*num_routers=*/2, /*series_rows=*/8);
  const MetricId c = reg.add(MetricKind::kCounter, MetricScope::kGlobal, "c");
  const MetricId g = reg.add(MetricKind::kGauge, MetricScope::kPerRouter, "g");
  reg.freeze();

  reg.set(c, 5.0);
  reg.set(g, NodeId{1}, 42.0);
  reg.sample(10);
  reg.set(c, 8.0);
  reg.sample(20);
  reg.set(c, 2.0);  // cumulative source reset (counter moved backwards)
  reg.sample(30);

  const TimeSeriesRing& ring = reg.series();
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.row(0)[0], 5.0);  // first interval: 5 - 0
  EXPECT_EQ(ring.row(1)[0], 3.0);  // 8 - 5
  EXPECT_EQ(ring.row(2)[0], 2.0);  // reset: the new cumulative IS the delta
  EXPECT_EQ(ring.row(0)[2], 42.0);  // gauge verbatim, slot [c, g(r0), g(r1)]
  EXPECT_EQ(ring.row(2)[2], 42.0);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TelemetryExportInfo tiny_info() {
  TelemetryExportInfo info;
  info.workload = "unit";
  info.policy = "RL";
  info.label = sanitize_run_label("unit_RL");
  info.seed = 9;
  info.mesh_width = 2;
  info.mesh_height = 2;
  info.measure_start = 100;
  info.end_cycle = 400;
  info.options = {{"seed", "9"}};
  return info;
}

TEST(ChromeTraceExport, ProducesParsableSchemaCorrectJson) {
  EventTracer tracer(64);
  tracer.record(TraceEventKind::kModeSwitch, 10, 0, -1, /*mode=*/2);
  tracer.record(TraceEventKind::kPhaseBegin, 20, kInvalidNode, -1, 2);
  tracer.record(TraceEventKind::kNackSent, 30, 3, 1, 1);
  tracer.record(TraceEventKind::kEpochReward, 40, 1, -1, 0, 1.5);
  tracer.record(TraceEventKind::kModeSwitch, 50, 0, -1, /*mode=*/0);

  std::ostringstream out;
  write_chrome_trace(out, tracer, tiny_info());

  const Json doc = JsonParser(out.str()).parse();
  ASSERT_EQ(doc.type, Json::Type::kObject);
  ASSERT_TRUE(doc.has("traceEvents"));
  ASSERT_TRUE(doc.has("otherData"));
  EXPECT_EQ(doc.at("otherData").at("workload").str, "unit");
  EXPECT_EQ(doc.at("otherData").at("dropped_events").number, 0.0);

  const Json& events = doc.at("traceEvents");
  ASSERT_EQ(events.type, Json::Type::kArray);
  ASSERT_FALSE(events.arr.empty());
  int slices_begin = 0, slices_end = 0, counters = 0, instants = 0;
  for (const Json& e : events.arr) {
    ASSERT_EQ(e.type, Json::Type::kObject);
    ASSERT_TRUE(e.has("ph"));
    const std::string& ph = e.at("ph").str;
    EXPECT_TRUE(ph == "B" || ph == "E" || ph == "i" || ph == "C" || ph == "M")
        << "unexpected phase " << ph;
    EXPECT_TRUE(e.has("pid"));
    EXPECT_TRUE(e.has("tid"));
    if (ph != "M") {
      ASSERT_TRUE(e.has("ts"));
    }
    if (ph == "B" || ph == "i" || ph == "C" || ph == "M") {
      EXPECT_TRUE(e.has("name"));
    }
    if (ph == "B") ++slices_begin;
    if (ph == "E") ++slices_end;
    if (ph == "C") ++counters;
    if (ph == "i") ++instants;
  }
  // Two kModeSwitch records: two slices, the last closed at export time.
  EXPECT_EQ(slices_begin, 2);
  EXPECT_EQ(slices_end, 2);
  EXPECT_EQ(counters, 1);
  EXPECT_EQ(instants, 2);  // phase_begin + nack_sent
}

TEST(ManifestExport, ContainsSchemaGitShaAndFileList) {
  const std::filesystem::path dir = fresh_dir("rlftnoc_manifest_unit");
  Telemetry telemetry(TelemetryOptions{}, /*num_routers=*/4);
  const MetricId gauge = telemetry.metrics().add(
      MetricKind::kGauge, MetricScope::kGlobal, "unit.gauge");
  telemetry.metrics().freeze();
  telemetry.metrics().set(gauge, 1.0);
  telemetry.sample(0);

  TelemetryExportInfo info = tiny_info();
  info.out_dir = dir.string();
  const std::vector<std::string> files =
      export_run_telemetry(telemetry, info, {});
  ASSERT_FALSE(files.empty());
  EXPECT_EQ(files.back(), "unit_RL.manifest.json");

  const Json m = JsonParser(read_file(dir / files.back())).parse();
  EXPECT_EQ(m.at("schema").str, "rlftnoc-telemetry-manifest-v1");
  EXPECT_FALSE(m.at("git_sha").str.empty());
  EXPECT_EQ(m.at("seed").number, 9.0);
  EXPECT_EQ(m.at("mesh").at("width").number, 2.0);
  ASSERT_EQ(m.at("files").type, Json::Type::kArray);
  // The manifest lists every file written before it (not itself).
  EXPECT_EQ(m.at("files").arr.size(), files.size() - 1);
  for (const Json& f : m.at("files").arr) {
    EXPECT_TRUE(std::filesystem::exists(dir / f.str)) << f.str;
  }
}

TEST(RunLabel, SanitizesHostileCharacters) {
  EXPECT_EQ(sanitize_run_label("a b/c\\d:e"), "a_b_c_d_e");
  EXPECT_EQ(sanitize_run_label(""), "run");
  EXPECT_EQ(sanitize_run_label("ok-1.2_x"), "ok-1.2_x");
}

// ---------------------------------------------------------------------------
// Options plumbing
// ---------------------------------------------------------------------------

TEST(OptionsIo, TelemetryKeysReachSimOptions) {
  Config cfg;
  cfg.set("telemetry", "true");
  cfg.set("telemetry.dir", "some/dir");
  cfg.set("metrics_interval", "250");
  cfg.set("telemetry.series_rows", "64");
  cfg.set("telemetry.trace_capacity", "1024");
  const SimOptions opt = sim_options_from_config(cfg);
  EXPECT_TRUE(opt.telemetry.enabled);
  EXPECT_EQ(opt.telemetry.out_dir, "some/dir");
  EXPECT_EQ(opt.telemetry.metrics_interval, 250u);
  EXPECT_EQ(opt.telemetry.series_rows, 64u);
  EXPECT_EQ(opt.telemetry.trace_capacity, 1024u);

  // Defaults stay off / at documented values.
  const SimOptions defaults = sim_options_from_config(Config{});
  EXPECT_FALSE(defaults.telemetry.enabled);
  EXPECT_EQ(defaults.telemetry.metrics_interval, 1000u);
}

// ---------------------------------------------------------------------------
// Simulator integration
// ---------------------------------------------------------------------------

SimOptions tiny_sim(bool telemetry) {
  SimOptions opt;
  opt.seed = 11;
  opt.noc.mesh_width = 2;
  opt.noc.mesh_height = 2;
  opt.policy = PolicyKind::kStaticArqEcc;
  opt.pretrain_cycles = 0;
  opt.warmup_cycles = 500;
  opt.error_scale = 3.0;  // fault-heavy so ARQ events actually fire
  opt.telemetry.enabled = telemetry;
  opt.telemetry.metrics_interval = 200;
  return opt;
}

SyntheticTraffic::Options tiny_traffic() {
  SyntheticTraffic::Options t;
  t.total_packets = 300;
  t.injection_rate = 0.1;
  return t;
}

TEST(SimulatorTelemetry, DisabledRunCarriesNoCollectorAndWritesNothing) {
  SimOptions opt = tiny_sim(/*telemetry=*/false);
  Simulator sim(opt);
  EXPECT_EQ(sim.telemetry(), nullptr);
  SyntheticTraffic traffic(MeshTopology(opt.noc), tiny_traffic(), opt.seed);
  const SimResult res = sim.run(traffic);
  EXPECT_GT(res.packets_delivered, 0u);
  EXPECT_TRUE(sim.telemetry_files().empty());
  EXPECT_EQ(sim.telemetry_manifest_path(), "");
}

TEST(SimulatorTelemetry, TracedRunExportsLoadableFileSet) {
  const std::filesystem::path dir = fresh_dir("rlftnoc_sim_telemetry");
  SimOptions opt = tiny_sim(/*telemetry=*/true);
  opt.telemetry.out_dir = dir.string();

  Simulator sim(opt);
  ASSERT_NE(sim.telemetry(), nullptr);
  SyntheticTraffic traffic(MeshTopology(opt.noc), tiny_traffic(), opt.seed);
  const SimResult res = sim.run(traffic);
  EXPECT_GT(res.packets_delivered, 0u);

  ASSERT_FALSE(sim.telemetry_files().empty());
  const Json trace =
      JsonParser(read_file(dir / (sanitize_run_label(res.workload + "_" +
                                                     res.policy) +
                                  ".trace.json")))
          .parse();
  ASSERT_TRUE(trace.has("traceEvents"));
#ifndef RLFTNOC_TELEMETRY_DISABLED
  // With hooks compiled in, a fault-heavy ARQ run must have produced events
  // (at minimum the initial mode switches and the phase markers).
  EXPECT_GT(trace.at("traceEvents").arr.size(), 4u);
#endif
  const Json manifest = JsonParser(read_file(sim.telemetry_manifest_path())).parse();
  EXPECT_EQ(manifest.at("schema").str, "rlftnoc-telemetry-manifest-v1");
  EXPECT_EQ(manifest.at("measure").at("end_cycle").number,
            static_cast<double>(sim.network().now()));

  // The metrics TSV has the documented header and one row per slot/sample.
  const std::string metrics = read_file(
      dir / (sanitize_run_label(res.workload + "_" + res.policy) +
             ".metrics.tsv"));
  EXPECT_EQ(metrics.rfind("cycle\tmetric\trouter\tport\tvalue\n", 0), 0u);
  EXPECT_NE(metrics.find("router.mode"), std::string::npos);
  EXPECT_NE(metrics.find("net.packets_delivered"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Campaign integration
// ---------------------------------------------------------------------------

SimOptions tiny_campaign_base() {
  SimOptions base;
  base.seed = 7;
  base.noc.mesh_width = 4;
  base.noc.mesh_height = 4;
  base.pretrain_cycles = 100000;  // scaled by the 2% budget below
  base.warmup_cycles = 50000;
  return base;
}

TEST(Campaign, DuplicateBenchmarkPolicyPairIsRejected) {
  const SimOptions base = tiny_campaign_base();
  EXPECT_THROW(run_campaign(base, {"swaptions", "swaptions"},
                            {PolicyKind::kStaticCrc}, 2),
               std::invalid_argument);
  EXPECT_THROW(run_campaign(base, {"swaptions"},
                            {PolicyKind::kStaticCrc, PolicyKind::kStaticCrc}, 2),
               std::invalid_argument);
}

TEST(CampaignTelemetry, JobsDoNotChangeTelemetryBytes) {
  const std::vector<std::string> benches = {"swaptions"};
  const std::vector<PolicyKind> policies = {PolicyKind::kStaticCrc,
                                            PolicyKind::kRl};

  const std::filesystem::path dir1 = fresh_dir("rlftnoc_tele_jobs1");
  SimOptions serial = tiny_campaign_base();
  serial.jobs = 1;
  serial.telemetry.enabled = true;
  serial.telemetry.out_dir = dir1.string();
  run_campaign(serial, benches, policies, 2);

  const std::filesystem::path dir4 = fresh_dir("rlftnoc_tele_jobs4");
  SimOptions parallel = tiny_campaign_base();
  parallel.jobs = 4;
  parallel.telemetry.enabled = true;
  parallel.telemetry.out_dir = dir4.string();
  run_campaign(parallel, benches, policies, 2);

  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir1))
    names.push_back(entry.path().filename().string());
  std::sort(names.begin(), names.end());
  ASSERT_FALSE(names.empty());
  // One complete file set per (benchmark, policy) pair.
  int manifests = 0;
  for (const std::string& n : names)
    if (n.find(".manifest.json") != std::string::npos) ++manifests;
  EXPECT_EQ(manifests, 2);

  for (const std::string& name : names) {
    ASSERT_TRUE(std::filesystem::exists(dir4 / name)) << name;
    EXPECT_EQ(read_file(dir1 / name), read_file(dir4 / name))
        << name << " differs between jobs=1 and jobs=4";
  }
}

}  // namespace
}  // namespace rlftnoc
