#include "coding/secded.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rlftnoc {
namespace {

TEST(Secded, CleanRoundTrip) {
  const Secded7264& c = default_secded();
  for (const std::uint64_t data :
       {0ULL, ~0ULL, 0x1ULL, 0x8000000000000000ULL, 0xdeadbeefcafebabeULL}) {
    const SecdedWord w = c.encode(data);
    const SecdedDecode d = c.decode(w.data, w.check);
    EXPECT_EQ(d.status, SecdedStatus::kClean);
    EXPECT_EQ(d.data, data);
    EXPECT_EQ(d.check, w.check);
    EXPECT_EQ(d.syndrome, 0);
  }
}

/// Property: every single data-bit error is corrected back to the original.
class SecdedDataBitSweep : public ::testing::TestWithParam<int> {};

TEST_P(SecdedDataBitSweep, CorrectsSingleDataBitError) {
  const Secded7264& c = default_secded();
  const std::uint64_t data = 0xa5a5a5a5c3c3c3c3ULL;
  const SecdedWord w = c.encode(data);
  const std::uint64_t corrupted = data ^ (1ULL << GetParam());
  const SecdedDecode d = c.decode(corrupted, w.check);
  EXPECT_EQ(d.status, SecdedStatus::kCorrected);
  EXPECT_EQ(d.data, data);
}

INSTANTIATE_TEST_SUITE_P(AllDataBits, SecdedDataBitSweep, ::testing::Range(0, 64));

/// Property: every single check-bit error is recognized and repaired.
class SecdedCheckBitSweep : public ::testing::TestWithParam<int> {};

TEST_P(SecdedCheckBitSweep, CorrectsSingleCheckBitError) {
  const Secded7264& c = default_secded();
  const std::uint64_t data = 0x0f0f0f0f12345678ULL;
  const SecdedWord w = c.encode(data);
  const auto corrupted_check =
      static_cast<std::uint8_t>(w.check ^ (1u << GetParam()));
  const SecdedDecode d = c.decode(data, corrupted_check);
  EXPECT_EQ(d.status, SecdedStatus::kCorrected);
  EXPECT_EQ(d.data, data);
  EXPECT_EQ(d.check, w.check);
}

INSTANTIATE_TEST_SUITE_P(AllCheckBits, SecdedCheckBitSweep, ::testing::Range(0, 8));

TEST(Secded, DetectsAllDoubleDataBitErrors) {
  const Secded7264& c = default_secded();
  const std::uint64_t data = 0x5566778899aabbccULL;
  const SecdedWord w = c.encode(data);
  for (int i = 0; i < 64; ++i) {
    for (int j = i + 1; j < 64; j += 7) {  // strided to keep runtime sane
      const std::uint64_t corrupted = data ^ (1ULL << i) ^ (1ULL << j);
      const SecdedDecode d = c.decode(corrupted, w.check);
      EXPECT_EQ(d.status, SecdedStatus::kUncorrectable)
          << "bits " << i << "," << j;
    }
  }
}

TEST(Secded, DetectsDataPlusCheckDoubleErrors) {
  const Secded7264& c = default_secded();
  const std::uint64_t data = 0x1020304050607080ULL;
  const SecdedWord w = c.encode(data);
  for (int i = 0; i < 64; i += 5) {
    for (int j = 0; j < 8; ++j) {
      const std::uint64_t bad_data = data ^ (1ULL << i);
      const auto bad_check = static_cast<std::uint8_t>(w.check ^ (1u << j));
      const SecdedDecode d = c.decode(bad_data, bad_check);
      EXPECT_EQ(d.status, SecdedStatus::kUncorrectable)
          << "data bit " << i << " check bit " << j;
    }
  }
}

TEST(Secded, TripleErrorsNeverReportClean) {
  // Triple errors may miscorrect (that is physics), but they must never
  // decode as kClean: odd parity guarantees at least a correction attempt.
  const Secded7264& c = default_secded();
  Rng rng(99);
  const std::uint64_t data = rng.next_u64();
  const SecdedWord w = c.encode(data);
  for (int trial = 0; trial < 3000; ++trial) {
    std::uint64_t bad = data;
    int bits[3];
    bits[0] = static_cast<int>(rng.next_below(64));
    do { bits[1] = static_cast<int>(rng.next_below(64)); } while (bits[1] == bits[0]);
    do {
      bits[2] = static_cast<int>(rng.next_below(64));
    } while (bits[2] == bits[0] || bits[2] == bits[1]);
    for (const int b : bits) bad ^= 1ULL << b;
    const SecdedDecode d = c.decode(bad, w.check);
    EXPECT_NE(d.status, SecdedStatus::kClean);
  }
}

TEST(Secded, EncodeIsDeterministicAndCheckBitsVary) {
  const Secded7264& c = default_secded();
  EXPECT_EQ(c.encode(123).check, c.encode(123).check);
  // Different data should usually yield different check bits.
  int distinct = 0;
  std::uint8_t prev = c.encode(0).check;
  for (std::uint64_t d = 1; d < 64; ++d) {
    const std::uint8_t cur = c.encode(d).check;
    if (cur != prev) ++distinct;
    prev = cur;
  }
  EXPECT_GT(distinct, 32);
}

TEST(FlitEcc, CleanFlitRoundTrip) {
  const BitVec128 payload(0x1122334455667788ULL, 0x99aabbccddeeff00ULL);
  const FlitEcc ecc = encode_flit_ecc(default_secded(), payload);
  const FlitEccDecode d = decode_flit_ecc(default_secded(), payload, ecc);
  EXPECT_EQ(d.status, SecdedStatus::kClean);
  EXPECT_EQ(d.payload, payload);
}

TEST(FlitEcc, CorrectsOneErrorPerWordIndependently) {
  const BitVec128 payload(0xf00dULL, 0xbeefULL);
  const FlitEcc ecc = encode_flit_ecc(default_secded(), payload);
  BitVec128 bad = payload;
  bad.flip_bit(10);   // word 0
  bad.flip_bit(100);  // word 1
  const FlitEccDecode d = decode_flit_ecc(default_secded(), bad, ecc);
  EXPECT_EQ(d.status, SecdedStatus::kCorrected);
  EXPECT_TRUE(d.word0_corrected);
  EXPECT_TRUE(d.word1_corrected);
  EXPECT_EQ(d.payload, payload);
}

TEST(FlitEcc, DoubleErrorInOneWordIsUncorrectable) {
  const BitVec128 payload(0x1234ULL, 0x5678ULL);
  const FlitEcc ecc = encode_flit_ecc(default_secded(), payload);
  BitVec128 bad = payload;
  bad.flip_bit(3);
  bad.flip_bit(40);  // both in word 0
  const FlitEccDecode d = decode_flit_ecc(default_secded(), bad, ecc);
  EXPECT_EQ(d.status, SecdedStatus::kUncorrectable);
}

TEST(FlitEcc, CheckBitCorruptionHandled) {
  const BitVec128 payload(42, 43);
  FlitEcc ecc = encode_flit_ecc(default_secded(), payload);
  ecc.check1 = static_cast<std::uint8_t>(ecc.check1 ^ 0x04);
  const FlitEccDecode d = decode_flit_ecc(default_secded(), payload, ecc);
  EXPECT_EQ(d.status, SecdedStatus::kCorrected);
  EXPECT_EQ(d.payload, payload);
  EXPECT_EQ(d.ecc, encode_flit_ecc(default_secded(), payload));
}

TEST(FlitEcc, RandomizedCorrectionProperty) {
  // For random payloads and one random flip, the decode must restore the
  // original payload exactly.
  Rng rng(1234);
  for (int trial = 0; trial < 500; ++trial) {
    const BitVec128 payload(rng.next_u64(), rng.next_u64());
    const FlitEcc ecc = encode_flit_ecc(default_secded(), payload);
    BitVec128 bad = payload;
    bad.flip_bit(static_cast<std::size_t>(rng.next_below(128)));
    const FlitEccDecode d = decode_flit_ecc(default_secded(), bad, ecc);
    EXPECT_EQ(d.status, SecdedStatus::kCorrected);
    EXPECT_EQ(d.payload, payload);
  }
}

}  // namespace
}  // namespace rlftnoc
