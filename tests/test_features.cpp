#include "ftnoc/features.h"

#include <gtest/gtest.h>

namespace rlftnoc {
namespace {

FeatureSnapshot sample_snapshot() {
  FeatureSnapshot s;
  s.buffer_util = 0.35;
  s.in_link_util = {0.05, 0.10, 0.15, 0.20, 0.02};
  s.out_link_util = {0.06, 0.12, 0.18, 0.24, 0.01};
  s.in_nack_rate = {0.0, 0.001, 0.01, 0.1, 0.0};
  s.out_nack_rate = {0.0, 0.0, 0.005, 0.05, 0.0};
  s.temperature_c = 83.0;
  return s;
}

TEST(Features, VectorSizes) {
  const FeatureSnapshot s = sample_snapshot();
  EXPECT_EQ(s.to_vector(false).size(),
            static_cast<std::size_t>(FeatureSnapshot::kNumFeaturesAggregated));
  EXPECT_EQ(s.to_vector(true).size(),
            static_cast<std::size_t>(FeatureSnapshot::kNumFeaturesPerPort));
  EXPECT_EQ(s.discretize(false).size(),
            static_cast<std::size_t>(FeatureSnapshot::kNumFeaturesAggregated));
  EXPECT_EQ(s.discretize(true).size(),
            static_cast<std::size_t>(FeatureSnapshot::kNumFeaturesPerPort));
}

TEST(Features, AggregatedVectorContents) {
  const FeatureSnapshot s = sample_snapshot();
  const auto v = s.to_vector(false);
  EXPECT_DOUBLE_EQ(v[0], 0.35);
  EXPECT_NEAR(v[1], (0.05 + 0.10 + 0.15 + 0.20 + 0.02) / 5.0, 1e-12);  // mean in
  EXPECT_DOUBLE_EQ(v[2], 0.20);   // max in
  EXPECT_DOUBLE_EQ(v[4], 0.24);   // max out
  EXPECT_DOUBLE_EQ(v[5], 0.1);    // max in-nack
  EXPECT_DOUBLE_EQ(v[6], 0.05);   // max out-nack
  EXPECT_DOUBLE_EQ(v[7], 83.0);
}

TEST(Features, PerPortVectorOrdering) {
  const FeatureSnapshot s = sample_snapshot();
  const auto v = s.to_vector(true);
  EXPECT_DOUBLE_EQ(v[0], 0.35);
  EXPECT_DOUBLE_EQ(v[1], 0.05);                 // first in-util
  EXPECT_DOUBLE_EQ(v[6], 0.06);                 // first out-util
  EXPECT_DOUBLE_EQ(v[11], 0.0);                 // first in-nack
  EXPECT_DOUBLE_EQ(v[21], 83.0);                // temperature
}

TEST(Features, DiscretizationBins) {
  FeatureSnapshot s = sample_snapshot();
  const DiscreteState d = s.discretize(false);
  // buffer 0.35 in [0,1)/5 -> bin 1
  EXPECT_EQ(d[0], 1);
  // temp 83 in [50,100]/5 -> bin 3
  EXPECT_EQ(d[7], 3);
  // max in-util 0.20 in [0,0.3]/5 -> bin 3
  EXPECT_EQ(d[2], 3);
}

TEST(Features, TemperatureBinSweep) {
  // Temperature is the 8th aggregated feature (index 7); the dead-link
  // count now sits behind it.
  FeatureSnapshot s;
  s.temperature_c = 49.0;
  EXPECT_EQ(s.discretize()[7], 0);
  s.temperature_c = 65.0;
  EXPECT_EQ(s.discretize()[7], 1);
  s.temperature_c = 75.0;
  EXPECT_EQ(s.discretize()[7], 2);
  s.temperature_c = 85.0;
  EXPECT_EQ(s.discretize()[7], 3);
  s.temperature_c = 99.0;
  EXPECT_EQ(s.discretize()[7], 4);
  s.temperature_c = 140.0;
  EXPECT_EQ(s.discretize()[7], 4);
}

TEST(Features, DeadLinkFeature) {
  FeatureSnapshot s = sample_snapshot();
  // Fault-free: the dead-link feature is exactly zero in both layouts.
  EXPECT_DOUBLE_EQ(s.to_vector(false).back(), 0.0);
  EXPECT_EQ(s.discretize(false).back(), 0);
  EXPECT_EQ(s.discretize(true).back(), 0);

  s.out_link_dead[port_index(Port::kEast)] = 1.0;
  s.out_link_dead[port_index(Port::kNorth)] = 1.0;
  EXPECT_DOUBLE_EQ(s.to_vector(false).back(), 2.0 / 5.0);  // dead fraction
  EXPECT_EQ(s.discretize(false).back(), 2);                // dead count
  const DiscreteState per_port = s.discretize(true);
  EXPECT_EQ(per_port[22 + static_cast<int>(port_index(Port::kEast))], 1);
  EXPECT_EQ(per_port[22 + static_cast<int>(port_index(Port::kWest))], 0);
}

TEST(Features, IdenticalSnapshotsDiscretizeEqually) {
  const FeatureSnapshot a = sample_snapshot();
  const FeatureSnapshot b = sample_snapshot();
  EXPECT_EQ(a.discretize(false), b.discretize(false));
  EXPECT_EQ(a.discretize(true), b.discretize(true));
}

TEST(Features, SmallPerturbationWithinBinKeepsState) {
  FeatureSnapshot a = sample_snapshot();
  FeatureSnapshot b = a;
  b.temperature_c += 0.5;
  b.buffer_util += 0.01;
  EXPECT_EQ(a.discretize(), b.discretize());
}

TEST(Thresholds, ClassifyBands) {
  const ErrorLevelThresholds t;
  EXPECT_EQ(t.classify(0.0), OpMode::kMode0);
  EXPECT_EQ(t.classify(t.low / 2), OpMode::kMode0);
  EXPECT_EQ(t.classify(t.low * 1.01), OpMode::kMode1);
  EXPECT_EQ(t.classify(t.medium * 1.01), OpMode::kMode2);
  EXPECT_EQ(t.classify(t.high * 1.01), OpMode::kMode3);
  EXPECT_EQ(t.classify(1.0), OpMode::kMode3);
}

TEST(Thresholds, OrderingInvariant) {
  const ErrorLevelThresholds t;
  EXPECT_LT(t.low, t.medium);
  EXPECT_LT(t.medium, t.high);
}

}  // namespace
}  // namespace rlftnoc
