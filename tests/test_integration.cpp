// Cross-module integration properties that no single unit test covers.
#include <gtest/gtest.h>

#include "noc/network.h"
#include "noc/ni.h"
#include "sim/campaign.h"
#include "sim/simulator.h"
#include "traffic/traffic.h"

namespace rlftnoc {
namespace {

NocConfig cfg4() {
  NocConfig c;
  c.mesh_width = 4;
  c.mesh_height = 4;
  return c;
}

void set_all(Network& net, OpMode m, double p) {
  for (NodeId r = 0; r < net.config().num_nodes(); ++r) {
    net.router(r).set_mode(m);
    for (const Port pt : kAllPorts) {
      if (pt != Port::kLocal && net.out_channel(r, pt) != nullptr)
        net.set_link_error_prob(r, pt, LinkErrorProb{p, 1e-12});
    }
  }
}

void pump(Network& net, std::uint64_t packets, Cycle guard, std::uint64_t seed = 3) {
  SyntheticTraffic::Options o;
  o.injection_rate = 0.06;
  o.total_packets = packets;
  SyntheticTraffic gen(MeshTopology(net.config()), o, seed);
  std::vector<Packet> batch;
  const Cycle end = net.now() + guard;
  while (net.now() < end && (!gen.exhausted() || !net.drained())) {
    batch.clear();
    gen.tick(net.now(), batch);
    for (auto& p : batch) net.ni(p.src).enqueue_packet(std::move(p));
    net.step();
  }
  ASSERT_TRUE(net.drained());
}

TEST(Integration, SingleBitOnlyErrorsNeverReachDestinationUnderEcc) {
  // Force the injector to single-bit bursts (multibit prob 0): SECDED must
  // correct everything, so zero CRC failures and zero NACK resends.
  VariusParams vp;
  vp.multibit_base = 0.0;
  vp.multibit_slope = 0.0;
  vp.multibit_cap = 0.0;
  Network net(cfg4(), 1, vp);
  set_all(net, OpMode::kMode1, 0.05);
  pump(net, 1000, 400000);
  EXPECT_EQ(net.metrics().crc_packet_failures, 0u);
  EXPECT_EQ(net.metrics().retx_flits_hop, 0u);
  std::uint64_t corrections = 0;
  for (NodeId r = 0; r < 16; ++r)
    corrections += net.router(r).counters().ecc_corrections;
  EXPECT_GT(corrections, 100u);
}

TEST(Integration, EnergyAccountingIsConsistent) {
  Network net(cfg4(), 1);
  set_all(net, OpMode::kMode1, 0.01);
  pump(net, 500, 300000);
  const PowerModel& p = net.power();
  double per_router = 0.0;
  for (NodeId r = 0; r < 16; ++r) per_router += p.total_dynamic_energy_pj(r);
  EXPECT_NEAR(per_router, p.total_dynamic_energy_pj(), 1e-6);
  // ECC decodes cannot exceed encodes plus duplicates (every decode had a
  // wire transmission carrying check bits).
  EXPECT_GT(p.total_event_count(PowerEvent::kEccEncode), 0u);
}

TEST(Integration, EveryInjectedPacketDeliveredExactlyOnce) {
  Network net(cfg4(), 1);
  set_all(net, OpMode::kMode1, 0.03);
  pump(net, 1500, 600000);
  const NetworkMetrics& m = net.metrics();
  EXPECT_EQ(m.packets_injected, 1500u);
  EXPECT_EQ(m.packets_delivered, 1500u);
  std::uint64_t ni_delivered = 0;
  for (NodeId n = 0; n < 16; ++n)
    ni_delivered += net.ni(n).counters().packets_delivered;
  EXPECT_EQ(ni_delivered, 1500u);
}

TEST(Integration, FlitConservationUnderFaults) {
  // Flits ejected at NIs == flits delivered + flits of CRC-failed packets;
  // nothing is silently lost or duplicated end to end.
  Network net(cfg4(), 1);
  set_all(net, OpMode::kMode0, 0.02);
  pump(net, 1200, 600000);
  std::uint64_t ejected = 0;
  std::uint64_t sent = 0;
  for (NodeId n = 0; n < 16; ++n) {
    ejected += net.ni(n).counters().flits_ejected;
    sent += net.ni(n).counters().flits_sent;
  }
  EXPECT_EQ(ejected, sent);  // every flit sent from a source NI ejects once
}

TEST(Integration, CampaignRunsAndNormalizes) {
  SimOptions base;
  base.noc.mesh_width = 4;
  base.noc.mesh_height = 4;
  base.pretrain_cycles = 20000;
  base.warmup_cycles = 4000;
  const CampaignResults res =
      run_campaign(base, {"swaptions"},
                   {PolicyKind::kStaticCrc, PolicyKind::kStaticArqEcc},
                   /*packet_budget_scale_pct=*/3);
  ASSERT_EQ(res.results.size(), 1u);
  ASSERT_EQ(res.results[0].size(), 2u);
  EXPECT_GT(res.at(0, 0).packets_delivered, 0u);

  std::ostringstream os;
  print_normalized_table(os, res, "latency", metric_latency, false);
  const std::string out = os.str();
  EXPECT_NE(out.find("swaptions"), std::string::npos);
  EXPECT_NE(out.find("geomean"), std::string::npos);
  EXPECT_NE(out.find("CRC"), std::string::npos);
}

TEST(Integration, MetricExtractors) {
  SimResult r;
  r.retransmitted_flits = 10;
  r.execution_cycles = 20;
  r.avg_packet_latency = 30.0;
  r.energy_efficiency = 40.0;
  r.avg_dynamic_power_w = 50.0;
  EXPECT_EQ(metric_retransmissions(r), 10.0);
  EXPECT_EQ(metric_exec_speedup_inverse(r), 20.0);
  EXPECT_EQ(metric_latency(r), 30.0);
  EXPECT_EQ(metric_energy_efficiency(r), 40.0);
  EXPECT_EQ(metric_dynamic_power(r), 50.0);
}

TEST(Integration, ArqEccBeatsCrcUnderHighErrors) {
  // The paper's core premise at the protocol level.
  auto run = [](OpMode mode) {
    Network net(cfg4(), 1);
    set_all(net, mode, 0.04);
    SyntheticTraffic::Options o;
    o.injection_rate = 0.06;
    o.total_packets = 1500;
    SyntheticTraffic gen(MeshTopology(cfg4()), o, 5);
    std::vector<Packet> batch;
    while (!gen.exhausted() || !net.drained()) {
      batch.clear();
      gen.tick(net.now(), batch);
      for (auto& p : batch) net.ni(p.src).enqueue_packet(std::move(p));
      net.step();
      if (net.now() > 800000) break;
    }
    return net.metrics().packet_latency.mean();
  };
  EXPECT_LT(run(OpMode::kMode1), run(OpMode::kMode0));
}

TEST(Integration, RelaxedModeBeatsEccUnderExtremeErrors) {
  auto run = [](OpMode mode) {
    Network net(cfg4(), 1);
    set_all(net, mode, 0.4);
    SyntheticTraffic::Options o;
    o.injection_rate = 0.04;
    o.total_packets = 800;
    SyntheticTraffic gen(MeshTopology(cfg4()), o, 5);
    std::vector<Packet> batch;
    while (!gen.exhausted() || !net.drained()) {
      batch.clear();
      gen.tick(net.now(), batch);
      for (auto& p : batch) net.ni(p.src).enqueue_packet(std::move(p));
      net.step();
      if (net.now() > 1500000) break;
    }
    return net.metrics().packet_latency.mean();
  };
  EXPECT_LT(run(OpMode::kMode3), run(OpMode::kMode1));
}

}  // namespace
}  // namespace rlftnoc
