#include <gtest/gtest.h>

#include <sstream>

#include "coding/crc.h"
#include "noc/ni.h"
#include "traffic/parsec.h"
#include "traffic/trace.h"
#include "traffic/traffic.h"

namespace rlftnoc {
namespace {

const MeshTopology kTopo(8, 8);

TEST(Patterns, TransposeIsInvolution) {
  for (NodeId n = 0; n < kTopo.num_nodes(); ++n) {
    const NodeId d = pattern_destination(TrafficPattern::kTranspose, n, kTopo);
    EXPECT_EQ(pattern_destination(TrafficPattern::kTranspose, d, kTopo), n);
  }
}

TEST(Patterns, BitComplementIsInvolution) {
  for (NodeId n = 0; n < kTopo.num_nodes(); ++n) {
    const NodeId d = pattern_destination(TrafficPattern::kBitComplement, n, kTopo);
    ASSERT_GE(d, 0);
    ASSERT_LT(d, kTopo.num_nodes());
    EXPECT_EQ(pattern_destination(TrafficPattern::kBitComplement, d, kTopo), n);
  }
}

TEST(Patterns, TornadoHalfWidthShift) {
  const NodeId d = pattern_destination(TrafficPattern::kTornado, kTopo.node(0, 3), kTopo);
  EXPECT_EQ(d, kTopo.node(3, 3));
}

TEST(Patterns, NeighborWraps) {
  EXPECT_EQ(pattern_destination(TrafficPattern::kNeighbor, kTopo.node(7, 2), kTopo),
            kTopo.node(0, 2));
}

TEST(Patterns, BitReverseStaysInRange) {
  for (NodeId n = 0; n < kTopo.num_nodes(); ++n) {
    const NodeId d = pattern_destination(TrafficPattern::kBitReverse, n, kTopo);
    EXPECT_GE(d, 0);
    EXPECT_LT(d, kTopo.num_nodes());
  }
}

TEST(Patterns, NamesAreDistinct) {
  EXPECT_STRNE(traffic_pattern_name(TrafficPattern::kUniform),
               traffic_pattern_name(TrafficPattern::kTornado));
}

TEST(SyntheticTraffic, RespectsPacketBudget) {
  SyntheticTraffic::Options o;
  o.injection_rate = 0.5;
  o.total_packets = 100;
  SyntheticTraffic gen(kTopo, o, 1);
  std::vector<Packet> out;
  for (Cycle t = 0; t < 1000 && !gen.exhausted(); ++t) gen.tick(t, out);
  EXPECT_TRUE(gen.exhausted());
  EXPECT_EQ(out.size(), 100u);
  EXPECT_EQ(gen.generated(), 100u);
}

TEST(SyntheticTraffic, InjectionRateApproximatelyMet) {
  SyntheticTraffic::Options o;
  o.injection_rate = 0.08;
  o.packet_len = 4;
  o.total_packets = 0;  // unlimited
  SyntheticTraffic gen(kTopo, o, 2);
  std::vector<Packet> out;
  const Cycle cycles = 20000;
  for (Cycle t = 0; t < cycles; ++t) gen.tick(t, out);
  std::uint64_t flits = 0;
  for (const Packet& p : out) flits += p.flits.size();
  const double rate = static_cast<double>(flits) / cycles / kTopo.num_nodes();
  EXPECT_NEAR(rate, 0.08, 0.008);
}

TEST(SyntheticTraffic, NoSelfPackets) {
  SyntheticTraffic::Options o;
  o.injection_rate = 0.3;
  o.total_packets = 2000;
  SyntheticTraffic gen(kTopo, o, 3);
  std::vector<Packet> out;
  for (Cycle t = 0; t < 2000 && !gen.exhausted(); ++t) gen.tick(t, out);
  for (const Packet& p : out) EXPECT_NE(p.src, p.dst);
}

TEST(SyntheticTraffic, HotspotConcentratesTraffic) {
  SyntheticTraffic::Options o;
  o.pattern = TrafficPattern::kHotspot;
  o.injection_rate = 0.2;
  o.hotspot_fraction = 0.5;
  o.total_packets = 5000;
  SyntheticTraffic gen(kTopo, o, 4);
  std::vector<Packet> out;
  for (Cycle t = 0; t < 10000 && !gen.exhausted(); ++t) gen.tick(t, out);
  std::uint64_t to_hot = 0;
  const auto hot = std::vector<NodeId>{kTopo.node(4, 4), kTopo.node(3, 4),
                                       kTopo.node(4, 3), kTopo.node(3, 3)};
  for (const Packet& p : out) {
    for (const NodeId h : hot) {
      if (p.dst == h) {
        ++to_hot;
        break;
      }
    }
  }
  // Expect far above the uniform share (4/64) of packets at the hot nodes.
  EXPECT_GT(static_cast<double>(to_hot) / static_cast<double>(out.size()), 0.3);
}

TEST(SyntheticTraffic, DeterministicBySeed) {
  SyntheticTraffic::Options o;
  o.injection_rate = 0.1;
  o.total_packets = 200;
  SyntheticTraffic a(kTopo, o, 5);
  SyntheticTraffic b(kTopo, o, 5);
  std::vector<Packet> va;
  std::vector<Packet> vb;
  for (Cycle t = 0; t < 1000; ++t) {
    a.tick(t, va);
    b.tick(t, vb);
  }
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i) {
    EXPECT_EQ(va[i].src, vb[i].src);
    EXPECT_EQ(va[i].dst, vb[i].dst);
    EXPECT_EQ(va[i].inject_cycle, vb[i].inject_cycle);
  }
}

TEST(Parsec, SuiteHasEightDistinctBenchmarks) {
  const auto& suite = parsec_suite();
  EXPECT_EQ(suite.size(), 8u);
  for (std::size_t i = 0; i < suite.size(); ++i) {
    for (std::size_t j = i + 1; j < suite.size(); ++j) {
      EXPECT_NE(suite[i].name, suite[j].name);
    }
  }
}

TEST(Parsec, LookupByName) {
  EXPECT_EQ(parsec_profile("canneal").name, "canneal");
  EXPECT_THROW(parsec_profile("doom"), std::invalid_argument);
}

TEST(Parsec, MeanRateApproximatelyMet) {
  ParsecProfile prof = parsec_profile("ferret");
  prof.total_packets = 0xFFFFFFFF;  // effectively unlimited
  ParsecTraffic gen(kTopo, prof, 6);
  std::vector<Packet> out;
  const Cycle cycles = 60000;
  for (Cycle t = 0; t < cycles; ++t) gen.tick(t, out);
  std::uint64_t flits = 0;
  for (const Packet& p : out) flits += p.flits.size();
  const double rate = static_cast<double>(flits) / cycles / kTopo.num_nodes();
  EXPECT_NEAR(rate, prof.injection_rate, prof.injection_rate * 0.25);
}

TEST(Parsec, McTrafficConcentration) {
  ParsecProfile prof = parsec_profile("canneal");
  prof.total_packets = 20000;
  ParsecTraffic gen(kTopo, prof, 7);
  std::vector<Packet> out;
  for (Cycle t = 0; t < 100000 && !gen.exhausted(); ++t) gen.tick(t, out);
  const auto mcs = default_mc_nodes(kTopo);
  std::uint64_t to_mc = 0;
  for (const Packet& p : out) {
    for (const NodeId mc : mcs) {
      if (p.dst == mc) {
        ++to_mc;
        break;
      }
    }
  }
  const double frac = static_cast<double>(to_mc) / static_cast<double>(out.size());
  EXPECT_GT(frac, prof.mc_fraction * 0.8);
}

TEST(Parsec, MixedPacketLengths) {
  ParsecProfile prof = parsec_profile("dedup");
  prof.total_packets = 5000;
  ParsecTraffic gen(kTopo, prof, 8);
  std::vector<Packet> out;
  for (Cycle t = 0; t < 100000 && !gen.exhausted(); ++t) gen.tick(t, out);
  std::uint64_t shorts = 0;
  for (const Packet& p : out) {
    ASSERT_TRUE(p.flits.size() == 1 ||
                p.flits.size() == static_cast<std::size_t>(prof.data_packet_len));
    if (p.flits.size() == 1) ++shorts;
  }
  EXPECT_NEAR(static_cast<double>(shorts) / static_cast<double>(out.size()),
              prof.short_packet_fraction, 0.05);
}

TEST(Trace, RoundTripThroughText) {
  std::vector<TraceRecord> recs = {
      {0, 1, 2, 4}, {5, 3, 4, 1}, {5, 0, 7, 4}, {12, 6, 1, 2}};
  std::ostringstream os;
  write_trace(os, recs);
  std::istringstream is(os.str());
  const auto back = read_trace(is);
  ASSERT_EQ(back.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(back[i].cycle, recs[i].cycle);
    EXPECT_EQ(back[i].src, recs[i].src);
    EXPECT_EQ(back[i].dst, recs[i].dst);
    EXPECT_EQ(back[i].len, recs[i].len);
  }
}

TEST(Trace, RejectsMalformedInput) {
  std::istringstream unsorted("5 0 1 4\n2 0 1 4\n");
  EXPECT_THROW(read_trace(unsorted), std::runtime_error);
  std::istringstream short_line("5 0\n");
  EXPECT_THROW(read_trace(short_line), std::runtime_error);
  std::istringstream bad_len("5 0 1 0\n");
  EXPECT_THROW(read_trace(bad_len), std::runtime_error);
}

TEST(Trace, SkipsCommentsAndBlanks) {
  std::istringstream in("# header\n\n1 0 1 4 # inline\n");
  const auto recs = read_trace(in);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].cycle, 1u);
}

TEST(Trace, CaptureAndReplayMatchesGenerator) {
  SyntheticTraffic::Options o;
  o.injection_rate = 0.1;
  o.total_packets = 300;
  SyntheticTraffic gen(kTopo, o, 9);
  const auto recs = capture_trace(gen, 5000);
  EXPECT_EQ(recs.size(), 300u);

  TraceTraffic replay(recs, 10);
  std::vector<Packet> out;
  for (Cycle t = 0; t < 5001; ++t) replay.tick(t, out);
  EXPECT_TRUE(replay.exhausted());
  ASSERT_EQ(out.size(), recs.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].src, recs[i].src);
    EXPECT_EQ(out[i].dst, recs[i].dst);
    EXPECT_EQ(out[i].flits.size(), static_cast<std::size_t>(recs[i].len));
  }
}

TEST(Trace, LateTickDeliversBacklog) {
  std::vector<TraceRecord> recs = {{0, 0, 1, 1}, {10, 1, 2, 1}, {20, 2, 3, 1}};
  TraceTraffic replay(recs, 1);
  std::vector<Packet> out;
  replay.tick(15, out);  // catches up records at cycles 0 and 10
  EXPECT_EQ(out.size(), 2u);
  replay.tick(25, out);
  EXPECT_EQ(out.size(), 3u);
}

TEST(MakePacket, FlitStructure) {
  Rng rng(1);
  const Packet p = make_packet(7, 2, 9, 4, 100, rng);
  ASSERT_EQ(p.flits.size(), 4u);
  EXPECT_EQ(p.flits[0].type, FlitType::kHead);
  EXPECT_EQ(p.flits[1].type, FlitType::kBody);
  EXPECT_EQ(p.flits[2].type, FlitType::kBody);
  EXPECT_EQ(p.flits[3].type, FlitType::kTail);
  for (const Flit& f : p.flits) {
    EXPECT_EQ(f.packet_id, 7u);
    EXPECT_EQ(f.src, 2);
    EXPECT_EQ(f.dst, 9);
    EXPECT_EQ(f.packet_len, 4u);
    EXPECT_EQ(f.packet_inject_cycle, 100u);
    EXPECT_EQ(f.crc, default_crc32().compute(f.payload));
  }
  const Packet single = make_packet(8, 0, 1, 1, 0, rng);
  EXPECT_EQ(single.flits[0].type, FlitType::kHeadTail);
}

}  // namespace
}  // namespace rlftnoc
