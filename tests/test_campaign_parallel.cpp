// Determinism contract of the parallel campaign runner: any SimOptions::jobs
// value must produce bit-identical results, because each (benchmark, policy)
// job derives its own seed and writes into its own pre-sized slot.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/rng.h"
#include "sim/campaign.h"
#include "sim/results_io.h"

namespace rlftnoc {
namespace {

SimOptions tiny_base() {
  SimOptions base;
  base.seed = 7;
  base.noc.mesh_width = 4;
  base.noc.mesh_height = 4;
  // Effective phase lengths are these times the 2% budget scale below.
  base.pretrain_cycles = 100000;
  base.warmup_cycles = 50000;
  return base;
}

const std::vector<std::string> kBenchmarks = {"swaptions", "blackscholes"};
const std::vector<PolicyKind> kPolicies = {PolicyKind::kStaticCrc,
                                           PolicyKind::kRl};
constexpr std::uint64_t kScalePct = 2;

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.execution_cycles, b.execution_cycles);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.avg_packet_latency, b.avg_packet_latency);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p95_latency, b.p95_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.packets_injected, b.packets_injected);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.flits_delivered, b.flits_delivered);
  EXPECT_EQ(a.enqueue_drops, b.enqueue_drops);
  EXPECT_EQ(a.retransmitted_flits, b.retransmitted_flits);
  EXPECT_EQ(a.retx_flits_e2e, b.retx_flits_e2e);
  EXPECT_EQ(a.retx_flits_hop, b.retx_flits_hop);
  EXPECT_EQ(a.dup_flits, b.dup_flits);
  EXPECT_EQ(a.crc_packet_failures, b.crc_packet_failures);
  EXPECT_EQ(a.dynamic_energy_pj, b.dynamic_energy_pj);
  EXPECT_EQ(a.leakage_energy_pj, b.leakage_energy_pj);
  EXPECT_EQ(a.total_energy_pj, b.total_energy_pj);
  EXPECT_EQ(a.energy_efficiency, b.energy_efficiency);
  EXPECT_EQ(a.avg_dynamic_power_w, b.avg_dynamic_power_w);
  EXPECT_EQ(a.avg_total_power_w, b.avg_total_power_w);
  EXPECT_EQ(a.avg_temperature_c, b.avg_temperature_c);
  EXPECT_EQ(a.max_temperature_c, b.max_temperature_c);
  for (std::size_t m = 0; m < kNumOpModes; ++m)
    EXPECT_EQ(a.mode_fraction[m], b.mode_fraction[m]);
  EXPECT_EQ(a.rl_table_entries, b.rl_table_entries);
}

TEST(CampaignParallel, SeedDerivationIsPerConfigurationAndStable) {
  std::set<std::uint64_t> seeds;
  for (const std::string& bench : kBenchmarks) {
    for (const PolicyKind pol : kPolicies) {
      const std::uint64_t s = campaign_run_seed(7, bench, pol);
      EXPECT_EQ(s, 7 ^ fnv1a64(bench + "/" + policy_name(pol)));
      seeds.insert(s);
    }
  }
  // All four configurations draw from distinct streams.
  EXPECT_EQ(seeds.size(), kBenchmarks.size() * kPolicies.size());
}

TEST(CampaignParallel, FourJobsBitIdenticalToSerial) {
  SimOptions serial = tiny_base();
  serial.jobs = 1;
  const CampaignResults a =
      run_campaign(serial, kBenchmarks, kPolicies, kScalePct);

  SimOptions parallel = tiny_base();
  parallel.jobs = 4;
  const CampaignResults b =
      run_campaign(parallel, kBenchmarks, kPolicies, kScalePct);

  ASSERT_EQ(a.results.size(), 2u);
  ASSERT_EQ(b.results.size(), 2u);
  for (std::size_t bench = 0; bench < kBenchmarks.size(); ++bench) {
    ASSERT_EQ(a.results[bench].size(), kPolicies.size());
    ASSERT_EQ(b.results[bench].size(), kPolicies.size());
    for (std::size_t p = 0; p < kPolicies.size(); ++p) {
      SCOPED_TRACE(kBenchmarks[bench] + "/" + policy_name(kPolicies[p]));
      expect_identical(a.at(bench, p), b.at(bench, p));
      // Sanity: the runs actually simulated something.
      EXPECT_GT(a.at(bench, p).packets_delivered, 0u);
    }
  }

  // The acceptance-criterion form: the serialized TSVs are byte-identical.
  std::ostringstream tsv_a;
  std::ostringstream tsv_b;
  write_results(tsv_a, a);
  write_results(tsv_b, b);
  EXPECT_EQ(tsv_a.str(), tsv_b.str());
}

TEST(CampaignParallel, TinyBudgetStillInjectsAtLeastOnePacket) {
  // A 0% budget used to truncate total_packets to zero, producing an empty
  // measured phase whose row the normalized tables silently skip.
  SimOptions base = tiny_base();
  base.jobs = 2;
  const CampaignResults res = run_campaign(
      base, {"swaptions"}, {PolicyKind::kStaticCrc}, /*scale_pct=*/0);
  EXPECT_GE(res.at(0, 0).packets_injected, 1u);
  EXPECT_GE(res.at(0, 0).packets_delivered, 1u);
}

}  // namespace
}  // namespace rlftnoc
