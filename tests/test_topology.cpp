#include "noc/topology.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

namespace rlftnoc {
namespace {

TEST(Topology, CoordNodeRoundTrip) {
  const MeshTopology t(8, 8);
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    EXPECT_EQ(t.node(t.coord(n)), n);
  }
}

TEST(Topology, CoordLayoutRowMajor) {
  const MeshTopology t(4, 3);
  EXPECT_EQ(t.node(0, 0), 0);
  EXPECT_EQ(t.node(3, 0), 3);
  EXPECT_EQ(t.node(0, 1), 4);
  EXPECT_EQ(t.node(3, 2), 11);
  EXPECT_EQ(t.num_nodes(), 12);
}

TEST(Topology, NeighborsInterior) {
  const MeshTopology t(4, 4);
  const NodeId n = t.node(1, 1);  // 5
  EXPECT_EQ(t.neighbor(n, Port::kNorth), t.node(1, 2));
  EXPECT_EQ(t.neighbor(n, Port::kSouth), t.node(1, 0));
  EXPECT_EQ(t.neighbor(n, Port::kEast), t.node(2, 1));
  EXPECT_EQ(t.neighbor(n, Port::kWest), t.node(0, 1));
  EXPECT_EQ(t.neighbor(n, Port::kLocal), kInvalidNode);
}

TEST(Topology, NeighborsAtEdges) {
  const MeshTopology t(4, 4);
  EXPECT_EQ(t.neighbor(t.node(0, 0), Port::kWest), kInvalidNode);
  EXPECT_EQ(t.neighbor(t.node(0, 0), Port::kSouth), kInvalidNode);
  EXPECT_EQ(t.neighbor(t.node(3, 3), Port::kEast), kInvalidNode);
  EXPECT_EQ(t.neighbor(t.node(3, 3), Port::kNorth), kInvalidNode);
}

TEST(Topology, NeighborSymmetry) {
  const MeshTopology t(5, 3);
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    for (const Port p : kAllPorts) {
      if (p == Port::kLocal) continue;
      const NodeId nb = t.neighbor(n, p);
      if (nb != kInvalidNode) {
        EXPECT_EQ(t.neighbor(nb, opposite(p)), n);
      }
    }
  }
}

TEST(Topology, DistanceProperties) {
  const MeshTopology t(8, 8);
  EXPECT_EQ(t.distance(0, 0), 0);
  EXPECT_EQ(t.distance(t.node(0, 0), t.node(7, 7)), 14);
  EXPECT_EQ(t.distance(3, 12), t.distance(12, 3));  // symmetric
}

TEST(Topology, RouteToSelfIsLocal) {
  const MeshTopology t(4, 4);
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    EXPECT_EQ(t.xy_route(n, n), Port::kLocal);
  }
}

TEST(Topology, XyRoutesXFirst) {
  const MeshTopology t(4, 4);
  // From (0,0) to (2,3): must go East until x matches.
  EXPECT_EQ(t.xy_route(t.node(0, 0), t.node(2, 3)), Port::kEast);
  EXPECT_EQ(t.xy_route(t.node(2, 0), t.node(2, 3)), Port::kNorth);
  EXPECT_EQ(t.xy_route(t.node(3, 3), t.node(2, 3)), Port::kWest);
  EXPECT_EQ(t.xy_route(t.node(2, 3), t.node(2, 1)), Port::kSouth);
}

/// Property sweep: following xy_route from any source reaches any
/// destination in exactly Manhattan-distance hops (minimal + deadlock-free).
class XyRouteSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(XyRouteSweep, ReachesDestinationMinimally) {
  const auto [w, h] = GetParam();
  const MeshTopology t(w, h);
  for (NodeId src = 0; src < t.num_nodes(); ++src) {
    for (NodeId dst = 0; dst < t.num_nodes(); ++dst) {
      NodeId cur = src;
      int hops = 0;
      while (cur != dst) {
        const Port p = t.xy_route(cur, dst);
        ASSERT_NE(p, Port::kLocal);
        cur = t.neighbor(cur, p);
        ASSERT_NE(cur, kInvalidNode);
        ASSERT_LE(++hops, t.distance(src, dst));
      }
      EXPECT_EQ(hops, t.distance(src, dst));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MeshSizes, XyRouteSweep,
                         ::testing::Values(std::make_tuple(2, 2),
                                           std::make_tuple(4, 4),
                                           std::make_tuple(8, 8),
                                           std::make_tuple(3, 5),
                                           std::make_tuple(5, 3)));

TEST(Topology, DegenerateDimensionsThrow) {
  EXPECT_THROW(MeshTopology(0, 4), std::invalid_argument);
  EXPECT_THROW(MeshTopology(4, 0), std::invalid_argument);
  EXPECT_THROW(MeshTopology(-1, 4), std::invalid_argument);
  EXPECT_THROW(MeshTopology(4, -3), std::invalid_argument);
  // A torus needs both dimensions >= 2: wrap links would otherwise
  // self-loop (neighbor(n, E) == n on a 1-wide ring).
  EXPECT_THROW(
      Topology(TopologyKind::kTorus, 1, 4, RoutingAlgorithm::kAdaptive),
      std::invalid_argument);
  EXPECT_THROW(
      Topology(TopologyKind::kTorus, 4, 1, RoutingAlgorithm::kAdaptive),
      std::invalid_argument);
  EXPECT_NO_THROW(MeshTopology(1, 1));  // a single-node mesh is legal
  EXPECT_NO_THROW(
      Topology(TopologyKind::kTorus, 2, 2, RoutingAlgorithm::kAdaptive));
}

TEST(Topology, TorusWrapNeighbors) {
  const Topology t(TopologyKind::kTorus, 4, 3, RoutingAlgorithm::kXY);
  EXPECT_EQ(t.neighbor(t.node(0, 0), Port::kWest), t.node(3, 0));
  EXPECT_EQ(t.neighbor(t.node(3, 0), Port::kEast), t.node(0, 0));
  EXPECT_EQ(t.neighbor(t.node(1, 0), Port::kSouth), t.node(1, 2));
  EXPECT_EQ(t.neighbor(t.node(1, 2), Port::kNorth), t.node(1, 0));
  // Wrap-link detection marks exactly the dateline crossings.
  EXPECT_TRUE(t.wrap_link(t.node(3, 0), Port::kEast));
  EXPECT_TRUE(t.wrap_link(t.node(0, 0), Port::kWest));
  EXPECT_FALSE(t.wrap_link(t.node(1, 1), Port::kEast));
  EXPECT_FALSE(t.wrap_link(t.node(0, 0), Port::kLocal));
}

TEST(Topology, MeshHasNoWrapLinks) {
  const MeshTopology t(4, 4);
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    for (const Port p : kAllPorts) EXPECT_FALSE(t.wrap_link(n, p));
  }
}

TEST(Topology, TorusDistanceUsesWrap) {
  const Topology t(TopologyKind::kTorus, 8, 8, RoutingAlgorithm::kXY);
  EXPECT_EQ(t.distance(t.node(0, 0), t.node(7, 0)), 1);  // wrap W
  EXPECT_EQ(t.distance(t.node(0, 0), t.node(0, 7)), 1);  // wrap S
  EXPECT_EQ(t.distance(t.node(0, 0), t.node(4, 4)), 8);  // both ways tie
  EXPECT_EQ(t.distance(t.node(1, 1), t.node(6, 6)), 6);  // wrap both dims
}

/// Torus route sweep: dimension-ordered routing over wrap links still
/// reaches every destination in exactly the (wrap-aware) minimal hops.
class TorusRouteSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TorusRouteSweep, ReachesDestinationMinimally) {
  const auto [w, h] = GetParam();
  const Topology t(TopologyKind::kTorus, w, h, RoutingAlgorithm::kXY);
  for (NodeId src = 0; src < t.num_nodes(); ++src) {
    for (NodeId dst = 0; dst < t.num_nodes(); ++dst) {
      NodeId cur = src;
      int hops = 0;
      while (cur != dst) {
        const Port p = t.route(cur, dst);
        ASSERT_NE(p, Port::kLocal);
        cur = t.neighbor(cur, p);
        ASSERT_NE(cur, kInvalidNode);
        ASSERT_LE(++hops, t.distance(src, dst));
      }
      EXPECT_EQ(hops, t.distance(src, dst));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TorusSizes, TorusRouteSweep,
                         ::testing::Values(std::make_tuple(2, 2),
                                           std::make_tuple(4, 4),
                                           std::make_tuple(8, 8),
                                           std::make_tuple(3, 5),
                                           std::make_tuple(5, 3)));

#if RLFTNOC_CHECK_ENABLED
using TopologyDeathTest = ::testing::Test;

TEST(TopologyDeathTest, RouteRejectsOutOfRangeNodes) {
  // Out-of-range ids (including kInvalidNode) are a caller bug: route()
  // must refuse loudly instead of indexing the LUT out of bounds.
  const MeshTopology t(4, 4);
  EXPECT_DEATH(t.xy_route(kInvalidNode, 0), "RLFTNOC_CHECK failed");
  EXPECT_DEATH(t.xy_route(0, t.num_nodes()), "RLFTNOC_CHECK failed");
  EXPECT_DEATH(t.xy_route(-2, 3), "RLFTNOC_CHECK failed");
}

TEST(TopologyDeathTest, RouteRejectsUnreachableDestination) {
  Topology t(TopologyKind::kTorus, 4, 4, RoutingAlgorithm::kAdaptive);
  ASSERT_TRUE(t.kill_router(5));
  t.rebuild_routes();
  EXPECT_DEATH(t.route(0, 5), "RLFTNOC_CHECK failed");
  EXPECT_FALSE(t.reachable(0, 5));  // the checked query for this case
}
#endif

TEST(Topology, PortHelpers) {
  EXPECT_EQ(opposite(Port::kNorth), Port::kSouth);
  EXPECT_EQ(opposite(Port::kEast), Port::kWest);
  EXPECT_EQ(opposite(opposite(Port::kWest)), Port::kWest);
  EXPECT_EQ(opposite(Port::kLocal), Port::kLocal);
  EXPECT_STREQ(port_name(Port::kNorth), "N");
  EXPECT_STREQ(port_name(Port::kLocal), "L");
  EXPECT_EQ(port_index(Port::kLocal), 4u);
}

}  // namespace
}  // namespace rlftnoc
